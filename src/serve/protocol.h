/**
 * @file
 * The dfp-serve wire protocol: CRC32-framed binary envelopes over a
 * unix-domain stream socket, the same framing discipline as the
 * checkpoint file format (sim/checkpoint.h) — magic, format version,
 * CRC over the body, then BinWriter-encoded fields — adapted to a
 * stream by a bounded body-length field so a reader always knows how
 * many bytes to collect before validating.
 *
 * Frame layout (all little-endian):
 *
 *   byte 0..7    magic "DFPSRV01"
 *   byte 8..11   u32 protocol version (kProtocolVersion)
 *   byte 12..15  u32 body length (<= kMaxFrameBody)
 *   byte 16..19  u32 CRC32 (IEEE) of the body bytes
 *   then         body (encodeRequest / encodeResponse payload)
 *
 * A frame that fails any structural check — bad magic, unsupported
 * version, oversized length, CRC mismatch, or a body that does not
 * decode — is *malformed*: the server answers SERVE_MALFORMED
 * (DFPC110) and closes the connection; it never crashes, hangs, or
 * trusts partial data. See docs/SERVING.md for the full taxonomy.
 *
 * Error taxonomy (Response::status, driver diagnostic in parens):
 *
 *   "ok"                 the request executed; payload is valid
 *   SERVE_MALFORMED      unreadable frame or bad request (DFPC110)
 *   SERVE_OVERLOADED     admission queue full, request shed (DFPC111)
 *   SERVE_DEADLINE       per-request wall-clock deadline hit (DFPC112)
 *   SERVE_BREAKER_OPEN   circuit breaker fast-fail (DFPC113)
 *   SERVE_DRAINING       server shutting down gracefully (DFPC114)
 *   SERVE_ERROR          the job ran and failed deterministically
 *                        (compile/sim/golden/exception — carried in
 *                        the result payload's errorKind; no DFPC code,
 *                        it is the job's failure, not the server's)
 *
 * SERVE_OVERLOADED and SERVE_DEADLINE are *transient*: the built-in
 * client retries them with jittered exponential backoff. Everything
 * else is deterministic and retrying is pointless.
 */

#ifndef DFP_SERVE_PROTOCOL_H
#define DFP_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace dfp::serve
{

constexpr uint32_t kProtocolVersion = 1;

/** Upper bound on a frame body; larger length fields are malformed
 *  (a corrupted length must not become a multi-gigabyte allocation). */
constexpr uint32_t kMaxFrameBody = 64u << 20;

inline constexpr const char *kStatusOk = "ok";
inline constexpr const char *kStatusMalformed = "SERVE_MALFORMED";
inline constexpr const char *kStatusOverloaded = "SERVE_OVERLOADED";
inline constexpr const char *kStatusDeadline = "SERVE_DEADLINE";
inline constexpr const char *kStatusBreakerOpen = "SERVE_BREAKER_OPEN";
inline constexpr const char *kStatusDraining = "SERVE_DRAINING";
inline constexpr const char *kStatusError = "SERVE_ERROR";

/** The DFPC1xx driver-diagnostic code for a status ("" for "ok" and
 *  SERVE_ERROR — the latter reports through the job's errorKind). */
const char *statusDiagCode(const std::string &status);

/** True for statuses the client may retry with backoff. */
bool statusTransient(const std::string &status);

/**
 * Optional trailing extension records. After the base fields both
 * request and response bodies may carry zero or more records of the
 * form (u32 tag, length-prefixed payload bytes). Decoders skip
 * records with unknown tags, so new fields ride along without a
 * version bump: an old server ignores a new client's extensions, an
 * old client never sees any (the server echoes the traceId extension
 * only when the request carried one). A truncated or oversized
 * record still fails the whole body — tolerance is for *unknown*
 * data, not *damaged* data.
 */
constexpr uint32_t kExtTraceId = 1; //!< payload: u64 telemetry trace id

/** One request. kind selects the action:
 *  "simulate" — compile (cached) + cycle-level sim + golden check;
 *  "compile"  — compile through the shared cache only;
 *  "analyze"  — simulate plus the static cycle lower bound;
 *  "health"   — server status JSON; every other field is ignored;
 *  "metrics"  — Prometheus text exposition of the server's counters,
 *               gauges, and latency histograms (docs/TELEMETRY.md). */
struct Request
{
    std::string kind = "simulate";
    std::string workload;
    std::string config = "both";
    uint64_t deadlineMs = 0;  //!< 0 = server default
    uint64_t maxCycles = 0;   //!< 0 = simulator default
    std::string faultModel;   //!< "" = fault-free
    double faultRate = 0;
    uint64_t faultSeed = 0;
    uint64_t traceId = 0;     //!< extension; 0 = absent (old client)
};

/** One response. payload is kind-specific: an encodeBatchResult blob
 *  for job kinds (hostSeconds normalized to zero so responses are
 *  byte-deterministic), the health JSON text for "health", the
 *  Prometheus text for "metrics". */
struct Response
{
    std::string status;
    std::string message;      //!< human-readable detail when not ok
    uint64_t queueDepth = 0;  //!< requests in flight when composed
    std::vector<uint8_t> payload;
    uint64_t traceId = 0;     //!< extension; echoed from the request
};

std::vector<uint8_t> encodeRequest(const Request &req);
bool decodeRequest(const std::vector<uint8_t> &body, Request &out,
                   std::string &error);

std::vector<uint8_t> encodeResponse(const Response &resp);
bool decodeResponse(const std::vector<uint8_t> &body, Response &out,
                    std::string &error);

/** Wrap @p body in the framed envelope (magic+version+len+crc). */
std::vector<uint8_t> encodeFrame(const std::vector<uint8_t> &body);

/** Outcome of pulling one frame off a stream. */
enum class FrameStatus : uint8_t
{
    Ok,
    Eof,       //!< clean close before any frame byte
    Malformed, //!< structural damage; @p error says what
    IoError,   //!< read failed mid-frame (errno preserved)
};

/** Write one framed body; false on IO error (errno set). */
bool writeFrame(int fd, const std::vector<uint8_t> &body);

/** Read and validate one frame; on Ok, @p body holds the verified
 *  body bytes. */
FrameStatus readFrame(int fd, std::vector<uint8_t> &body,
                      std::string &error);

} // namespace dfp::serve

#endif // DFP_SERVE_PROTOCOL_H
