/**
 * @file
 * The built-in dfp-serve client: connect to the daemon's unix-domain
 * socket, send one framed request, decode the framed response — and
 * absorb the transient failures a loaded or restarting server hands
 * out. SERVE_OVERLOADED, SERVE_DEADLINE, and connection failures
 * (the socket not there yet, the server mid-restart) are retried up
 * to `retries` extra attempts with jittered exponential backoff:
 *
 *     delay = backoffMs * 2^(attempt-1) * uniform(0.5, 1.5)
 *
 * capped at 10s per sleep. The jitter (base/random.h, seeded per
 * client) keeps a storm of clients that were all shed together from
 * re-arriving together — the thundering-herd retry is the classic way
 * a recovering server gets knocked straight back over. Deterministic
 * outcomes (SERVE_MALFORMED, SERVE_BREAKER_OPEN, SERVE_ERROR, ok)
 * return immediately; retrying them would reproduce the same answer.
 */

#ifndef DFP_SERVE_CLIENT_H
#define DFP_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace dfp::serve
{

struct ClientOptions
{
    std::string socketPath;
    uint64_t retries = 0;     //!< extra attempts on transient failures
    uint64_t backoffMs = 100; //!< first retry delay (then doubles)
    uint64_t jitterSeed = 0;  //!< 0 = derive from the process id

    /** Mint a process-unique telemetry trace id for requests that do
     *  not carry one (telemetry::mintTraceId), so every call is
     *  correlatable across the server's spans. Off by default: the
     *  wire bytes stay identical to a pre-telemetry client unless the
     *  caller opts in or sets Request::traceId explicitly. */
    bool mintTraceId = false;
};

/** Outcome of one call(), after retries. */
struct CallResult
{
    bool ok = false;          //!< a response was received and decoded
    std::string error;        //!< transport-level failure when !ok
    Response response;        //!< valid when ok
    uint64_t attempts = 0;    //!< total attempts made (>= 1)
    uint64_t retried = 0;     //!< attempts beyond the first
};

/** Send @p req, retrying transient failures per @p opts. Each attempt
 *  opens a fresh connection, so a server restart between attempts is
 *  survived transparently. */
CallResult call(const ClientOptions &opts, const Request &req);

} // namespace dfp::serve

#endif // DFP_SERVE_CLIENT_H
