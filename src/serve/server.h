/**
 * @file
 * The dfp-serve server: a crash-only, long-running simulation service
 * on a unix-domain socket. Requests (serve/protocol.h) execute on the
 * shared-compile-cache BatchRunner; around it sit the robustness
 * mechanisms a service needs that a one-shot sweep does not:
 *
 *  - **bounded admission**: at most workers + queueCapacity requests
 *    are in flight; request number capacity+1 is shed immediately
 *    with SERVE_OVERLOADED (DFPC111). The queue never grows without
 *    bound and an overloaded server never hangs a client.
 *  - **per-request deadlines**: a monitor thread (the supervisor's
 *    mechanism from sim/supervise.cc) scans in-flight slots every
 *    ~20ms and trips the machine's stop poll past the deadline; the
 *    client sees SERVE_DEADLINE (DFPC112). The clock starts at
 *    admission, so time spent waiting for a worker counts.
 *  - **circuit breaker**: a job identity (superviseJobId) that fails
 *    *deterministically* (compile/sim/golden) breakerThreshold times
 *    in a row is fast-failed with SERVE_BREAKER_OPEN (DFPC113)
 *    without re-running; one success resets the count. Transient
 *    outcomes (deadline, shed) never feed the breaker.
 *  - **crash-only journaling**: with journalDir set, every accepted
 *    job is journalled `start` before execution and `done` (full
 *    bit-exact result blob) after, through sim::SweepJournal — the
 *    same manifest.jsonl the batch supervisor writes. A server
 *    SIGKILLed at any instant and restarted on the same directory
 *    restores every finished job's result and re-runs only the rest;
 *    responses are byte-identical either way (hostSeconds, the one
 *    wall-clock field, is normalized to zero in every response).
 *  - **graceful drain**: when the external stop flag trips (first
 *    SIGTERM/SIGINT), the listener closes, queued/new frames get
 *    SERVE_DRAINING (DFPC114), in-flight jobs run to completion and
 *    their responses are delivered, then serve() returns. A second
 *    signal is the daemon's cue to exit immediately (base/signals.h
 *    stopCount()).
 *
 * Every counter lands in the stats registry (base/stats.h) under
 * "serve.*" and is exported by the `health` request and the daemon's
 * --stats-json. See docs/SERVING.md.
 */

#ifndef DFP_SERVE_SERVER_H
#define DFP_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/stats.h"
#include "base/telemetry.h"
#include "serve/protocol.h"
#include "sim/batch.h"
#include "sim/supervise.h"

namespace dfp::serve
{

struct ServerOptions
{
    /** Unix-domain socket path. A stale socket file (a previous
     *  instance that was SIGKILLed) is unlinked before bind —
     *  crash-only restart must not require manual cleanup. */
    std::string socketPath;

    /** Concurrently *executing* jobs. */
    int workers = 2;

    /** Admitted-but-waiting jobs beyond the workers; request
     *  workers+queueCapacity+1 is shed. */
    int queueCapacity = 8;

    /** Deadline for requests that do not carry their own, in
     *  milliseconds; 0 = unlimited. */
    uint64_t defaultDeadlineMs = 0;

    /** Consecutive deterministic failures that open a job identity's
     *  circuit breaker. */
    uint64_t breakerThreshold = 3;

    /** Test-only: hold the worker slot for this long (stop-aware, so
     *  deadlines still fire) before executing each job. Gives the
     *  in-process tests a deterministically slow occupant regardless
     *  of how fast real jobs run on the host; not exposed on the
     *  dfp-serve command line. */
    uint64_t debugJobDelayMs = 0;

    /** Journal directory (sim::SweepJournal); "" = no journal, no
     *  crash recovery. */
    std::string journalDir;

    /** Recorded in the journal header and the health JSON. */
    std::string toolVersion;

    /**
     * Request-scoped span sink (base/telemetry.h; not owned, must
     * outlive the server). Null — the default — disables span
     * collection entirely: every emission site is one null check.
     */
    telemetry::SpanCollector *spans = nullptr;

    /**
     * Gauge sampler period in milliseconds; 0 — the default — starts
     * **no thread** and keeps the metric ring empty. The `metrics`
     * request still works either way (gauges are evaluated on
     * demand); the sampler only feeds the trailing time-series window
     * and the per-tick hook.
     */
    uint64_t metricsPeriodMs = 0;

    /** Ring capacity for sampled gauge snapshots. */
    size_t metricsRingCapacity = 600;

    /** Invoked after each sampler tick (dfp-serve's --metrics-out
     *  atomic-rename dump). Runs on the sampler thread. */
    std::function<void()> onMetricsTick;
};

class Server
{
  public:
    explicit Server(const ServerOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen on the socket, replay the journal, start the
     *  deadline monitor. False with @p error set on failure. */
    bool start(std::string &error);

    /**
     * Accept and serve connections on the calling thread until
     * @p stop (e.g. base/signals.h stopRequested()) goes nonzero,
     * then drain: close the listener, finish in-flight jobs, join
     * every connection thread. Returns the stop flag's value (the
     * signal number, or 0 if serving ended for another reason).
     */
    int serve(const std::atomic<int> *stop);

    /** Point-in-time copy of the "serve.*" counters. */
    StatSet statsSnapshot() const;

    /** The health JSON (also returned by the `health` request). */
    std::string healthJson() const;

    /**
     * The Prometheus text exposition (also returned by the `metrics`
     * request): every "serve.*" counter, the request-latency and
     * span/phase histograms, and the gauges evaluated now. See
     * docs/TELEMETRY.md for the metric table.
     */
    std::string metricsText() const;

    /** Jobs admitted and not yet responded to. */
    uint64_t inFlight() const;

  private:
    /** One in-flight job's deadline state, scanned by the monitor. */
    struct Slot
    {
        std::atomic<int> stop{0};
        std::atomic<bool> active{false};
        std::atomic<bool> timedOut{false};
        std::atomic<int64_t> deadlineNs{0}; //!< steady-clock ns; 0 = none
    };

    void handleConnection(int fd);
    Response execute(const Request &req);
    Response runJobRequest(const Request &req);
    void monitorLoop();
    bool breakerOpen(const std::string &key) const;
    void breakerRecord(const std::string &key, bool deterministicFail);
    void bump(const std::string &name, uint64_t delta = 1);
    void sampleStat(const std::string &name, uint64_t value);
    void registerGauges();
    uint64_t breakersOpenCount() const;

    ServerOptions opts_;
    sim::BatchRunner runner_;
    sim::SweepJournal journal_;
    bool journalOpen_ = false;

    int listenFd_ = -1;
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false}; //!< tears down the monitor

    std::vector<std::unique_ptr<Slot>> slots_;
    std::mutex slotMu_;
    std::vector<int> freeSlots_;

    mutable std::mutex admitMu_;
    std::condition_variable workerCv_;
    int admitted_ = 0; //!< in-flight jobs (executing + waiting)
    int running_ = 0;  //!< executing jobs (<= opts_.workers)

    mutable std::mutex breakerMu_;
    std::map<std::string, uint64_t> breakerFails_;

    mutable std::mutex statsMu_;
    StatSet stats_;

    std::mutex threadsMu_;
    std::vector<std::thread> connThreads_;
    std::thread monitor_;

    std::chrono::steady_clock::time_point started_;

    // Telemetry. The gauge registry closes over `this`; the sampler is
    // stopped before any of the state it samples is torn down.
    telemetry::GaugeRegistry gauges_;
    telemetry::MetricRing ring_;
    telemetry::Sampler sampler_;
    std::atomic<uint64_t> busyNs_{0}; //!< summed worker execution time
};

} // namespace dfp::serve

#endif // DFP_SERVE_SERVER_H
