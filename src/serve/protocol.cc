#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include "base/io.h"
#include "base/serialize.h"

namespace dfp::serve
{

namespace
{

constexpr char kMagic[8] = {'D', 'F', 'P', 'S', 'R', 'V', '0', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic) + 3 * sizeof(uint32_t);

uint32_t
loadU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= uint32_t(p[i]) << (8 * i);
    return v;
}

// Append one (tag, length-prefixed payload) extension record carrying
// the trace id. Omitted entirely when zero, so a telemetry-unaware
// caller produces byte-identical frames to the previous protocol rev.
void
appendTraceIdExt(serialize::BinWriter &w, uint64_t traceId)
{
    if (traceId == 0)
        return;
    serialize::BinWriter payload;
    payload.u64(traceId);
    w.u32(kExtTraceId);
    const std::vector<uint8_t> bytes = payload.take();
    w.str(std::string_view(reinterpret_cast<const char *>(bytes.data()),
                           bytes.size()));
}

// Consume every trailing extension record: known tags decode, unknown
// tags skip (that is the forward-compat contract), structural damage
// (truncated length, payload past the end) fails the body.
bool
readExtensions(serialize::BinReader &r, uint64_t &traceId)
{
    while (r.ok() && !r.atEnd()) {
        const uint32_t tag = r.u32();
        const std::string payload = r.str();
        if (!r.ok())
            return false;
        if (tag == kExtTraceId) {
            serialize::BinReader pr(
                reinterpret_cast<const uint8_t *>(payload.data()),
                payload.size());
            const uint64_t id = pr.u64();
            if (!pr.ok() || !pr.atEnd())
                return false;
            traceId = id;
        }
    }
    return r.ok();
}

} // namespace

const char *
statusDiagCode(const std::string &status)
{
    if (status == kStatusMalformed)
        return "DFPC110";
    if (status == kStatusOverloaded)
        return "DFPC111";
    if (status == kStatusDeadline)
        return "DFPC112";
    if (status == kStatusBreakerOpen)
        return "DFPC113";
    if (status == kStatusDraining)
        return "DFPC114";
    return "";
}

bool
statusTransient(const std::string &status)
{
    return status == kStatusOverloaded || status == kStatusDeadline;
}

std::vector<uint8_t>
encodeRequest(const Request &req)
{
    serialize::BinWriter w;
    w.str(req.kind);
    w.str(req.workload);
    w.str(req.config);
    w.u64(req.deadlineMs);
    w.u64(req.maxCycles);
    w.str(req.faultModel);
    w.f64(req.faultRate);
    w.u64(req.faultSeed);
    appendTraceIdExt(w, req.traceId);
    return w.take();
}

bool
decodeRequest(const std::vector<uint8_t> &body, Request &out,
              std::string &error)
{
    serialize::BinReader r(body);
    out.kind = r.str();
    out.workload = r.str();
    out.config = r.str();
    out.deadlineMs = r.u64();
    out.maxCycles = r.u64();
    out.faultModel = r.str();
    out.faultRate = r.f64();
    out.faultSeed = r.u64();
    out.traceId = 0;
    if (!r.ok() || !readExtensions(r, out.traceId)) {
        error = "request body does not decode";
        return false;
    }
    return true;
}

std::vector<uint8_t>
encodeResponse(const Response &resp)
{
    serialize::BinWriter w;
    w.str(resp.status);
    w.str(resp.message);
    w.u64(resp.queueDepth);
    w.u64(resp.payload.size());
    w.raw(resp.payload.data(), resp.payload.size());
    appendTraceIdExt(w, resp.traceId);
    return w.take();
}

bool
decodeResponse(const std::vector<uint8_t> &body, Response &out,
               std::string &error)
{
    serialize::BinReader r(body);
    out.status = r.str();
    out.message = r.str();
    out.queueDepth = r.u64();
    size_t n = r.len();
    out.payload.resize(n);
    out.traceId = 0;
    if (!r.raw(out.payload.data(), n) ||
        !readExtensions(r, out.traceId)) {
        error = "response body does not decode";
        return false;
    }
    return true;
}

std::vector<uint8_t>
encodeFrame(const std::vector<uint8_t> &body)
{
    serialize::BinWriter w;
    w.raw(kMagic, sizeof(kMagic));
    w.u32(kProtocolVersion);
    w.u32(uint32_t(body.size()));
    w.u32(serialize::crc32(body.data(), body.size()));
    w.raw(body.data(), body.size());
    return w.take();
}

bool
writeFrame(int fd, const std::vector<uint8_t> &body)
{
    const std::vector<uint8_t> frame = encodeFrame(body);
    return io::writeFull(fd, frame.data(), frame.size());
}

FrameStatus
readFrame(int fd, std::vector<uint8_t> &body, std::string &error)
{
    uint8_t header[kHeaderBytes];
    // A clean EOF before the first header byte is a normal close; an
    // EOF anywhere later is a truncated frame.
    if (!io::readFull(fd, header, 1)) {
        if (errno == 0)
            return FrameStatus::Eof;
        error = std::strerror(errno);
        return FrameStatus::IoError;
    }
    if (!io::readFull(fd, header + 1, sizeof(header) - 1)) {
        if (errno == 0) {
            error = "connection closed mid-header";
            return FrameStatus::Malformed;
        }
        error = std::strerror(errno);
        return FrameStatus::IoError;
    }

    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
        error = "bad frame magic";
        return FrameStatus::Malformed;
    }
    const uint32_t version = loadU32(header + sizeof(kMagic));
    if (version != kProtocolVersion) {
        error = "unsupported protocol version " + std::to_string(version);
        return FrameStatus::Malformed;
    }
    const uint32_t bodyLen = loadU32(header + sizeof(kMagic) + 4);
    if (bodyLen > kMaxFrameBody) {
        error = "frame body length " + std::to_string(bodyLen) +
                " exceeds limit";
        return FrameStatus::Malformed;
    }
    const uint32_t want = loadU32(header + sizeof(kMagic) + 8);

    body.resize(bodyLen);
    if (bodyLen > 0 && !io::readFull(fd, body.data(), bodyLen)) {
        if (errno == 0) {
            error = "connection closed mid-body";
            return FrameStatus::Malformed;
        }
        error = std::strerror(errno);
        return FrameStatus::IoError;
    }
    const uint32_t got = serialize::crc32(body.data(), body.size());
    if (got != want) {
        error = "frame CRC mismatch";
        return FrameStatus::Malformed;
    }
    return FrameStatus::Ok;
}

} // namespace dfp::serve
