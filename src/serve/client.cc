#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "base/io.h"
#include "base/random.h"
#include "base/telemetry.h"

namespace dfp::serve
{

namespace
{

constexpr uint64_t kMaxSleepMs = 10000;

/** One connect + request + response round trip. */
bool
attempt(const std::string &socketPath, const Request &req,
        Response &resp, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + socketPath + "' is too long";
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect " + socketPath + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    bool ok = false;
    if (!writeFrame(fd, encodeRequest(req))) {
        error = std::string("send: ") + std::strerror(errno);
    } else {
        std::vector<uint8_t> body;
        const FrameStatus fs = readFrame(fd, body, error);
        if (fs == FrameStatus::Eof)
            error = "server closed the connection before responding";
        else if (fs == FrameStatus::Ok)
            ok = decodeResponse(body, resp, error);
        // Malformed/IoError leave @p error set by readFrame.
    }
    ::close(fd);
    return ok;
}

} // namespace

CallResult
call(const ClientOptions &opts, const Request &req)
{
    CallResult out;
    // The jitter stream decorrelates concurrent clients' retry times;
    // it never influences a result, only when the next attempt lands.
    Rng rng(opts.jitterSeed != 0 ? opts.jitterSeed
                                 : uint64_t(::getpid()) * 0x9e3779b9u + 1);

    // One trace id covers every attempt of this call: retries are the
    // same logical request, and the server's spans should say so.
    Request traced = req;
    if (opts.mintTraceId && traced.traceId == 0)
        traced.traceId = telemetry::mintTraceId();

    for (uint64_t attemptNo = 1;; attemptNo++) {
        out.attempts = attemptNo;
        Response resp;
        std::string error;
        const bool got = attempt(opts.socketPath, traced, resp, error);

        bool transient;
        if (got) {
            out.ok = true;
            out.error.clear();
            out.response = resp;
            transient = statusTransient(resp.status);
        } else {
            out.ok = false;
            out.error = error;
            // Transport failures are transient: the daemon may be
            // restarting (crash-only!) or still binding its socket.
            transient = true;
        }
        if (!transient || attemptNo > opts.retries)
            return out;

        out.retried++;
        uint64_t delay = opts.backoffMs << (attemptNo - 1);
        if (delay > kMaxSleepMs || delay < opts.backoffMs)
            delay = kMaxSleepMs;
        // uniform(0.5, 1.5) in integer arithmetic: delay/2 + [0, delay).
        const uint64_t jittered =
            delay / 2 + (delay ? rng.nextBelow(delay) : 0);
        std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
    }
}

} // namespace dfp::serve
