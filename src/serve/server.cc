#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "base/io.h"
#include "base/json.h"
#include "base/logging.h"
#include "sim/fault.h"
#include "workloads/suite.h"

namespace dfp::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

Response
refuse(const std::string &status, const std::string &message)
{
    Response resp;
    resp.status = status;
    resp.message = message;
    return resp;
}

} // namespace

Server::Server(const ServerOptions &opts)
    : opts_(opts), runner_(sim::BatchOptions()),
      ring_(opts.metricsRingCapacity)
{
    if (opts_.workers < 1)
        opts_.workers = 1;
    if (opts_.queueCapacity < 0)
        opts_.queueCapacity = 0;
}

Server::~Server()
{
    sampler_.stop(); // before the state its gauges read goes away
    stopping_.store(true);
    if (monitor_.joinable())
        monitor_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

bool
Server::start(std::string &error)
{
    if (opts_.socketPath.empty()) {
        error = "no socket path";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path '" + opts_.socketPath + "' is too long";
        return false;
    }
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);

    if (!opts_.journalDir.empty()) {
        if (!journal_.open(opts_.journalDir, opts_.toolVersion, 0, error))
            return false;
        journalOpen_ = true;
        bump("serve.restored_available", journal_.finished().size());
    }

    // Crash-only restart: a SIGKILLed predecessor leaves its socket
    // file behind; reclaim the name unconditionally.
    ::unlink(opts_.socketPath.c_str());

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = "bind " + opts_.socketPath + ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    // The kernel backlog holds *connections*, not admitted jobs; make
    // it generous so a storm queues at connect rather than ECONNREFUSED
    // — shedding is the admission gate's job, with a clear error.
    if (::listen(listenFd_, 128) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    const int capacity = opts_.workers + opts_.queueCapacity;
    slots_.clear();
    freeSlots_.clear();
    for (int i = 0; i < capacity; i++) {
        slots_.push_back(std::make_unique<Slot>());
        freeSlots_.push_back(i);
    }

    started_ = Clock::now();
    registerGauges();
    // Zero threads when disabled: a period of 0 starts nothing and
    // the server stays thread-identical to the pre-telemetry build.
    if (opts_.metricsPeriodMs != 0)
        sampler_.start(&gauges_, &ring_, opts_.metricsPeriodMs,
                       opts_.onMetricsTick);
    monitor_ = std::thread([this] { monitorLoop(); });
    return true;
}

void
Server::registerGauges()
{
    gauges_.add("serve.workers",
                [this] { return double(opts_.workers); });
    gauges_.add("serve.queue_depth",
                [this] { return double(inFlight()); });
    gauges_.add("serve.running", [this] {
        std::lock_guard<std::mutex> lock(admitMu_);
        return double(running_);
    });
    gauges_.add("serve.breakers_open",
                [this] { return double(breakersOpenCount()); });
    gauges_.add("serve.compile_cache_size",
                [this] { return double(runner_.cacheSize()); });
    gauges_.add("serve.cache_hit_rate", [this] {
        const StatSet s = statsSnapshot();
        const uint64_t hits = s.get("serve.cache_hits");
        const uint64_t total = hits + s.get("serve.compiles");
        return total != 0 ? double(hits) / double(total) : 0.0;
    });
    gauges_.add("serve.worker_busy_fraction", [this] {
        // Aggregate approximation: summed per-job execution time over
        // workers × uptime. Exact per-worker attribution would need a
        // worker identity the admission gate does not hand out.
        const double up =
            std::chrono::duration<double>(Clock::now() - started_)
                .count();
        if (up <= 0.0)
            return 0.0;
        const double busy = double(busyNs_.load()) * 1e-9;
        return busy / (double(opts_.workers) * up);
    });
    gauges_.add("process.rss_bytes",
                [] { return telemetry::rssBytes(); });
}

uint64_t
Server::breakersOpenCount() const
{
    std::lock_guard<std::mutex> lock(breakerMu_);
    uint64_t open = 0;
    for (const auto &[key, fails] : breakerFails_)
        if (fails >= opts_.breakerThreshold)
            ++open;
    return open;
}

void
Server::monitorLoop()
{
    // The supervisor's deadline mechanism (sim/supervise.cc): a 20ms
    // scan is plenty for wall-clock budgets measured in tens of ms,
    // and one thread covers every slot regardless of worker count.
    while (!stopping_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const int64_t now = nowNs();
        for (const auto &slot : slots_) {
            if (!slot->active.load(std::memory_order_acquire))
                continue;
            const int64_t deadline = slot->deadlineNs.load();
            if (deadline != 0 && now >= deadline &&
                slot->stop.load() == 0) {
                slot->timedOut.store(true);
                slot->stop.store(1);
            }
        }
    }
}

int
Server::serve(const std::atomic<int> *stop)
{
    while (true) {
        if (stop != nullptr && stop->load() != 0)
            break;
        const int ready = io::pollIn(listenFd_, 200);
        if (ready < 0)
            break;
        if (ready == 0)
            continue;
        const int conn = io::acceptRetry(listenFd_);
        if (conn < 0)
            continue;
        bump("serve.connections");
        std::lock_guard<std::mutex> lock(threadsMu_);
        connThreads_.emplace_back(
            [this, conn] { handleConnection(conn); });
    }

    // Drain: stop accepting, let in-flight work finish, deliver every
    // pending response, then come home. New frames on existing
    // connections are refused with SERVE_DRAINING.
    draining_.store(true);
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opts_.socketPath.c_str());
    {
        std::lock_guard<std::mutex> lock(threadsMu_);
        for (std::thread &t : connThreads_)
            if (t.joinable())
                t.join();
        connThreads_.clear();
    }
    stopping_.store(true);
    if (monitor_.joinable())
        monitor_.join();
    return stop != nullptr ? stop->load() : 0;
}

void
Server::handleConnection(int fd)
{
    std::vector<uint8_t> body;
    std::string error;
    while (true) {
        // Tick so a drain is noticed even while idle; an established
        // connection does not outlive the drain by sitting silent.
        const int ready = io::pollIn(fd, 200);
        if (ready < 0)
            break;
        if (ready == 0) {
            if (draining_.load())
                break;
            continue;
        }
        const FrameStatus fs = readFrame(fd, body, error);
        if (fs == FrameStatus::Eof || fs == FrameStatus::IoError)
            break;
        if (fs == FrameStatus::Malformed) {
            bump("serve.malformed");
            writeFrame(fd, encodeResponse(
                               refuse(kStatusMalformed, error)));
            break; // the stream is unsynchronized; drop it
        }
        Request req;
        Response resp;
        const uint64_t decodeStart =
            opts_.spans != nullptr ? opts_.spans->nowUs() : 0;
        if (!decodeRequest(body, req, error)) {
            bump("serve.malformed");
            resp = refuse(kStatusMalformed, error);
        } else {
            // The span is recorded after the fact: the trace id it is
            // scoped to is itself a product of the decode.
            if (opts_.spans != nullptr)
                opts_.spans->record("serve.decode", req.traceId,
                                    decodeStart,
                                    opts_.spans->nowUs() - decodeStart,
                                    0);
            resp = execute(req);
        }
        resp.queueDepth = inFlight();
        resp.traceId = req.traceId; // echoed; zero is never encoded
        bool wrote;
        {
            telemetry::Span reply(opts_.spans, "serve.reply",
                                  req.traceId, 0);
            wrote = writeFrame(fd, encodeResponse(resp));
        }
        if (!wrote)
            break;
    }
    ::close(fd);
}

Response
Server::execute(const Request &req)
{
    if (req.kind == "health") {
        bump("serve.health");
        Response resp;
        resp.status = kStatusOk;
        const std::string text = healthJson();
        resp.payload.assign(text.begin(), text.end());
        return resp;
    }
    if (req.kind == "metrics") {
        bump("serve.metrics");
        Response resp;
        resp.status = kStatusOk;
        const std::string text = metricsText();
        resp.payload.assign(text.begin(), text.end());
        return resp;
    }
    if (req.kind != "simulate" && req.kind != "compile" &&
        req.kind != "analyze") {
        bump("serve.malformed");
        return refuse(kStatusMalformed,
                      "unknown request kind '" + req.kind + "'");
    }
    if (draining_.load()) {
        bump("serve.draining");
        return refuse(kStatusDraining, "server is draining");
    }
    return runJobRequest(req);
}

Response
Server::runJobRequest(const Request &req)
{
    const int64_t arrivedNs = nowNs();
    const workloads::Workload *w = workloads::findWorkload(req.workload);
    if (w == nullptr) {
        bump("serve.malformed");
        return refuse(kStatusMalformed,
                      "unknown workload '" + req.workload + "'");
    }
    sim::SimConfig simCfg;
    // The correlation id rides the SimConfig into simulate() and out
    // on SimResult; it is not part of any identity key (journal,
    // breaker, checkpoint), so traced and untraced requests share
    // cache slots and journal entries.
    simCfg.traceId = req.traceId;
    if (req.maxCycles != 0)
        simCfg.maxCycles = req.maxCycles;
    if (!req.faultModel.empty()) {
        if (!sim::parseFaultModel(req.faultModel, simCfg.faults.model)) {
            bump("serve.malformed");
            return refuse(kStatusMalformed, "unknown fault model '" +
                                                req.faultModel + "'");
        }
        simCfg.faults.rate = req.faultRate;
        simCfg.faults.seed = req.faultSeed;
    }
    sim::BatchJob job;
    try {
        job = sim::makeJob(*w, req.config, simCfg);
    } catch (const FatalError &err) {
        bump("serve.malformed");
        return refuse(kStatusMalformed, err.what());
    }
    // Kind is part of the journal identity: an analyze result carries
    // a field a simulate result does not, and a compile result most of
    // them — they must never restore onto each other.
    if (req.kind != "simulate") {
        job.label += "#" + req.kind;
        job.predict = req.kind == "analyze";
    }
    const std::string id = sim::superviseJobId(job);

    // Journal hit: the crash-recovery path. A finished job's response
    // is served from the manifest without re-execution and is
    // byte-identical to the live run that produced it.
    if (journalOpen_) {
        if (const sim::BatchResult *done = journal_.find(id)) {
            bump("serve.restored");
            bump("serve.requests_total");
            sampleStat("serve.request_latency_us",
                       uint64_t((nowNs() - arrivedNs) / 1000));
            Response resp;
            resp.status = done->ok ? kStatusOk : kStatusError;
            resp.message = done->error;
            serialize::BinWriter wtr;
            sim::encodeBatchResult(*done, wtr);
            resp.payload = wtr.take();
            return resp;
        }
    }

    if (breakerOpen(id)) {
        bump("serve.breaker_open");
        return refuse(kStatusBreakerOpen,
                      "circuit breaker open for " + id);
    }

    // Admission: an atomic headcount against the fixed capacity. Full
    // means shed *now* — the caller gets SERVE_OVERLOADED in
    // microseconds, not a slot in an unbounded line.
    const int capacity = opts_.workers + opts_.queueCapacity;
    int slotIndex = -1;
    {
        std::lock_guard<std::mutex> lock(admitMu_);
        if (admitted_ >= capacity) {
            bump("serve.shed");
            return refuse(kStatusOverloaded,
                          "admission queue full (" +
                              std::to_string(capacity) + " in flight)");
        }
        ++admitted_;
    }
    bump("serve.accepted");
    {
        std::lock_guard<std::mutex> lock(slotMu_);
        slotIndex = freeSlots_.back(); // admission bounds usage
        freeSlots_.pop_back();
    }
    Slot &slot = *slots_[slotIndex];
    slot.stop.store(0);
    slot.timedOut.store(false);
    const uint64_t deadlineMs =
        req.deadlineMs != 0 ? req.deadlineMs : opts_.defaultDeadlineMs;
    slot.deadlineNs.store(
        deadlineMs != 0 ? nowNs() + int64_t(deadlineMs) * 1000000 : 0);
    slot.active.store(true, std::memory_order_release);

    // Wait for a worker. The deadline keeps ticking here — a request
    // that spends its whole budget in line times out like one that
    // spends it simulating.
    bool admittedToRun = false;
    {
        telemetry::Span admission(opts_.spans, "serve.admission",
                                  req.traceId, slotIndex);
        std::unique_lock<std::mutex> lock(admitMu_);
        while (running_ >= opts_.workers && slot.stop.load() == 0)
            workerCv_.wait_for(lock, std::chrono::milliseconds(20));
        if (slot.stop.load() == 0) {
            ++running_;
            admittedToRun = true;
        }
    }

    // Test-only lever: occupy the worker slot for a fixed, stop-aware
    // delay so deadline and overload behavior can be exercised
    // deterministically regardless of how fast real jobs run.
    if (admittedToRun && opts_.debugJobDelayMs != 0) {
        const int64_t until =
            nowNs() + int64_t(opts_.debugJobDelayMs) * 1000000;
        while (nowNs() < until && slot.stop.load() == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (slot.stop.load() != 0) {
            {
                std::lock_guard<std::mutex> lock(admitMu_);
                --running_;
            }
            workerCv_.notify_one();
            admittedToRun = false;
        }
    }

    sim::BatchResult result;
    if (admittedToRun) {
        if (journalOpen_)
            journal_.start(id, 1);
        uint64_t compiles = 0, cacheHits = 0;
        const int64_t execStart = nowNs();
        {
            telemetry::Span exec(opts_.spans, "serve.execute",
                                 req.traceId, slotIndex);
            if (req.kind == "compile")
                result = runner_.compileOnly(job, compiles, cacheHits);
            else
                result = runner_.runOne(job, &slot.stop, compiles,
                                        cacheHits);
        }
        busyNs_.fetch_add(uint64_t(nowNs() - execStart),
                          std::memory_order_relaxed);
        bump("serve.compiles", compiles);
        bump("serve.cache_hits", cacheHits);
        bump("serve.executed");
        {
            std::lock_guard<std::mutex> lock(admitMu_);
            --running_;
        }
        workerCv_.notify_one();
    } else {
        // Timed out in line: synthesize the timeout result.
        result.label = job.label;
        result.config = job.config;
        result.workload = w->name;
        result.errorKind = "interrupted";
    }

    slot.active.store(false, std::memory_order_release);
    const bool timedOut =
        slot.timedOut.load() || result.errorKind == "interrupted";
    {
        std::lock_guard<std::mutex> lock(slotMu_);
        freeSlots_.push_back(slotIndex);
    }
    {
        std::lock_guard<std::mutex> lock(admitMu_);
        --admitted_;
    }
    if (draining_.load())
        bump("serve.drained");

    if (timedOut) {
        // Transient by definition — never journalled as done, never
        // fed to the breaker; a restart or retry re-runs the job.
        bump("serve.timeout");
        return refuse(kStatusDeadline,
                      "deadline of " + std::to_string(deadlineMs) +
                          "ms exceeded");
    }

    // hostSeconds is the one wall-clock field in a result; zero it so
    // the journalled blob and every response are byte-deterministic.
    result.hostSeconds = 0;

    const bool deterministicFail =
        !result.ok &&
        (result.errorKind == "compile" || result.errorKind == "sim" ||
         result.errorKind == "golden");
    breakerRecord(id, deterministicFail);

    if (journalOpen_ &&
        (result.ok || deterministicFail ||
         result.errorKind == "exception"))
        journal_.done(id, 1, result);

    // Definitive answer (a result, not a transient refusal):
    // serve.requests_total counts exactly these, so a retrying storm
    // of N clients lands on N no matter how often it was shed.
    bump("serve.requests_total");
    sampleStat("serve.request_latency_us",
               uint64_t((nowNs() - arrivedNs) / 1000));

    Response resp;
    resp.status = result.ok ? kStatusOk : kStatusError;
    resp.message = result.error;
    serialize::BinWriter wtr;
    sim::encodeBatchResult(result, wtr);
    resp.payload = wtr.take();
    if (!result.ok)
        bump("serve.failed");
    return resp;
}

bool
Server::breakerOpen(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(breakerMu_);
    auto it = breakerFails_.find(key);
    return it != breakerFails_.end() &&
           it->second >= opts_.breakerThreshold;
}

void
Server::breakerRecord(const std::string &key, bool deterministicFail)
{
    std::lock_guard<std::mutex> lock(breakerMu_);
    if (deterministicFail)
        ++breakerFails_[key];
    else
        breakerFails_.erase(key);
}

void
Server::bump(const std::string &name, uint64_t delta)
{
    if (delta == 0)
        return;
    std::lock_guard<std::mutex> lock(statsMu_);
    stats_.inc(name, delta);
}

void
Server::sampleStat(const std::string &name, uint64_t value)
{
    std::lock_guard<std::mutex> lock(statsMu_);
    stats_.sample(name, value);
}

StatSet
Server::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return stats_;
}

uint64_t
Server::inFlight() const
{
    std::lock_guard<std::mutex> lock(admitMu_);
    return uint64_t(admitted_);
}

std::string
Server::metricsText() const
{
    StatSet stats = statsSnapshot();
    // Fold the span rollup and any installed phase profiler in, so one
    // scrape carries counters, request latencies, span summaries, and
    // phase.* attribution together.
    if (opts_.spans != nullptr)
        telemetry::rollupSpans(opts_.spans->snapshot(), stats);
    if (telemetry::PhaseProfiler *prof = telemetry::phaseProfiler())
        prof->mergeInto(stats);
    std::ostringstream os;
    telemetry::writePrometheus(os, stats, gauges_.names(),
                               gauges_.sample());
    return os.str();
}

std::string
Server::healthJson() const
{
    const StatSet stats = statsSnapshot();
    const double uptime =
        std::chrono::duration<double>(Clock::now() - started_).count();
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.key("status").value(draining_.load() ? "draining" : "serving");
    w.key("version").value(opts_.toolVersion);
    w.key("uptimeSeconds").value(uptime);
    w.key("pid").value(uint64_t(getpid()));
    w.key("uptime_seconds").value(uptime);
    w.key("queue_depth").value(inFlight());
    w.key("capacity")
        .value(uint64_t(opts_.workers + opts_.queueCapacity));
    w.key("workers").value(uint64_t(opts_.workers));
    w.key("journal")
        .value(journalOpen_ ? journal_.manifestPath() : "");
    w.key("counters").beginObject();
    for (const auto &[name, value] : stats.all())
        w.key(name).value(value);
    w.endObject();
    w.endObject();
    return os.str();
}

} // namespace dfp::serve
