/**
 * @file
 * Decoded representation of a TRIPS-style block: up to 128 dataflow
 * instructions with explicit targets, plus read and write queues that
 * connect the block to the architectural register file (paper §3).
 */

#ifndef DFP_ISA_TBLOCK_H
#define DFP_ISA_TBLOCK_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/opcodes.h"

namespace dfp::isa
{

/** Architectural limits of the block format. */
constexpr int kMaxInsts = 128;   //!< compute instructions per block
constexpr int kMaxReads = 32;    //!< register read queue entries
constexpr int kMaxWrites = 32;   //!< register write queue entries
constexpr int kNumRegs = 64;     //!< architectural registers g0..g63
constexpr int kMaxLsids = 32;    //!< load/store sequence identifiers
constexpr int kImmBits = 9;      //!< immediate width for ALU/memory ops
constexpr int kWideImmBits = 18; //!< movi / bro immediate width

/** Branch target value meaning "halt the machine". */
constexpr int32_t kHaltTarget = -1;

/** The 2-bit PR field (paper §3.2). */
enum class PredMode : uint8_t
{
    Unpred = 0,   //!< PR = 00: not predicated
    OnFalse = 2,  //!< PR = 10: fires on an arriving false predicate
    OnTrue = 3,   //!< PR = 11: fires on an arriving true predicate
};

/** Operand slot selector inside a 9-bit target (paper §3). */
enum class Slot : uint8_t
{
    Left = 0,   //!< left data operand
    Right = 1,  //!< right data operand
    Pred = 2,   //!< predicate operand
    WriteQ = 3, //!< register write queue entry (index = write slot)
};

/** A dataflow target: which consumer, and which of its operand slots. */
struct Target
{
    Slot slot = Slot::Left;
    uint8_t index = 0; //!< instruction index, or write-queue index

    bool operator==(const Target &) const = default;
};

/** A decoded block instruction. */
struct TInst
{
    Op op = Op::Nop;
    PredMode pr = PredMode::Unpred;
    int32_t imm = 0;            //!< sign-extended immediate / bro target
    uint8_t lsid = 0;           //!< load/store sequence id (Ld/St only)
    std::vector<Target> targets; //!< up to 2 (4 for Mov4)

    bool predicated() const { return pr != PredMode::Unpred; }

    /** Number of data operands this instruction waits for. */
    int numSrcs() const { return opInfo(op).numSrcs; }

    /** Maximum encodable targets for this opcode. */
    int
    maxTargets() const
    {
        if (op == Op::Mov4)
            return 4;
        if (op == Op::St || op == Op::Bro || op == Op::Write)
            return 0;
        return opInfo(op).hasImm ? 1 : 2;
    }
};

/** A register read queue entry: injects a register value into the block. */
struct ReadSlot
{
    uint8_t reg = 0;
    std::vector<Target> targets; //!< up to 2
};

/** A register write queue entry: receives one (possibly null) token. */
struct WriteSlot
{
    uint8_t reg = 0;
};

/**
 * A complete block. The header fields record the output signature the
 * hardware counts to detect completion: which write slots, which store
 * LSIDs, and exactly one branch (paper §3).
 */
struct TBlock
{
    std::string label;
    std::vector<ReadSlot> reads;
    std::vector<WriteSlot> writes;
    std::vector<TInst> insts;
    uint32_t storeMask = 0; //!< bit i set => LSID i must resolve

    /**
     * Spatial placement computed by the scheduler: execution tile id per
     * instruction. Empty means default placement (index mod tile count).
     */
    std::vector<uint8_t> placement;

    /** Static footprint in bytes (header + encoded words), for I-cache. */
    int
    sizeBytes() const
    {
        int words = 4; // header
        words += static_cast<int>(reads.size() + writes.size());
        for (const TInst &inst : insts)
            words += (inst.op == Op::Mov4) ? 2 : 1;
        if (!placement.empty())
            words += (static_cast<int>(placement.size()) + 3) / 4;
        return words * 4;
    }
};

/** A linked program: blocks indexed by bro immediates; block 0 is entry. */
struct TProgram
{
    std::vector<TBlock> blocks;
    std::unordered_map<std::string, int> labelIndex;

    int
    indexOf(const std::string &label) const
    {
        auto it = labelIndex.find(label);
        return it == labelIndex.end() ? -1 : it->second;
    }
};

/** An operand token flowing along a dataflow arc. */
struct Token
{
    uint64_t value = 0;
    bool null = false;  //!< null token (paper §4.2)
    bool excep = false; //!< exception/poison bit (paper §4.4)

    bool operator==(const Token &) const = default;
};

/**
 * Does @p token match a predicate mode? Per §4.4 a predicate arriving
 * with the exception bit set is interpreted as a *false* predicate.
 * Null tokens never match.
 */
inline bool
predMatches(PredMode pr, const Token &token)
{
    if (pr == PredMode::Unpred || token.null)
        return false;
    bool truth = token.excep ? false : (token.value & 1) != 0;
    return truth == (pr == PredMode::OnTrue);
}

} // namespace dfp::isa

#endif // DFP_ISA_TBLOCK_H
