#include "isa/alu.h"

#include <cstring>

#include "base/logging.h"

namespace dfp::isa
{

uint64_t
packDouble(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

double
unpackDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

Token
evalOp(Op op, const Token &a, const Token &b)
{
    Token r;
    int srcs = opInfo(op).numSrcs + (opInfo(op).hasImm ? 1 : 0);
    // Movi consumes only its immediate; Ld consumes address + immediate.
    bool useA = srcs >= 1 && op != Op::Movi;
    bool useB = srcs >= 2 || op == Op::Movi;

    r.null = (useA && a.null) || (useB && b.null);
    r.excep = (useA && a.excep) || (useB && b.excep);
    if (r.null) {
        r.excep = false;
        return r;
    }

    auto sa = static_cast<int64_t>(a.value);
    auto sb = static_cast<int64_t>(b.value);
    double fa = unpackDouble(a.value);
    double fb = unpackDouble(b.value);

    switch (op) {
      case Op::Mov: case Op::Mov4: case Op::GateT: case Op::GateF:
      case Op::Switch:
        // Gates/switch pass their *data* operand through; the routing
        // decision itself happens at firing time in the executor.
        r.value = a.value;
        break;
      case Op::Movi:
        r.value = b.value;
        break;
      case Op::Null:
        r.null = true;
        r.excep = false;
        break;
      // Add/sub/mul wrap in two's complement; compute in uint64_t so
      // overflow is defined (same bit pattern as signed wraparound).
      case Op::Add: case Op::Addi:
        r.value = a.value + b.value;
        break;
      case Op::Sub: case Op::Subi:
        r.value = a.value - b.value;
        break;
      case Op::Mul: case Op::Muli:
        r.value = a.value * b.value;
        break;
      case Op::Div: case Op::Divi:
        if (sb == 0 || (sa == INT64_MIN && sb == -1)) {
            r.excep = true; // divide fault becomes a poison bit (§4.4)
            r.value = 0;
        } else {
            r.value = static_cast<uint64_t>(sa / sb);
        }
        break;
      case Op::And: case Op::Andi: r.value = a.value & b.value; break;
      case Op::Or:  case Op::Ori:  r.value = a.value | b.value; break;
      case Op::Xor: case Op::Xori: r.value = a.value ^ b.value; break;
      case Op::Shl: case Op::Shli: r.value = a.value << (b.value & 63); break;
      case Op::Shr: case Op::Shri: r.value = a.value >> (b.value & 63); break;
      case Op::Sra: case Op::Srai:
        r.value = static_cast<uint64_t>(sa >> (b.value & 63));
        break;
      case Op::Teq: case Op::Teqi: r.value = sa == sb; break;
      case Op::Tne: case Op::Tnei: r.value = sa != sb; break;
      case Op::Tlt: case Op::Tlti: r.value = sa < sb;  break;
      case Op::Tle: case Op::Tlei: r.value = sa <= sb; break;
      case Op::Tgt: case Op::Tgti: r.value = sa > sb;  break;
      case Op::Tge: case Op::Tgei: r.value = sa >= sb; break;
      case Op::Fadd: r.value = packDouble(fa + fb); break;
      case Op::Fsub: r.value = packDouble(fa - fb); break;
      case Op::Fmul: r.value = packDouble(fa * fb); break;
      case Op::Fdiv:
        if (fb == 0.0) {
            r.excep = true;
            r.value = 0;
        } else {
            r.value = packDouble(fa / fb);
        }
        break;
      case Op::Feq: r.value = fa == fb; break;
      case Op::Flt: r.value = fa < fb;  break;
      case Op::Fle: r.value = fa <= fb; break;
      case Op::Fgt: r.value = fa > fb;  break;
      case Op::Fge: r.value = fa >= fb; break;
      case Op::Itof: r.value = packDouble(static_cast<double>(sa)); break;
      case Op::Ftoi: r.value = static_cast<uint64_t>(
                          static_cast<int64_t>(fa)); break;
      default:
        dfp_panic("evalOp on non-ALU opcode ", opName(op));
    }
    return r;
}

} // namespace dfp::isa
