/**
 * @file
 * Binary encoding of dfp blocks into 32-bit words, mirroring the field
 * layout in the paper's Figure 2: 7-bit opcode, 2-bit PR field, 5-bit
 * extended field (LSID for memory ops), and two 9-bit target/immediate
 * fields, where each target is a 2-bit operand slot plus a 7-bit index.
 *
 * Deviations from the (proprietary) TRIPS TASL format, all documented in
 * DESIGN.md:
 *  - movi carries a 14-bit immediate and one target (larger constants
 *    are synthesized by the compiler);
 *  - bro consumes both 9-bit fields as an 18-bit block index
 *    (-1 encodes halt);
 *  - mov4 (the paper's "predicate multicast" future-work op) encodes as
 *    two consecutive words, the second marked with xop = 31.
 */

#ifndef DFP_ISA_ENCODE_H
#define DFP_ISA_ENCODE_H

#include <cstdint>
#include <vector>

#include "isa/tblock.h"

namespace dfp::isa
{

/** The 9-bit target pattern meaning "no target" (slot 3, index 127). */
constexpr uint32_t kNoTarget = 0x1ff;

/** Encode one target into its 9-bit pattern. */
uint32_t encodeTarget(const Target &target);

/** Decode a 9-bit target pattern; returns false for kNoTarget. */
bool decodeTarget(uint32_t bits9, Target &out);

/** Encode one instruction (1 word, or 2 for mov4). */
std::vector<uint32_t> encodeInst(const TInst &inst);

/**
 * Encode a whole block: 4 header words, then read words, write words,
 * and instruction words.
 */
std::vector<uint32_t> encodeBlock(const TBlock &block);

/** Decode a block previously produced by encodeBlock(). */
TBlock decodeBlock(const std::vector<uint32_t> &words);

} // namespace dfp::isa

#endif // DFP_ISA_ENCODE_H
