/**
 * @file
 * Opcode definitions for the dfp EDGE ISA — a faithful subset of the
 * TRIPS prototype ISA as described in "Dataflow Predication" (MICRO-39).
 *
 * Every value-producing instruction carries up to two 9-bit targets
 * (7-bit instruction index + 2-bit operand slot), and every instruction
 * carries a 2-bit PR field selecting unpredicated / predicated-on-false /
 * predicated-on-true execution (paper §3.2).
 */

#ifndef DFP_ISA_OPCODES_H
#define DFP_ISA_OPCODES_H

#include <cstdint>
#include <string>

namespace dfp::isa
{

/**
 * Opcode list.
 *
 * Fields: enum name, mnemonic, number of data sources (0-2), has an
 * immediate field, result latency in cycles.
 *
 * The G_* entries are the legacy partial-predication operators of
 * historical dataflow machines (T-gate / F-gate / switch, paper §2.1),
 * implemented so the Figure 1 comparison can be measured rather than
 * asserted.
 */
#define DFP_OPCODE_LIST                                                      \
    /*       name     mnem      srcs imm  lat */                             \
    DFP_OP(  Nop,     "nop",    0,   0,   1)                                 \
    DFP_OP(  Mov,     "mov",    1,   0,   1)                                 \
    DFP_OP(  Mov4,    "mov4",   1,   0,   1)                                 \
    DFP_OP(  Movi,    "movi",   0,   1,   1)                                 \
    DFP_OP(  Null,    "null",   0,   0,   1)                                 \
    DFP_OP(  Add,     "add",    2,   0,   1)                                 \
    DFP_OP(  Sub,     "sub",    2,   0,   1)                                 \
    DFP_OP(  Mul,     "mul",    2,   0,   3)                                 \
    DFP_OP(  Div,     "div",    2,   0,   24)                                \
    DFP_OP(  And,     "and",    2,   0,   1)                                 \
    DFP_OP(  Or,      "or",     2,   0,   1)                                 \
    DFP_OP(  Xor,     "xor",    2,   0,   1)                                 \
    DFP_OP(  Shl,     "shl",    2,   0,   1)                                 \
    DFP_OP(  Shr,     "shr",    2,   0,   1)                                 \
    DFP_OP(  Sra,     "sra",    2,   0,   1)                                 \
    DFP_OP(  Addi,    "addi",   1,   1,   1)                                 \
    DFP_OP(  Subi,    "subi",   1,   1,   1)                                 \
    DFP_OP(  Muli,    "muli",   1,   1,   3)                                 \
    DFP_OP(  Divi,    "divi",   1,   1,   24)                                \
    DFP_OP(  Andi,    "andi",   1,   1,   1)                                 \
    DFP_OP(  Ori,     "ori",    1,   1,   1)                                 \
    DFP_OP(  Xori,    "xori",   1,   1,   1)                                 \
    DFP_OP(  Shli,    "shli",   1,   1,   1)                                 \
    DFP_OP(  Shri,    "shri",   1,   1,   1)                                 \
    DFP_OP(  Srai,    "srai",   1,   1,   1)                                 \
    DFP_OP(  Teq,     "teq",    2,   0,   1)                                 \
    DFP_OP(  Tne,     "tne",    2,   0,   1)                                 \
    DFP_OP(  Tlt,     "tlt",    2,   0,   1)                                 \
    DFP_OP(  Tle,     "tle",    2,   0,   1)                                 \
    DFP_OP(  Tgt,     "tgt",    2,   0,   1)                                 \
    DFP_OP(  Tge,     "tge",    2,   0,   1)                                 \
    DFP_OP(  Teqi,    "teqi",   1,   1,   1)                                 \
    DFP_OP(  Tnei,    "tnei",   1,   1,   1)                                 \
    DFP_OP(  Tlti,    "tlti",   1,   1,   1)                                 \
    DFP_OP(  Tlei,    "tlei",   1,   1,   1)                                 \
    DFP_OP(  Tgti,    "tgti",   1,   1,   1)                                 \
    DFP_OP(  Tgei,    "tgei",   1,   1,   1)                                 \
    DFP_OP(  Fadd,    "fadd",   2,   0,   4)                                 \
    DFP_OP(  Fsub,    "fsub",   2,   0,   4)                                 \
    DFP_OP(  Fmul,    "fmul",   2,   0,   4)                                 \
    DFP_OP(  Fdiv,    "fdiv",   2,   0,   16)                                \
    DFP_OP(  Feq,     "feq",    2,   0,   1)                                 \
    DFP_OP(  Flt,     "flt",    2,   0,   1)                                 \
    DFP_OP(  Fle,     "fle",    2,   0,   1)                                 \
    DFP_OP(  Fgt,     "fgt",    2,   0,   1)                                 \
    DFP_OP(  Fge,     "fge",    2,   0,   1)                                 \
    DFP_OP(  Itof,    "itof",   1,   0,   4)                                 \
    DFP_OP(  Ftoi,    "ftoi",   1,   0,   4)                                 \
    DFP_OP(  Ld,      "ld",     1,   1,   1)                                 \
    DFP_OP(  St,      "st",     2,   1,   1)                                 \
    DFP_OP(  Bro,     "bro",    0,   1,   1)                                 \
    DFP_OP(  Read,    "read",   0,   0,   1)                                 \
    DFP_OP(  Write,   "write",  1,   0,   1)                                 \
    DFP_OP(  GateT,   "gate_t", 2,   0,   1)                                 \
    DFP_OP(  GateF,   "gate_f", 2,   0,   1)                                 \
    DFP_OP(  Switch,  "switch", 2,   0,   1)                                 \
    /* Compiler-internal pseudo-ops; never valid inside a TBlock. */         \
    DFP_OP(  Phi,     "phi",    0,   0,   1)                                 \
    DFP_OP(  Br,      "br",     1,   0,   1)                                 \
    DFP_OP(  Jmp,     "jmp",    0,   0,   1)                                 \
    DFP_OP(  Ret,     "ret",    0,   0,   1)

/** Opcode enumeration; values double as 7-bit primary opcodes. */
enum class Op : uint8_t
{
#define DFP_OP(name, mnem, srcs, imm, lat) name,
    DFP_OPCODE_LIST
#undef DFP_OP
    NumOps
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *mnemonic;
    uint8_t numSrcs;   //!< data operands (left/right), excluding predicate
    bool hasImm;       //!< carries an immediate (consumes the t2 field)
    uint8_t latency;   //!< execution latency in cycles
};

/** Look up static properties. */
const OpInfo &opInfo(Op op);

/** Mnemonic string for an opcode. */
inline const char *opName(Op op) { return opInfo(op).mnemonic; }

/** Parse a mnemonic; returns Op::NumOps when unknown. */
Op opFromName(const std::string &name);

/** True for the test (comparison) opcodes, which produce 0/1. */
bool isTestOp(Op op);

/** True for compiler-internal pseudo-ops (Phi/Br/Jmp/Ret). */
inline bool
isPseudoOp(Op op)
{
    return op == Op::Phi || op == Op::Br || op == Op::Jmp || op == Op::Ret;
}

/** True for ops whose result is interpreted as IEEE double bits. */
bool isFloatOp(Op op);

/** True for commutative binary ops (used by CSE canonicalization). */
bool isCommutative(Op op);

/** Swap an ordering test for operand-swapped form (Tlt <-> Tgt, ...). */
Op swappedTest(Op op);

/** Invert the condition of a test op (Teq <-> Tne, Tlt <-> Tge, ...). */
Op invertedTest(Op op);

/** Map a reg-reg op to its immediate form (Add -> Addi); NumOps if none. */
Op immediateForm(Op op);

} // namespace dfp::isa

#endif // DFP_ISA_OPCODES_H
