/**
 * @file
 * A sparse 64-bit-word memory shared by the golden models and the cycle
 * simulator's backing store. Addresses are byte addresses; accesses are
 * 8-byte aligned words (the dfp ISA is word-oriented, like the TRIPS
 * experiments in the paper, which never depend on sub-word accesses).
 */

#ifndef DFP_ISA_MEMORY_H
#define DFP_ISA_MEMORY_H

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/logging.h"
#include "base/serialize.h"

namespace dfp::isa
{

/** Sparse paged word memory. Unwritten locations read as zero. */
class Memory
{
  public:
    static constexpr uint64_t kPageWords = 512;
    static constexpr uint64_t kPageBytes = kPageWords * 8;

    /** Read the aligned word containing @p addr. */
    uint64_t
    load(uint64_t addr) const
    {
        dfp_assert((addr & 7) == 0, "unaligned load 0x", std::hex, addr);
        auto it = pages_.find(addr / kPageBytes);
        if (it == pages_.end())
            return 0;
        return it->second[(addr % kPageBytes) / 8];
    }

    /** Write the aligned word at @p addr. */
    void
    store(uint64_t addr, uint64_t value)
    {
        dfp_assert((addr & 7) == 0, "unaligned store 0x", std::hex, addr);
        page(addr / kPageBytes)[(addr % kPageBytes) / 8] = value;
    }

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages_.size(); }

    /** FNV-style checksum over resident words (order-independent). */
    uint64_t
    checksum() const
    {
        uint64_t sum = 0xcbf29ce484222325ull;
        for (const auto &[pageNum, words] : pages_) {
            for (uint64_t i = 0; i < kPageWords; ++i) {
                if (words[i]) {
                    uint64_t addr = pageNum * kPageBytes + i * 8;
                    sum += (addr * 0x100000001b3ull) ^ words[i];
                }
            }
        }
        return sum;
    }

    bool
    operator==(const Memory &other) const
    {
        return checksum() == other.checksum();
    }

    /** Serialize resident pages, sorted by page number so the encoding
     *  is independent of unordered_map iteration order. */
    void
    save(serialize::BinWriter &w) const
    {
        std::vector<uint64_t> keys;
        keys.reserve(pages_.size());
        for (const auto &[pageNum, words] : pages_)
            keys.push_back(pageNum);
        std::sort(keys.begin(), keys.end());
        w.u64(keys.size());
        for (uint64_t k : keys) {
            w.u64(k);
            const auto &words = pages_.at(k);
            for (uint64_t i = 0; i < kPageWords; ++i)
                w.u64(words[i]);
        }
    }

    /** Replace contents from a serialized image. Bounds-checked: a
     *  truncated payload leaves the reader `!ok()`, never reads past
     *  the buffer. */
    void
    load(serialize::BinReader &r)
    {
        pages_.clear();
        size_t n = r.len(8 * (kPageWords + 1));
        for (size_t i = 0; i < n && r.ok(); ++i) {
            uint64_t k = r.u64();
            auto &words = pages_[k];
            words.resize(kPageWords);
            for (uint64_t j = 0; j < kPageWords; ++j)
                words[j] = r.u64();
        }
    }

  private:
    std::vector<uint64_t> &
    page(uint64_t pageNum)
    {
        auto &p = pages_[pageNum];
        if (p.empty())
            p.assign(kPageWords, 0);
        return p;
    }

    std::unordered_map<uint64_t, std::vector<uint64_t>> pages_;
};

} // namespace dfp::isa

#endif // DFP_ISA_MEMORY_H
