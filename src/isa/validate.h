/**
 * @file
 * Static well-formedness checks for TRIPS-style blocks, enforcing the
 * predication rules of paper §3.1 plus basic structural sanity:
 *
 *  1. only predicable instructions carry a PR field other than 00
 *     (reads/writes are queue entries and cannot be predicated);
 *  2. every predicated instruction has at least one producer targeting
 *     its predicate operand, and predicate tokens are rejected when the
 *     consumer's PR field is 00 (unpredicated);
 *  3. multiple producers may target one predicate operand (at most one
 *     matching at runtime is checked dynamically by the executor);
 *  4. predicates reach >2 consumers only through fanout instructions
 *     (implied by per-instruction target limits, which we check);
 *  5. exception behaviour is preserved by construction (poison bits).
 *
 * Additional structural rules: targets in range, operand slots valid for
 * the consumer's opcode, dataflow acyclicity, one-or-more branches,
 * store LSIDs covered by the header mask, every write slot reachable.
 *
 * Every violation is reported as a verify::Diag with a stable DFPV1##
 * code (see docs/VERIFY.md); ValidationResult keeps the historical
 * ok()/joined() surface as a compatibility shim. The deeper predicate-
 * path analysis (exactly-one-token-per-path and friends) lives in
 * src/verify/block_verify.h, layered on top of these checks.
 */

#ifndef DFP_ISA_VALIDATE_H
#define DFP_ISA_VALIDATE_H

#include <string>

#include "isa/tblock.h"
#include "verify/diag.h"

namespace dfp::isa
{

/** Result of validating a block: no error diags means well-formed. */
struct ValidationResult
{
    verify::DiagList diags;

    bool ok() const { return !diags.hasErrors(); }

    /** Legacy flat rendering: all messages joined by "; ". */
    std::string joined() const { return diags.joined(); }
};

/** Validate a single block. */
ValidationResult validateBlock(const TBlock &block);

/** Validate every block of a program plus inter-block branch targets. */
ValidationResult validateProgram(const TProgram &program);

/**
 * Diagnostic-native variants: append to @p out instead of returning a
 * fresh result.
 */
void validateBlock(const TBlock &block, verify::DiagList &out);
void validateProgram(const TProgram &program, verify::DiagList &out);

} // namespace dfp::isa

#endif // DFP_ISA_VALIDATE_H
