/**
 * @file
 * Static well-formedness checks for TRIPS-style blocks, enforcing the
 * predication rules of paper §3.1 plus basic structural sanity:
 *
 *  1. only predicable instructions carry a PR field other than 00
 *     (reads/writes are queue entries and cannot be predicated);
 *  2. every predicated instruction has at least one producer targeting
 *     its predicate operand;
 *  3. multiple producers may target one predicate operand (at most one
 *     matching at runtime is checked dynamically by the executor);
 *  4. predicates reach >2 consumers only through fanout instructions
 *     (implied by per-instruction target limits, which we check);
 *  5. exception behaviour is preserved by construction (poison bits).
 *
 * Additional structural rules: targets in range, operand slots valid for
 * the consumer's opcode, dataflow acyclicity, one-or-more branches,
 * store LSIDs covered by the header mask, every write slot reachable.
 */

#ifndef DFP_ISA_VALIDATE_H
#define DFP_ISA_VALIDATE_H

#include <string>
#include <vector>

#include "isa/tblock.h"

namespace dfp::isa
{

/** Result of validating a block: empty errors means well-formed. */
struct ValidationResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
    std::string joined() const;
};

/** Validate a single block. */
ValidationResult validateBlock(const TBlock &block);

/** Validate every block of a program plus inter-block branch targets. */
ValidationResult validateProgram(const TProgram &program);

} // namespace dfp::isa

#endif // DFP_ISA_VALIDATE_H
