#include "isa/encode.h"

#include "base/bitops.h"
#include "base/logging.h"

namespace dfp::isa
{

namespace
{

constexpr uint32_t kBlockMagic = 0xdf; // low byte of header word 0
constexpr uint32_t kMov4ContinuationXop = 31;

uint32_t
packCommon(const TInst &inst)
{
    uint32_t w = 0;
    w = insertBits(w, 25, 7, static_cast<uint32_t>(inst.op));
    w = insertBits(w, 23, 2, static_cast<uint32_t>(inst.pr));
    return w;
}

uint32_t
targetOrNone(const TInst &inst, size_t i)
{
    return i < inst.targets.size() ? encodeTarget(inst.targets[i])
                                   : kNoTarget;
}

} // namespace

uint32_t
encodeTarget(const Target &target)
{
    dfp_assert(target.index < kMaxInsts, "target index out of range");
    if (target.slot == Slot::WriteQ)
        dfp_assert(target.index < kMaxWrites, "write target out of range");
    return (static_cast<uint32_t>(target.slot) << 7) | target.index;
}

bool
decodeTarget(uint32_t bits9, Target &out)
{
    if (bits9 == kNoTarget)
        return false;
    out.slot = static_cast<Slot>(bits(bits9, 7, 2));
    out.index = static_cast<uint8_t>(bits(bits9, 0, 7));
    return true;
}

std::vector<uint32_t>
encodeInst(const TInst &inst)
{
    dfp_assert(static_cast<int>(inst.targets.size()) <= inst.maxTargets(),
               opName(inst.op), " has too many targets");
    uint32_t w = packCommon(inst);
    switch (inst.op) {
      case Op::Bro:
        dfp_assert(fitsSigned(inst.imm, kWideImmBits), "bro target range");
        w = insertBits(w, 0, 18, static_cast<uint32_t>(inst.imm) & 0x3ffff);
        return {w};
      case Op::Movi:
        dfp_assert(fitsSigned(inst.imm, 14), "movi immediate range");
        w = insertBits(w, 9, 14, static_cast<uint32_t>(inst.imm) & 0x3fff);
        w = insertBits(w, 0, 9, targetOrNone(inst, 0));
        return {w};
      case Op::Ld:
        dfp_assert(fitsSigned(inst.imm, kImmBits), "ld offset range");
        w = insertBits(w, 18, 5, inst.lsid);
        w = insertBits(w, 9, 9, static_cast<uint32_t>(inst.imm) & 0x1ff);
        w = insertBits(w, 0, 9, targetOrNone(inst, 0));
        return {w};
      case Op::St:
        dfp_assert(fitsSigned(inst.imm, kImmBits), "st offset range");
        w = insertBits(w, 18, 5, inst.lsid);
        w = insertBits(w, 9, 9, static_cast<uint32_t>(inst.imm) & 0x1ff);
        w = insertBits(w, 0, 9, kNoTarget);
        return {w};
      case Op::Mov4: {
        w = insertBits(w, 9, 9, targetOrNone(inst, 1));
        w = insertBits(w, 0, 9, targetOrNone(inst, 0));
        uint32_t w2 = packCommon(inst);
        w2 = insertBits(w2, 18, 5, kMov4ContinuationXop);
        w2 = insertBits(w2, 9, 9, targetOrNone(inst, 3));
        w2 = insertBits(w2, 0, 9, targetOrNone(inst, 2));
        return {w, w2};
      }
      default:
        if (opInfo(inst.op).hasImm) {
            dfp_assert(fitsSigned(inst.imm, kImmBits),
                       opName(inst.op), " immediate out of range: ",
                       inst.imm);
            w = insertBits(w, 9, 9, static_cast<uint32_t>(inst.imm) & 0x1ff);
            w = insertBits(w, 0, 9, targetOrNone(inst, 0));
        } else {
            w = insertBits(w, 9, 9, targetOrNone(inst, 1));
            w = insertBits(w, 0, 9, targetOrNone(inst, 0));
        }
        return {w};
    }
}

std::vector<uint32_t>
encodeBlock(const TBlock &block)
{
    dfp_assert(block.insts.size() <= kMaxInsts, "block too large");
    dfp_assert(block.reads.size() <= kMaxReads, "too many reads");
    dfp_assert(block.writes.size() <= kMaxWrites, "too many writes");

    std::vector<uint32_t> words;
    uint32_t header = kBlockMagic;
    header = insertBits(header, 8, 6, block.reads.size());
    header = insertBits(header, 14, 6, block.writes.size());
    header = insertBits(header, 20, 8, block.insts.size());
    if (!block.placement.empty()) {
        dfp_assert(block.placement.size() == block.insts.size(),
                   "placement size mismatch");
        header = insertBits(header, 28, 1, 1);
    }
    words.push_back(header);
    words.push_back(block.storeMask);
    words.push_back(0);
    words.push_back(0);

    for (const ReadSlot &read : block.reads) {
        dfp_assert(read.targets.size() <= 2, "read has too many targets");
        uint32_t w = 0;
        w = insertBits(w, 25, 7, static_cast<uint32_t>(Op::Read));
        w = insertBits(w, 19, 6, read.reg);
        w = insertBits(w, 9, 9, read.targets.size() > 1
                                    ? encodeTarget(read.targets[1])
                                    : kNoTarget);
        w = insertBits(w, 0, 9, read.targets.size() > 0
                                    ? encodeTarget(read.targets[0])
                                    : kNoTarget);
        words.push_back(w);
    }
    for (const WriteSlot &write : block.writes) {
        uint32_t w = 0;
        w = insertBits(w, 25, 7, static_cast<uint32_t>(Op::Write));
        w = insertBits(w, 19, 6, write.reg);
        words.push_back(w);
    }
    for (const TInst &inst : block.insts) {
        auto iw = encodeInst(inst);
        words.insert(words.end(), iw.begin(), iw.end());
    }
    // Placement map: 8 bits per instruction, 4 per word.
    for (size_t i = 0; i < block.placement.size(); i += 4) {
        uint32_t w = 0;
        for (size_t k = 0; k < 4 && i + k < block.placement.size(); ++k)
            w = insertBits(w, 8 * k, 8, block.placement[i + k]);
        words.push_back(w);
    }
    return words;
}

TBlock
decodeBlock(const std::vector<uint32_t> &words)
{
    dfp_assert(words.size() >= 4, "truncated block");
    uint32_t header = words[0];
    dfp_assert(bits(header, 0, 8) == kBlockMagic, "bad block magic");
    unsigned numReads = bits(header, 8, 6);
    unsigned numWrites = bits(header, 14, 6);
    unsigned numInsts = bits(header, 20, 8);
    bool hasPlacement = bits(header, 28, 1) != 0;

    TBlock block;
    block.storeMask = words[1];
    size_t pos = 4;

    auto pull = [&]() -> uint32_t {
        dfp_assert(pos < words.size(), "truncated block body");
        return words[pos++];
    };

    for (unsigned i = 0; i < numReads; ++i) {
        uint32_t w = pull();
        dfp_assert(static_cast<Op>(bits(w, 25, 7)) == Op::Read,
                   "expected read word");
        ReadSlot read;
        read.reg = static_cast<uint8_t>(bits(w, 19, 6));
        Target t;
        if (decodeTarget(bits(w, 0, 9), t))
            read.targets.push_back(t);
        if (decodeTarget(bits(w, 9, 9), t))
            read.targets.push_back(t);
        block.reads.push_back(std::move(read));
    }
    for (unsigned i = 0; i < numWrites; ++i) {
        uint32_t w = pull();
        dfp_assert(static_cast<Op>(bits(w, 25, 7)) == Op::Write,
                   "expected write word");
        block.writes.push_back({static_cast<uint8_t>(bits(w, 19, 6))});
    }
    for (unsigned i = 0; i < numInsts; ++i) {
        uint32_t w = pull();
        TInst inst;
        inst.op = static_cast<Op>(bits(w, 25, 7));
        dfp_assert(inst.op < Op::NumOps, "bad opcode in block body");
        inst.pr = static_cast<PredMode>(bits(w, 23, 2));
        Target t;
        switch (inst.op) {
          case Op::Bro:
            inst.imm = static_cast<int32_t>(sext(bits(w, 0, 18), 18));
            break;
          case Op::Movi:
            inst.imm = static_cast<int32_t>(sext(bits(w, 9, 14), 14));
            if (decodeTarget(bits(w, 0, 9), t))
                inst.targets.push_back(t);
            break;
          case Op::Ld:
            inst.lsid = static_cast<uint8_t>(bits(w, 18, 5));
            inst.imm = static_cast<int32_t>(sext(bits(w, 9, 9), 9));
            if (decodeTarget(bits(w, 0, 9), t))
                inst.targets.push_back(t);
            break;
          case Op::St:
            inst.lsid = static_cast<uint8_t>(bits(w, 18, 5));
            inst.imm = static_cast<int32_t>(sext(bits(w, 9, 9), 9));
            break;
          case Op::Mov4: {
            if (decodeTarget(bits(w, 0, 9), t))
                inst.targets.push_back(t);
            if (decodeTarget(bits(w, 9, 9), t))
                inst.targets.push_back(t);
            uint32_t w2 = pull();
            dfp_assert(static_cast<Op>(bits(w2, 25, 7)) == Op::Mov4 &&
                           bits(w2, 18, 5) == kMov4ContinuationXop,
                       "bad mov4 continuation word");
            if (decodeTarget(bits(w2, 0, 9), t))
                inst.targets.push_back(t);
            if (decodeTarget(bits(w2, 9, 9), t))
                inst.targets.push_back(t);
            break;
          }
          default:
            if (opInfo(inst.op).hasImm) {
                inst.imm = static_cast<int32_t>(sext(bits(w, 9, 9), 9));
                if (decodeTarget(bits(w, 0, 9), t))
                    inst.targets.push_back(t);
            } else {
                if (decodeTarget(bits(w, 0, 9), t))
                    inst.targets.push_back(t);
                if (decodeTarget(bits(w, 9, 9), t))
                    inst.targets.push_back(t);
            }
            break;
        }
        block.insts.push_back(std::move(inst));
    }
    if (hasPlacement) {
        for (unsigned i = 0; i < numInsts; i += 4) {
            uint32_t w = pull();
            for (unsigned k = 0; k < 4 && i + k < numInsts; ++k)
                block.placement.push_back(
                    static_cast<uint8_t>(bits(w, 8 * k, 8)));
        }
    }
    return block;
}

} // namespace dfp::isa
