/**
 * @file
 * The single source of truth for instruction semantics. The golden IR
 * interpreter, the functional block executor, and the cycle simulator's
 * ALUs all call evalOp(), so they cannot disagree about arithmetic.
 */

#ifndef DFP_ISA_ALU_H
#define DFP_ISA_ALU_H

#include "isa/tblock.h"

namespace dfp::isa
{

/**
 * Evaluate a (non-memory, non-control) operation over token inputs.
 *
 * Null and exception bits propagate: if any consumed input is null the
 * result is null; if any consumed input carries the exception bit (or
 * the op itself raises, e.g. integer divide by zero), the result is
 * exception-tagged. Gate/switch routing decisions are NOT handled here;
 * callers special-case GateT/GateF/Switch firing.
 *
 * @param op   opcode
 * @param a    left operand (ignored when numSrcs == 0)
 * @param b    right operand, or the immediate as a token for *i forms
 * @return result token
 */
Token evalOp(Op op, const Token &a, const Token &b);

/** Pack a double into a token value (bit pattern). */
uint64_t packDouble(double d);

/** Unpack a token value as a double. */
double unpackDouble(uint64_t bits);

} // namespace dfp::isa

#endif // DFP_ISA_ALU_H
