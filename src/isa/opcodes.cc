#include "isa/opcodes.h"

#include <unordered_map>

#include "base/logging.h"

namespace dfp::isa
{

namespace
{

const OpInfo opTable[] = {
#define DFP_OP(name, mnem, srcs, imm, lat) {mnem, srcs, imm != 0, lat},
    DFP_OPCODE_LIST
#undef DFP_OP
};

} // namespace

const OpInfo &
opInfo(Op op)
{
    dfp_assert(op < Op::NumOps, "bad opcode ", int(op));
    return opTable[static_cast<unsigned>(op)];
}

Op
opFromName(const std::string &name)
{
    static const std::unordered_map<std::string, Op> map = [] {
        std::unordered_map<std::string, Op> m;
        for (unsigned i = 0; i < static_cast<unsigned>(Op::NumOps); ++i)
            m.emplace(opTable[i].mnemonic, static_cast<Op>(i));
        return m;
    }();
    auto it = map.find(name);
    return it == map.end() ? Op::NumOps : it->second;
}

bool
isTestOp(Op op)
{
    switch (op) {
      case Op::Teq: case Op::Tne: case Op::Tlt: case Op::Tle:
      case Op::Tgt: case Op::Tge:
      case Op::Teqi: case Op::Tnei: case Op::Tlti: case Op::Tlei:
      case Op::Tgti: case Op::Tgei:
      case Op::Feq: case Op::Flt: case Op::Fle: case Op::Fgt: case Op::Fge:
        return true;
      default:
        return false;
    }
}

bool
isFloatOp(Op op)
{
    switch (op) {
      case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
      case Op::Feq: case Op::Flt: case Op::Fle: case Op::Fgt: case Op::Fge:
      case Op::Itof:
        return true;
      default:
        return false;
    }
}

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::Add: case Op::Mul: case Op::And: case Op::Or: case Op::Xor:
      case Op::Teq: case Op::Tne: case Op::Fadd: case Op::Fmul:
      case Op::Feq:
        return true;
      default:
        return false;
    }
}

Op
swappedTest(Op op)
{
    switch (op) {
      case Op::Teq: return Op::Teq;
      case Op::Tne: return Op::Tne;
      case Op::Tlt: return Op::Tgt;
      case Op::Tle: return Op::Tge;
      case Op::Tgt: return Op::Tlt;
      case Op::Tge: return Op::Tle;
      case Op::Feq: return Op::Feq;
      case Op::Flt: return Op::Fgt;
      case Op::Fle: return Op::Fge;
      case Op::Fgt: return Op::Flt;
      case Op::Fge: return Op::Fle;
      default:
        dfp_panic("swappedTest on non-test op ", opName(op));
    }
}

Op
invertedTest(Op op)
{
    switch (op) {
      case Op::Teq:  return Op::Tne;
      case Op::Tne:  return Op::Teq;
      case Op::Tlt:  return Op::Tge;
      case Op::Tle:  return Op::Tgt;
      case Op::Tgt:  return Op::Tle;
      case Op::Tge:  return Op::Tlt;
      case Op::Teqi: return Op::Tnei;
      case Op::Tnei: return Op::Teqi;
      case Op::Tlti: return Op::Tgei;
      case Op::Tlei: return Op::Tgti;
      case Op::Tgti: return Op::Tlei;
      case Op::Tgei: return Op::Tlti;
      case Op::Feq:  return Op::NumOps; // no fne; caller must handle
      case Op::Flt:  return Op::Fge;
      case Op::Fle:  return Op::Fgt;
      case Op::Fgt:  return Op::Fle;
      case Op::Fge:  return Op::Flt;
      default:
        dfp_panic("invertedTest on non-test op ", opName(op));
    }
}

Op
immediateForm(Op op)
{
    switch (op) {
      case Op::Add: return Op::Addi;
      case Op::Sub: return Op::Subi;
      case Op::Mul: return Op::Muli;
      case Op::Div: return Op::Divi;
      case Op::And: return Op::Andi;
      case Op::Or:  return Op::Ori;
      case Op::Xor: return Op::Xori;
      case Op::Shl: return Op::Shli;
      case Op::Shr: return Op::Shri;
      case Op::Sra: return Op::Srai;
      case Op::Teq: return Op::Teqi;
      case Op::Tne: return Op::Tnei;
      case Op::Tlt: return Op::Tlti;
      case Op::Tle: return Op::Tlei;
      case Op::Tgt: return Op::Tgti;
      case Op::Tge: return Op::Tgei;
      default:      return Op::NumOps;
    }
}

} // namespace dfp::isa
