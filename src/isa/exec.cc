#include "isa/exec.h"

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "base/logging.h"
#include "isa/alu.h"

namespace dfp::isa
{

namespace
{

/** Per-instruction dynamic state during one block execution. */
struct InstState
{
    std::optional<Token> left;
    std::optional<Token> right;
    bool predMatched = false;
    bool fired = false;
};

/** Dataflow evaluation engine for one block. */
class BlockEval
{
  public:
    BlockEval(const TBlock &block, ArchState &state, StatSet *stats)
        : block_(block), state_(state), stats_(stats),
          inst_(block.insts.size()),
          writeTokens_(block.writes.size())
    {}

    BlockOutcome run();

  private:
    void bump(const char *name, uint64_t d = 1)
    {
        if (stats_)
            stats_->inc(name, d);
    }

    void fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = detail::cat("block '", block_.label, "': ", msg);
    }

    void deliver(const Target &target, const Token &token);
    void maybeReady(int idx);
    void fire(int idx);
    void route(const TInst &inst, const Token &result);
    void resolveLsid(uint8_t lsid, bool nullified);
    void retryLoads();
    bool loadOrderSatisfied(uint8_t lsid) const;
    void doLoad(int idx);
    bool complete() const;

    const TBlock &block_;
    ArchState &state_;
    StatSet *stats_;

    std::vector<InstState> inst_;
    std::vector<std::optional<Token>> writeTokens_;
    std::deque<int> ready_;
    std::vector<int> pendingLoads_;

    // Store buffer: LSID -> (addr, value) for committed-at-end stores.
    std::map<uint8_t, std::pair<uint64_t, Token>> storeBuf_;
    uint32_t resolvedLsids_ = 0;

    std::optional<int32_t> branchTarget_;
    bool branchExcep_ = false;
    std::string error_;
};

void
BlockEval::deliver(const Target &target, const Token &token)
{
    if (target.slot == Slot::WriteQ) {
        auto &slot = writeTokens_[target.index];
        if (slot.has_value()) {
            fail(detail::cat("write slot ", int(target.index),
                             " received two tokens"));
            return;
        }
        slot = token;
        return;
    }

    int idx = target.index;
    const TInst &def = block_.insts[idx];
    InstState &st = inst_[idx];

    if (target.slot == Slot::Pred) {
        if (predMatches(def.pr, token)) {
            if (st.predMatched) {
                fail(detail::cat("inst ", idx,
                                 " received two matching predicates"));
                return;
            }
            st.predMatched = true;
            maybeReady(idx);
        } else {
            bump("exec.ignored_preds");
        }
        return;
    }

    // A null token reaching a store nullifies it immediately: the LSID is
    // counted as an output with no memory effect (paper §4.2 propagation
    // collapsed to the output boundary; see DESIGN.md).
    if (def.op == Op::St && token.null) {
        resolveLsid(def.lsid, true);
        bump("exec.nullified");
        return;
    }

    auto &slot = (target.slot == Slot::Left) ? st.left : st.right;
    if (slot.has_value()) {
        fail(detail::cat("inst ", idx, " ", opName(def.op),
                         " operand received two tokens"));
        return;
    }
    slot = token;
    maybeReady(idx);
}

void
BlockEval::maybeReady(int idx)
{
    const TInst &def = block_.insts[idx];
    const InstState &st = inst_[idx];
    if (st.fired)
        return;
    if (def.predicated() && !st.predMatched)
        return;
    int need = def.numSrcs();
    if (need >= 1 && !st.left.has_value())
        return;
    if (need >= 2 && !st.right.has_value())
        return;
    ready_.push_back(idx);
}

void
BlockEval::route(const TInst &inst, const Token &result)
{
    for (const Target &t : inst.targets)
        deliver(t, result);
}

void
BlockEval::resolveLsid(uint8_t lsid, bool nullified)
{
    if (resolvedLsids_ & (1u << lsid)) {
        fail(detail::cat("store LSID ", int(lsid), " resolved twice"));
        return;
    }
    resolvedLsids_ |= 1u << lsid;
    (void)nullified;
    retryLoads();
}

bool
BlockEval::loadOrderSatisfied(uint8_t lsid) const
{
    uint32_t earlier = block_.storeMask & ((1u << lsid) - 1);
    return (earlier & ~resolvedLsids_) == 0;
}

void
BlockEval::doLoad(int idx)
{
    const TInst &inst = block_.insts[idx];
    const Token &addrTok = *inst_[idx].left;
    Token result;
    if (addrTok.null) {
        result.null = true;
    } else if (addrTok.excep) {
        result.excep = true;
    } else {
        uint64_t addr = addrTok.value + static_cast<int64_t>(inst.imm);
        if (addr & 7) {
            result.excep = true; // misaligned access poisons (§4.4)
        } else {
            // Forward from the youngest earlier store to the same address.
            result.value = state_.mem.load(addr);
            for (const auto &[lsid, st] : storeBuf_) {
                if (lsid < inst.lsid && st.first == addr)
                    result.value = st.second.value;
            }
            bump("exec.loads");
        }
    }
    route(inst, result);
}

void
BlockEval::retryLoads()
{
    std::vector<int> still;
    for (int idx : pendingLoads_) {
        if (loadOrderSatisfied(block_.insts[idx].lsid))
            doLoad(idx);
        else
            still.push_back(idx);
    }
    pendingLoads_ = std::move(still);
}

void
BlockEval::fire(int idx)
{
    const TInst &inst = block_.insts[idx];
    InstState &st = inst_[idx];
    if (st.fired)
        return;
    st.fired = true;
    bump("exec.fired");
    if (inst.op == Op::Mov || inst.op == Op::Mov4 || inst.op == Op::Movi)
        bump("exec.moves");

    Token a = st.left.value_or(Token{});
    Token b = st.right.value_or(Token{});
    Token immTok{static_cast<uint64_t>(static_cast<int64_t>(inst.imm)),
                 false, false};

    switch (inst.op) {
      case Op::Bro:
        if (branchTarget_.has_value()) {
            fail("two branches fired");
            return;
        }
        branchTarget_ = inst.imm;
        return;
      case Op::St: {
        if (a.null || b.null) {
            resolveLsid(inst.lsid, true);
            bump("exec.nullified");
            return;
        }
        Token value = b;
        uint64_t addr = a.value + static_cast<int64_t>(inst.imm);
        if (a.excep || (addr & 7))
            value.excep = true;
        storeBuf_[inst.lsid] = {addr, value};
        resolveLsid(inst.lsid, false);
        bump("exec.stores");
        return;
      }
      case Op::Ld:
        if (loadOrderSatisfied(inst.lsid))
            doLoad(idx);
        else
            pendingLoads_.push_back(idx);
        return;
      case Op::GateT:
      case Op::GateF: {
        // left = control, right = data; absorb on mismatch (§2.1).
        if (a.null)
            return;
        bool truth = a.excep ? false : (a.value & 1) != 0;
        if (truth != (inst.op == Op::GateT))
            return;
        Token out = b;
        out.excep = out.excep || a.excep;
        route(inst, out);
        return;
      }
      case Op::Switch: {
        if (a.null)
            return;
        bool truth = a.excep ? false : (a.value & 1) != 0;
        Token out = b;
        out.excep = out.excep || a.excep;
        dfp_assert(inst.targets.size() == 2, "switch needs 2 targets");
        deliver(inst.targets[truth ? 0 : 1], out);
        return;
      }
      default: {
        Token result =
            evalOp(inst.op, a, opInfo(inst.op).hasImm ? immTok : b);
        route(inst, result);
        return;
      }
    }
}

bool
BlockEval::complete() const
{
    if (!branchTarget_.has_value())
        return false;
    if ((block_.storeMask & ~resolvedLsids_) != 0)
        return false;
    for (const auto &tok : writeTokens_)
        if (!tok.has_value())
            return false;
    return true;
}

BlockOutcome
BlockEval::run()
{
    // Inject register reads.
    for (const ReadSlot &read : block_.reads) {
        Token token{state_.regs[read.reg], false, false};
        for (const Target &t : read.targets)
            deliver(t, token);
    }
    // Seed zero-source unpredicated instructions (constants, branches).
    for (size_t i = 0; i < block_.insts.size(); ++i) {
        const TInst &inst = block_.insts[i];
        if (inst.numSrcs() == 0 && !inst.predicated())
            ready_.push_back(static_cast<int>(i));
    }

    while (!ready_.empty() && error_.empty()) {
        int idx = ready_.front();
        ready_.pop_front();
        fire(idx);
    }

    BlockOutcome out;
    if (!error_.empty()) {
        out.error = error_;
        return out;
    }
    if (!complete()) {
        out.error = detail::cat("block '", block_.label,
                                "' drained without completing (missing ",
                                branchTarget_ ? "writes/stores" : "branch",
                                ")");
        return out;
    }

    // Commit: stores in LSID order, then register writes.
    bool excep = branchExcep_;
    for (const auto &[lsid, st] : storeBuf_) {
        if (st.second.excep) {
            excep = true;
            continue;
        }
        state_.mem.store(st.first, st.second.value);
    }
    for (size_t w = 0; w < writeTokens_.size(); ++w) {
        const Token &tok = *writeTokens_[w];
        if (tok.null)
            continue; // null write: architectural state unmodified (§4.2)
        if (tok.excep) {
            excep = true;
            continue;
        }
        state_.regs[block_.writes[w].reg] = tok.value;
    }

    out.ok = true;
    out.raisedException = excep;
    out.nextBlock = *branchTarget_;
    return out;
}

} // namespace

BlockOutcome
executeBlock(const TBlock &block, ArchState &state, StatSet *stats)
{
    return BlockEval(block, state, stats).run();
}

RunOutcome
runProgram(const TProgram &program, ArchState &state, uint64_t maxBlocks,
           StatSet *stats)
{
    RunOutcome out;
    dfp_assert(!program.blocks.empty(), "empty program");
    int32_t current = 0;
    while (out.blocksExecuted < maxBlocks) {
        const TBlock &block = program.blocks[current];
        BlockOutcome bo = executeBlock(block, state, stats);
        ++out.blocksExecuted;
        if (stats)
            stats->inc("exec.blocks");
        if (!bo.ok) {
            out.error = bo.error;
            return out;
        }
        if (bo.raisedException) {
            out.raisedException = true;
            out.error = detail::cat("exception raised at block '",
                                    block.label, "'");
            return out;
        }
        if (bo.nextBlock == kHaltTarget) {
            out.halted = true;
            return out;
        }
        if (bo.nextBlock < 0 ||
            bo.nextBlock >= static_cast<int32_t>(program.blocks.size())) {
            out.error = detail::cat("branch to invalid block ",
                                    bo.nextBlock);
            return out;
        }
        current = bo.nextBlock;
    }
    out.error = "dynamic block limit exceeded (possible livelock)";
    return out;
}

} // namespace dfp::isa
