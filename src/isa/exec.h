/**
 * @file
 * Functional (untimed) executor for TRIPS-style blocks — the golden
 * model at target level. It implements the dataflow firing rule with
 * predicate matching, null-token propagation (§4.2), exception bits
 * (§4.4), LSID-ordered memory semantics, and the block completion
 * condition (all register writes + all store LSIDs + one branch).
 *
 * It also performs *dynamic* well-formedness checks the static validator
 * cannot: two producers firing into one data operand, two matching
 * predicates, two branches firing, double-resolved writes/LSIDs, and
 * deadlock (block drained without producing all outputs).
 */

#ifndef DFP_ISA_EXEC_H
#define DFP_ISA_EXEC_H

#include <array>
#include <string>

#include "base/stats.h"
#include "isa/memory.h"
#include "isa/tblock.h"

namespace dfp::isa
{

/** Architectural state shared between blocks. */
struct ArchState
{
    std::array<uint64_t, kNumRegs> regs{};
    Memory mem;
};

/** Outcome of executing one block. */
struct BlockOutcome
{
    bool ok = false;          //!< block completed and committed
    bool raisedException = false; //!< an output carried the poison bit
    int32_t nextBlock = kHaltTarget;
    std::string error;        //!< non-empty on malformed execution
};

/** Outcome of running a whole program. */
struct RunOutcome
{
    bool halted = false;
    bool raisedException = false;
    std::string error;
    uint64_t blocksExecuted = 0;
};

/**
 * Execute one block against @p state, committing outputs on success.
 *
 * @param stats optional dynamic counters: exec.fired, exec.moves,
 *        exec.nullified, exec.ignored_preds, exec.loads, exec.stores.
 */
BlockOutcome executeBlock(const TBlock &block, ArchState &state,
                          StatSet *stats = nullptr);

/**
 * Run a linked program from block 0 until halt.
 *
 * @param maxBlocks safety bound on dynamic block count.
 */
RunOutcome runProgram(const TProgram &program, ArchState &state,
                      uint64_t maxBlocks = 1u << 22,
                      StatSet *stats = nullptr);

} // namespace dfp::isa

#endif // DFP_ISA_EXEC_H
