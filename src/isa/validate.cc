#include "isa/validate.h"

#include <functional>

#include "base/logging.h"

namespace dfp::isa
{

namespace
{

using verify::Severity;
using verify::SourceLoc;
namespace codes = verify::codes;

/** Can this opcode legally receive a token in @p slot? */
bool
slotLegal(const TInst &inst, Slot slot)
{
    switch (slot) {
      case Slot::Left:
        return inst.numSrcs() >= 1;
      case Slot::Right:
        return inst.numSrcs() >= 2;
      case Slot::Pred:
        return inst.predicated();
      case Slot::WriteQ:
        return false; // handled separately; never a TInst slot
    }
    return false;
}

} // namespace

void
validateBlock(const TBlock &block, verify::DiagList &out)
{
    auto err = [&](const char *code, int index, auto &&...parts) {
        out.error(code, SourceLoc{block.label, index},
                  detail::cat("block '", block.label, "': ", parts...));
    };

    const int n = static_cast<int>(block.insts.size());
    if (n > kMaxInsts)
        err(codes::BlockTooManyInsts, -1, "too many instructions (", n,
            ")");
    if (block.reads.size() > kMaxReads)
        err(codes::TooManyReads, -1, "too many reads (",
            block.reads.size(), ")");
    if (block.writes.size() > kMaxWrites)
        err(codes::TooManyWrites, -1, "too many writes (",
            block.writes.size(), ")");

    // Per-slot producer counts; [slot][index].
    std::vector<int> leftProd(n, 0), rightProd(n, 0), predProd(n, 0);
    std::vector<int> writeProd(block.writes.size(), 0);

    auto checkTarget = [&](const std::string &who, int fromIndex,
                           const Target &t) {
        if (t.slot == Slot::WriteQ) {
            if (t.index >= block.writes.size()) {
                err(codes::WriteIndexOutOfRange, fromIndex, who,
                    " targets write slot ", int(t.index),
                    " out of range");
                return;
            }
            ++writeProd[t.index];
            return;
        }
        if (t.index >= n) {
            err(codes::TargetOutOfRange, fromIndex, who,
                " targets instruction ", int(t.index), " out of range");
            return;
        }
        const TInst &c = block.insts[t.index];
        if (!slotLegal(c, t.slot)) {
            // A predicate token aimed at a PR=00 consumer gets its own
            // code: it is the §3.2 rule the paper's predication model
            // rests on, distinct from a plain operand-arity mismatch.
            const char *code = (t.slot == Slot::Pred && !c.predicated())
                                   ? codes::PredTokenToUnpredicated
                                   : codes::IllegalSlot;
            err(code, fromIndex, who, " targets illegal slot ",
                int(t.slot), " of inst ", int(t.index), " (",
                opName(c.op), ")",
                code == codes::PredTokenToUnpredicated
                    ? " which is unpredicated (PR=00)"
                    : "");
            return;
        }
        switch (t.slot) {
          case Slot::Left:  ++leftProd[t.index]; break;
          case Slot::Right: ++rightProd[t.index]; break;
          case Slot::Pred:  ++predProd[t.index]; break;
          default: break;
        }
    };

    for (size_t r = 0; r < block.reads.size(); ++r) {
        if (block.reads[r].reg >= kNumRegs)
            err(codes::ReadRegOutOfRange, -1, "read ", r,
                " register out of range");
        if (block.reads[r].targets.size() > 2)
            err(codes::ReadTooManyTargets, -1, "read ", r,
                " has too many targets");
        for (const Target &t : block.reads[r].targets)
            checkTarget(detail::cat("read ", r), -1, t);
    }
    for (size_t w = 0; w < block.writes.size(); ++w) {
        if (block.writes[w].reg >= kNumRegs)
            err(codes::WriteRegOutOfRange, -1, "write ", w,
                " register out of range");
    }

    int numBranches = 0;
    uint32_t seenLsids = 0;
    for (int i = 0; i < n; ++i) {
        const TInst &inst = block.insts[i];
        std::string who = detail::cat("inst ", i, " (", opName(inst.op),
                                      ")");
        if (inst.op >= Op::NumOps) {
            err(codes::BadOpcode, i, who, " bad opcode");
            continue;
        }
        if (isPseudoOp(inst.op)) {
            err(codes::PseudoOp, i, who,
                " pseudo-op is not valid in a block");
            continue;
        }
        if (inst.op == Op::Read || inst.op == Op::Write) {
            err(codes::QueueOpInBlock, i, who,
                " read/write are queue entries, not instructions");
            continue;
        }
        if (static_cast<int>(inst.targets.size()) > inst.maxTargets())
            err(codes::TooManyTargets, i, who, " has too many targets");
        if (inst.op == Op::Bro) {
            ++numBranches;
        } else if (inst.op == Op::Switch) {
            if (inst.targets.size() != 2)
                err(codes::SwitchArity, i, who,
                    " switch requires exactly 2 targets");
        }
        if (inst.op == Op::Ld || inst.op == Op::St) {
            if (inst.lsid >= kMaxLsids)
                err(codes::LsidOutOfRange, i, who, " LSID out of range");
            if (inst.op == Op::St) {
                if (!(block.storeMask & (1u << inst.lsid)))
                    err(codes::StoreLsidNotInMask, i, who,
                        " store LSID ", int(inst.lsid),
                        " not in header mask");
                seenLsids |= 1u << inst.lsid;
            }
        }
        for (const Target &t : inst.targets)
            checkTarget(who, i, t);
    }

    if (numBranches == 0)
        err(codes::NoBranch, -1, "no branch instruction");

    // Every predicated instruction needs at least one predicate producer,
    // and every data operand needs at least one producer, otherwise the
    // instruction can never fire (and the block would hang).
    for (int i = 0; i < n; ++i) {
        const TInst &inst = block.insts[i];
        if (inst.predicated() && predProd[i] == 0)
            err(codes::PredNoProducer, i, "inst ", i, " (",
                opName(inst.op),
                ") is predicated but nothing targets its predicate");
        if (inst.numSrcs() >= 1 && leftProd[i] == 0)
            err(codes::OperandNoProducer, i, "inst ", i, " (",
                opName(inst.op), ") left operand has no producer");
        if (inst.numSrcs() >= 2 && rightProd[i] == 0 &&
            !(inst.op == Op::St)) {
            // A store's value operand may legitimately be satisfied only
            // via a null token to its *left* slot (see DESIGN.md), but any
            // other two-source op with a missing right producer hangs.
            err(codes::OperandNoProducer, i, "inst ", i, " (",
                opName(inst.op), ") right operand has no producer");
        }
    }
    for (size_t w = 0; w < block.writes.size(); ++w) {
        if (writeProd[w] == 0)
            err(codes::WriteNoProducer, -1, "write slot ", w, " (g",
                int(block.writes[w].reg), ") has no producer");
    }

    // Header store mask must not demand LSIDs no store can resolve...
    // unless a null token can resolve them; statically require at least
    // one store or null-capable producer per mask bit: we only check that
    // any store LSID is in the mask (above). A mask bit with no store at
    // all is still resolvable via nulls, so it is not an error here.
    (void)seenLsids;

    // Dataflow acyclicity (instruction graph must be a DAG).
    std::vector<int> color(n, 0); // 0 white, 1 grey, 2 black
    std::function<bool(int)> dfs = [&](int u) -> bool {
        color[u] = 1;
        for (const Target &t : block.insts[u].targets) {
            if (t.slot == Slot::WriteQ || t.index >= n)
                continue;
            if (color[t.index] == 1)
                return false;
            if (color[t.index] == 0 && !dfs(t.index))
                return false;
        }
        color[u] = 2;
        return true;
    };
    for (int i = 0; i < n; ++i) {
        if (color[i] == 0 && !dfs(i)) {
            err(codes::DataflowCycle, i,
                "dataflow graph has a cycle through inst ", i);
            break;
        }
    }
}

void
validateProgram(const TProgram &program, verify::DiagList &out)
{
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        validateBlock(program.blocks[b], out);
        const TBlock &block = program.blocks[b];
        for (size_t i = 0; i < block.insts.size(); ++i) {
            const TInst &inst = block.insts[i];
            if (inst.op == Op::Bro && inst.imm != kHaltTarget &&
                (inst.imm < 0 ||
                 inst.imm >= static_cast<int32_t>(program.blocks.size()))) {
                out.error(codes::BranchTargetOutOfRange,
                          SourceLoc{block.label, static_cast<int>(i)},
                          detail::cat("block '", block.label,
                                      "': bro target ", inst.imm,
                                      " out of range"));
            }
        }
    }
}

ValidationResult
validateBlock(const TBlock &block)
{
    ValidationResult res;
    validateBlock(block, res.diags);
    return res;
}

ValidationResult
validateProgram(const TProgram &program)
{
    ValidationResult res;
    validateProgram(program, res.diags);
    return res;
}

} // namespace dfp::isa
