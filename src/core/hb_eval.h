/**
 * @file
 * Golden evaluator for hyperblock-form IR (after if-conversion, before
 * or after the predicate optimizations and register allocation).
 *
 * Because every dfp pass maintains the topological-order invariant
 * (definitions precede uses), one in-order sweep implements the
 * dataflow firing rule exactly: an instruction fires iff its guard
 * matches (some guard predicate is defined with the right truth) and
 * all of its source temps are defined; undefined sources model implicit
 * predication (§3.6) — the ancestors never fired, so neither does the
 * consumer.
 *
 * Register traffic uses *virtual* register ids (the Read/Write `reg`
 * field), so the evaluator works both before and after coloring.
 * Virtual register 0 holds the kernel return value by convention.
 */

#ifndef DFP_CORE_HB_EVAL_H
#define DFP_CORE_HB_EVAL_H

#include <map>
#include <string>

#include "base/stats.h"
#include "isa/memory.h"
#include "ir/ir.h"

namespace dfp::core
{

/** Result of evaluating one hyperblock. */
struct HbOutcome
{
    bool ok = false;
    std::string next;  //!< successor label; "@halt" terminates
    std::string error; //!< non-empty on malformed execution
    int fired = 0;     //!< instructions that fired
};

/**
 * Evaluate one hyperblock. Stores commit immediately (the evaluator is
 * a golden model; errors abort the run anyway).
 */
HbOutcome evalHyperblock(const ir::BBlock &hb,
                         std::map<int, uint64_t> &regs, isa::Memory &mem,
                         StatSet *stats = nullptr);

/** Result of running a whole hyperblock-form function. */
struct HbRunResult
{
    bool ok = false;
    uint64_t retValue = 0; //!< virtual register 0 at halt
    uint64_t dynBlocks = 0;
    uint64_t fired = 0;
    std::string error;
};

/** Run a hyperblock-form function from its entry until @halt. */
HbRunResult runHyperFunction(const ir::Function &fn, isa::Memory &mem,
                             uint64_t maxBlocks = 1u << 22,
                             StatSet *stats = nullptr);

} // namespace dfp::core

#endif // DFP_CORE_HB_EVAL_H
