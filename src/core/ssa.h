/**
 * @file
 * SSA construction (Cytron et al. [11] in the paper's bibliography) for
 * the dfp CFG IR. Hyperblock formation runs over SSA form so that
 * region joins become phi nodes, which if-conversion then lowers to the
 * predicated moves that realize the dataflow join of Figure 1.
 */

#ifndef DFP_CORE_SSA_H
#define DFP_CORE_SSA_H

#include "ir/ir.h"

namespace dfp::core
{

/**
 * Rewrite @p fn into SSA form: insert phi nodes at iterated dominance
 * frontiers and rename every temp so each has a unique definition.
 * Temps used before any definition are treated as implicitly defined to
 * zero at entry (the golden interpreter rejects such programs earlier,
 * so this only matters for compiler robustness).
 */
void buildSsa(ir::Function &fn);

/** True if every temp in @p fn has at most one defining instruction. */
bool isSsa(const ir::Function &fn);

} // namespace dfp::core

#endif // DFP_CORE_SSA_H
