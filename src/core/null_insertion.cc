#include "core/null_insertion.h"

#include <algorithm>
#include <map>
#include <set>

#include "ir/analysis.h"

namespace dfp::core
{

int
splitEdge(ir::Function &fn, int from, int to)
{
    std::string label =
        detail::cat(fn.blocks[from].name, ".e", fn.blocks.size());
    ir::BBlock &split = fn.addBlock(label);
    int splitId = split.id;
    split.term = ir::Term::Jmp;
    split.succLabels.push_back(fn.blocks[to].name);

    // Retarget the edge in the predecessor's terminator. When the same
    // label appears on both arms of a br, only the arm matching this
    // logical edge... both arms denote the same CFG edge, so retarget
    // every occurrence (callers fold such degenerate branches earlier).
    ir::BBlock &pred = fn.blocks[from];
    for (std::string &succ : pred.succLabels) {
        if (succ == fn.blocks[to].name)
            succ = label;
    }
    // Phi incoming blocks in the successor now come from the split.
    for (ir::Instr &inst : fn.blocks[to].instrs) {
        if (inst.op != isa::Op::Phi)
            break;
        for (int &pb : inst.phiBlocks) {
            if (pb == from)
                pb = splitId;
        }
    }
    fn.computeCfg();
    return splitId;
}

namespace
{

/** Implementation helper for lowerBoundaries. */
class BoundaryLowerer
{
  public:
    BoundaryLowerer(ir::Function &fn, RegionPlan &plan)
        : fn_(fn), plan_(plan)
    {}

    BoundaryStats run();

  private:
    int regionOf(int block) const { return plan_.regionOf[block]; }
    int newVirtReg() { return nextVirtReg_++; }

    /** Split edge if needed so a write can sit on it; returns block id
     *  to append the write into (belonging to @p from's region). */
    int writeSiteOnEdge(int from, int to);

    void lowerRets();
    void assignCrossRegValues();
    bool sameRegionPath(int region, int a, int b) const;
    void lowerHeadPhis();
    void insertReads();
    void assignStoreTokens();
    void insertCompensation();

    ir::Function &fn_;
    RegionPlan &plan_;
    BoundaryStats stats_;
    int nextVirtReg_ = kRetVirtReg + 1;
    // Memoized edge splits: a logical edge is split at most once and
    // all writes bound for it share the split block.
    std::map<std::pair<int, int>, int> edgeSite_;

    std::map<int, int> vregOf_;          //!< SSA temp -> virtual register
    std::map<int, int> defRegion_;       //!< SSA temp -> defining region
    // (region, vreg) -> read temp
    std::map<std::pair<int, int>, int> readTemp_;
};

int
BoundaryLowerer::writeSiteOnEdge(int from, int to)
{
    if (fn_.blocks[from].succs.size() <= 1)
        return from;
    auto key = std::make_pair(from, to);
    auto it = edgeSite_.find(key);
    if (it != edgeSite_.end())
        return it->second;
    int split = splitEdge(fn_, from, to);
    plan_.regionOf.push_back(regionOf(from));
    // Keep the region's block list topologically ordered: the split
    // precedes its successor when that successor is a non-head region
    // member (internal merge edges), otherwise it goes last.
    Region &region = plan_.regions[regionOf(from)];
    auto pos = region.blocks.end();
    if (regionOf(to) == regionOf(from) && to != region.head) {
        pos = std::find(region.blocks.begin(), region.blocks.end(), to);
    }
    region.blocks.insert(pos, split);
    ++stats_.splitBlocks;
    edgeSite_[key] = split;
    return split;
}

void
BoundaryLowerer::lowerRets()
{
    for (ir::BBlock &block : fn_.blocks) {
        if (block.term != ir::Term::Ret || block.retVal.isNone())
            continue;
        ir::Instr write;
        write.op = isa::Op::Write;
        write.reg = kRetVirtReg;
        write.srcs.push_back(block.retVal);
        block.instrs.push_back(std::move(write));
        block.retVal = ir::Opnd::none();
        ++stats_.valueWrites;
    }
}

void
BoundaryLowerer::assignCrossRegValues()
{
    // Defining region of every SSA temp.
    for (const ir::BBlock &block : fn_.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp())
                defRegion_[inst.dst.id] = regionOf(block.id);
        }
    }

    // A temp is cross-region when used in a region other than its
    // defining one. Phi operands count as uses in the incoming block's
    // region (that is where the write will go).
    std::set<int> cross;
    auto noteUse = [&](int temp, int useRegion) {
        auto it = defRegion_.find(temp);
        if (it != defRegion_.end() && it->second != useRegion)
            cross.insert(temp);
    };
    for (const ir::BBlock &block : fn_.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Phi) {
                for (size_t k = 0; k < inst.srcs.size(); ++k) {
                    if (inst.srcs[k].isTemp()) {
                        noteUse(inst.srcs[k].id,
                                regionOf(inst.phiBlocks[k]));
                    }
                }
            } else {
                std::vector<int> uses;
                ir::collectUses(inst, uses);
                for (int t : uses)
                    noteUse(t, regionOf(block.id));
            }
        }
        if (block.cond.isTemp())
            noteUse(block.cond.id, regionOf(block.id));
        if (block.retVal.isTemp())
            noteUse(block.retVal.id, regionOf(block.id));
    }

    // Write each cross value right after its definition.
    for (int temp : cross) {
        int vreg = newVirtReg();
        vregOf_[temp] = vreg;
        bool placed = false;
        for (ir::BBlock &block : fn_.blocks) {
            for (size_t i = 0; i < block.instrs.size(); ++i) {
                if (block.instrs[i].dst == ir::Opnd::temp(temp)) {
                    // Keep phis contiguous at the block top: a write
                    // after a phi goes after the whole phi group.
                    size_t at = i + 1;
                    if (block.instrs[i].op == isa::Op::Phi) {
                        while (at < block.instrs.size() &&
                               block.instrs[at].op == isa::Op::Phi) {
                            ++at;
                        }
                    }
                    ir::Instr write;
                    write.op = isa::Op::Write;
                    write.reg = vreg;
                    write.srcs.push_back(ir::Opnd::temp(temp));
                    block.instrs.insert(block.instrs.begin() + at,
                                        write);
                    ++stats_.valueWrites;
                    placed = true;
                    break;
                }
            }
            if (placed)
                break;
        }
        dfp_assert(placed, "cross-region temp t", temp, " has no def");
    }
}

/** Can executions of one region reach both blocks (following forward
 *  region-internal edges, ignoring re-entries through the head)? */
bool
BoundaryLowerer::sameRegionPath(int region, int a, int b) const
{
    if (a == b)
        return true;
    int head = plan_.regions[region].head;
    auto reaches = [&](int from, int to) {
        std::set<int> visited{from};
        std::vector<int> stack{from};
        while (!stack.empty()) {
            int u = stack.back();
            stack.pop_back();
            for (int s : fn_.blocks[u].succs) {
                if (s == head || plan_.regionOf[s] != region)
                    continue;
                if (s == to)
                    return true;
                if (visited.insert(s).second)
                    stack.push_back(s);
            }
        }
        return false;
    };
    return reaches(a, b) || reaches(b, a);
}

void
BoundaryLowerer::lowerHeadPhis()
{
    // Collect (block, phi) work first: edge splitting mutates the CFG.
    struct PhiJob
    {
        int block;
        ir::Instr phi;
        int vreg;
    };
    std::vector<PhiJob> jobs;
    for (ir::BBlock &block : fn_.blocks) {
        bool isHead =
            plan_.regions[regionOf(block.id)].head == block.id;
        if (!isHead)
            continue;
        for (size_t i = 0; i < block.instrs.size();) {
            ir::Instr &inst = block.instrs[i];
            if (inst.op != isa::Op::Phi) {
                ++i;
                continue;
            }
            jobs.push_back({block.id, inst, newVirtReg()});
            block.instrs.erase(block.instrs.begin() + i);
        }
    }

    // Defining block of every temp (for per-def write placement).
    std::map<int, int> defBlock;
    for (const ir::BBlock &block : fn_.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp())
                defBlock[inst.dst.id] = block.id;
        }
    }

    for (PhiJob &job : jobs) {
        // The phi dest becomes a Read at the head's top.
        ir::Instr read;
        read.op = isa::Op::Read;
        read.reg = job.vreg;
        read.dst = job.phi.dst;
        ir::BBlock &head = fn_.blocks[job.block];
        head.instrs.insert(head.instrs.begin(), read);
        ++stats_.reads;

        // Prefer writing the register right after each input's
        // definition — the shape the paper's Figure 4 shows, where the
        // producing instruction (not a per-edge copy) feeds the write.
        // Legal when the input is defined in the same region the edge
        // leaves from (SSA guarantees the def fires whenever the edge
        // is taken) and the per-def writes of this phi within one
        // region are pairwise unreachable (at most one fires per block
        // execution). Fall back to a (guarded) edge write otherwise;
        // the null-compensation pass fixes paths with no write either
        // way.
        struct Placement
        {
            size_t input;
            int block;   //!< def block, or -1 for an edge write
        };
        std::vector<Placement> placements;
        for (size_t k = 0; k < job.phi.srcs.size(); ++k) {
            int pred = job.phi.phiBlocks[k];
            const ir::Opnd &src = job.phi.srcs[k];
            int db = src.isTemp() && defBlock.count(src.id)
                         ? defBlock[src.id]
                         : -1;
            placements.push_back(
                {k, db >= 0 && regionOf(db) == regionOf(pred) ? db : -1});
        }
        // Demote per-def placements that could double-fire: a per-def
        // write conflicts with any other anchor (another input's def
        // block, or the pred block of an edge write) it can share one
        // region execution with. Edge writes never conflict with each
        // other (exactly one incoming edge fires per execution), and
        // two inputs carrying the same value share one de-duplicated
        // per-def write.
        bool changed = true;
        while (changed) {
            changed = false;
            for (Placement &p : placements) {
                if (p.block < 0)
                    continue;
                int region = regionOf(p.block);
                for (const Placement &q : placements) {
                    if (&p == &q)
                        continue;
                    int anchor = q.block >= 0
                                     ? q.block
                                     : job.phi.phiBlocks[q.input];
                    if (regionOf(anchor) != region)
                        continue;
                    if (q.block >= 0 && q.block == p.block &&
                        job.phi.srcs[q.input] == job.phi.srcs[p.input])
                        continue; // same value: one de-duplicated write
                        // (same block but different values — e.g. two
                        // phi joins lowered in one block — is a real
                        // conflict and must demote to edge writes)
                    if (sameRegionPath(region, p.block, anchor)) {
                        p.block = -1;
                        changed = true;
                        break;
                    }
                }
            }
        }

        // (block, value) de-dup: the same value feeding several edges
        // gets one write, but distinct values defined in one block
        // (never both per-def after the demotion above) stay separate.
        std::set<std::pair<int, int>> writtenAfterDef;
        for (const Placement &p : placements) {
            const ir::Opnd &src = job.phi.srcs[p.input];
            ir::Instr write;
            write.op = isa::Op::Write;
            write.reg = job.vreg;
            write.srcs.push_back(src);
            if (p.block >= 0) {
                if (!writtenAfterDef.insert({p.block, src.id}).second)
                    continue;
                // After the def (and past any phi group).
                ir::BBlock &db = fn_.blocks[p.block];
                size_t at = db.instrs.size();
                for (size_t i = 0; i < db.instrs.size(); ++i) {
                    if (db.instrs[i].dst == src) {
                        at = i + 1;
                        while (at < db.instrs.size() &&
                               db.instrs[at].op == isa::Op::Phi) {
                            ++at;
                        }
                        break;
                    }
                }
                db.instrs.insert(db.instrs.begin() + at,
                                 std::move(write));
            } else {
                int pred = job.phi.phiBlocks[p.input];
                int site = writeSiteOnEdge(pred, job.block);
                fn_.blocks[site].instrs.push_back(std::move(write));
            }
            ++stats_.valueWrites;
        }
    }
}

void
BoundaryLowerer::insertReads()
{
    // Rewrite cross-region uses to freshly read temps, one read per
    // (region, vreg). Temps are allocated during the rewrite walk; the
    // read instructions are inserted afterwards so the walk never
    // mutates a vector it is iterating.
    auto readTempFor = [&](int region, int temp) -> int {
        int vreg = vregOf_.at(temp);
        auto key = std::make_pair(region, vreg);
        auto it = readTemp_.find(key);
        if (it != readTemp_.end())
            return it->second;
        int rt = fn_.newTemp();
        readTemp_[key] = rt;
        return rt;
    };
    auto rewrite = [&](ir::Opnd &opnd, int useRegion) {
        if (!opnd.isTemp())
            return;
        auto it = defRegion_.find(opnd.id);
        if (it == defRegion_.end() || it->second == useRegion)
            return;
        opnd = ir::Opnd::temp(readTempFor(useRegion, opnd.id));
    };

    for (ir::BBlock &block : fn_.blocks) {
        int region = regionOf(block.id);
        for (ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Phi) {
                for (size_t k = 0; k < inst.srcs.size(); ++k)
                    rewrite(inst.srcs[k], regionOf(inst.phiBlocks[k]));
            } else {
                for (ir::Opnd &src : inst.srcs)
                    rewrite(src, region);
            }
        }
        rewrite(block.cond, region);
        rewrite(block.retVal, region);
    }
    // Materialize the read queue entries at each region head.
    for (const auto &[key, temp] : readTemp_) {
        ir::Instr read;
        read.op = isa::Op::Read;
        read.reg = key.second;
        read.dst = ir::Opnd::temp(temp);
        ir::BBlock &head = fn_.blocks[plan_.regions[key.first].head];
        head.instrs.insert(head.instrs.begin(), std::move(read));
        ++stats_.reads;
    }
}

void
BoundaryLowerer::assignStoreTokens()
{
    // Every store gets a function-unique token in its lsid field; the
    // code generator wires store-nullification Null instructions (also
    // tagged with the token) at the matching store, and maps tokens to
    // real LSIDs. This is how predicated stores satisfy the block's
    // store-output count on paths where they do not fire (§4.2).
    int token = 0;
    for (ir::BBlock &block : fn_.blocks) {
        for (ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::St)
                inst.lsid = token++;
        }
    }
}

void
BoundaryLowerer::insertCompensation()
{
    // Outputs needing per-path compensation: virtual registers written
    // in the region (null write on uncovered exits) and store tokens
    // (store-null on uncovered exits). Both use the same must-produced
    // forward dataflow. Encode stores as key (1 << 24) + token.
    constexpr int kStoreKey = 1 << 24;
    for (size_t r = 0; r < plan_.regions.size(); ++r) {
        const Region &region = plan_.regions[r];

        std::set<int> written;
        for (int b : region.blocks) {
            for (const ir::Instr &inst : fn_.blocks[b].instrs) {
                if (inst.op == isa::Op::Write) {
                    written.insert(inst.reg);
                } else if (inst.op == isa::Op::St) {
                    written.insert(kStoreKey + inst.lsid);
                }
            }
        }
        if (written.empty())
            continue;

        for (int vreg : written) {
            // Membership and gen sets are refreshed per pass: earlier
            // passes split edges and append blocks to this region.
            std::set<int> members(region.blocks.begin(),
                                  region.blocks.end());
            std::map<int, std::set<int>> gen;
            for (int b : region.blocks) {
                for (const ir::Instr &inst : fn_.blocks[b].instrs) {
                    if (inst.op == isa::Op::Write)
                        gen[b].insert(inst.reg);
                    else if (inst.op == isa::Op::St)
                        gen[b].insert(kStoreKey + inst.lsid);
                }
            }
            // "Produced-on-this-path" analysis. After patching, every
            // path through the region produces the output exactly once,
            // so the per-block coverage flag is path-invariant:
            //   in[b]  = OR over region preds of out[p]   (the false
            //            incoming edges at a mixed merge get a null)
            //   out[b] = in[b] || gen[b]
            // Exits (region-leaving edges, back edges to the head, and
            // Ret blocks) with out == false also get a null.
            std::map<int, bool> outSet;
            for (int b : region.blocks)
                outSet[b] = false;
            bool changed = true;
            while (changed) {
                changed = false;
                for (int b : region.blocks) {
                    bool in = false;
                    if (b != region.head) {
                        for (int p : fn_.blocks[b].preds)
                            in = in || outSet[p];
                    }
                    bool out = in || gen[b].count(vreg) > 0;
                    if (out != outSet[b]) {
                        outSet[b] = out;
                        changed = true;
                    }
                }
            }

            struct Fix
            {
                int from;
                int to; // -1 for a Ret exit
            };
            std::vector<Fix> fixes;
            for (int b : region.blocks) {
                const ir::BBlock &block = fn_.blocks[b];
                // Mixed merge: patch the uncovered incoming edges.
                if (b != region.head) {
                    bool anyTrue = false, anyFalse = false;
                    for (int p : fn_.blocks[b].preds) {
                        (outSet[p] ? anyTrue : anyFalse) = true;
                    }
                    if (anyTrue && anyFalse) {
                        for (int p : fn_.blocks[b].preds) {
                            if (!outSet[p])
                                fixes.push_back({p, b});
                        }
                    }
                }
                if (outSet[b])
                    continue;
                // Uncovered exits.
                if (block.term == ir::Term::Ret) {
                    fixes.push_back({b, -1});
                    continue;
                }
                for (int s : block.succs) {
                    if (!members.count(s) || s == region.head)
                        fixes.push_back({b, s});
                }
            }
            for (const Fix &fix : fixes) {
                int site = fix.to == -1 ? fix.from
                                        : writeSiteOnEdge(fix.from,
                                                          fix.to);
                auto &instrs = fn_.blocks[site].instrs;
                if (vreg >= kStoreKey) {
                    ir::Instr null;
                    null.op = isa::Op::Null;
                    null.lsid = vreg - kStoreKey;
                    instrs.push_back(std::move(null));
                } else {
                    int tn = fn_.newTemp();
                    ir::Instr null;
                    null.op = isa::Op::Null;
                    null.dst = ir::Opnd::temp(tn);
                    ir::Instr write;
                    write.op = isa::Op::Write;
                    write.reg = vreg;
                    write.srcs.push_back(ir::Opnd::temp(tn));
                    instrs.push_back(std::move(null));
                    instrs.push_back(std::move(write));
                }
                ++stats_.nullWrites;
            }
        }
    }
}

BoundaryStats
BoundaryLowerer::run()
{
    fn_.computeCfg();
    lowerRets();
    assignCrossRegValues();
    insertReads();
    lowerHeadPhis();
    assignStoreTokens();
    insertCompensation();
    stats_.virtRegs = nextVirtReg_;
    fn_.computeCfg();
    fn_.verify();
    return stats_;
}

} // namespace

BoundaryStats
lowerBoundaries(ir::Function &fn, RegionPlan &plan)
{
    return BoundaryLowerer(fn, plan).run();
}

} // namespace dfp::core
