/**
 * @file
 * Predicate flow graph (PFG) utilities over hyperblocks (paper §5,
 * Figure 4). After if-conversion the PFG is *implicit* in the guard
 * structure: each instruction carries at most one guard (pred temp +
 * polarity), and the guard's defining test is itself guarded by the
 * enclosing predicate, forming the predicate-AND chains of §3.4. This
 * module recovers contexts from that structure: the full guard chain of
 * an instruction, disjointness of two contexts (can both ever fire?),
 * and implication (does firing A guarantee firing B's guard?).
 */

#ifndef DFP_CORE_PFG_H
#define DFP_CORE_PFG_H

#include <map>
#include <vector>

#include "ir/ir.h"

namespace dfp::core
{

/**
 * Predicate analysis over one hyperblock.
 *
 * Assumes the hyperblock invariant maintained by every dfp pass: the
 * instruction list is topologically sorted (definitions precede uses),
 * and any temp with multiple definitions has pairwise-disjoint guard
 * contexts (a dataflow join).
 */
class PredInfo
{
  public:
    explicit PredInfo(const ir::BBlock &hb);

    /** Indices of the instructions defining temp @p t (usually one). */
    const std::vector<int> &defsOf(int temp) const;

    /** Indices of instructions using temp @p t (incl. guard uses). */
    const std::vector<int> &usesOf(int temp) const;

    /**
     * The full guard-chain context of instruction @p idx: its own guards
     * plus, transitively, the guards of each single-definition guard
     * predicate. Join predicates (multiple defs) and multi-guard
     * (predicate-OR) instructions terminate the chain — they stand for a
     * disjunction and are kept as atomic guards.
     */
    std::vector<ir::Guard> contextOf(int idx) const;

    /** Context implied by a guard list (without an owning instruction). */
    std::vector<ir::Guard> contextOfGuards(
        const std::vector<ir::Guard> &guards) const;

    /**
     * Are two contexts provably disjoint (no execution fires both)?
     * True when some predicate appears with opposite polarities.
     */
    static bool disjoint(const std::vector<ir::Guard> &a,
                         const std::vector<ir::Guard> &b);

    /**
     * Does context @p outer imply context @p inner (every execution
     * satisfying @p outer also satisfies @p inner)? True when every
     * guard of @p inner appears in @p outer.
     */
    static bool implies(const std::vector<ir::Guard> &outer,
                        const std::vector<ir::Guard> &inner);

    const ir::BBlock &block() const { return *hb_; }

  private:
    const ir::BBlock *hb_;
    std::map<int, std::vector<int>> defs_;
    std::map<int, std::vector<int>> uses_;
    std::vector<int> empty_;
};

/**
 * Check the hyperblock invariants (topological order; single or
 * pairwise-disjoint defs; guard polarity consistency for multi-guard
 * instructions). Throws PanicError on violation — these indicate
 * compiler bugs, not user errors.
 */
void checkHyperblock(const ir::BBlock &hb);

} // namespace dfp::core

#endif // DFP_CORE_PFG_H
