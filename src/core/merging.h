/**
 * @file
 * Disjoint instruction merging (paper §5.3).
 *
 * Combines lexically equivalent instructions (same opcode, operands,
 * destination, immediate, register, branch label) that live on distinct
 * predicate paths:
 *
 *  - category 1: same predicate, opposite polarities — the pair fires
 *    on every execution of the dominating predicate block, so the merge
 *    is promoted there (it inherits the guards of the predicate's own
 *    defining instruction);
 *  - category 2: different predicates, same polarity — merged into a
 *    single instruction carrying both guards, exploiting predicate-OR
 *    (§3.5): multiple producers may target one predicate operand and at
 *    most one can match (the pass proves the contexts disjoint);
 *  - category 3: different predicates, opposite polarities — the pass
 *    flips one predicate's defining test (when it is an invertible test
 *    with no value uses), rewrites that predicate's other consumers,
 *    and then applies category 2.
 *
 * The merged instruction is placed at the latest position any of the
 * originals occupied, preserving the topological-order invariant; a
 * merge is skipped if its result would then be defined after a use.
 */

#ifndef DFP_CORE_MERGING_H
#define DFP_CORE_MERGING_H

#include "ir/ir.h"

namespace dfp::core
{

/** Merge disjoint duplicate instructions in one hyperblock. */
int mergeDisjointInstructions(ir::BBlock &hb);

/** Apply to every hyperblock; returns instructions eliminated. */
int mergeDisjointInstructions(ir::Function &fn);

} // namespace dfp::core

#endif // DFP_CORE_MERGING_H
