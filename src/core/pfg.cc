#include "core/pfg.h"

#include <algorithm>
#include <set>

#include "ir/analysis.h"

namespace dfp::core
{

PredInfo::PredInfo(const ir::BBlock &hb) : hb_(&hb)
{
    for (size_t i = 0; i < hb.instrs.size(); ++i) {
        const ir::Instr &inst = hb.instrs[i];
        if (inst.dst.isTemp())
            defs_[inst.dst.id].push_back(static_cast<int>(i));
        std::vector<int> used;
        ir::collectUses(inst, used);
        for (int t : used)
            uses_[t].push_back(static_cast<int>(i));
    }
}

const std::vector<int> &
PredInfo::defsOf(int temp) const
{
    auto it = defs_.find(temp);
    return it == defs_.end() ? empty_ : it->second;
}

const std::vector<int> &
PredInfo::usesOf(int temp) const
{
    auto it = uses_.find(temp);
    return it == uses_.end() ? empty_ : it->second;
}

namespace
{

void
contextWalk(const PredInfo &info, const ir::BBlock &hb,
            const std::vector<ir::Guard> &guards,
            std::vector<ir::Guard> &chain, int &fuel)
{
    if (fuel-- <= 0)
        return;
    // A multi-guard (predicate-OR) set is a disjunction, not a
    // conjunction, so it cannot be folded into the chain.
    if (guards.size() != 1)
        return;
    ir::Guard g = guards.front();
    if (std::find(chain.begin(), chain.end(), g) != chain.end())
        return; // defensive against cycles
    chain.push_back(g);
    const std::vector<int> &defs = info.defsOf(g.pred);
    if (defs.empty()) {
        return; // read-fed or external: atomic
    }
    if (defs.size() == 1) {
        contextWalk(info, hb, hb.instrs[defs.front()].guards, chain,
                    fuel);
        return;
    }
    // Join predicate: guards common to the contexts of ALL of its
    // definitions hold whenever any definition fired, so the
    // intersection extends the chain (e.g. the implicit AND through a
    // §3.5 join under an enclosing test).
    std::vector<ir::Guard> common;
    bool first = true;
    for (int d : defs) {
        std::vector<ir::Guard> sub;
        contextWalk(info, hb, hb.instrs[d].guards, sub, fuel);
        if (first) {
            common = sub;
            first = false;
        } else {
            std::vector<ir::Guard> kept;
            for (const ir::Guard &c : common) {
                if (std::find(sub.begin(), sub.end(), c) != sub.end())
                    kept.push_back(c);
            }
            common = std::move(kept);
        }
        if (common.empty())
            return;
    }
    for (const ir::Guard &c : common) {
        if (std::find(chain.begin(), chain.end(), c) == chain.end())
            chain.push_back(c);
    }
}

} // namespace

std::vector<ir::Guard>
PredInfo::contextOfGuards(const std::vector<ir::Guard> &guards) const
{
    std::vector<ir::Guard> chain;
    int fuel = 4096;
    contextWalk(*this, *hb_, guards, chain, fuel);
    return chain;
}

std::vector<ir::Guard>
PredInfo::contextOf(int idx) const
{
    return contextOfGuards(hb_->instrs[idx].guards);
}

bool
PredInfo::disjoint(const std::vector<ir::Guard> &a,
                   const std::vector<ir::Guard> &b)
{
    for (const ir::Guard &ga : a) {
        for (const ir::Guard &gb : b) {
            if (ga.pred == gb.pred && ga.onTrue != gb.onTrue)
                return true;
        }
    }
    return false;
}

bool
PredInfo::implies(const std::vector<ir::Guard> &outer,
                  const std::vector<ir::Guard> &inner)
{
    for (const ir::Guard &g : inner) {
        if (std::find(outer.begin(), outer.end(), g) == outer.end())
            return false;
    }
    return true;
}

void
checkHyperblock(const ir::BBlock &hb)
{
    dfp_assert(hb.term == ir::Term::Hyper, "not a hyperblock: ", hb.name);
    PredInfo info(hb);

    std::vector<char> defined(1, 0);
    auto seenDef = [&](int t) {
        return t < static_cast<int>(defined.size()) && defined[t];
    };
    auto markDef = [&](int t) {
        if (t >= static_cast<int>(defined.size()))
            defined.resize(t + 1, 0);
        defined[t] = 1;
    };

    for (size_t i = 0; i < hb.instrs.size(); ++i) {
        const ir::Instr &inst = hb.instrs[i];
        if (inst.op == isa::Op::Phi)
            continue; // entry phis resolved by register allocation
        std::vector<int> used;
        ir::collectUses(inst, used);
        for (int t : used) {
            dfp_assert(seenDef(t) || inst.op == isa::Op::Read,
                       "hyperblock '", hb.name, "': t", t,
                       " used at index ", i, " before any definition");
        }
        if (inst.dst.isTemp())
            markDef(inst.dst.id);
        if (inst.guards.size() > 1) {
            for (const ir::Guard &g : inst.guards) {
                dfp_assert(g.onTrue == inst.guards.front().onTrue,
                           "hyperblock '", hb.name,
                           "': mixed-polarity predicate-OR at index ", i);
            }
        }
    }

    // Multiple defs of one temp must be pairwise disjoint. A
    // predicate-OR def (multiple guards) is a disjunction: every one of
    // its disjunct contexts must be disjoint with every disjunct of the
    // other def.
    auto disjunctContexts = [&](int idx) {
        std::vector<std::vector<ir::Guard>> contexts;
        const ir::Instr &inst = hb.instrs[idx];
        if (inst.guards.size() <= 1) {
            contexts.push_back(info.contextOf(idx));
        } else {
            for (const ir::Guard &g : inst.guards)
                contexts.push_back(info.contextOfGuards({g}));
        }
        return contexts;
    };
    std::set<int> checked;
    for (const ir::Instr &a : hb.instrs) {
        if (!a.dst.isTemp() || !checked.insert(a.dst.id).second)
            continue;
        const std::vector<int> &defs = info.defsOf(a.dst.id);
        for (size_t x = 0; x < defs.size(); ++x) {
            for (size_t y = x + 1; y < defs.size(); ++y) {
                for (const auto &cx : disjunctContexts(defs[x])) {
                    for (const auto &cy : disjunctContexts(defs[y])) {
                        dfp_assert(
                            PredInfo::disjoint(cx, cy),
                            "hyperblock '", hb.name, "': defs of t",
                            a.dst.id, " at ", defs[x], " and ", defs[y],
                            " are not provably disjoint");
                    }
                }
            }
        }
    }
}

} // namespace dfp::core
