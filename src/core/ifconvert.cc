#include "core/ifconvert.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/pfg.h"
#include "ir/analysis.h"

namespace dfp::core
{

namespace
{

/** Estimated instruction cost of absorbing a block into a region. */
int
estimateCost(const ir::BBlock &block)
{
    // +2 covers the branch-condition test and per-edge overheads (phi
    // moves, join movis); fanout moves are budgeted by the caller via a
    // conservative instrBudget.
    int cost = static_cast<int>(block.instrs.size()) + 2;
    for (const ir::Instr &inst : block.instrs) {
        if (inst.op == isa::Op::Phi)
            cost += static_cast<int>(inst.srcs.size());
    }
    return cost;
}

int
countMemOps(const ir::BBlock &block)
{
    int n = 0;
    for (const ir::Instr &inst : block.instrs)
        n += inst.op == isa::Op::Ld || inst.op == isa::Op::St;
    return n;
}

/** Is the region subgraph acyclic if edges into @p head are ignored? */
bool
regionAcyclic(const ir::Function &fn, const std::set<int> &blocks,
              int head)
{
    std::map<int, int> color;
    std::function<bool(int)> dfs = [&](int u) -> bool {
        color[u] = 1;
        for (int s : fn.blocks[u].succs) {
            if (s == head || !blocks.count(s))
                continue;
            if (color[s] == 1)
                return false;
            if (color[s] == 0 && !dfs(s))
                return false;
        }
        color[u] = 2;
        return true;
    };
    for (int b : blocks) {
        if (color[b] == 0 && !dfs(b))
            return false;
    }
    return true;
}

} // namespace

RegionPlan
selectRegions(const ir::Function &fn, const RegionConfig &cfg)
{
    RegionPlan plan;
    plan.regionOf.assign(fn.blocks.size(), -1);
    std::vector<int> rpo = ir::reversePostorder(fn);
    std::vector<int> rpoIndex(fn.blocks.size(), -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = static_cast<int>(i);

    for (int h : rpo) {
        if (plan.regionOf[h] != -1)
            continue;
        int regionIdx = static_cast<int>(plan.regions.size());
        plan.regions.push_back({});
        Region &region = plan.regions.back();
        region.head = h;
        region.blocks.push_back(h);
        plan.regionOf[h] = regionIdx;

        std::set<int> members{h};
        int cost = estimateCost(fn.blocks[h]);
        int memOps = countMemOps(fn.blocks[h]);

        bool grew = true;
        while (grew && static_cast<int>(members.size()) <
                           cfg.maxBlocksPerRegion) {
            grew = false;
            for (int b : rpo) {
                if (static_cast<int>(members.size()) >=
                    cfg.maxBlocksPerRegion) {
                    break;
                }
                if (plan.regionOf[b] != -1 || b == h)
                    continue;
                const ir::BBlock &cand = fn.blocks[b];
                if (cand.preds.empty())
                    continue;
                bool predsIn = std::all_of(
                    cand.preds.begin(), cand.preds.end(),
                    [&](int p) { return members.count(p) > 0; });
                if (!predsIn)
                    continue;
                // Back edges are only allowed into the head.
                bool backEdgeOk = true;
                for (int s : cand.succs) {
                    if (s == h && !cfg.allowLoops)
                        backEdgeOk = false;
                }
                if (!backEdgeOk)
                    continue;
                int newCost = cost + estimateCost(cand);
                int newMem = memOps + countMemOps(cand);
                if (newCost > cfg.instrBudget || newMem > cfg.memOpBudget)
                    continue;
                members.insert(b);
                if (!regionAcyclic(fn, members, h)) {
                    members.erase(b);
                    continue;
                }
                plan.regionOf[b] = regionIdx;
                region.blocks.push_back(b);
                cost = newCost;
                memOps = newMem;
                grew = true;
            }
        }
        // Keep region blocks in RPO (head stays first).
        std::sort(region.blocks.begin() + 1, region.blocks.end(),
                  [&](int a, int b) { return rpoIndex[a] < rpoIndex[b]; });
    }
    return plan;
}

namespace
{

using OptGuard = std::optional<ir::Guard>;

/** Builds one hyperblock out of one region. */
class RegionConverter
{
  public:
    RegionConverter(ir::Function &fn, const Region &region,
                    const RegionPlan &plan)
        : fn_(fn), region_(region), plan_(plan),
          members_(region.blocks.begin(), region.blocks.end())
    {}

    ir::BBlock convert();

  private:
    void computeNodePreds();
    bool postDominatesHead(int b) const;
    ir::Guard edgeGuard(int from, int to);
    int branchPred(int p);

    ir::Function &fn_;
    const Region &region_;
    const RegionPlan &plan_;
    std::set<int> members_;

    std::map<int, OptGuard> nodePred_;
    std::map<int, int> branchPredTemp_;   //!< block -> tp temp
    std::map<int, bool> branchNeedsTest_; //!< tp requires a tnei
    std::map<int, std::vector<ir::Instr>> endInstrs_; //!< per-block tail
    std::map<int, int> joinPredTemp_;     //!< join block -> tj
};

bool
RegionConverter::postDominatesHead(int b) const
{
    // Does every maximal path from the head (following region-internal
    // forward edges) pass through b? Equivalent: in the region DAG with
    // edges into the head removed, can the head reach an exit without
    // touching b? Exits are edges leaving the region, edges to the head,
    // and Ret terminators.
    if (b == region_.head)
        return true;
    std::set<int> visited;
    std::vector<int> stack{region_.head};
    visited.insert(region_.head);
    while (!stack.empty()) {
        int u = stack.back();
        stack.pop_back();
        if (u == b)
            continue; // paths through b are fine; do not expand
        const ir::BBlock &block = fn_.blocks[u];
        if (block.term == ir::Term::Ret)
            return false;
        for (int s : block.succs) {
            if (s == region_.head || !members_.count(s))
                return false; // exit reachable while avoiding b
            if (visited.insert(s).second)
                stack.push_back(s);
        }
        if (block.succs.empty())
            return false;
    }
    return true;
}

int
RegionConverter::branchPred(int p)
{
    auto it = branchPredTemp_.find(p);
    if (it != branchPredTemp_.end())
        return it->second;

    const ir::BBlock &block = fn_.blocks[p];
    dfp_assert(block.term == ir::Term::Br, "branchPred on non-Br block");
    dfp_assert(block.cond.isTemp(),
               "unfolded constant branch in '", block.name, "'");

    // Reuse the condition when it is a test defined in this block.
    for (const ir::Instr &inst : block.instrs) {
        if (inst.dst == block.cond && isa::isTestOp(inst.op)) {
            branchPredTemp_[p] = block.cond.id;
            branchNeedsTest_[p] = false;
            return block.cond.id;
        }
    }
    int tp = fn_.newTemp();
    branchPredTemp_[p] = tp;
    branchNeedsTest_[p] = true;
    return tp;
}

ir::Guard
RegionConverter::edgeGuard(int from, int to)
{
    const ir::BBlock &block = fn_.blocks[from];
    if (block.term == ir::Term::Br) {
        int tp = branchPred(from);
        int trueSucc = fn_.blockId(block.succLabels[0]);
        int falseSucc = fn_.blockId(block.succLabels[1]);
        if (to == trueSucc && to == falseSucc)
            dfp_panic("degenerate br with identical successors in '",
                      block.name, "' should have been folded to jmp");
        return {tp, to == trueSucc};
    }
    dfp_assert(block.term == ir::Term::Jmp, "edgeGuard on bad terminator");
    OptGuard g = nodePred_.at(from);
    dfp_assert(g.has_value(),
               "unconditional edge guard requested where none exists");
    return *g;
}

void
RegionConverter::computeNodePreds()
{
    // Process in the region's RPO order; predecessors come first.
    for (int b : region_.blocks) {
        if (b == region_.head || postDominatesHead(b)) {
            nodePred_[b] = std::nullopt;
            continue;
        }
        std::vector<int> regionPreds;
        for (int p : fn_.blocks[b].preds) {
            dfp_assert(members_.count(p),
                       "region member '", fn_.blocks[b].name,
                       "' has external predecessor");
            regionPreds.push_back(p);
        }
        dfp_assert(!regionPreds.empty(), "non-head block without preds");
        if (regionPreds.size() == 1) {
            int p = regionPreds.front();
            if (fn_.blocks[p].term == ir::Term::Jmp) {
                nodePred_[b] = nodePred_.at(p);
                // A jmp-successor of an unpredicated block that does not
                // post-dominate the head cannot exist (see DESIGN.md),
                // but guard against it: fall through to join predicate.
                if (!nodePred_[b].has_value()) {
                    // p unpredicated + unconditional edge => b executes
                    // whenever p does; b inherits "always".
                    nodePred_[b] = std::nullopt;
                }
                continue;
            }
            nodePred_[b] = edgeGuard(p, b);
            continue;
        }
        // Join that does not post-dominate the head: join predicate.
        int tj = fn_.newTemp();
        joinPredTemp_[b] = tj;
        for (int p : regionPreds) {
            ir::Guard g = edgeGuard(p, b);
            ir::Instr movi;
            movi.op = isa::Op::Movi;
            movi.dst = ir::Opnd::temp(tj);
            movi.srcs.push_back(ir::Opnd::imm(1));
            movi.guards.push_back(g);
            endInstrs_[p].push_back(std::move(movi));
        }
        nodePred_[b] = ir::Guard{tj, true};
    }
}

ir::BBlock
RegionConverter::convert()
{
    computeNodePreds();

    // Pre-plan phi lowering: movs appended to each predecessor section.
    // Scan the whole block, not just a leading run: boundary lowering
    // keeps phis at the top, but be robust if that ever changes.
    for (int b : region_.blocks) {
        ir::BBlock &block = fn_.blocks[b];
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op != isa::Op::Phi)
                continue;
            dfp_assert(b != region_.head,
                       "phi at region head '", block.name,
                       "' must be lowered by boundary insertion first");
            for (size_t k = 0; k < inst.srcs.size(); ++k) {
                int p = inst.phiBlocks[k];
                dfp_assert(members_.count(p), "phi from outside region");
                ir::Instr mov;
                mov.op = inst.srcs[k].isImm() ? isa::Op::Movi
                                              : isa::Op::Mov;
                mov.dst = inst.dst;
                mov.srcs.push_back(inst.srcs[k]);
                // A degenerate (single-input) phi flows through an
                // unconditional edge: its move needs no guard. Real
                // joins always have guarded incoming edges.
                if (inst.srcs.size() == 1 &&
                    fn_.blocks[p].term == ir::Term::Jmp &&
                    !nodePred_.at(p).has_value()) {
                    endInstrs_[p].push_back(std::move(mov));
                    continue;
                }
                ir::Guard g = edgeGuard(p, b);
                mov.guards.push_back(g);
                endInstrs_[p].push_back(std::move(mov));
            }
        }
    }

    ir::BBlock hb;
    hb.name = fn_.blocks[region_.head].name;
    hb.term = ir::Term::Hyper;

    auto guardOf = [&](int b) {
        std::vector<ir::Guard> gs;
        if (nodePred_.at(b).has_value())
            gs.push_back(*nodePred_.at(b));
        return gs;
    };

    for (int b : region_.blocks) {
        ir::BBlock &block = fn_.blocks[b];
        std::vector<ir::Guard> guard = guardOf(b);

        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Phi)
                continue; // lowered above
            ir::Instr copy = inst;
            if (copy.op == isa::Op::Read) {
                // Register reads are unconditional queue entries.
                dfp_assert(guard.empty(),
                           "read under a predicate in '", block.name, "'");
            } else {
                for (const ir::Guard &g : guard)
                    copy.guards.push_back(g);
            }
            hb.instrs.push_back(std::move(copy));
        }

        // Branch-condition test (if the condition was not already a
        // test instruction inside this block).
        if (block.term == ir::Term::Br) {
            int tp = branchPred(b);
            if (branchNeedsTest_[b]) {
                ir::Instr test;
                test.op = isa::Op::Tnei;
                test.dst = ir::Opnd::temp(tp);
                test.srcs.push_back(block.cond);
                test.srcs.push_back(ir::Opnd::imm(0));
                test.guards = guard;
                hb.instrs.push_back(std::move(test));
            }
        }

        // Edge bookkeeping: phi moves and join-predicate movis.
        auto pending = endInstrs_.find(b);
        if (pending != endInstrs_.end()) {
            for (ir::Instr &inst : pending->second)
                hb.instrs.push_back(std::move(inst));
        }

        // Exits.
        auto emitBro = [&](const std::string &label,
                           const std::vector<ir::Guard> &gs) {
            ir::Instr bro;
            bro.op = isa::Op::Bro;
            bro.broLabel = label;
            bro.guards = gs;
            hb.instrs.push_back(std::move(bro));
        };
        switch (block.term) {
          case ir::Term::Ret: {
            dfp_assert(block.retVal.isNone(),
                       "ret with value must be lowered by boundary "
                       "insertion before if-conversion");
            emitBro("@halt", guard);
            break;
          }
          case ir::Term::Jmp: {
            int s = fn_.blockId(block.succLabels[0]);
            if (s == region_.head) {
                emitBro(hb.name, guard);
            } else if (!members_.count(s)) {
                emitBro(fn_.blocks[s].name, guard);
            }
            break;
          }
          case ir::Term::Br: {
            for (int which = 0; which < 2; ++which) {
                int s = fn_.blockId(block.succLabels[which]);
                ir::Guard g{branchPred(b), which == 0};
                if (s == region_.head) {
                    emitBro(hb.name, {g});
                } else if (!members_.count(s)) {
                    emitBro(fn_.blocks[s].name, {g});
                }
            }
            break;
          }
          default:
            dfp_panic("bad terminator during if-conversion");
        }
    }
    return hb;
}

} // namespace

int
coalescePhiMovs(ir::BBlock &hb)
{
    int eliminated = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        PredInfo info(hb);
        for (size_t i = 0; i < hb.instrs.size(); ++i) {
            const ir::Instr &mov = hb.instrs[i];
            if (mov.op != isa::Op::Mov || !mov.srcs[0].isTemp() ||
                !mov.dst.isTemp()) {
                continue;
            }
            int s = mov.srcs[0].id;
            const std::vector<int> &defs = info.defsOf(s);
            if (defs.size() != 1)
                continue;
            const std::vector<int> &uses = info.usesOf(s);
            if (uses.size() != 1 || uses[0] != static_cast<int>(i))
                continue;
            int dIdx = defs[0];
            const ir::Instr &producer = hb.instrs[dIdx];
            switch (producer.op) {
              case isa::Op::Ld:   // moving a load reorders LSIDs
              case isa::Op::St:
              case isa::Op::Read: // read slots are unconditional
              case isa::Op::Null:
              case isa::Op::Bro:
              case isa::Op::Write:
              case isa::Op::Phi:
                continue;
              default:
                break;
            }
            if (producer.canExcept())
                continue; // narrowing a faulting op's guard is fine, but
                          // keep it simple and conservative
            // Replace the mov with the producer (renamed + re-guarded)
            // at the mov's position; drop the original producer.
            ir::Instr folded = producer;
            folded.dst = mov.dst;
            folded.guards = mov.guards;
            hb.instrs[i] = std::move(folded);
            hb.instrs.erase(hb.instrs.begin() + dIdx);
            ++eliminated;
            changed = true;
            break; // indices shifted; rebuild analyses
        }
    }
    return eliminated;
}

void
ifConvert(ir::Function &fn, const RegionPlan &plan)
{
    std::vector<ir::BBlock> hyperblocks;
    hyperblocks.reserve(plan.regions.size());
    for (const Region &region : plan.regions)
        hyperblocks.push_back(RegionConverter(fn, region, plan).convert());

    // Entry block's region must come first.
    int entryRegion = plan.regionOf[fn.entry];
    std::swap(hyperblocks[0], hyperblocks[entryRegion]);

    ir::Function result;
    result.name = fn.name;
    for (int t = 0; t < fn.tempCount(); ++t)
        result.noteTemp(t);
    for (ir::BBlock &hb : hyperblocks) {
        ir::BBlock &added = result.addBlock(hb.name);
        added.instrs = std::move(hb.instrs);
        added.term = ir::Term::Hyper;
        coalescePhiMovs(added);
    }
    result.entry = 0;
    result.computeCfg();
    result.verify();
    fn = std::move(result);
}

} // namespace dfp::core
