#include "core/path_sensitive.h"

#include <map>
#include <set>
#include <vector>

#include "core/null_insertion.h"
#include "core/pfg.h"

namespace dfp::core
{

namespace
{

/** Cross-hyperblock liveness of virtual registers. */
class RegLiveness
{
  public:
    explicit RegLiveness(const ir::Function &fn) : fn_(fn)
    {
        size_t n = fn.blocks.size();
        liveIn_.assign(n, {});
        std::vector<std::set<int>> use(n), kill(n);
        for (const ir::BBlock &block : fn.blocks) {
            // A register is killed when the block value-writes it
            // unconditionally (a guarded or null write may preserve the
            // incoming value on some path).
            std::set<int> nullFed;
            for (const ir::Instr &inst : block.instrs) {
                if (inst.op == isa::Op::Null && inst.dst.isTemp())
                    nullFed.insert(inst.dst.id);
            }
            for (const ir::Instr &inst : block.instrs) {
                if (inst.op == isa::Op::Read) {
                    use[block.id].insert(inst.reg);
                } else if (inst.op == isa::Op::Write &&
                           inst.guards.empty() &&
                           !(inst.srcs[0].isTemp() &&
                             nullFed.count(inst.srcs[0].id))) {
                    kill[block.id].insert(inst.reg);
                }
            }
        }
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t b = n; b-- > 0;) {
                std::set<int> out;
                for (int s : fn.blocks[b].succs) {
                    for (int r : liveIn_[s])
                        out.insert(r);
                }
                if (hasHaltExit(fn.blocks[b]))
                    out.insert(kRetVirtReg);
                std::set<int> in = use[b];
                for (int r : out) {
                    if (!kill[b].count(r))
                        in.insert(r);
                }
                if (in != liveIn_[b]) {
                    liveIn_[b] = std::move(in);
                    changed = true;
                }
            }
        }
    }

    /** Is @p reg live when leaving via the bro labelled @p label? */
    bool
    liveAtExit(const std::string &label, int reg) const
    {
        if (label == "@halt")
            return reg == kRetVirtReg;
        int b = fn_.blockId(label);
        dfp_assert(b >= 0, "unknown exit label '", label, "'");
        return liveIn_[b].count(reg) > 0;
    }

  private:
    static bool
    hasHaltExit(const ir::BBlock &block)
    {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Bro && inst.broLabel == "@halt")
                return true;
        }
        return false;
    }

    const ir::Function &fn_;
    std::vector<std::set<int>> liveIn_;
};

/** Try to collect the unconditional-promotion chain rooted at @p idx.
 *  Returns false (and leaves @p chain unspecified) if any member fails
 *  the §5.2 conditions. */
bool
collectChain(const ir::BBlock &hb, const PredInfo &info,
             const std::set<int> &definesPred, int idx,
             std::set<int> &chain)
{
    if (chain.count(idx))
        return true;
    const ir::Instr &inst = hb.instrs[idx];
    switch (inst.op) {
      case isa::Op::Read:
        chain.insert(idx);
        return true; // reads always fire
      case isa::Op::Bro:
      case isa::Op::St:
      case isa::Op::Null:
        return false;
      default:
        break;
    }
    if (inst.op != isa::Op::Write) {
        if (!inst.dst.isTemp())
            return false;
        if (info.defsOf(inst.dst.id).size() != 1)
            return false; // an arm of a dataflow join
        if (definesPred.count(inst.dst.id))
            return false; // predicate definitions anchor AND chains
    }
    if (inst.canExcept() && inst.op != isa::Op::Ld)
        return false;
    chain.insert(idx);
    for (const ir::Opnd &src : inst.srcs) {
        if (!src.isTemp())
            continue;
        const std::vector<int> &defs = info.defsOf(src.id);
        if (defs.size() != 1)
            return false;
        if (!collectChain(hb, info, definesPred, defs.front(), chain))
            return false;
    }
    return true;
}

int
processHyperblock(ir::BBlock &hb, const RegLiveness &live)
{
    PredInfo info(hb);
    std::set<int> definesPred;
    for (const ir::Instr &inst : hb.instrs) {
        for (const ir::Guard &g : inst.guards)
            definesPred.insert(g.pred);
    }

    // Gather writes per register, split into value writes and null
    // compensations (src defined by a Null instruction).
    std::map<int, std::vector<int>> valueWrites, nullWrites;
    for (size_t i = 0; i < hb.instrs.size(); ++i) {
        const ir::Instr &inst = hb.instrs[i];
        if (inst.op != isa::Op::Write)
            continue;
        bool isNull = false;
        if (inst.srcs[0].isTemp()) {
            const auto &defs = info.defsOf(inst.srcs[0].id);
            isNull = defs.size() == 1 &&
                     hb.instrs[defs.front()].op == isa::Op::Null;
        }
        (isNull ? nullWrites : valueWrites)[inst.reg].push_back(
            static_cast<int>(i));
    }

    std::set<int> deleted;
    std::set<int> unguarded;
    int changes = 0;

    for (auto &[reg, writes] : valueWrites) {
        if (writes.size() != 1)
            continue;
        auto nw = nullWrites.find(reg);
        if (nw == nullWrites.end() || nw->second.empty())
            continue; // no compensation to save
        int wv = writes.front();
        if (hb.instrs[wv].guards.empty())
            continue;
        auto cv = info.contextOf(wv);
        if (cv.empty())
            continue;

        // (2) the write must dominate every exit on which reg is live.
        bool ok = true;
        for (const ir::Instr &inst : hb.instrs) {
            if (inst.op != isa::Op::Bro)
                continue;
            if (!live.liveAtExit(inst.broLabel, reg))
                continue;
            auto ce = info.contextOfGuards(inst.guards);
            if (!PredInfo::implies(ce, cv)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        // (3)/(4): the whole upward chain must promote.
        std::set<int> chain;
        if (!collectChain(hb, info, definesPred, wv, chain))
            continue;

        // Apply: unguard the chain, delete the compensations.
        for (int idx : chain) {
            if (!hb.instrs[idx].guards.empty()) {
                hb.instrs[idx].guards.clear();
                unguarded.insert(idx);
                ++changes;
            }
        }
        for (int idx : nw->second) {
            deleted.insert(idx);
            ++changes;
            // Delete the feeding Null too when this was its only use.
            const ir::Instr &w = hb.instrs[idx];
            if (w.srcs[0].isTemp() &&
                info.usesOf(w.srcs[0].id).size() == 1) {
                deleted.insert(info.defsOf(w.srcs[0].id).front());
            }
        }
        nw->second.clear();
    }

    if (!deleted.empty()) {
        std::vector<ir::Instr> kept;
        kept.reserve(hb.instrs.size() - deleted.size());
        for (size_t i = 0; i < hb.instrs.size(); ++i) {
            if (!deleted.count(static_cast<int>(i)))
                kept.push_back(std::move(hb.instrs[i]));
        }
        hb.instrs = std::move(kept);
    }
    return changes;
}

} // namespace

int
removePathSensitivePreds(ir::Function &fn)
{
    RegLiveness live(fn);
    int changes = 0;
    for (ir::BBlock &block : fn.blocks) {
        if (block.term == ir::Term::Hyper)
            changes += processHyperblock(block, live);
    }
    return changes;
}

} // namespace dfp::core
