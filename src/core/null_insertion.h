/**
 * @file
 * Boundary lowering: the bridge between whole-function SSA and
 * block-atomic execution. Values that cross region boundaries move
 * through (virtual) architectural registers via Read/Write queue
 * entries, and every region is made output-consistent: on every path it
 * writes the same set of registers, inserting null-token writes (paper
 * §4.2) on paths that must preserve the old value.
 *
 * Concretely, for a function in SSA form with a region plan:
 *  1. `ret v` lowers to a Write of virtual register 0 (the return
 *     register, later pinned to g1);
 *  2. each SSA value used outside its defining region gets a virtual
 *     register, a Write inserted immediately after its definition, and
 *     one Read at the top of every region that uses it;
 *  3. each phi at a region head gets its own virtual register: the phi
 *     becomes a Read, and every incoming CFG edge gets a Write of the
 *     edge's value (edges are split when the predecessor has multiple
 *     successors, including loop back edges);
 *  4. a must-written dataflow analysis per region finds exit paths that
 *     miss a write of some register the region writes elsewhere, and
 *     inserts `t = null; write r, t` compensation there (§4.2's
 *     alternative to copying the old value through the block).
 *
 * The region plan is updated in place as edges are split.
 */

#ifndef DFP_CORE_NULL_INSERTION_H
#define DFP_CORE_NULL_INSERTION_H

#include "core/ifconvert.h"
#include "ir/ir.h"

namespace dfp::core
{

/** Virtual register carrying the kernel return value (pinned to g1). */
constexpr int kRetVirtReg = 0;

/** Statistics a caller may want after lowering. */
struct BoundaryStats
{
    int virtRegs = 0;       //!< virtual registers allocated (incl. ret)
    int valueWrites = 0;    //!< writes of computed values
    int nullWrites = 0;     //!< compensation null writes (§4.2)
    int reads = 0;          //!< read queue entries inserted
    int splitBlocks = 0;    //!< blocks created by edge splitting
};

/** Run boundary lowering; see file comment. */
BoundaryStats lowerBoundaries(ir::Function &fn, RegionPlan &plan);

/**
 * Split the CFG edge @p from -> @p to with a fresh empty block that
 * jumps to @p to; updates terminator labels and phi incoming blocks.
 * Returns the new block's id. Exposed for tests.
 */
int splitEdge(ir::Function &fn, int from, int to);

} // namespace dfp::core

#endif // DFP_CORE_NULL_INSERTION_H
