#include "core/merging.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/logging.h"
#include "core/pfg.h"
#include "ir/analysis.h"

namespace dfp::core
{

namespace
{

/** Lexical-equivalence key: everything but the guards. */
std::string
lexKey(const ir::Instr &inst)
{
    std::string key = isa::opName(inst.op);
    auto addOpnd = [&](const ir::Opnd &o) {
        switch (o.kind) {
          case ir::Kind::None: key += "|_"; break;
          case ir::Kind::Temp: key += detail::cat("|t", o.id); break;
          case ir::Kind::Imm:  key += detail::cat("|#", o.value); break;
        }
    };
    addOpnd(inst.dst);
    for (const ir::Opnd &src : inst.srcs)
        addOpnd(src);
    // The LSID is part of the instruction's identity: null tokens and
    // stores with different LSIDs resolve different header-mask bits,
    // so merging across LSIDs would double-resolve one and starve the
    // other (dfp-lint DFPV206/207 catch exactly this).
    key += detail::cat("|r", inst.reg, "|l", inst.lsid, "|",
                       inst.broLabel);
    return key;
}

bool
mergeableOp(const ir::Instr &inst)
{
    switch (inst.op) {
      case isa::Op::Read:
      case isa::Op::Phi:
        return false;
      default:
        return !isa::isPseudoOp(inst.op);
    }
}

/** One merging round; returns instructions eliminated. */
int
mergeRound(ir::BBlock &hb)
{
    PredInfo info(hb);
    const int n = static_cast<int>(hb.instrs.size());

    // First definition index and first use index per temp, to bound the
    // legal placement window for a merged instruction.
    std::map<int, int> firstUse;
    for (int i = 0; i < n; ++i) {
        std::vector<int> uses;
        ir::collectUses(hb.instrs[i], uses);
        for (int t : uses) {
            if (!firstUse.count(t))
                firstUse[t] = i;
        }
    }

    // Value (non-guard) uses of each temp, to know when a predicate's
    // defining test may be flipped for category-3 merging.
    std::set<int> hasValueUse;
    for (const ir::Instr &inst : hb.instrs) {
        for (const ir::Opnd &src : inst.srcs) {
            if (src.isTemp())
                hasValueUse.insert(src.id);
        }
    }

    std::map<std::string, std::vector<int>> groups;
    for (int i = 0; i < n; ++i) {
        const ir::Instr &inst = hb.instrs[i];
        if (!mergeableOp(inst) || inst.guards.size() != 1)
            continue;
        groups[lexKey(inst)].push_back(i);
    }

    for (auto &[key, members] : groups) {
        (void)key;
        if (members.size() < 2)
            continue;
        for (size_t x = 0; x < members.size(); ++x) {
            for (size_t y = x + 1; y < members.size(); ++y) {
                int a = members[x], b = members[y];
                const ir::Instr &ia = hb.instrs[a];
                const ir::Instr &ib = hb.instrs[b];
                ir::Guard ga = ia.guards.front();
                ir::Guard gb = ib.guards.front();

                std::vector<ir::Guard> newGuards;
                bool flipB = false;

                if (ga.pred == gb.pred && ga.onTrue != gb.onTrue) {
                    // Category 1: promote to the dominating predicate
                    // block = the guards of the predicate's definition.
                    const auto &defs = info.defsOf(ga.pred);
                    if (defs.size() != 1)
                        continue;
                    newGuards = hb.instrs[defs.front()].guards;
                } else if (ga.pred != gb.pred) {
                    ir::Guard gbEff = gb;
                    if (ga.onTrue != gb.onTrue) {
                        // Category 3: flip gb's defining test first.
                        const auto &defs = info.defsOf(gb.pred);
                        if (defs.size() != 1)
                            continue;
                        const ir::Instr &test = hb.instrs[defs.front()];
                        if (!isa::isTestOp(test.op) ||
                            isa::invertedTest(test.op) == isa::Op::NumOps)
                            continue;
                        if (hasValueUse.count(gb.pred))
                            continue;
                        // Flipping rewrites every guard on this
                        // predicate; a consumer holding it inside a
                        // predicate-OR set would end up mixed-polarity.
                        bool orUse = false;
                        for (const ir::Instr &other : hb.instrs) {
                            if (other.guards.size() < 2)
                                continue;
                            for (const ir::Guard &g : other.guards)
                                orUse |= g.pred == gb.pred;
                        }
                        if (orUse)
                            continue;
                        gbEff.onTrue = !gbEff.onTrue;
                        flipB = true;
                    }
                    // Category 2: both guards, provably disjoint.
                    if (!PredInfo::disjoint(info.contextOf(a),
                                            info.contextOf(b))) {
                        continue;
                    }
                    newGuards = {ga, gbEff};
                } else {
                    continue; // identical guards: plain duplicate; CSE's
                              // job, not predicate merging's
                }

                // Placement: after every guard/source definition, before
                // the first use of the destination.
                int earliest = 0;
                auto needAfter = [&](int temp) {
                    for (int d : info.defsOf(temp))
                        earliest = std::max(earliest, d + 1);
                };
                for (const ir::Guard &g : newGuards)
                    needAfter(g.pred);
                for (const ir::Opnd &src : ia.srcs) {
                    if (src.isTemp())
                        needAfter(src.id);
                }
                int latest = n;
                if (ia.dst.isTemp() && firstUse.count(ia.dst.id))
                    latest = firstUse[ia.dst.id];
                // The merged instruction replaces the earlier original
                // in place when legal, else moves into the window.
                int pos = std::min(a, b);
                if (pos < earliest)
                    pos = earliest;
                if (pos > latest)
                    continue;

                // Apply the merge: rewrite instruction 'a', drop 'b'.
                // Tentatively — a flip or an OR-def can break the
                // guard *chains* other joins' disjointness proofs run
                // through, so the result is validated below and rolled
                // back if the hyperblock invariants no longer hold.
                std::vector<ir::Instr> saved = hb.instrs;
                if (flipB) {
                    int defIdx = info.defsOf(gb.pred).front();
                    ir::Instr &test = hb.instrs[defIdx];
                    test.op = isa::invertedTest(test.op);
                    for (ir::Instr &other : hb.instrs) {
                        for (ir::Guard &g : other.guards) {
                            if (g.pred == gb.pred)
                                g.onTrue = !g.onTrue;
                        }
                    }
                    // newGuards already carries the flipped polarity
                    // (gbEff); consumers of the old polarity were
                    // rewritten above.
                }
                ir::Instr merged = hb.instrs[a];
                merged.guards = newGuards;

                std::vector<ir::Instr> next;
                next.reserve(n - 1);
                for (int i = 0; i < n; ++i) {
                    if (i == a || i == b)
                        continue;
                    if (static_cast<int>(next.size()) == pos)
                        next.push_back(merged);
                    next.push_back(std::move(hb.instrs[i]));
                }
                if (static_cast<int>(next.size()) < pos + 1)
                    next.push_back(merged);
                hb.instrs = std::move(next);
                try {
                    checkHyperblock(hb);
                } catch (const PanicError &) {
                    // The merged block no longer proves its own
                    // invariants (e.g. a join temp's disjointness
                    // chained through a predicate this merge turned
                    // into an atomic OR-node). Skip this candidate.
                    hb.instrs = std::move(saved);
                    continue;
                }
                return 1; // restart with fresh analyses
            }
        }
    }
    return 0;
}

} // namespace

int
mergeDisjointInstructions(ir::BBlock &hb)
{
    dfp_assert(hb.term == ir::Term::Hyper, "merging needs a hyperblock");
    int eliminated = 0;
    while (mergeRound(hb) > 0)
        ++eliminated;
    checkHyperblock(hb);
    return eliminated;
}

int
mergeDisjointInstructions(ir::Function &fn)
{
    int eliminated = 0;
    for (ir::BBlock &block : fn.blocks) {
        if (block.term == ir::Term::Hyper)
            eliminated += mergeDisjointInstructions(block);
    }
    return eliminated;
}

} // namespace dfp::core
