#include "core/pred_fanout.h"

#include <set>

#include "core/pfg.h"

namespace dfp::core
{

int
reducePredFanout(ir::BBlock &hb)
{
    dfp_assert(hb.term == ir::Term::Hyper, "fanout reduction needs a "
                                           "hyperblock");
    PredInfo info(hb);

    // Temps whose value is consumed as a predicate somewhere.
    std::set<int> definesPred;
    for (const ir::Instr &inst : hb.instrs) {
        for (const ir::Guard &g : inst.guards)
            definesPred.insert(g.pred);
    }

    int removed = 0;
    for (ir::Instr &inst : hb.instrs) {
        if (inst.guards.empty())
            continue;
        // (1) branches, stores, writes, and null generators feed counted
        // block outputs and must stay guarded.
        if (inst.op == isa::Op::Bro || inst.op == isa::Op::St ||
            inst.op == isa::Op::Write || inst.op == isa::Op::Null) {
            continue;
        }
        if (!inst.dst.isTemp())
            continue;
        // (2) predicate-defining instructions keep their guards: they
        // anchor the implicit AND chains (§3.4) and the join predicates.
        if (definesPred.count(inst.dst.id))
            continue;
        // (4) one arm of a dataflow join cannot be promoted.
        if (info.defsOf(inst.dst.id).size() != 1)
            continue;
        // Safety: no speculative faults except loads (§4.4).
        if (inst.canExcept() && inst.op != isa::Op::Ld)
            continue;
        removed += static_cast<int>(inst.guards.size());
        inst.guards.clear();
    }
    return removed;
}

int
reducePredFanout(ir::Function &fn)
{
    int removed = 0;
    for (ir::BBlock &block : fn.blocks) {
        if (block.term == ir::Term::Hyper)
            removed += reducePredFanout(block);
    }
    return removed;
}

} // namespace dfp::core
