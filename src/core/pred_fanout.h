/**
 * @file
 * Predicate fanout reduction (paper §5.1, the "intra" configuration).
 *
 * Removes the guard from instructions where implicit predication (§3.6)
 * or speculative hoisting preserves semantics, shrinking the software
 * fanout trees that would otherwise distribute each predicate to every
 * consumer. Following the paper, a predicate is removed when ALL of:
 *   (1) the instruction is not a branch or store (nor a register write
 *       or null token generator — those feed counted block outputs);
 *   (2) it does not define a predicate (its result guards nothing);
 *   (3) it does not define a block output (in dfp terms: Write
 *       instructions keep their guards; everything else defines temps);
 *   (4) its destination is not one arm of a dataflow join (the analog
 *       of "not used by an SSA phi": the temp has a single definition,
 *       so un-guarding cannot make two producers fire).
 * plus one safety condition the paper folds into §4.4: instructions
 * that can raise an exception other than loads are not promoted
 * (speculative loads are allowed, as in the paper's hoisting).
 */

#ifndef DFP_CORE_PRED_FANOUT_H
#define DFP_CORE_PRED_FANOUT_H

#include "ir/ir.h"

namespace dfp::core
{

/** Apply fanout reduction to one hyperblock; returns guards removed. */
int reducePredFanout(ir::BBlock &hb);

/** Apply to every hyperblock of a function; returns guards removed. */
int reducePredFanout(ir::Function &fn);

} // namespace dfp::core

#endif // DFP_CORE_PRED_FANOUT_H
