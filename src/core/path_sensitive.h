/**
 * @file
 * Path-sensitive predicate removal (paper §5.2, the "inter"
 * configuration).
 *
 * A register the block writes on one path but not another carries
 * null-token compensation writes on the paths without a definition
 * (§4.2, inserted by boundary lowering). When the register is *dead* on
 * every exit the value-write does not dominate, the defining chain can
 * be promoted to execute unconditionally and the compensation writes
 * deleted — the paper's "promote instructions that define live
 * registers to execute unconditionally", which shortens dependence
 * chains and resolves the register write (and the branch predictor's
 * view of the block) earlier.
 *
 * Candidate conditions, after §5.2: (1) the register is written by
 * exactly one value-producing write (plus null compensations);
 * (2) the write's guard context is implied by every exit on which the
 * register is live (it "dominates the exits on which it is live");
 * (3) no instruction in the promoted chain can raise an exception
 * (speculative loads allowed, consistent with §5.1 hoisting); and
 * (4) promotion only unguards the upward dependence chain — any
 * instruction in the chain that is an arm of a dataflow join or defines
 * a predicate aborts the candidate.
 */

#ifndef DFP_CORE_PATH_SENSITIVE_H
#define DFP_CORE_PATH_SENSITIVE_H

#include "ir/ir.h"

namespace dfp::core
{

/**
 * Apply path-sensitive predicate removal to every hyperblock of @p fn.
 * Requires hyperblock form with virtual-register Read/Write boundary
 * code (liveness of virtual registers is computed across hyperblocks).
 * Returns the number of instructions removed or unguarded.
 */
int removePathSensitivePreds(ir::Function &fn);

} // namespace dfp::core

#endif // DFP_CORE_PATH_SENSITIVE_H
