#include "core/ssa.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ir/analysis.h"

namespace dfp::core
{

namespace
{

/** Classic Cytron SSA builder. */
class SsaBuilder
{
  public:
    explicit SsaBuilder(ir::Function &fn) : fn_(fn) {}

    void run();

  private:
    void insertPhis();
    void rename(int block);

    ir::Function &fn_;
    ir::DomTree dom_;
    std::vector<std::vector<int>> domChildren_;
    std::map<int, std::vector<int>> stacks_; //!< original temp -> versions
    std::vector<int> pendingZeros_; //!< implicit-zero versions to insert
};

void
SsaBuilder::insertPhis()
{
    dom_ = ir::computeDominators(fn_);
    auto df = ir::dominanceFrontiers(fn_, dom_);

    domChildren_.assign(fn_.blocks.size(), {});
    for (size_t b = 0; b < fn_.blocks.size(); ++b) {
        if (dom_.idom[b] != -1)
            domChildren_[dom_.idom[b]].push_back(static_cast<int>(b));
    }

    // Defsites per temp.
    std::map<int, std::set<int>> defsites;
    std::map<int, std::set<int>> defsIn; // block -> temps defined
    for (const ir::BBlock &block : fn_.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp()) {
                defsites[inst.dst.id].insert(block.id);
                defsIn[block.id].insert(inst.dst.id);
            }
        }
    }
    // Liveness limits phi insertion (pruned SSA keeps blocks small).
    ir::Liveness live = ir::computeLiveness(fn_);

    for (auto &[temp, sites] : defsites) {
        if (sites.size() < 2 && !sites.count(fn_.entry)) {
            // Still may need phis if defined once inside a loop and used
            // around the back edge; the general worklist below covers it,
            // so no shortcut here.
        }
        std::set<int> hasPhi;
        std::vector<int> work(sites.begin(), sites.end());
        while (!work.empty()) {
            int b = work.back();
            work.pop_back();
            for (int y : df[b]) {
                if (hasPhi.count(y) || !live.liveIn[y].count(temp))
                    continue;
                hasPhi.insert(y);
                ir::Instr phi;
                phi.op = isa::Op::Phi;
                phi.dst = ir::Opnd::temp(temp);
                for (int p : fn_.blocks[y].preds) {
                    phi.srcs.push_back(ir::Opnd::temp(temp));
                    phi.phiBlocks.push_back(p);
                }
                fn_.blocks[y].instrs.insert(fn_.blocks[y].instrs.begin(),
                                            phi);
                if (!defsIn[y].count(temp)) {
                    defsIn[y].insert(temp);
                    work.push_back(y);
                }
            }
        }
    }
}

void
SsaBuilder::rename(int block)
{
    ir::BBlock &bb = fn_.blocks[block];
    std::map<int, int> pushed; // original temp -> count pushed here

    auto top = [&](int orig) -> int {
        auto it = stacks_.find(orig);
        if (it == stacks_.end() || it->second.empty()) {
            // Use before def: implicitly zero. Allocate a version now and
            // materialize a single "movi 0" at function entry after the
            // renaming walk finishes (vector mutation during iteration is
            // not safe here).
            int v = fn_.newTemp();
            pendingZeros_.push_back(v);
            stacks_[orig].push_back(v);
            // Deliberately never popped: acts as the entry definition.
            return v;
        }
        return it->second.back();
    };
    auto defineNew = [&](int orig) {
        int v = fn_.newTemp();
        stacks_[orig].push_back(v);
        ++pushed[orig];
        return v;
    };

    for (ir::Instr &inst : bb.instrs) {
        if (inst.op != isa::Op::Phi) {
            for (ir::Opnd &src : inst.srcs) {
                if (src.isTemp())
                    src = ir::Opnd::temp(top(src.id));
            }
        }
        if (inst.dst.isTemp())
            inst.dst = ir::Opnd::temp(defineNew(inst.dst.id));
    }
    if (bb.cond.isTemp())
        bb.cond = ir::Opnd::temp(top(bb.cond.id));
    if (bb.retVal.isTemp())
        bb.retVal = ir::Opnd::temp(top(bb.retVal.id));

    for (int succ : bb.succs) {
        for (ir::Instr &inst : fn_.blocks[succ].instrs) {
            if (inst.op != isa::Op::Phi)
                break;
            for (size_t k = 0; k < inst.phiBlocks.size(); ++k) {
                if (inst.phiBlocks[k] == block && inst.srcs[k].isTemp())
                    inst.srcs[k] = ir::Opnd::temp(top(inst.srcs[k].id));
            }
        }
    }
    for (int child : domChildren_[block])
        rename(child);

    for (auto &[orig, count] : pushed) {
        for (int i = 0; i < count; ++i)
            stacks_[orig].pop_back();
    }
}

void
SsaBuilder::run()
{
    fn_.pruneUnreachable();
    // The renaming below assigns fresh temps to dsts; uses renamed via
    // stacks. Phis must appear before other instructions in each block.
    insertPhis();
    rename(fn_.entry);
    // Materialize implicit-zero definitions at entry, after any phis.
    if (!pendingZeros_.empty()) {
        auto &entry = fn_.blocks[fn_.entry].instrs;
        size_t pos = 0;
        while (pos < entry.size() && entry[pos].op == isa::Op::Phi)
            ++pos;
        for (int v : pendingZeros_) {
            ir::Instr zero;
            zero.op = isa::Op::Movi;
            zero.dst = ir::Opnd::temp(v);
            zero.srcs.push_back(ir::Opnd::imm(0));
            entry.insert(entry.begin() + pos, zero);
        }
    }
    fn_.computeCfg();
    fn_.verify();
}

} // namespace

void
buildSsa(ir::Function &fn)
{
    SsaBuilder(fn).run();
}

bool
isSsa(const ir::Function &fn)
{
    std::set<int> defs;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp() && !defs.insert(inst.dst.id).second)
                return false;
        }
    }
    return true;
}

} // namespace dfp::core
