#include "core/hb_eval.h"

#include <optional>
#include <set>
#include <vector>

#include "isa/alu.h"

namespace dfp::core
{

namespace
{

struct Value
{
    uint64_t bits = 0;
    bool null = false;
};

} // namespace

HbOutcome
evalHyperblock(const ir::BBlock &hb, std::map<int, uint64_t> &regs,
               isa::Memory &mem, StatSet *stats)
{
    HbOutcome out;
    dfp_assert(hb.term == ir::Term::Hyper, "not a hyperblock");

    std::map<int, Value> env;
    std::optional<std::string> branch;
    // Pending register writes commit only after the whole block runs.
    std::vector<std::pair<int, Value>> writes;

    auto defined = [&](int t) { return env.count(t) > 0; };

    for (size_t i = 0; i < hb.instrs.size(); ++i) {
        const ir::Instr &inst = hb.instrs[i];
        dfp_assert(inst.op != isa::Op::Phi,
                   "hb_eval cannot evaluate entry phis; lower boundaries "
                   "first");

        // Guard check: fire only if some guard predicate matches.
        if (!inst.guards.empty()) {
            bool matched = false;
            for (const ir::Guard &g : inst.guards) {
                if (defined(g.pred) && !env[g.pred].null &&
                    ((env[g.pred].bits & 1) != 0) == g.onTrue) {
                    matched = true;
                    break;
                }
            }
            if (!matched)
                continue;
        }
        // Implicit predication: skip when any source temp is undefined.
        bool srcsReady = true;
        for (const ir::Opnd &src : inst.srcs)
            srcsReady &= !src.isTemp() || defined(src.id);
        if (!srcsReady)
            continue;

        auto val = [&](const ir::Opnd &o) -> Value {
            if (o.isImm())
                return {static_cast<uint64_t>(o.value), false};
            return env[o.id];
        };
        auto setDst = [&](Value v) {
            dfp_assert(inst.dst.isTemp(), "dst expected");
            env[inst.dst.id] = v;
        };

        ++out.fired;
        if (stats)
            stats->inc("hb.fired");

        switch (inst.op) {
          case isa::Op::Read:
            setDst({regs.count(inst.reg) ? regs[inst.reg] : 0, false});
            break;
          case isa::Op::Write:
            writes.push_back({inst.reg, val(inst.srcs[0])});
            break;
          case isa::Op::Null:
            // A null with a destination feeds a write slot; a null
            // tagged with a store token (no destination) only matters
            // for target-level output counting.
            if (inst.dst.isTemp())
                setDst({0, true});
            break;
          case isa::Op::Mov:
          case isa::Op::Movi:
            setDst(val(inst.srcs[0]));
            if (stats)
                stats->inc("hb.moves");
            break;
          case isa::Op::Ld: {
            Value a = val(inst.srcs[0]);
            Value off = val(inst.srcs[1]);
            if (a.null) {
                setDst({0, true});
                break;
            }
            uint64_t addr = a.bits + off.bits;
            if (addr & 7) {
                out.error = detail::cat("hb '", hb.name,
                                        "': misaligned load");
                return out;
            }
            setDst({mem.load(addr), false});
            break;
          }
          case isa::Op::St: {
            Value a = val(inst.srcs[0]);
            Value v = val(inst.srcs[1]);
            Value off = val(inst.srcs[2]);
            if (a.null || v.null)
                break; // nullified store
            uint64_t addr = a.bits + off.bits;
            if (addr & 7) {
                out.error = detail::cat("hb '", hb.name,
                                        "': misaligned store");
                return out;
            }
            mem.store(addr, v.bits);
            break;
          }
          case isa::Op::Bro:
            if (branch.has_value()) {
                out.error = detail::cat("hb '", hb.name,
                                        "': two branches fired");
                return out;
            }
            branch = inst.broLabel;
            break;
          default: {
            dfp_assert(!isa::isPseudoOp(inst.op),
                       "pseudo-op in hyperblock body");
            isa::Token a, b;
            const auto &info = isa::opInfo(inst.op);
            Value va, vb;
            if (info.numSrcs >= 1) {
                va = val(inst.srcs[0]);
                a.value = va.bits;
                a.null = va.null;
            }
            // Immediate-form ops (addi, tgti, ...) carry the immediate
            // as srcs[1] at the IR level.
            if ((info.numSrcs >= 2 || info.hasImm) &&
                inst.srcs.size() > 1) {
                vb = val(inst.srcs[1]);
                b.value = vb.bits;
                b.null = vb.null;
            }
            isa::Token r = isa::evalOp(inst.op, a, b);
            if (r.excep) {
                out.error = detail::cat("hb '", hb.name,
                                        "': arithmetic exception at ",
                                        isa::opName(inst.op));
                return out;
            }
            setDst({r.value, r.null});
            break;
          }
        }
    }

    if (!branch.has_value()) {
        out.error = detail::cat("hb '", hb.name, "': no branch fired");
        return out;
    }
    // Block output consistency (§3): every register this block writes
    // must receive exactly one token (value or null) on every execution.
    std::map<int, int> firedWrites;
    for (const auto &[reg, v] : writes) {
        (void)v;
        ++firedWrites[reg];
    }
    std::set<int> wantRegs;
    for (const ir::Instr &inst : hb.instrs) {
        if (inst.op == isa::Op::Write)
            wantRegs.insert(inst.reg);
    }
    for (int reg : wantRegs) {
        int n = firedWrites.count(reg) ? firedWrites[reg] : 0;
        if (n != 1) {
            out.error = detail::cat("hb '", hb.name, "': register v", reg,
                                    " received ", n,
                                    " write tokens (want exactly 1)");
            return out;
        }
    }
    for (const auto &[reg, v] : writes) {
        if (!v.null)
            regs[reg] = v.bits;
    }
    out.ok = true;
    out.next = *branch;
    return out;
}

HbRunResult
runHyperFunction(const ir::Function &fn, isa::Memory &mem,
                 uint64_t maxBlocks, StatSet *stats)
{
    HbRunResult res;
    std::map<int, uint64_t> regs;
    int current = fn.entry;
    while (res.dynBlocks < maxBlocks) {
        HbOutcome out = evalHyperblock(fn.blocks[current], regs, mem,
                                       stats);
        ++res.dynBlocks;
        res.fired += out.fired;
        if (!out.ok) {
            res.error = out.error;
            return res;
        }
        if (out.next == "@halt") {
            res.ok = true;
            res.retValue = regs.count(0) ? regs[0] : 0;
            return res;
        }
        int next = fn.blockId(out.next);
        if (next < 0) {
            res.error = detail::cat("branch to unknown label '", out.next,
                                    "'");
            return res;
        }
        current = next;
    }
    res.error = "dynamic block limit exceeded";
    return res;
}

} // namespace dfp::core
