/**
 * @file
 * Hyperblock formation: region selection over the CFG followed by
 * if-conversion (Allen et al. [1]; hyperblocks per Mahlke et al. [20]),
 * producing the dataflow-predicated form of paper §3:
 *
 *  - each region becomes one hyperblock whose instructions carry guards
 *    (pred temp + polarity), the naive "every instruction predicated on
 *    its node's predicate" baseline that §5's optimizations then thin;
 *  - branch conditions become predicate-defining tests that are
 *    themselves guarded by the enclosing predicate, building the
 *    implicit predicate-AND chains of §3.4 with no AND instructions;
 *  - region joins that do not post-dominate the head receive a join
 *    predicate defined by predicated "movi 1" instructions on each
 *    incoming edge — the predicate-OR construction of §3.5;
 *  - SSA phi nodes at internal joins lower to predicated moves on
 *    disjoint predicates (the dataflow join of Figure 1);
 *  - exits become predicated bro instructions; a back edge to the
 *    region head becomes a bro to the hyperblock's own label.
 *
 * Region selection with maxBlocksPerRegion == 1 yields the paper's
 * "BB" (basic blocks only) configuration.
 */

#ifndef DFP_CORE_IFCONVERT_H
#define DFP_CORE_IFCONVERT_H

#include <vector>

#include "ir/ir.h"

namespace dfp::core
{

/** Limits steering region growth. */
struct RegionConfig
{
    int maxBlocksPerRegion = 64;  //!< 1 = basic blocks only
    int instrBudget = 96;         //!< estimated instructions per region
    int memOpBudget = 24;         //!< Ld/St per region (LSID space is 32)
    bool allowLoops = true;       //!< permit back edges to the head
};

/** One region: head first, then the absorbed blocks in RPO. */
struct Region
{
    int head = -1;
    std::vector<int> blocks;
};

/** A partition of all reachable blocks into regions. */
struct RegionPlan
{
    std::vector<Region> regions;
    std::vector<int> regionOf; //!< block id -> region index
};

/** Greedy region selection (single-entry, acyclic except head loops). */
RegionPlan selectRegions(const ir::Function &fn, const RegionConfig &cfg);

/**
 * If-convert @p fn in place according to @p plan. Requires SSA form
 * with cross-region phis already lowered to Read/Write boundary code
 * (compiler::lowerBoundaries). All blocks become hyperblocks.
 */
void ifConvert(ir::Function &fn, const RegionPlan &plan);

/**
 * Fold the predicated moves produced by phi lowering into their single
 * producers, reproducing the paper's Figure 4 shape where, e.g.,
 * "addi_t<t3> t5, t4, 1" defines the join temp directly instead of
 * feeding "mov_t<t3> t5, tX". Legal when the moved value has exactly
 * one (pure, non-memory) definition and no other uses; the producer
 * adopts the mov's guards and position. Run by ifConvert() on every
 * hyperblock — it is part of the naive-predication baseline, matching
 * the Scale compiler's output. Returns moves eliminated.
 */
int coalescePhiMovs(ir::BBlock &hb);

} // namespace dfp::core

#endif // DFP_CORE_IFCONVERT_H
