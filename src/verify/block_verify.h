/**
 * @file
 * The deep TBlock analyzer — the static half of the paper's correctness
 * argument. Where isa::validateBlock checks per-instruction structure,
 * this analyzer checks the *dynamic* contract of §3–§5 statically, by
 * enumerating the block's predicate space:
 *
 * Every value that can reach a predicate operand (or a gate/switch
 * control) is traced back through mov fanout trees to its computing
 * instruction or read-queue slot — its *origin*. Each origin that is
 * ever consulted for truth becomes one boolean path variable
 * (correlated test pairs such as `tlt a,b` / `tge a,b` over identical
 * producers are tied to a single variable). For every assignment of
 * the variables, an abstract token simulation mirroring the functional
 * executor (isa/exec.cc) replays the dataflow firing rule — predicate
 * matching, null-token propagation and store nullification, LSID
 * ordering, block completion — and reports:
 *
 *  - exactly-one-token-per-path violations for every operand slot
 *    (DFPV201/202) and write-queue slot (DFPV204/205);
 *  - predicate-OR legality: at most one matching predicate (DFPV203);
 *  - null-token coverage: masked store LSIDs and write slots resolve
 *    on every path (DFPV204/206), exactly one branch fires
 *    (DFPV208/209), no double LSID resolution (DFPV207);
 *  - dead predicate paths: instructions that fire on no enumerated
 *    path (DFPV212, warning), dead or redundant fanout-tree nodes
 *    (DFPV214/215, warning), LSID-order hazards where a load feeds a
 *    store with an earlier LSID (DFPV211, warning).
 *
 * Blocks whose predicate space exceeds `maxPathVars` are sampled
 * deterministically instead of enumerated (DFPV213, note); errors
 * found under sampling are still real, only exhaustiveness is lost.
 */

#ifndef DFP_VERIFY_BLOCK_VERIFY_H
#define DFP_VERIFY_BLOCK_VERIFY_H

#include <cstdint>
#include <vector>

#include "isa/tblock.h"
#include "verify/diag.h"

namespace dfp::verify
{

/** Knobs for the deep analyzer. */
struct VerifyOptions
{
    /** Exhaustively enumerate up to 2^maxPathVars predicate paths. */
    int maxPathVars = 12;

    /** Paths sampled (deterministically) beyond the exhaustive cap. */
    int sampledPaths = 2048;

    /** Run the path-enumeration analysis (else structural only). */
    bool deep = true;

    /** Emit warning/note diagnostics (errors are always emitted). */
    bool warnings = true;
};

/**
 * One enumerated predicate path: the boolean assignment of the path
 * variables and the set of instructions that fired under it.
 */
struct PathProfile
{
    uint64_t mask = 0;        //!< path-variable assignment (bit per var)
    std::vector<char> fired;  //!< per-instruction: fired on this path
};

/**
 * The analyzer's enumeration of a block's predicate space, exposed for
 * reuse (the static performance analyzer derives per-path early-
 * termination depth from the same paths the verifier checks).
 */
struct PathEnumeration
{
    bool exhaustive = true;     //!< every 2^k assignment was visited
    int variables = 0;          //!< number of predicate path variables
    std::vector<int> varOrigins; //!< representative origin inst per var
    std::vector<PathProfile> paths; //!< one profile per visited path
};

/**
 * Enumerate @p block's predicate paths with the verifier's own
 * machinery (origins, correlated-test tying, abstract token replay)
 * without emitting diagnostics. The block must pass
 * isa::validateBlock; malformed blocks return an empty enumeration.
 */
PathEnumeration enumeratePaths(const isa::TBlock &block,
                               const VerifyOptions &opts = VerifyOptions());

/**
 * Deep-verify one block: structural validation (isa::validateBlock)
 * first, then — only when the structure is sound — the predicate-path
 * analysis described above.
 */
void verifyBlock(const isa::TBlock &block, const VerifyOptions &opts,
                 DiagList &out);

/**
 * Verify a whole linked program: inter-block structural validation
 * plus the deep analysis of every block.
 */
void verifyProgram(const isa::TProgram &program,
                   const VerifyOptions &opts, DiagList &out);

} // namespace dfp::verify

#endif // DFP_VERIFY_BLOCK_VERIFY_H
