#include "verify/ir_verify.h"

#include <map>
#include <set>

#include "base/logging.h"
#include "core/pfg.h"
#include "ir/analysis.h"

namespace dfp::verify
{

namespace
{

/** Per-function context shared by the stage checks. */
struct IrChecker
{
    const ir::Function &fn;
    IrStage stage;
    DiagList &out;

    void
    error(const char *code, const ir::BBlock &block, int index,
          std::string message)
    {
        out.error(code, SourceLoc{block.name, index}, std::move(message));
    }

    void structural();
    void reachability(std::vector<char> &reachable);
    void ssaChecks(const std::vector<char> &reachable);
    void hyperChecks(const ir::BBlock &block);

    void run();
};

void
IrChecker::structural()
{
    for (const ir::BBlock &block : fn.blocks) {
        if (stage == IrStage::Hyper) {
            if (block.term != ir::Term::Hyper) {
                error(codes::IrNoTerminator, block, -1,
                      detail::cat("block '", block.name,
                                  "' is not in hyperblock form"));
            }
        } else if (block.term == ir::Term::None) {
            error(codes::IrNoTerminator, block, -1,
                  detail::cat("block '", block.name,
                              "' has no terminator"));
        }
        if (block.term == ir::Term::Br && !block.cond.isTemp() &&
            !block.cond.isImm()) {
            error(codes::IrNoTerminator, block, -1,
                  detail::cat("block '", block.name,
                              "' br without condition"));
        }
        size_t want = block.term == ir::Term::Jmp  ? 1
                      : block.term == ir::Term::Br ? 2
                                                   : 0;
        if (block.term != ir::Term::Hyper &&
            block.term != ir::Term::None &&
            block.succLabels.size() != want) {
            error(codes::IrBadSuccessor, block, -1,
                  detail::cat("block '", block.name,
                              "' has wrong successor count"));
        }
        for (const std::string &label : ir::successorLabels(block)) {
            if (fn.blockId(label) < 0) {
                error(codes::IrBadSuccessor, block, -1,
                      detail::cat("block '", block.name,
                                  "' successor '", label,
                                  "' does not resolve"));
            }
        }
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            const ir::Instr &inst = block.instrs[i];
            if (inst.op == isa::Op::Br || inst.op == isa::Op::Jmp ||
                inst.op == isa::Op::Ret) {
                error(codes::IrPseudoInBody, block,
                      static_cast<int>(i),
                      detail::cat("terminator pseudo-op ",
                                  isa::opName(inst.op),
                                  " in the body of block '", block.name,
                                  "'"));
            }
            if (inst.op == isa::Op::Phi &&
                inst.srcs.size() != inst.phiBlocks.size()) {
                error(codes::IrPhiArity, block, static_cast<int>(i),
                      detail::cat("phi operand/block count mismatch in '",
                                  block.name, "'"));
            }
        }
    }

    // Every temp used anywhere must have some definition (any stage;
    // SSA materializes implicit zeros, the frontend rejects use-before-
    // def via the golden interpreter).
    std::set<int> defined;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp())
                defined.insert(inst.dst.id);
        }
    }
    for (const ir::BBlock &block : fn.blocks) {
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            const ir::Instr &inst = block.instrs[i];
            for (const ir::Opnd &src : inst.srcs) {
                if (src.isTemp() && !defined.count(src.id)) {
                    error(codes::IrUseBeforeDef, block,
                          static_cast<int>(i),
                          detail::cat("t", src.id, " used in block '",
                                      block.name,
                                      "' but never defined"));
                }
            }
            // Guard predicates get their dedicated code: an undefined
            // guard silences the instruction forever, a different
            // failure mode from a missing data operand.
            for (const ir::Guard &g : inst.guards) {
                if (!defined.count(g.pred)) {
                    error(codes::IrGuardUndefined, block,
                          static_cast<int>(i),
                          detail::cat("guard predicate t", g.pred,
                                      " of instruction ", i, " in '",
                                      block.name,
                                      "' has no definition"));
                }
            }
        }
        std::vector<int> termUses;
        ir::collectTermUses(block, termUses);
        for (int t : termUses) {
            if (!defined.count(t)) {
                error(codes::IrUseBeforeDef, block, -1,
                      detail::cat("t", t, " used by the terminator of '",
                                  block.name, "' but never defined"));
            }
        }
    }
}

void
IrChecker::reachability(std::vector<char> &reachable)
{
    reachable.assign(fn.blocks.size(), 0);
    if (fn.entry < 0 || fn.entry >= static_cast<int>(fn.blocks.size()))
        return;
    std::vector<int> work = {fn.entry};
    reachable[fn.entry] = 1;
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        for (const std::string &label :
             ir::successorLabels(fn.blocks[b])) {
            int s = fn.blockId(label);
            if (s >= 0 && !reachable[s]) {
                reachable[s] = 1;
                work.push_back(s);
            }
        }
    }
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        if (!reachable[b]) {
            out.warning(codes::IrUnreachableBlock,
                        SourceLoc{fn.blocks[b].name, -1},
                        detail::cat("block '", fn.blocks[b].name,
                                    "' is unreachable from the entry"));
        }
    }
}

void
IrChecker::ssaChecks(const std::vector<char> &reachable)
{
    // Definition sites: temp -> (block id, instruction index).
    std::map<int, std::pair<int, int>> defSite;
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        const ir::BBlock &block = fn.blocks[b];
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            const ir::Instr &inst = block.instrs[i];
            if (!inst.dst.isTemp())
                continue;
            auto [it, fresh] = defSite.try_emplace(
                inst.dst.id, static_cast<int>(b), static_cast<int>(i));
            if (!fresh) {
                error(codes::IrMultipleDefs, block, static_cast<int>(i),
                      detail::cat("t", inst.dst.id,
                                  " redefined in block '", block.name,
                                  "' (first defined in '",
                                  fn.blocks[it->second.first].name,
                                  "' inst ", it->second.second, ")"));
            }
        }
    }

    ir::DomTree dom = ir::computeDominators(fn);
    auto defReaches = [&](int t, int useBlock, int usePos) {
        auto it = defSite.find(t);
        if (it == defSite.end())
            return true; // already reported by structural()
        auto [db, di] = it->second;
        if (db == useBlock)
            return usePos < 0 || di < usePos; // usePos < 0: terminator
        return dom.dominates(db, useBlock);
    };

    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        if (!reachable[b])
            continue; // dominance is undefined off the reachable CFG
        const ir::BBlock &block = fn.blocks[b];
        for (size_t i = 0; i < block.instrs.size(); ++i) {
            const ir::Instr &inst = block.instrs[i];
            if (inst.op == isa::Op::Phi) {
                for (size_t k = 0; k < inst.srcs.size() &&
                                   k < inst.phiBlocks.size(); ++k) {
                    int pb = inst.phiBlocks[k];
                    bool isPred = false;
                    for (int p : block.preds)
                        isPred |= p == pb;
                    if (!isPred) {
                        error(codes::IrPhiBadPred, block,
                              static_cast<int>(i),
                              detail::cat("phi in '", block.name,
                                          "' has an input from block ",
                                          pb,
                                          " which is not a predecessor"));
                        continue;
                    }
                    if (inst.srcs[k].isTemp() &&
                        !defReaches(inst.srcs[k].id, pb, -1)) {
                        error(codes::IrDomViolation, block,
                              static_cast<int>(i),
                              detail::cat("phi input t",
                                          inst.srcs[k].id,
                                          " does not dominate edge ",
                                          fn.blocks[pb].name, " -> ",
                                          block.name));
                    }
                }
                continue;
            }
            std::vector<int> uses;
            ir::collectUses(inst, uses);
            for (int t : uses) {
                if (!defReaches(t, static_cast<int>(b),
                                static_cast<int>(i))) {
                    error(codes::IrDomViolation, block,
                          static_cast<int>(i),
                          detail::cat("definition of t", t,
                                      " does not dominate its use in '",
                                      block.name, "' inst ", i));
                }
            }
        }
        std::vector<int> termUses;
        ir::collectTermUses(block, termUses);
        for (int t : termUses) {
            if (!defReaches(t, static_cast<int>(b), -1)) {
                error(codes::IrDomViolation, block, -1,
                      detail::cat("definition of t", t,
                                  " does not dominate the terminator "
                                  "of '", block.name, "'"));
            }
        }
    }
}

void
IrChecker::hyperChecks(const ir::BBlock &block)
{
    if (block.term != ir::Term::Hyper)
        return; // already reported by structural()

    bool hasBro = false;
    for (const ir::Instr &inst : block.instrs)
        hasBro |= inst.op == isa::Op::Bro;
    if (!hasBro) {
        error(codes::IrNoBranchInHyper, block, -1,
              detail::cat("hyperblock '", block.name,
                          "' contains no bro instruction"));
    }

    // Topological order: every use (including guards) must follow a
    // definition; entry phis are resolved by register allocation and
    // Read injects from outside the block.
    std::set<int> seen;
    std::map<int, std::vector<int>> defs; // temp -> defining indices
    for (size_t i = 0; i < block.instrs.size(); ++i) {
        const ir::Instr &inst = block.instrs[i];
        if (inst.op == isa::Op::Phi) {
            if (inst.dst.isTemp()) {
                seen.insert(inst.dst.id);
                defs[inst.dst.id].push_back(static_cast<int>(i));
            }
            continue;
        }
        std::vector<int> uses;
        ir::collectUses(inst, uses);
        for (int t : uses) {
            if (!seen.count(t) && inst.op != isa::Op::Read) {
                error(codes::IrUseBeforeDef, block, static_cast<int>(i),
                      detail::cat("t", t, " used at index ", i,
                                  " before any definition in "
                                  "hyperblock '", block.name, "'"));
            }
        }
        if (inst.dst.isTemp()) {
            seen.insert(inst.dst.id);
            defs[inst.dst.id].push_back(static_cast<int>(i));
        }
    }

    // Guard sanity: defined predicates, polarity rules.
    for (size_t i = 0; i < block.instrs.size(); ++i) {
        const ir::Instr &inst = block.instrs[i];
        if (inst.op == isa::Op::Phi)
            continue;
        bool contradictory = false;
        for (size_t x = 0; x < inst.guards.size(); ++x) {
            for (size_t y = x + 1; y < inst.guards.size(); ++y) {
                if (inst.guards[x].pred == inst.guards[y].pred &&
                    inst.guards[x].onTrue != inst.guards[y].onTrue)
                    contradictory = true;
            }
        }
        if (contradictory) {
            error(codes::IrContradictoryGuards, block,
                  static_cast<int>(i),
                  detail::cat("instruction ", i, " in '", block.name,
                              "' is guarded on both polarities of t",
                              inst.guards.front().pred));
        } else if (inst.guards.size() > 1) {
            for (const ir::Guard &g : inst.guards) {
                if (g.onTrue != inst.guards.front().onTrue) {
                    error(codes::IrMixedPolarityOr, block,
                          static_cast<int>(i),
                          detail::cat("predicate-OR guard set of "
                                      "instruction ", i, " in '",
                                      block.name,
                                      "' mixes polarities"));
                    break;
                }
            }
        }
        for (const ir::Guard &g : inst.guards) {
            if (!defs.count(g.pred)) {
                error(codes::IrGuardUndefined, block,
                      static_cast<int>(i),
                      detail::cat("guard predicate t", g.pred,
                                  " of instruction ", i, " in '",
                                  block.name, "' has no definition"));
            }
        }
    }

    // Guard chains must be acyclic so every guard is reachable from the
    // block entry (a cycle means no token can ever start the chain).
    bool cyclic = false;
    for (const auto &[temp, sites] : defs) {
        std::set<int> onChain;
        int t = temp;
        while (true) {
            if (!onChain.insert(t).second) {
                error(codes::IrGuardCycle, block, -1,
                      detail::cat("guard chain through t", t, " in '",
                                  block.name, "' is cyclic"));
                cyclic = true;
                break;
            }
            auto it = defs.find(t);
            if (it == defs.end() || it->second.size() != 1)
                break; // join or undefined: chain terminates
            const ir::Instr &def = block.instrs[it->second.front()];
            if (def.guards.size() != 1)
                break; // unguarded or predicate-OR: chain terminates
            t = def.guards.front().pred;
        }
        if (cyclic)
            break;
    }

    // Multiple defs of one temp must be pairwise disjoint (a dataflow
    // join). Mirrors core::checkHyperblock, but reports a diagnostic
    // instead of panicking; skipped when the guard structure is cyclic
    // (PredInfo::contextOf would not terminate).
    if (cyclic)
        return;
    core::PredInfo info(block);
    auto disjunctContexts = [&](int idx) {
        std::vector<std::vector<ir::Guard>> contexts;
        const ir::Instr &inst = block.instrs[idx];
        if (inst.guards.size() <= 1) {
            contexts.push_back(info.contextOf(idx));
        } else {
            for (const ir::Guard &g : inst.guards)
                contexts.push_back(info.contextOfGuards({g}));
        }
        return contexts;
    };
    for (const auto &[temp, sites] : defs) {
        for (size_t x = 0; x < sites.size(); ++x) {
            for (size_t y = x + 1; y < sites.size(); ++y) {
                if (block.instrs[sites[x]].op == isa::Op::Phi ||
                    block.instrs[sites[y]].op == isa::Op::Phi)
                    continue;
                bool ok = true;
                for (const auto &cx : disjunctContexts(sites[x])) {
                    for (const auto &cy : disjunctContexts(sites[y]))
                        ok &= core::PredInfo::disjoint(cx, cy);
                }
                if (!ok) {
                    error(codes::IrNonDisjointDefs, block, sites[y],
                          detail::cat("defs of t", temp, " at ",
                                      sites[x], " and ", sites[y],
                                      " in '", block.name,
                                      "' are not provably disjoint"));
                }
            }
        }
    }
}

void
IrChecker::run()
{
    if (fn.blocks.empty()) {
        out.error(codes::IrNoTerminator, SourceLoc{},
                  "function has no blocks");
        return;
    }
    structural();
    std::vector<char> reachable;
    reachability(reachable);
    if (out.hasErrors())
        return; // structure is broken; deeper checks would misfire
    if (stage == IrStage::Ssa)
        ssaChecks(reachable);
    if (stage == IrStage::Hyper) {
        for (const ir::BBlock &block : fn.blocks)
            hyperChecks(block);
    }
}

} // namespace

const char *
irStageName(IrStage stage)
{
    switch (stage) {
      case IrStage::Cfg: return "cfg";
      case IrStage::Ssa: return "ssa";
      case IrStage::Hyper: return "hyper";
    }
    return "?";
}

void
verifyFunction(const ir::Function &fn, IrStage stage, DiagList &out)
{
    IrChecker{fn, stage, out}.run();
}

void
checkIrOrPanic(const ir::Function &fn, IrStage stage,
               const char *passName)
{
    DiagList diags;
    verifyFunction(fn, stage, diags);
    if (diags.hasErrors()) {
        dfp_panic("IR verification (stage ", irStageName(stage),
                  ") failed after pass '", passName, "': ",
                  diags.joinedErrors());
    }
}

} // namespace dfp::verify
