/**
 * @file
 * The inter-pass IR verifier. Each compiler pass leaves the function in
 * one of three shapes, and the checks differ per shape:
 *
 *  - Cfg: frontend form. Structural checks only — terminators present,
 *    successor labels resolve, phi arity, no terminator pseudo-ops in
 *    block bodies, every used temp defined somewhere.
 *  - Ssa: adds unique-definition and dominance checking (defs dominate
 *    uses, phi inputs dominate their incoming edge).
 *  - Hyper: hyperblock form after if-conversion. Adds predicate-flow-
 *    graph consistency: topological def-before-use, every guard
 *    predicate defined in-block and its guard chain acyclic (reachable
 *    from block entry), no contradictory bipolar guards on one
 *    instruction, predicate-OR polarity consistency, and pairwise
 *    disjointness of multiple definitions of one temp.
 *
 * The pipeline invokes this between every pass when
 * CompileOptions::verifyEachPass is set (default in Debug builds;
 * `dfpc --verify` forces it on): see verify::checkIrOrPanic.
 */

#ifndef DFP_VERIFY_IR_VERIFY_H
#define DFP_VERIFY_IR_VERIFY_H

#include "ir/ir.h"
#include "verify/diag.h"

namespace dfp::verify
{

/** Which invariants the function is expected to satisfy. */
enum class IrStage : uint8_t
{
    Cfg,   //!< frontend CFG, temps freely redefined
    Ssa,   //!< unique defs + dominance
    Hyper, //!< hyperblock form with predicate guards
};

/** "cfg" / "ssa" / "hyper". */
const char *irStageName(IrStage stage);

/** Run every check for @p stage, appending diagnostics to @p out. */
void verifyFunction(const ir::Function &fn, IrStage stage,
                    DiagList &out);

/**
 * Pipeline hook: verify and dfp_panic with the rendered error
 * diagnostics when any check fails, naming @p passName as the pass
 * that broke the invariant. Warnings and notes are discarded.
 */
void checkIrOrPanic(const ir::Function &fn, IrStage stage,
                    const char *passName);

} // namespace dfp::verify

#endif // DFP_VERIFY_IR_VERIFY_H
