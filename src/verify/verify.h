/**
 * @file
 * Umbrella header for the dfp::verify subsystem: the diagnostics
 * engine (diag.h), the inter-pass IR/PFG verifier (ir_verify.h), and
 * the deep TBlock predicate-path analyzer (block_verify.h).
 */

#ifndef DFP_VERIFY_VERIFY_H
#define DFP_VERIFY_VERIFY_H

#include "verify/block_verify.h"
#include "verify/diag.h"
#include "verify/ir_verify.h"

#endif // DFP_VERIFY_VERIFY_H
