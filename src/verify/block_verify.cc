#include "verify/block_verify.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "base/logging.h"
#include "isa/validate.h"

namespace dfp::verify
{

namespace
{

using isa::Op;
using isa::PredMode;
using isa::Slot;
using isa::Target;
using isa::TBlock;
using isa::TInst;

/**
 * Abstract token: provenance plus nullness. Values are opaque — only
 * the truth of an origin (assigned per enumerated path) and the null
 * bit influence the dataflow firing structure.
 */
struct AbsToken
{
    int origin = -1;
    bool null = false;
};

/** One deduplicated violation across paths, with its first witness. */
struct Violation
{
    uint64_t witness = 0;  //!< variable assignment that first hit it
    uint64_t paths = 0;    //!< how many enumerated paths hit it
    std::string message;   //!< detail from the first witness
};

/**
 * The predicate-path analyzer for one block. Requires the block to
 * have passed isa::validateBlock (indices in range, graph acyclic).
 */
class PathAnalyzer
{
  public:
    PathAnalyzer(const TBlock &block, const VerifyOptions &opts,
                 DiagList &out)
        : block_(block), opts_(opts), out_(out),
          n_(static_cast<int>(block.insts.size()))
    {}

    /** Record every visited path into @p sink (see enumeratePaths). */
    void collectInto(PathEnumeration *sink) { collect_ = sink; }

    void run();

  private:
    // --- setup ---------------------------------------------------------
    void collectProducers();
    void computeOrigins();
    void buildVariables();
    std::string originName(int origin) const;
    std::string witnessString(uint64_t mask) const;

    // --- static (non-enumerated) checks --------------------------------
    void staticChecks();
    bool mustProduceToken(int idx, std::vector<int> &memo) const;

    // --- per-path simulation -------------------------------------------
    void simulate(uint64_t mask);
    bool truth(const AbsToken &tok) const;
    bool absPredMatches(PredMode pr, const AbsToken &tok) const;
    void deliver(const Target &t, const AbsToken &tok);
    void maybeReady(int idx);
    void fire(int idx);
    void route(const TInst &inst, const AbsToken &tok);
    void resolveLsid(uint8_t lsid);
    bool loadOrderSatisfied(uint8_t lsid) const;
    void retryLoads();
    void finishPath();
    void flag(const char *code, int index, std::string message);

    const TBlock &block_;
    const VerifyOptions &opts_;
    DiagList &out_;
    const int n_;

    // Producer refs per slot: an instruction index (< n_) or a
    // read-queue origin (n_ + read index).
    std::vector<std::vector<int>> leftProd_, rightProd_, predProd_;

    // Set of origins each instruction's output token can carry
    // (singleton {i} except through mov/gate/switch forwarding).
    std::vector<std::vector<int>> outOrigins_;

    // Path variables: origin -> (variable index, negate). Correlated
    // test pairs share a variable with opposite polarity. Constant
    // origins (movi) have a fixed truth instead of a variable.
    std::map<int, std::pair<int, bool>> varOf_;
    std::map<int, bool> fixedTruth_;
    std::vector<int> varRep_;   //!< representative origin per variable
    bool exhaustive_ = true;
    PathEnumeration *collect_ = nullptr; //!< optional path sink

    // Per-path state, reset by simulate().
    uint64_t mask_ = 0;
    std::vector<std::optional<AbsToken>> left_, right_;
    std::vector<int> predMatch_;
    std::vector<char> fired_, active_;
    std::vector<int> writeCount_;
    std::deque<int> ready_;
    std::vector<int> pendingLoads_;
    uint32_t resolvedLsids_ = 0;
    int branchFires_ = 0;
    std::set<std::pair<std::string, int>> flaggedThisPath_;

    // Across paths.
    std::vector<char> everActive_;
    std::map<std::pair<std::string, int>, Violation> violations_;
};

void
PathAnalyzer::collectProducers()
{
    leftProd_.assign(n_, {});
    rightProd_.assign(n_, {});
    predProd_.assign(n_, {});
    auto note = [&](int ref, const Target &t) {
        if (t.slot == Slot::WriteQ)
            return;
        switch (t.slot) {
          case Slot::Left:  leftProd_[t.index].push_back(ref); break;
          case Slot::Right: rightProd_[t.index].push_back(ref); break;
          case Slot::Pred:  predProd_[t.index].push_back(ref); break;
          default: break;
        }
    };
    for (int i = 0; i < n_; ++i) {
        for (const Target &t : block_.insts[i].targets)
            note(i, t);
    }
    for (size_t r = 0; r < block_.reads.size(); ++r) {
        for (const Target &t : block_.reads[r].targets)
            note(n_ + static_cast<int>(r), t);
    }
}

void
PathAnalyzer::computeOrigins()
{
    // Topological order over the (validated acyclic) instruction graph.
    std::vector<int> order;
    std::vector<int> color(n_, 0);
    std::vector<std::pair<int, size_t>> stack;
    for (int s = 0; s < n_; ++s) {
        if (color[s])
            continue;
        stack.push_back({s, 0});
        color[s] = 1;
        while (!stack.empty()) {
            auto &[u, edge] = stack.back();
            const auto &targets = block_.insts[u].targets;
            bool descended = false;
            while (edge < targets.size()) {
                const Target &t = targets[edge++];
                if (t.slot != Slot::WriteQ && t.index < n_ &&
                    !color[t.index]) {
                    color[t.index] = 1;
                    stack.push_back({t.index, 0});
                    descended = true;
                    break;
                }
            }
            if (descended)
                continue;
            order.push_back(u);
            stack.pop_back();
        }
    }
    // Post-order lists consumers before producers... no: children are
    // consumers, so post-order lists consumers first; producers last.
    // Reverse to get producers-before-consumers.
    std::reverse(order.begin(), order.end());

    outOrigins_.assign(n_, {});
    auto originsOfRef = [&](int ref) -> std::vector<int> {
        if (ref >= n_)
            return {ref};
        return outOrigins_[ref];
    };
    auto unionInto = [](std::vector<int> &dst,
                        const std::vector<int> &src) {
        for (int o : src) {
            if (std::find(dst.begin(), dst.end(), o) == dst.end())
                dst.push_back(o);
        }
    };
    for (int i : order) {
        const TInst &inst = block_.insts[i];
        std::vector<int> &outs = outOrigins_[i];
        if (inst.op == Op::Mov || inst.op == Op::Mov4) {
            for (int ref : leftProd_[i])
                unionInto(outs, originsOfRef(ref));
        } else if (inst.op == Op::GateT || inst.op == Op::GateF ||
                   inst.op == Op::Switch) {
            for (int ref : rightProd_[i])
                unionInto(outs, originsOfRef(ref));
        }
        if (outs.empty())
            outs.push_back(i);
    }
}

void
PathAnalyzer::buildVariables()
{
    // Origins whose truth is ever consulted: values reaching a
    // predicate operand, or the control (left) operand of a
    // gate/switch.
    std::set<int> consulted;
    auto consult = [&](const std::vector<int> &refs) {
        for (int ref : refs) {
            if (ref >= n_) {
                consulted.insert(ref);
            } else {
                for (int o : outOrigins_[ref])
                    consulted.insert(o);
            }
        }
    };
    for (int i = 0; i < n_; ++i) {
        consult(predProd_[i]);
        const Op op = block_.insts[i].op;
        if (op == Op::GateT || op == Op::GateF || op == Op::Switch)
            consult(leftProd_[i]);
    }

    // Assign variables, tying correlated test pairs: two tests over
    // identical producer lists whose opcodes are equal (same truth),
    // inverted (negated), swapped (same), or inverted-swapped
    // (negated) share one variable. Without tying, `tlt a,b` guarding
    // one arm and `tge a,b` guarding the other would enumerate
    // impossible both-true paths and report phantom violations.
    using Key = std::tuple<int, std::vector<int>, std::vector<int>,
                           int64_t>;
    std::map<Key, std::pair<int, bool>> byKey;
    varRep_.clear();
    for (int origin : consulted) {
        // A movi delivers a known constant: its truth is fixed, never
        // a free variable. Guard trees are full of `movi 1` predicate
        // seeds; enumerating them as free booleans would fabricate
        // impossible paths (and phantom violations).
        if (origin < n_ && block_.insts[origin].op == Op::Movi) {
            fixedTruth_[origin] =
                (block_.insts[origin].imm & 1) != 0;
            continue;
        }
        if (origin < n_ && isa::isTestOp(block_.insts[origin].op)) {
            const TInst &inst = block_.insts[origin];
            std::vector<int> lp = leftProd_[origin];
            std::vector<int> rp = rightProd_[origin];
            std::sort(lp.begin(), lp.end());
            std::sort(rp.begin(), rp.end());
            const int op = static_cast<int>(inst.op);
            const int64_t imm =
                isa::opInfo(inst.op).hasImm ? inst.imm : 0;
            const Op invOp = isa::invertedTest(inst.op);
            // swappedTest only accepts reg-reg tests; immediate forms
            // have a fixed right operand and nothing to swap.
            const Op swapOp = isa::opInfo(inst.op).hasImm
                                  ? Op::NumOps
                                  : isa::swappedTest(inst.op);
            const Op invSwapOp = swapOp != Op::NumOps
                                     ? isa::invertedTest(swapOp)
                                     : Op::NumOps;
            struct Cand
            {
                Op op;
                bool swap, neg;
            };
            const Cand cands[] = {
                {inst.op, false, false},
                {invOp, false, true},
                {swapOp, true, false},
                {invSwapOp, true, true},
            };
            bool tied = false;
            for (const Cand &c : cands) {
                if (c.op == Op::NumOps)
                    continue;
                Key k{static_cast<int>(c.op), c.swap ? rp : lp,
                      c.swap ? lp : rp, imm};
                auto it = byKey.find(k);
                if (it != byKey.end()) {
                    varOf_[origin] = {it->second.first,
                                      it->second.second != c.neg};
                    tied = true;
                    break;
                }
            }
            if (tied)
                continue;
            int var = static_cast<int>(varRep_.size());
            varRep_.push_back(origin);
            varOf_[origin] = {var, false};
            byKey[Key{op, lp, rp, imm}] = {var, false};
            continue;
        }
        int var = static_cast<int>(varRep_.size());
        varRep_.push_back(origin);
        varOf_[origin] = {var, false};
    }
}

std::string
PathAnalyzer::originName(int origin) const
{
    if (origin >= n_)
        return detail::cat("read", origin - n_, "(g",
                           int(block_.reads[origin - n_].reg), ")");
    return detail::cat("i", origin, "(",
                       isa::opName(block_.insts[origin].op), ")");
}

std::string
PathAnalyzer::witnessString(uint64_t mask) const
{
    if (varRep_.empty())
        return "unconditional";
    std::string s;
    for (size_t v = 0; v < varRep_.size(); ++v) {
        if (!s.empty())
            s += ", ";
        s += originName(varRep_[v]);
        s += (mask >> v) & 1 ? "=T" : "=F";
    }
    return s;
}

bool
PathAnalyzer::mustProduceToken(int idx, std::vector<int> &memo) const
{
    // Conservative "definitely emits a token once per execution":
    // unpredicated, never absorbing, and every needed operand slot has
    // a producer that itself definitely emits. Reads always emit.
    if (memo[idx] != -1)
        return memo[idx] == 1;
    memo[idx] = 0; // cycle-safe default (graph is acyclic anyway)
    const TInst &inst = block_.insts[idx];
    if (inst.predicated() || inst.op == Op::GateT ||
        inst.op == Op::GateF || inst.op == Op::Switch)
        return false;
    auto slotCovered = [&](const std::vector<int> &prods) {
        for (int ref : prods) {
            if (ref >= n_ || mustProduceToken(ref, memo))
                return true;
        }
        return false;
    };
    if (inst.numSrcs() >= 1 && !slotCovered(leftProd_[idx]))
        return false;
    if (inst.numSrcs() >= 2 && !slotCovered(rightProd_[idx]))
        return false;
    memo[idx] = 1;
    return true;
}

void
PathAnalyzer::staticChecks()
{
    // DFPV210: two stores sharing an LSID that both *definitely*
    // resolve (fire or get nullified) double-resolve on every path.
    std::vector<int> memo(n_, -1);
    std::map<int, std::vector<int>> storesByLsid;
    for (int i = 0; i < n_; ++i) {
        if (block_.insts[i].op == Op::St)
            storesByLsid[block_.insts[i].lsid].push_back(i);
    }
    for (const auto &[lsid, stores] : storesByLsid) {
        if (stores.size() < 2)
            continue;
        int definite = 0;
        for (int s : stores)
            definite += mustProduceToken(s, memo) ? 1 : 0;
        if (definite >= 2) {
            out_.error(codes::DuplicateStoreLsid,
                       SourceLoc{block_.label, stores[1]},
                       detail::cat("block '", block_.label,
                                   "': stores at ", stores[0], " and ",
                                   stores[1],
                                   " both always resolve LSID ", lsid));
        }
    }

    if (!opts_.warnings)
        return;

    // DFPV211: a load whose output feeds (transitively) a store with an
    // earlier masked LSID — the load waits for the store, the store
    // waits for the load. Only a null token from elsewhere can break
    // the cycle, so this is a warning, not an error.
    for (int i = 0; i < n_; ++i) {
        if (block_.insts[i].op != Op::Ld)
            continue;
        std::vector<char> seen(n_, 0);
        std::vector<int> work = {i};
        seen[i] = 1;
        while (!work.empty()) {
            int u = work.back();
            work.pop_back();
            for (const Target &t : block_.insts[u].targets) {
                if (t.slot == Slot::WriteQ || t.index >= n_ ||
                    seen[t.index])
                    continue;
                seen[t.index] = 1;
                const TInst &c = block_.insts[t.index];
                if (c.op == Op::St && c.lsid < block_.insts[i].lsid &&
                    (block_.storeMask & (1u << c.lsid))) {
                    out_.warning(
                        codes::LsidOrderHazard,
                        SourceLoc{block_.label, t.index},
                        detail::cat("block '", block_.label,
                                    "': load at ", i, " (LSID ",
                                    int(block_.insts[i].lsid),
                                    ") feeds store at ", int(t.index),
                                    " with earlier LSID ",
                                    int(c.lsid)));
                }
                work.push_back(t.index);
            }
        }
    }

    // DFPV214/215: fanout-tree shape.
    for (int i = 0; i < n_; ++i) {
        const TInst &inst = block_.insts[i];
        if (inst.op != Op::Mov && inst.op != Op::Mov4)
            continue;
        if (inst.targets.empty()) {
            out_.warning(codes::DeadFanoutNode,
                         SourceLoc{block_.label, i},
                         detail::cat("block '", block_.label,
                                     "': fanout ", isa::opName(inst.op),
                                     " at ", i, " has no targets"));
        } else if (!inst.predicated() && inst.targets.size() == 1 &&
                   inst.targets[0].slot == Slot::Left &&
                   inst.targets[0].index < n_) {
            const TInst &c = block_.insts[inst.targets[0].index];
            if ((c.op == Op::Mov || c.op == Op::Mov4) &&
                !c.predicated()) {
                out_.warning(
                    codes::RedundantFanout,
                    SourceLoc{block_.label, i},
                    detail::cat("block '", block_.label,
                                "': single-target mov at ", i,
                                " feeds another mov at ",
                                int(inst.targets[0].index),
                                " (redundant fanout depth)"));
            }
        }
    }
}

bool
PathAnalyzer::truth(const AbsToken &tok) const
{
    auto fixed = fixedTruth_.find(tok.origin);
    if (fixed != fixedTruth_.end())
        return fixed->second;
    auto it = varOf_.find(tok.origin);
    if (it == varOf_.end())
        return false; // unconsulted origin; default polarity
    bool v = (mask_ >> it->second.first) & 1;
    return it->second.second ? !v : v;
}

bool
PathAnalyzer::absPredMatches(PredMode pr, const AbsToken &tok) const
{
    if (pr == PredMode::Unpred || tok.null)
        return false;
    return truth(tok) == (pr == PredMode::OnTrue);
}

void
PathAnalyzer::flag(const char *code, int index, std::string message)
{
    if (!flaggedThisPath_.insert({code, index}).second)
        return;
    auto [it, fresh] =
        violations_.try_emplace({code, index});
    if (fresh) {
        it->second.witness = mask_;
        it->second.message = std::move(message);
    }
    ++it->second.paths;
}

void
PathAnalyzer::deliver(const Target &t, const AbsToken &tok)
{
    if (t.slot == Slot::WriteQ) {
        if (++writeCount_[t.index] > 1) {
            flag(codes::PathWriteDouble, -1,
                 detail::cat("write slot ", int(t.index), " (g",
                             int(block_.writes[t.index].reg),
                             ") receives two tokens"));
        }
        return;
    }
    const int idx = t.index;
    const TInst &def = block_.insts[idx];
    if (t.slot == Slot::Pred) {
        if (absPredMatches(def.pr, tok)) {
            if (++predMatch_[idx] > 1) {
                flag(codes::PathPredDouble, idx,
                     detail::cat("inst ", idx, " (", isa::opName(def.op),
                                 ") receives two matching predicates"));
            }
            maybeReady(idx);
        }
        return;
    }
    // A null token reaching a store nullifies it immediately (§4.2).
    if (def.op == Op::St && tok.null) {
        active_[idx] = 1;
        resolveLsid(def.lsid);
        return;
    }
    auto &slot = (t.slot == Slot::Left) ? left_[idx] : right_[idx];
    if (slot.has_value()) {
        flag(codes::PathOperandDouble, idx,
             detail::cat("inst ", idx, " (", isa::opName(def.op),
                         ") ", t.slot == Slot::Left ? "left" : "right",
                         " operand receives two tokens"));
        return;
    }
    slot = tok;
    maybeReady(idx);
}

void
PathAnalyzer::maybeReady(int idx)
{
    const TInst &def = block_.insts[idx];
    if (fired_[idx])
        return;
    if (def.predicated() && predMatch_[idx] == 0)
        return;
    const int need = def.numSrcs();
    if (need >= 1 && !left_[idx].has_value())
        return;
    if (need >= 2 && !right_[idx].has_value())
        return;
    ready_.push_back(idx);
}

void
PathAnalyzer::route(const TInst &inst, const AbsToken &tok)
{
    for (const Target &t : inst.targets)
        deliver(t, tok);
}

void
PathAnalyzer::resolveLsid(uint8_t lsid)
{
    if (resolvedLsids_ & (1u << lsid)) {
        flag(codes::PathLsidDouble, -1,
             detail::cat("store LSID ", int(lsid), " resolves twice"));
        return;
    }
    resolvedLsids_ |= 1u << lsid;
    retryLoads();
}

bool
PathAnalyzer::loadOrderSatisfied(uint8_t lsid) const
{
    uint32_t earlier = block_.storeMask & ((1u << lsid) - 1);
    return (earlier & ~resolvedLsids_) == 0;
}

void
PathAnalyzer::retryLoads()
{
    std::vector<int> still;
    for (int idx : pendingLoads_) {
        if (loadOrderSatisfied(block_.insts[idx].lsid)) {
            const AbsToken addr = left_[idx].value_or(AbsToken{});
            route(block_.insts[idx], AbsToken{idx, addr.null});
        } else {
            still.push_back(idx);
        }
    }
    pendingLoads_ = std::move(still);
}

void
PathAnalyzer::fire(int idx)
{
    const TInst &inst = block_.insts[idx];
    if (fired_[idx])
        return;
    fired_[idx] = 1;
    active_[idx] = 1;

    const AbsToken a = left_[idx].value_or(AbsToken{});
    const AbsToken b = right_[idx].value_or(AbsToken{});

    switch (inst.op) {
      case Op::Bro:
        if (++branchFires_ > 1) {
            flag(codes::PathBranchDouble, idx,
                 detail::cat("branch at ", idx,
                             " is the second branch to fire"));
        }
        return;
      case Op::St:
        // Null operands nullify; both ways the LSID resolves once.
        resolveLsid(inst.lsid);
        return;
      case Op::Ld:
        if (loadOrderSatisfied(inst.lsid))
            route(inst, AbsToken{idx, a.null});
        else
            pendingLoads_.push_back(idx);
        return;
      case Op::GateT:
      case Op::GateF:
        // left = control, right = data; absorb on mismatch (§2.1).
        if (a.null)
            return;
        if (truth(a) != (inst.op == Op::GateT))
            return;
        route(inst, b);
        return;
      case Op::Switch: {
        if (a.null)
            return;
        deliver(inst.targets[truth(a) ? 0 : 1], b);
        return;
      }
      case Op::Null:
        route(inst, AbsToken{idx, true});
        return;
      case Op::Mov:
      case Op::Mov4:
        route(inst, a);
        return;
      default: {
        // Mirrors isa::evalOp's null propagation: immediates are never
        // null, so hasImm ops only inherit the left operand's nullness.
        const int srcs =
            isa::opInfo(inst.op).numSrcs +
            (isa::opInfo(inst.op).hasImm ? 1 : 0);
        const bool useA = srcs >= 1 && inst.op != Op::Movi;
        const bool useB = srcs >= 2 && !isa::opInfo(inst.op).hasImm;
        AbsToken out{idx, (useA && a.null) || (useB && b.null)};
        route(inst, out);
        return;
      }
    }
}

void
PathAnalyzer::finishPath()
{
    bool incomplete = false;
    if (branchFires_ == 0) {
        flag(codes::PathNoBranch, -1, "no branch fires");
        incomplete = true;
    }
    const uint32_t unresolved = block_.storeMask & ~resolvedLsids_;
    if (unresolved) {
        for (int lsid = 0; lsid < isa::kMaxLsids; ++lsid) {
            if (!(unresolved & (1u << lsid)))
                continue;
            int site = -1;
            for (int i = 0; i < n_ && site < 0; ++i) {
                if (block_.insts[i].op == Op::St &&
                    block_.insts[i].lsid == lsid)
                    site = i;
            }
            flag(codes::PathStoreUnresolved, site,
                 detail::cat("masked store LSID ", lsid,
                             " never resolves"));
        }
        incomplete = true;
    }
    for (size_t w = 0; w < writeCount_.size(); ++w) {
        if (writeCount_[w] == 0) {
            flag(codes::PathWriteMissing, -1,
                 detail::cat("write slot ", w, " (g",
                             int(block_.writes[w].reg),
                             ") receives no token, not even null"));
            incomplete = true;
        }
    }
    if (!incomplete)
        return;
    // Starvation diagnosis: instructions that were activated (matching
    // predicate, or one of two operands) but never fired explain *why*
    // the outputs above are missing.
    for (int i = 0; i < n_; ++i) {
        if (fired_[i])
            continue;
        const TInst &inst = block_.insts[i];
        const bool predWoken =
            inst.predicated() && predMatch_[i] > 0;
        const bool halfFed =
            inst.numSrcs() >= 2 &&
            left_[i].has_value() != right_[i].has_value();
        if (predWoken || halfFed) {
            flag(codes::PathOperandMissing, i,
                 detail::cat("inst ", i, " (", isa::opName(inst.op),
                             ") ",
                             predWoken ? "matched its predicate"
                                       : "received one operand",
                             " but starves waiting for ",
                             inst.numSrcs() >= 1 &&
                                     !left_[i].has_value()
                                 ? "its left operand"
                                 : "its right operand"));
        }
    }
}

void
PathAnalyzer::simulate(uint64_t mask)
{
    mask_ = mask;
    left_.assign(n_, std::nullopt);
    right_.assign(n_, std::nullopt);
    predMatch_.assign(n_, 0);
    fired_.assign(n_, 0);
    active_.assign(n_, 0);
    writeCount_.assign(block_.writes.size(), 0);
    ready_.clear();
    pendingLoads_.clear();
    resolvedLsids_ = 0;
    branchFires_ = 0;
    flaggedThisPath_.clear();

    for (size_t r = 0; r < block_.reads.size(); ++r) {
        AbsToken tok{n_ + static_cast<int>(r), false};
        for (const Target &t : block_.reads[r].targets)
            deliver(t, tok);
    }
    for (int i = 0; i < n_; ++i) {
        const TInst &inst = block_.insts[i];
        if (inst.numSrcs() == 0 && !inst.predicated())
            ready_.push_back(i);
    }
    while (!ready_.empty()) {
        int idx = ready_.front();
        ready_.pop_front();
        fire(idx);
    }
    finishPath();
    if (collect_)
        collect_->paths.push_back({mask_, fired_});
    for (int i = 0; i < n_; ++i)
        everActive_[i] |= active_[i];
}

void
PathAnalyzer::run()
{
    collectProducers();
    computeOrigins();
    buildVariables();
    staticChecks();

    if (collect_) {
        collect_->variables = static_cast<int>(varRep_.size());
        collect_->varOrigins = varRep_;
    }

    const int k = static_cast<int>(varRep_.size());
    everActive_.assign(n_, 0);
    if (k <= opts_.maxPathVars) {
        const uint64_t paths = uint64_t{1} << k;
        for (uint64_t mask = 0; mask < paths; ++mask)
            simulate(mask);
    } else {
        exhaustive_ = false;
        if (opts_.warnings) {
            out_.note(codes::PredSpaceSampled,
                      SourceLoc{block_.label, -1},
                      detail::cat("block '", block_.label, "': ", k,
                                  " predicate variables exceed the 2^",
                                  opts_.maxPathVars,
                                  " exhaustive budget; sampling ",
                                  opts_.sampledPaths, " paths"));
        }
        uint64_t state = 0x9e3779b97f4a7c15ull;
        for (int p = 0; p < opts_.sampledPaths; ++p) {
            // SplitMix64: deterministic, seed-stable sampling.
            state += 0x9e3779b97f4a7c15ull;
            uint64_t z = state;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            z ^= z >> 31;
            simulate(k >= 64 ? z : (z & ((uint64_t{1} << k) - 1)));
        }
    }
    if (collect_)
        collect_->exhaustive = exhaustive_;

    for (const auto &[key, v] : violations_) {
        const auto &[code, index] = key;
        std::string msg = detail::cat(
            "block '", block_.label, "': ", v.message,
            " on predicate path {", witnessString(v.witness), "}");
        if (v.paths > 1)
            msg += detail::cat(" and ", v.paths - 1, " more path",
                               v.paths > 2 ? "s" : "");
        out_.error(code, SourceLoc{block_.label, index},
                   std::move(msg));
    }

    // Dead predicate paths: provable only under exhaustive enumeration.
    if (exhaustive_ && opts_.warnings) {
        for (int i = 0; i < n_; ++i) {
            if (!everActive_[i]) {
                out_.warning(
                    codes::DeadPredicatePath,
                    SourceLoc{block_.label, i},
                    detail::cat("block '", block_.label, "': inst ", i,
                                " (", isa::opName(block_.insts[i].op),
                                ") fires on no enumerated predicate "
                                "path"));
            }
        }
    }
}

} // namespace

PathEnumeration
enumeratePaths(const isa::TBlock &block, const VerifyOptions &opts)
{
    PathEnumeration out;
    DiagList structural;
    isa::validateBlock(block, structural);
    if (structural.hasErrors())
        return out;
    DiagList scratch;
    PathAnalyzer analyzer(block, opts, scratch);
    analyzer.collectInto(&out);
    analyzer.run();
    return out;
}

void
verifyBlock(const isa::TBlock &block, const VerifyOptions &opts,
            DiagList &out)
{
    DiagList structural;
    isa::validateBlock(block, structural);
    const bool sound = !structural.hasErrors();
    out.append(std::move(structural));
    if (sound && opts.deep)
        PathAnalyzer(block, opts, out).run();
}

void
verifyProgram(const isa::TProgram &program, const VerifyOptions &opts,
              DiagList &out)
{
    for (const isa::TBlock &block : program.blocks)
        verifyBlock(block, opts, out);
    // Inter-block checks (branch target ranges) from the structural
    // validator, without re-validating each block.
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        const isa::TBlock &block = program.blocks[b];
        for (size_t i = 0; i < block.insts.size(); ++i) {
            const isa::TInst &inst = block.insts[i];
            if (inst.op == Op::Bro && inst.imm != isa::kHaltTarget &&
                (inst.imm < 0 ||
                 inst.imm >=
                     static_cast<int32_t>(program.blocks.size()))) {
                out.error(codes::BranchTargetOutOfRange,
                          SourceLoc{block.label, static_cast<int>(i)},
                          detail::cat("block '", block.label,
                                      "': bro target ", inst.imm,
                                      " out of range"));
            }
        }
    }
}

} // namespace dfp::verify
