/**
 * @file
 * The dfp-verify diagnostics engine. Every check in the verifier
 * subsystem (the ISA block validator, the IR/PFG verifier, and the
 * deep predicate-path analyzer) reports through this type: a stable
 * `DFPV###` code, a severity, a source location (block label +
 * instruction index), and a human-readable message. Diagnostic lists
 * render as text or as JSON (via base/json.h) and are the exchange
 * format between the compiler pipeline, `dfpc --verify`, and the
 * standalone `dfp-lint` tool.
 *
 * Code ranges: 1xx structural block/ISA checks, 2xx deep predicate-
 * path analysis, 3xx IR/PFG checks (all "DFPV", documented in
 * docs/VERIFY.md), and 4xx static performance-analysis findings
 * ("DFPA", emitted by src/analysis / dfp-analyze, documented in
 * docs/ANALYSIS.md). One catalog serves every tool so `--list-codes`
 * output is identical across dfp-lint and dfp-analyze.
 */

#ifndef DFP_VERIFY_DIAG_H
#define DFP_VERIFY_DIAG_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dfp::verify
{

/** How bad a diagnostic is. Only Error fails a build/lint run. */
enum class Severity : uint8_t
{
    Note,    //!< informational (e.g. analysis was truncated)
    Warning, //!< suspicious but not provably wrong
    Error,   //!< violates an invariant; the artifact is malformed
};

/** "note" / "warning" / "error". */
const char *severityName(Severity sev);

/** Where a diagnostic points: a block, optionally one instruction. */
struct SourceLoc
{
    std::string block; //!< block label or IR block name ("" = program)
    int index = -1;    //!< instruction index within the block (-1 = none)

    /** "block 'x' inst 3", "block 'x'", or "<program>". */
    std::string str() const;
};

/** One diagnostic. */
struct Diag
{
    std::string code;    //!< stable "DFPV###" identifier
    Severity sev = Severity::Error;
    SourceLoc loc;
    std::string message;

    /** "error DFPV104 [block 'x' inst 3]: ...". */
    std::string render() const;
};

/** An ordered collection of diagnostics with render helpers. */
class DiagList
{
  public:
    /** Append a diagnostic; returns it for further decoration. */
    Diag &add(std::string code, Severity sev, SourceLoc loc,
              std::string message);

    Diag &
    error(std::string code, SourceLoc loc, std::string message)
    {
        return add(std::move(code), Severity::Error, std::move(loc),
                   std::move(message));
    }

    Diag &
    warning(std::string code, SourceLoc loc, std::string message)
    {
        return add(std::move(code), Severity::Warning, std::move(loc),
                   std::move(message));
    }

    Diag &
    note(std::string code, SourceLoc loc, std::string message)
    {
        return add(std::move(code), Severity::Note, std::move(loc),
                   std::move(message));
    }

    bool empty() const { return diags_.empty(); }
    size_t size() const { return diags_.size(); }
    const std::vector<Diag> &all() const { return diags_; }

    bool hasErrors() const { return count(Severity::Error) > 0; }
    size_t count(Severity sev) const;

    /** True if any diagnostic carries @p code. */
    bool seen(std::string_view code) const;

    /** Move-append all diagnostics of @p other. */
    void append(DiagList &&other);

    /** One rendered diagnostic per line. */
    void renderText(std::ostream &os) const;

    /** A JSON array of {code, severity, block, index, message}. */
    void renderJson(std::ostream &os) const;

    /**
     * All messages joined by "; " — the legacy isa::ValidationResult
     * format, kept so pre-dfp-verify callers and tests keep working.
     */
    std::string joined() const;

    /** Rendered error-severity diagnostics joined by "; ". */
    std::string joinedErrors() const;

  private:
    std::vector<Diag> diags_;
};

/**
 * The diagnostic catalog: symbolic name, "DFPV###"/"DFPA###" code,
 * severity, one-line summary, kept sorted by code (a test enforces
 * it). Call sites use `codes::<Name>`; docs/VERIFY.md documents the
 * verifier entries with a minimal triggering example each, and
 * docs/ANALYSIS.md the analyzer ones.
 */
#define DFP_DIAG_LIST                                                        \
    /*        name                   code       severity  summary */         \
    DFP_DIAG( HopInflation,          "DFPA401", Warning,                     \
              "placement hop latency dominates the dataflow critical path")  \
    DFP_DIAG( DeepPredFanout,        "DFPA402", Warning,                     \
              "predicate fanout tree deeper than the minimal mov tree")      \
    DFP_DIAG( LinkDominatedBound,    "DFPA403", Warning,                     \
              "one operand-network link carries more traffic than the "      \
              "block's critical path can hide")                              \
    DFP_DIAG( MergeLengthenedPath,   "DFPA404", Warning,                     \
              "block merging lengthened the dataflow critical path")         \
    DFP_DIAG( BlockTooManyInsts,     "DFPV101", Error,                       \
              "block exceeds the 128-instruction format limit")              \
    DFP_DIAG( TooManyReads,          "DFPV102", Error,                       \
              "block exceeds the 32-entry read queue")                       \
    DFP_DIAG( TooManyWrites,         "DFPV103", Error,                       \
              "block exceeds the 32-entry write queue")                      \
    DFP_DIAG( TargetOutOfRange,      "DFPV104", Error,                       \
              "target names an instruction index outside the block")         \
    DFP_DIAG( WriteIndexOutOfRange,  "DFPV105", Error,                       \
              "target names a write-queue slot that does not exist")         \
    DFP_DIAG( IllegalSlot,           "DFPV106", Error,                       \
              "target names an operand slot the consumer cannot accept")     \
    DFP_DIAG( ReadRegOutOfRange,     "DFPV107", Error,                       \
              "read queue entry names a register beyond g63")                \
    DFP_DIAG( ReadTooManyTargets,    "DFPV108", Error,                       \
              "read queue entry has more than two targets")                  \
    DFP_DIAG( WriteRegOutOfRange,    "DFPV109", Error,                       \
              "write queue entry names a register beyond g63")               \
    DFP_DIAG( BadOpcode,             "DFPV110", Error,                       \
              "instruction carries an out-of-range opcode")                  \
    DFP_DIAG( PseudoOp,              "DFPV111", Error,                       \
              "compiler pseudo-op (phi/br/jmp/ret) inside a block")          \
    DFP_DIAG( QueueOpInBlock,        "DFPV112", Error,                       \
              "read/write queue entry encoded as a block instruction")       \
    DFP_DIAG( TooManyTargets,        "DFPV113", Error,                       \
              "instruction has more targets than its format encodes")        \
    DFP_DIAG( SwitchArity,           "DFPV114", Error,                       \
              "switch requires exactly two targets")                         \
    DFP_DIAG( LsidOutOfRange,        "DFPV115", Error,                       \
              "load/store sequence id beyond the 32 LSIDs")                  \
    DFP_DIAG( StoreLsidNotInMask,    "DFPV116", Error,                       \
              "store LSID missing from the block's header store mask")       \
    DFP_DIAG( NoBranch,              "DFPV117", Error,                       \
              "block contains no branch instruction")                        \
    DFP_DIAG( PredNoProducer,        "DFPV118", Error,                       \
              "predicated instruction with no predicate producer")           \
    DFP_DIAG( PredTokenToUnpredicated, "DFPV119", Error,                     \
              "predicate token targets an instruction with PR=00")           \
    DFP_DIAG( OperandNoProducer,     "DFPV120", Error,                       \
              "data operand slot has no producer (block would hang)")        \
    DFP_DIAG( WriteNoProducer,       "DFPV121", Error,                       \
              "write-queue slot has no producer")                            \
    DFP_DIAG( DataflowCycle,         "DFPV122", Error,                       \
              "instruction dataflow graph is cyclic")                        \
    DFP_DIAG( BranchTargetOutOfRange, "DFPV123", Error,                      \
              "bro immediate names a block outside the program")             \
    DFP_DIAG( PathOperandMissing,    "DFPV201", Error,                       \
              "a firing instruction's operand gets no token on some path")   \
    DFP_DIAG( PathOperandDouble,     "DFPV202", Error,                       \
              "a data operand receives two tokens on some path")             \
    DFP_DIAG( PathPredDouble,        "DFPV203", Error,                       \
              "two matching predicate tokens arrive on some path")           \
    DFP_DIAG( PathWriteMissing,      "DFPV204", Error,                       \
              "a write slot gets no token (not even null) on some path")     \
    DFP_DIAG( PathWriteDouble,       "DFPV205", Error,                       \
              "a write slot receives two tokens on some path")               \
    DFP_DIAG( PathStoreUnresolved,   "DFPV206", Error,                       \
              "a masked store LSID never resolves on some path")             \
    DFP_DIAG( PathLsidDouble,        "DFPV207", Error,                       \
              "a store LSID resolves twice on some path")                    \
    DFP_DIAG( PathNoBranch,          "DFPV208", Error,                       \
              "no branch fires on some path")                                \
    DFP_DIAG( PathBranchDouble,      "DFPV209", Error,                       \
              "two branches fire on some path")                              \
    DFP_DIAG( DuplicateStoreLsid,    "DFPV210", Error,                       \
              "two unpredicated stores share one LSID")                      \
    DFP_DIAG( LsidOrderHazard,       "DFPV211", Warning,                     \
              "load output feeds a store with an earlier LSID")              \
    DFP_DIAG( DeadPredicatePath,     "DFPV212", Warning,                     \
              "instruction fires on no enumerated predicate path")           \
    DFP_DIAG( PredSpaceSampled,      "DFPV213", Note,                        \
              "predicate space too large; paths were sampled")               \
    DFP_DIAG( DeadFanoutNode,        "DFPV214", Warning,                     \
              "fanout mov with no targets")                                  \
    DFP_DIAG( RedundantFanout,       "DFPV215", Warning,                     \
              "single-target unpredicated mov feeding another mov")          \
    DFP_DIAG( IrNoTerminator,        "DFPV301", Error,                       \
              "IR block has no terminator")                                  \
    DFP_DIAG( IrBadSuccessor,        "DFPV302", Error,                       \
              "terminator successor label does not resolve")                 \
    DFP_DIAG( IrPhiArity,            "DFPV303", Error,                       \
              "phi operand count does not match its incoming blocks")        \
    DFP_DIAG( IrUseBeforeDef,        "DFPV304", Error,                       \
              "temp used without a reaching definition")                     \
    DFP_DIAG( IrMultipleDefs,        "DFPV305", Error,                       \
              "temp defined more than once in SSA form")                     \
    DFP_DIAG( IrDomViolation,        "DFPV306", Error,                       \
              "SSA definition does not dominate a use")                      \
    DFP_DIAG( IrGuardUndefined,      "DFPV307", Error,                       \
              "guard references a predicate with no definition")             \
    DFP_DIAG( IrContradictoryGuards, "DFPV308", Error,                       \
              "one instruction guarded on both polarities of a predicate")   \
    DFP_DIAG( IrMixedPolarityOr,     "DFPV309", Error,                       \
              "predicate-OR guard set mixes polarities")                     \
    DFP_DIAG( IrNonDisjointDefs,     "DFPV310", Error,                       \
              "multiple defs of a temp are not provably disjoint")           \
    DFP_DIAG( IrGuardCycle,          "DFPV311", Error,                       \
              "guard chain is cyclic (guard unreachable from entry)")        \
    DFP_DIAG( IrPseudoInBody,        "DFPV312", Error,                       \
              "terminator pseudo-op in a block body")                        \
    DFP_DIAG( IrUnreachableBlock,    "DFPV313", Warning,                     \
              "block unreachable from the entry")                            \
    DFP_DIAG( IrPhiBadPred,          "DFPV314", Error,                       \
              "phi input from a block that is not a predecessor")            \
    DFP_DIAG( IrNoBranchInHyper,     "DFPV315", Error,                       \
              "hyperblock contains no bro instruction")

/** Symbolic constants for the catalog codes (codes::TargetOutOfRange). */
namespace codes
{
#define DFP_DIAG(name, code, sev, summary)                                   \
    inline constexpr const char *name = code;
DFP_DIAG_LIST
#undef DFP_DIAG
} // namespace codes

/** Catalog entry for one diagnostic code. */
struct CodeInfo
{
    const char *code;     //!< "DFPV###"
    Severity sev;         //!< severity the code is emitted with
    const char *summary;  //!< one-line description
};

/** Every diagnostic code dfp-verify can emit, in numeric order. */
const std::vector<CodeInfo> &diagCatalog();

/** Catalog lookup; nullptr for unknown codes. */
const CodeInfo *findCode(std::string_view code);

/**
 * Render the whole catalog, one `CODE  severity  summary` line per
 * entry — the shared implementation behind `--list-codes` in dfp-lint
 * and dfp-analyze (a CLI test pins the two outputs to be identical).
 */
void renderCatalog(std::ostream &os);

} // namespace dfp::verify

#endif // DFP_VERIFY_DIAG_H
