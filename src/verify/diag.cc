#include "verify/diag.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "base/json.h"
#include "base/logging.h"

namespace dfp::verify
{

const char *
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
SourceLoc::str() const
{
    if (block.empty())
        return "<program>";
    if (index < 0)
        return detail::cat("block '", block, "'");
    return detail::cat("block '", block, "' inst ", index);
}

std::string
Diag::render() const
{
    return detail::cat(severityName(sev), " ", code, " [", loc.str(),
                       "]: ", message);
}

Diag &
DiagList::add(std::string code, Severity sev, SourceLoc loc,
              std::string message)
{
    diags_.push_back({std::move(code), sev, std::move(loc),
                      std::move(message)});
    return diags_.back();
}

size_t
DiagList::count(Severity sev) const
{
    size_t n = 0;
    for (const Diag &d : diags_)
        n += d.sev == sev;
    return n;
}

bool
DiagList::seen(std::string_view code) const
{
    for (const Diag &d : diags_) {
        if (d.code == code)
            return true;
    }
    return false;
}

void
DiagList::append(DiagList &&other)
{
    for (Diag &d : other.diags_)
        diags_.push_back(std::move(d));
    other.diags_.clear();
}

void
DiagList::renderText(std::ostream &os) const
{
    for (const Diag &d : diags_)
        os << d.render() << '\n';
}

void
DiagList::renderJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginArray();
    for (const Diag &d : diags_) {
        w.beginObject();
        w.key("code").value(d.code);
        w.key("severity").value(severityName(d.sev));
        w.key("block").value(d.loc.block);
        w.key("index").value(d.loc.index);
        w.key("message").value(d.message);
        w.endObject();
    }
    w.endArray();
}

std::string
DiagList::joined() const
{
    std::ostringstream os;
    for (size_t i = 0; i < diags_.size(); ++i)
        os << (i ? "; " : "") << diags_[i].message;
    return os.str();
}

std::string
DiagList::joinedErrors() const
{
    std::ostringstream os;
    bool first = true;
    for (const Diag &d : diags_) {
        if (d.sev != Severity::Error)
            continue;
        os << (first ? "" : "; ") << d.render();
        first = false;
    }
    return os.str();
}

const std::vector<CodeInfo> &
diagCatalog()
{
    static const std::vector<CodeInfo> catalog = {
#define DFP_DIAG(name, code, sev, summary)                                   \
        {code, Severity::sev, summary},
        DFP_DIAG_LIST
#undef DFP_DIAG
    };
    return catalog;
}

void
renderCatalog(std::ostream &os)
{
    char line[256];
    for (const CodeInfo &info : diagCatalog()) {
        std::snprintf(line, sizeof(line), "%s  %-7s  %s\n", info.code,
                      severityName(info.sev), info.summary);
        os << line;
    }
}

const CodeInfo *
findCode(std::string_view code)
{
    for (const CodeInfo &info : diagCatalog()) {
        if (code == info.code)
            return &info;
    }
    return nullptr;
}

} // namespace dfp::verify
