#include "ir/ir.h"

#include <algorithm>
#include <set>

namespace dfp::ir
{

BBlock &
Function::addBlock(const std::string &label)
{
    dfp_assert(labelIndex_.find(label) == labelIndex_.end(),
               "duplicate block label '", label, "'");
    BBlock block;
    block.id = static_cast<int>(blocks.size());
    block.name = label;
    labelIndex_[label] = block.id;
    blocks.push_back(std::move(block));
    return blocks.back();
}

int
Function::blockId(const std::string &label) const
{
    auto it = labelIndex_.find(label);
    return it == labelIndex_.end() ? -1 : it->second;
}

std::vector<std::string>
successorLabels(const BBlock &block)
{
    std::vector<std::string> labels;
    switch (block.term) {
      case Term::Jmp:
      case Term::Br:
        labels = block.succLabels;
        break;
      case Term::Ret:
        break;
      case Term::Hyper:
        for (const Instr &inst : block.instrs) {
            // "@halt" is the reserved exit label and has no CFG edge.
            if (inst.op == isa::Op::Bro && !inst.broLabel.empty() &&
                inst.broLabel[0] != '@') {
                labels.push_back(inst.broLabel);
            }
        }
        break;
      case Term::None:
        break;
    }
    return labels;
}

void
Function::computeCfg()
{
    labelIndex_.clear();
    for (size_t i = 0; i < blocks.size(); ++i) {
        blocks[i].id = static_cast<int>(i);
        dfp_assert(labelIndex_.emplace(blocks[i].name, i).second,
                   "duplicate block label '", blocks[i].name, "'");
        blocks[i].preds.clear();
        blocks[i].succs.clear();
    }
    for (BBlock &block : blocks) {
        std::set<int> seen;
        for (const std::string &label : successorLabels(block)) {
            int succ = blockId(label);
            dfp_assert(succ >= 0, "block '", block.name,
                       "' branches to unknown label '", label, "'");
            if (seen.insert(succ).second) {
                block.succs.push_back(succ);
                blocks[succ].preds.push_back(block.id);
            }
        }
    }
}

void
Function::pruneUnreachable()
{
    computeCfg();
    std::vector<bool> reachable(blocks.size(), false);
    std::vector<int> stack{entry};
    reachable[entry] = true;
    while (!stack.empty()) {
        int b = stack.back();
        stack.pop_back();
        for (int s : blocks[b].succs) {
            if (!reachable[s]) {
                reachable[s] = true;
                stack.push_back(s);
            }
        }
    }
    if (std::all_of(reachable.begin(), reachable.end(),
                    [](bool r) { return r; })) {
        return;
    }
    // Drop phi operands flowing from removed predecessors, then compact.
    std::vector<int> newId(blocks.size(), -1);
    std::vector<BBlock> kept;
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (!reachable[i])
            continue;
        newId[i] = static_cast<int>(kept.size());
        kept.push_back(std::move(blocks[i]));
    }
    for (BBlock &block : kept) {
        for (Instr &inst : block.instrs) {
            if (inst.op != isa::Op::Phi)
                continue;
            for (size_t k = inst.phiBlocks.size(); k-- > 0;) {
                int pred = inst.phiBlocks[k];
                if (pred < 0 ||
                    pred >= static_cast<int>(reachable.size()) ||
                    !reachable[pred]) {
                    inst.phiBlocks.erase(inst.phiBlocks.begin() + k);
                    inst.srcs.erase(inst.srcs.begin() + k);
                } else {
                    inst.phiBlocks[k] = newId[pred];
                }
            }
        }
    }
    entry = newId[entry];
    dfp_assert(entry >= 0, "entry unreachable?");
    blocks = std::move(kept);
    computeCfg();
    // computeCfg rewrote ids; phi operand block ids must be refreshed by
    // callers that renumber — here ids were remapped above already.
}

void
Function::verify() const
{
    dfp_assert(!blocks.empty(), "function has no blocks");
    for (const BBlock &block : blocks) {
        if (block.term == Term::None)
            dfp_fatal("block '", block.name, "' has no terminator");
        if (block.term == Term::Br && !block.cond.isTemp() &&
            !block.cond.isImm()) {
            dfp_fatal("block '", block.name, "' br without condition");
        }
        size_t want = block.term == Term::Jmp   ? 1
                      : block.term == Term::Br  ? 2
                                                : 0;
        if (block.term != Term::Hyper && block.succLabels.size() != want)
            dfp_fatal("block '", block.name, "' wrong successor count");
        for (const Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Br || inst.op == isa::Op::Jmp ||
                inst.op == isa::Op::Ret) {
                dfp_fatal("block '", block.name,
                          "' contains terminator pseudo-op in body");
            }
            if (inst.op == isa::Op::Phi) {
                if (inst.srcs.size() != inst.phiBlocks.size()) {
                    dfp_fatal("phi operand/block count mismatch in '",
                              block.name, "'");
                }
                for (int pb : inst.phiBlocks) {
                    bool isPred =
                        std::find(block.preds.begin(), block.preds.end(),
                                  pb) != block.preds.end();
                    if (!isPred) {
                        dfp_fatal("phi in '", block.name,
                                  "' has an input from block ", pb,
                                  " which is not a predecessor");
                    }
                }
            }
            if (block.term == Term::Hyper) {
                for (const Guard &g : inst.guards)
                    dfp_assert(g.pred >= 0, "negative predicate temp");
            }
            if (inst.op == isa::Op::Bro && block.term != Term::Hyper)
                dfp_fatal("bro outside hyperblock in '", block.name, "'");
        }
        if (block.term == Term::Hyper) {
            bool anyBro = false;
            for (const Instr &inst : block.instrs)
                anyBro |= inst.op == isa::Op::Bro;
            if (!anyBro)
                dfp_fatal("hyperblock '", block.name, "' has no bro");
        }
    }
}

} // namespace dfp::ir
