/**
 * @file
 * Sequential golden interpreter for CFG-stage IR (frontend or SSA form).
 * Defines the reference semantics every compiler configuration must
 * preserve; the test suite compares its result and memory image against
 * the functional block executor and the cycle simulator.
 */

#ifndef DFP_IR_INTERP_H
#define DFP_IR_INTERP_H

#include <string>

#include "isa/memory.h"
#include "ir/ir.h"

namespace dfp::ir
{

/** Result of interpreting a kernel. */
struct InterpResult
{
    bool ok = false;
    uint64_t retValue = 0;
    uint64_t dynInstrs = 0;
    uint64_t dynBlocks = 0;
    std::string error;
};

/**
 * Interpret @p fn against @p mem (mutated in place).
 *
 * @param maxSteps dynamic instruction budget (guards against livelock).
 */
InterpResult interpret(const Function &fn, isa::Memory &mem,
                       uint64_t maxSteps = 1u << 26);

} // namespace dfp::ir

#endif // DFP_IR_INTERP_H
