#include "ir/analysis.h"

#include <algorithm>
#include <functional>

namespace dfp::ir
{

std::vector<int>
reversePostorder(const Function &fn)
{
    std::vector<int> order;
    std::vector<char> visited(fn.blocks.size(), 0);
    std::function<void(int)> dfs = [&](int b) {
        visited[b] = 1;
        for (int s : fn.blocks[b].succs) {
            if (!visited[s])
                dfs(s);
        }
        order.push_back(b);
    };
    dfs(fn.entry);
    std::reverse(order.begin(), order.end());
    return order;
}

namespace
{

/** CHK iterative dominator computation over an arbitrary edge view. */
DomTree
domsOver(size_t numBlocks, const std::vector<int> &rpo,
         const std::vector<std::vector<int>> &preds, int root)
{
    std::vector<int> rpoIndex(numBlocks, -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = static_cast<int>(i);

    DomTree tree;
    tree.idom.assign(numBlocks, -1);
    tree.idom[root] = root;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = tree.idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = tree.idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : rpo) {
            if (b == root)
                continue;
            int newIdom = -1;
            for (int p : preds[b]) {
                if (rpoIndex[p] < 0 || tree.idom[p] == -1)
                    continue;
                newIdom = newIdom == -1 ? p : intersect(p, newIdom);
            }
            if (newIdom != -1 && tree.idom[b] != newIdom) {
                tree.idom[b] = newIdom;
                changed = true;
            }
        }
    }
    tree.idom[root] = -1;
    return tree;
}

} // namespace

DomTree
computeDominators(const Function &fn)
{
    std::vector<std::vector<int>> preds(fn.blocks.size());
    for (const BBlock &block : fn.blocks)
        preds[block.id] = block.preds;
    return domsOver(fn.blocks.size(), reversePostorder(fn), preds,
                    fn.entry);
}

DomTree
computePostDominators(const Function &fn)
{
    // Virtual exit node joins all Ret blocks and halt-only hyperblocks.
    size_t n = fn.blocks.size();
    int virtualExit = static_cast<int>(n);
    std::vector<std::vector<int>> preds(n + 1); // preds in *reverse* CFG

    auto isExit = [&](const BBlock &block) {
        if (block.term == Term::Ret)
            return true;
        if (block.term == Term::Hyper) {
            for (const Instr &inst : block.instrs) {
                if (inst.op == isa::Op::Bro && !inst.broLabel.empty() &&
                    inst.broLabel[0] == '@') {
                    return true;
                }
            }
        }
        return false;
    };

    // reverse CFG: edge s->b becomes pred edge of s... i.e. preds of a
    // node in the reverse graph are its CFG successors.
    for (const BBlock &block : fn.blocks) {
        for (int s : block.succs)
            preds[block.id].push_back(s);
        if (isExit(block))
            preds[block.id].push_back(virtualExit);
    }
    // preds above are "reverse-graph predecessors" = forward successors.

    // RPO over the reverse graph: DFS from virtualExit following
    // reverse-graph successors = CFG predecessors.
    std::vector<int> order;
    std::vector<char> visited(n + 1, 0);
    std::function<void(int)> dfs = [&](int b) {
        visited[b] = 1;
        if (b == virtualExit) {
            for (const BBlock &block : fn.blocks) {
                if (isExit(block) && !visited[block.id])
                    dfs(block.id);
            }
        } else {
            for (int p : fn.blocks[b].preds) {
                if (!visited[p])
                    dfs(p);
            }
        }
        order.push_back(b);
    };
    dfs(virtualExit);
    std::reverse(order.begin(), order.end());

    DomTree full = domsOver(n + 1, order, preds, virtualExit);
    DomTree tree;
    tree.idom.assign(n, -1);
    for (size_t i = 0; i < n; ++i) {
        int d = full.idom[i];
        tree.idom[i] = (d == virtualExit) ? -1 : d;
    }
    return tree;
}

std::vector<std::set<int>>
dominanceFrontiers(const Function &fn, const DomTree &dom)
{
    std::vector<std::set<int>> df(fn.blocks.size());
    for (const BBlock &block : fn.blocks) {
        if (block.preds.size() < 2)
            continue;
        for (int p : block.preds) {
            int runner = p;
            while (runner != -1 && runner != dom.idom[block.id]) {
                df[runner].insert(block.id);
                runner = dom.idom[runner];
            }
        }
    }
    return df;
}

void
collectUses(const Instr &inst, std::vector<int> &uses)
{
    for (const Opnd &src : inst.srcs) {
        if (src.isTemp())
            uses.push_back(src.id);
    }
    for (const Guard &g : inst.guards)
        uses.push_back(g.pred);
}

void
collectTermUses(const BBlock &block, std::vector<int> &uses)
{
    if (block.term == Term::Br && block.cond.isTemp())
        uses.push_back(block.cond.id);
    if (block.term == Term::Ret && block.retVal.isTemp())
        uses.push_back(block.retVal.id);
}

Liveness
computeLiveness(const Function &fn)
{
    size_t n = fn.blocks.size();
    Liveness lv;
    lv.liveIn.assign(n, {});
    lv.liveOut.assign(n, {});

    // use[b]: used before any def in b; def[b]: defined in b.
    // Phi handling: a phi's source is live-out of the matching
    // predecessor, not live-in of the phi's own block.
    std::vector<std::set<int>> use(n), def(n);
    std::vector<std::vector<std::pair<int, int>>> phiOut(n); // (pred, temp)

    for (const BBlock &block : fn.blocks) {
        for (const Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Phi) {
                for (size_t k = 0; k < inst.srcs.size(); ++k) {
                    if (inst.srcs[k].isTemp()) {
                        phiOut[inst.phiBlocks[k]].push_back(
                            {block.id, inst.srcs[k].id});
                    }
                }
            } else {
                std::vector<int> uses;
                collectUses(inst, uses);
                for (int t : uses) {
                    if (!def[block.id].count(t))
                        use[block.id].insert(t);
                }
            }
            if (inst.dst.isTemp())
                def[block.id].insert(inst.dst.id);
        }
        std::vector<int> uses;
        collectTermUses(block, uses);
        for (int t : uses) {
            if (!def[block.id].count(t))
                use[block.id].insert(t);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t bi = n; bi-- > 0;) {
            const BBlock &block = fn.blocks[bi];
            std::set<int> out;
            for (int s : block.succs) {
                for (int t : lv.liveIn[s])
                    out.insert(t);
            }
            for (const auto &[succ, temp] : phiOut[bi]) {
                (void)succ;
                out.insert(temp);
            }
            std::set<int> in = use[bi];
            for (int t : out) {
                if (!def[bi].count(t))
                    in.insert(t);
            }
            if (out != lv.liveOut[bi] || in != lv.liveIn[bi]) {
                lv.liveOut[bi] = std::move(out);
                lv.liveIn[bi] = std::move(in);
                changed = true;
            }
        }
    }
    return lv;
}

std::vector<Loop>
findLoops(const Function &fn)
{
    DomTree dom = computeDominators(fn);
    std::vector<Loop> loops;
    std::vector<int> headerIndex(fn.blocks.size(), -1);

    for (const BBlock &block : fn.blocks) {
        for (int s : block.succs) {
            if (!dom.dominates(s, block.id))
                continue; // not a back edge
            int &li = headerIndex[s];
            if (li == -1) {
                li = static_cast<int>(loops.size());
                loops.push_back({});
                loops.back().header = s;
                loops.back().body.insert(s);
            }
            Loop &loop = loops[li];
            loop.latches.push_back(block.id);
            // Walk backwards from the latch collecting the body.
            std::vector<int> stack{block.id};
            while (!stack.empty()) {
                int b = stack.back();
                stack.pop_back();
                if (loop.body.count(b))
                    continue;
                loop.body.insert(b);
                for (int p : fn.blocks[b].preds)
                    stack.push_back(p);
            }
        }
    }
    return loops;
}

namespace
{

/** Temp-id bijection builder shared by structurallyEquivalent. */
struct TempMap
{
    std::vector<int> aToB;
    std::vector<int> bToA;

    TempMap(int aCount, int bCount)
        : aToB(aCount, -1), bToA(bCount, -1)
    {}

    bool
    match(int a, int b)
    {
        if (a >= static_cast<int>(aToB.size()) ||
            b >= static_cast<int>(bToA.size()) || a < 0 || b < 0) {
            return false;
        }
        if (aToB[a] == -1 && bToA[b] == -1) {
            aToB[a] = b;
            bToA[b] = a;
            return true;
        }
        return aToB[a] == b && bToA[b] == a;
    }
};

} // namespace

bool
structurallyEquivalent(const Function &a, const Function &b,
                       std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (a.name != b.name)
        return fail("function names differ");
    if (a.entry != b.entry)
        return fail("entry blocks differ");
    if (a.blocks.size() != b.blocks.size())
        return fail(detail::cat("block count ", a.blocks.size(), " vs ",
                                b.blocks.size()));

    TempMap map(a.tempCount(), b.tempCount());
    auto opndEq = [&](const Opnd &oa, const Opnd &ob) {
        if (oa.kind != ob.kind)
            return false;
        if (oa.isImm())
            return oa.value == ob.value;
        if (oa.isTemp())
            return map.match(oa.id, ob.id);
        return true; // both None
    };

    for (size_t i = 0; i < a.blocks.size(); ++i) {
        const BBlock &ba = a.blocks[i];
        const BBlock &bb = b.blocks[i];
        auto at = [&](size_t j) {
            return detail::cat("block '", ba.name, "' inst ", j, ": ");
        };
        if (ba.name != bb.name)
            return fail(detail::cat("block ", i, " name '", ba.name,
                                    "' vs '", bb.name, "'"));
        if (ba.term != bb.term)
            return fail(detail::cat("block '", ba.name,
                                    "' terminators differ"));
        if (ba.succLabels != bb.succLabels)
            return fail(detail::cat("block '", ba.name,
                                    "' successors differ"));
        if (!opndEq(ba.cond, bb.cond))
            return fail(detail::cat("block '", ba.name,
                                    "' br conditions differ"));
        if (!opndEq(ba.retVal, bb.retVal))
            return fail(detail::cat("block '", ba.name,
                                    "' return values differ"));
        if (ba.instrs.size() != bb.instrs.size())
            return fail(detail::cat("block '", ba.name,
                                    "' instruction count ",
                                    ba.instrs.size(), " vs ",
                                    bb.instrs.size()));
        for (size_t j = 0; j < ba.instrs.size(); ++j) {
            const Instr &ia = ba.instrs[j];
            const Instr &ib = bb.instrs[j];
            if (ia.op != ib.op)
                return fail(at(j) + "opcodes differ");
            if (!opndEq(ia.dst, ib.dst))
                return fail(at(j) + "destinations differ");
            if (ia.srcs.size() != ib.srcs.size())
                return fail(at(j) + "source counts differ");
            for (size_t k = 0; k < ia.srcs.size(); ++k) {
                if (!opndEq(ia.srcs[k], ib.srcs[k]))
                    return fail(at(j) +
                                detail::cat("source ", k, " differs"));
            }
            if (ia.guards.size() != ib.guards.size())
                return fail(at(j) + "guard counts differ");
            for (size_t k = 0; k < ia.guards.size(); ++k) {
                if (ia.guards[k].onTrue != ib.guards[k].onTrue ||
                    !map.match(ia.guards[k].pred, ib.guards[k].pred)) {
                    return fail(at(j) + "guards differ");
                }
            }
            if (ia.phiBlocks != ib.phiBlocks)
                return fail(at(j) + "phi predecessors differ");
            if (ia.lsid != ib.lsid)
                return fail(at(j) + "lsids differ");
            if (ia.reg != ib.reg)
                return fail(at(j) + "registers differ");
            if (ia.broLabel != ib.broLabel)
                return fail(at(j) + "bro labels differ");
        }
    }
    return true;
}

} // namespace dfp::ir
