#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "isa/alu.h"

namespace dfp::ir
{

namespace
{

/** Line-oriented tokenizer + recursive-descent statement parser. */
class Parser
{
  public:
    explicit Parser(const std::string &source) : src_(source) {}

    std::vector<Function> parse();

  private:
    [[noreturn]] void
    error(const std::string &msg)
    {
        dfp_fatal("IR parse error at line ", line_, ": ", msg);
    }

    // --- lexer over the current line ---------------------------------
    bool nextLine();
    void skipSpace();
    bool atEol();
    std::string ident();
    bool peekIs(char c);
    void expect(char c);
    bool tryConsume(char c);

    // --- statement parsing --------------------------------------------
    void parseStatement(Function &fn, BBlock *&block);
    Opnd parseOpnd(Function &fn);
    int tempFor(Function &fn, const std::string &name);

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 0;
    std::string cur_;
    size_t col_ = 0;
    std::unordered_map<std::string, int> temps_;
};

bool
Parser::nextLine()
{
    while (pos_ < src_.size()) {
        size_t end = src_.find('\n', pos_);
        if (end == std::string::npos)
            end = src_.size();
        cur_ = src_.substr(pos_, end - pos_);
        pos_ = end + 1;
        ++line_;
        col_ = 0;
        if (size_t hash = cur_.find('#'); hash != std::string::npos)
            cur_.resize(hash);
        skipSpace();
        if (!atEol())
            return true;
    }
    return false;
}

void
Parser::skipSpace()
{
    while (col_ < cur_.size() && std::isspace(
               static_cast<unsigned char>(cur_[col_]))) {
        ++col_;
    }
}

bool
Parser::atEol()
{
    skipSpace();
    return col_ >= cur_.size();
}

std::string
Parser::ident()
{
    skipSpace();
    size_t start = col_;
    while (col_ < cur_.size()) {
        char c = cur_[col_];
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == '$' || c == '-' || c == '+' ||
            (c == 'x' || c == 'X')) {
            ++col_;
        } else {
            break;
        }
    }
    if (col_ == start)
        error(detail::cat("expected identifier, got '",
                          cur_.substr(col_), "'"));
    return cur_.substr(start, col_ - start);
}

bool
Parser::peekIs(char c)
{
    skipSpace();
    return col_ < cur_.size() && cur_[col_] == c;
}

void
Parser::expect(char c)
{
    if (!tryConsume(c))
        error(detail::cat("expected '", std::string(1, c), "'"));
}

bool
Parser::tryConsume(char c)
{
    if (!peekIs(c))
        return false;
    ++col_;
    return true;
}

int
Parser::tempFor(Function &fn, const std::string &name)
{
    auto it = temps_.find(name);
    if (it != temps_.end())
        return it->second;
    int id = fn.newTemp();
    temps_.emplace(name, id);
    return id;
}

Opnd
Parser::parseOpnd(Function &fn)
{
    std::string tok = ident();
    char first = tok[0];
    bool numeric = std::isdigit(static_cast<unsigned char>(first)) ||
                   ((first == '-' || first == '+') && tok.size() > 1 &&
                    std::isdigit(static_cast<unsigned char>(tok[1])));
    if (!numeric)
        return Opnd::temp(tempFor(fn, tok));
    if (tok.find('.') != std::string::npos ||
        (tok.find('e') != std::string::npos &&
         tok.find("0x") == std::string::npos)) {
        double d = std::strtod(tok.c_str(), nullptr);
        return Opnd::imm(static_cast<int64_t>(isa::packDouble(d)));
    }
    return Opnd::imm(std::strtoll(tok.c_str(), nullptr, 0));
}

void
Parser::parseStatement(Function &fn, BBlock *&block)
{
    std::string head = ident();

    if (head == "block") {
        std::string label = ident();
        expect(':');
        block = &fn.addBlock(label);
        return;
    }
    if (block == nullptr)
        error("statement before first 'block'");

    if (head == "br") {
        block->term = Term::Br;
        block->cond = parseOpnd(fn);
        expect(',');
        block->succLabels.push_back(ident());
        expect(',');
        block->succLabels.push_back(ident());
        return;
    }
    if (head == "jmp") {
        block->term = Term::Jmp;
        block->succLabels.push_back(ident());
        return;
    }
    if (head == "ret") {
        block->term = Term::Ret;
        if (!atEol())
            block->retVal = parseOpnd(fn);
        return;
    }
    if (head == "st") {
        Instr inst;
        inst.op = isa::Op::St;
        inst.srcs.push_back(parseOpnd(fn));
        expect(',');
        inst.srcs.push_back(parseOpnd(fn));
        if (tryConsume(','))
            inst.srcs.push_back(parseOpnd(fn));
        else
            inst.srcs.push_back(Opnd::imm(0));
        if (!inst.srcs[2].isImm())
            error("store offset must be an immediate");
        block->instrs.push_back(std::move(inst));
        return;
    }

    // Assignment form: <dst> = <op> ...
    if (!tryConsume('='))
        error(detail::cat("unknown statement '", head, "'"));
    Instr inst;
    inst.dst = Opnd::temp(tempFor(fn, head));
    std::string mnem = ident();
    inst.op = isa::opFromName(mnem);
    if (inst.op == isa::Op::NumOps)
        error(detail::cat("unknown opcode '", mnem, "'"));

    if (inst.op == isa::Op::Phi) {
        do {
            expect('[');
            std::string label = ident();
            expect(':');
            inst.srcs.push_back(parseOpnd(fn));
            expect(']');
            inst.phiBlocks.push_back(-1); // resolved after all blocks exist
            block->succLabels.push_back(""); // placeholder, unused
            block->succLabels.pop_back();
            inst.broLabel += (inst.broLabel.empty() ? "" : ",") + label;
        } while (tryConsume(','));
        block->instrs.push_back(std::move(inst));
        return;
    }
    if (inst.op == isa::Op::Ld) {
        inst.srcs.push_back(parseOpnd(fn));
        if (tryConsume(','))
            inst.srcs.push_back(parseOpnd(fn));
        else
            inst.srcs.push_back(Opnd::imm(0));
        if (!inst.srcs[1].isImm())
            error("load offset must be an immediate");
        block->instrs.push_back(std::move(inst));
        return;
    }

    if (inst.op == isa::Op::Bro) {
        // Bro has no frontend syntax (it exists only inside compiled
        // hyperblocks); accepting it here would silently mis-parse its
        // label operand as a temp.
        error("'bro' is not valid in frontend IR");
    }

    if (!atEol()) {
        inst.srcs.push_back(parseOpnd(fn));
        while (tryConsume(','))
            inst.srcs.push_back(parseOpnd(fn));
    }
    // Fold frontend "movi x, k" and "mov x, imm" into a canonical form.
    if (inst.op == isa::Op::Movi && inst.srcs.size() == 1 &&
        inst.srcs[0].isTemp()) {
        inst.op = isa::Op::Mov;
    }
    // Immediate-form opcodes (addi, tlti, ...) carry the immediate as
    // their trailing operand, so printed post-optimization functions
    // round-trip through the parser (print -> parse symmetry).
    const isa::OpInfo &info = isa::opInfo(inst.op);
    unsigned want = info.numSrcs + (info.hasImm ? 1u : 0u);
    if (inst.srcs.size() != want) {
        error(detail::cat("opcode '", mnem, "' expects ", want,
                          " operands, got ", inst.srcs.size()));
    }
    if (info.hasImm && !inst.srcs.back().isImm()) {
        error(detail::cat("opcode '", mnem,
                          "' needs an immediate last operand"));
    }
    block->instrs.push_back(std::move(inst));
}

std::vector<Function>
Parser::parse()
{
    std::vector<Function> funcs;
    Function *fn = nullptr;
    BBlock *block = nullptr;

    while (nextLine()) {
        while (!atEol()) {
            skipSpace();
            if (tryConsume('}')) {
                if (!fn)
                    error("'}' outside function");
                fn = nullptr;
                block = nullptr;
                continue;
            }
            size_t save = col_;
            std::string head = ident();
            if (head == "func") {
                std::string name = ident();
                expect('{');
                funcs.emplace_back();
                fn = &funcs.back();
                fn->name = name;
                temps_.clear();
                block = nullptr;
                continue;
            }
            col_ = save;
            if (!fn)
                error("statement outside function");
            parseStatement(*fn, block);
            break; // one statement per line
        }
    }

    for (Function &f : funcs) {
        // Resolve phi predecessor labels now that all blocks exist.
        for (BBlock &b : f.blocks) {
            for (Instr &inst : b.instrs) {
                if (inst.op != isa::Op::Phi)
                    continue;
                std::vector<std::string> labels;
                std::string rest = inst.broLabel;
                while (!rest.empty()) {
                    size_t comma = rest.find(',');
                    labels.push_back(rest.substr(0, comma));
                    rest = comma == std::string::npos
                               ? ""
                               : rest.substr(comma + 1);
                }
                dfp_assert(labels.size() == inst.srcs.size(),
                           "phi label mismatch");
                for (size_t k = 0; k < labels.size(); ++k) {
                    int id = f.blockId(labels[k]);
                    if (id < 0)
                        dfp_fatal("phi references unknown block '",
                                  labels[k], "'");
                    inst.phiBlocks[k] = id;
                }
                inst.broLabel.clear();
            }
        }
        f.computeCfg();
        f.verify();
    }
    return funcs;
}

} // namespace

std::vector<Function>
parseModule(const std::string &source)
{
    return Parser(source).parse();
}

Function
parseFunction(const std::string &source)
{
    auto funcs = parseModule(source);
    if (funcs.size() != 1)
        dfp_fatal("expected exactly one function, got ", funcs.size());
    return std::move(funcs.front());
}

} // namespace dfp::ir
