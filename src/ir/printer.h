/**
 * @file
 * Textual printers for the IR. CFG-stage functions print in the
 * parser's grammar (round-trippable); hyperblocks print in the paper's
 * notation, e.g. "addi_t<t3> t5, t4, 1" (Figure 4).
 */

#ifndef DFP_IR_PRINTER_H
#define DFP_IR_PRINTER_H

#include <ostream>
#include <string>

#include "ir/ir.h"

namespace dfp::ir
{

/** Render one operand ("t7" or a literal). */
std::string toString(const Opnd &opnd);

/** Render one instruction (paper-style suffix/guards when present). */
std::string toString(const Instr &inst);

/** Print a whole function. */
void print(std::ostream &os, const Function &fn);

/** Convenience: function to string. */
std::string toString(const Function &fn);

} // namespace dfp::ir

#endif // DFP_IR_PRINTER_H
