/**
 * @file
 * Parser for the dfp textual IR — the frontend language the workload
 * kernels are written in. Grammar (one statement per line, '#' comments):
 *
 *   func <name> {
 *   block <label>:
 *       <dst> = <op> <opnd> {, <opnd>}     # e.g. y = add x, 5
 *       st <base>, <value> [, <offset>]    # store (no destination)
 *       <dst> = ld <base> [, <offset>]     # load
 *       <dst> = phi [<label>: <opnd>] {, [<label>: <opnd>]}
 *       br <cond>, <iftrue>, <iffalse>
 *       jmp <label>
 *       ret [<value>]
 *   }
 *
 * Operands are identifiers (virtual temps, named freely) or literals
 * (decimal, 0x hex, or floating point — floats are stored as IEEE-754
 * bit patterns, matching the ISA's word-oriented FP ops).
 */

#ifndef DFP_IR_PARSER_H
#define DFP_IR_PARSER_H

#include <string>
#include <vector>

#include "ir/ir.h"

namespace dfp::ir
{

/** Parse IR source text; throws FatalError with line info on errors. */
std::vector<Function> parseModule(const std::string &source);

/** Parse source expected to contain exactly one function. */
Function parseFunction(const std::string &source);

} // namespace dfp::ir

#endif // DFP_IR_PARSER_H
