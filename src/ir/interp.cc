#include "ir/interp.h"

#include <vector>

#include "isa/alu.h"

namespace dfp::ir
{

namespace
{

struct Env
{
    std::vector<uint64_t> values;
    std::vector<char> defined;

    explicit Env(int numTemps)
        : values(numTemps, 0), defined(numTemps, 0)
    {}
};

} // namespace

InterpResult
interpret(const Function &fn, isa::Memory &mem, uint64_t maxSteps)
{
    InterpResult res;
    Env env(fn.tempCount());

    auto eval = [&](const Opnd &opnd) -> uint64_t {
        if (opnd.isImm())
            return static_cast<uint64_t>(opnd.value);
        dfp_assert(opnd.isTemp(), "evaluating empty operand");
        if (!env.defined[opnd.id]) {
            dfp_fatal("use of undefined temp t", opnd.id, " in '", fn.name,
                      "'");
        }
        return env.values[opnd.id];
    };
    auto assign = [&](const Opnd &dst, uint64_t value) {
        dfp_assert(dst.isTemp(), "assignment to non-temp");
        env.values[dst.id] = value;
        env.defined[dst.id] = 1;
    };

    int current = fn.entry;
    int previous = -1;

    while (true) {
        const BBlock &block = fn.blocks[current];
        ++res.dynBlocks;
        if (block.term == Term::Hyper) {
            res.error = "interpret() does not handle hyperblocks; use "
                        "core::evalHyperblock";
            return res;
        }

        // Phis evaluate simultaneously on entry.
        std::vector<std::pair<Opnd, uint64_t>> phiAssigns;
        size_t i = 0;
        for (; i < block.instrs.size() &&
               block.instrs[i].op == isa::Op::Phi;
             ++i) {
            const Instr &inst = block.instrs[i];
            bool found = false;
            for (size_t k = 0; k < inst.phiBlocks.size(); ++k) {
                if (inst.phiBlocks[k] == previous) {
                    phiAssigns.push_back({inst.dst, eval(inst.srcs[k])});
                    found = true;
                    break;
                }
            }
            if (!found) {
                res.error = detail::cat("phi in '", block.name,
                                        "' missing edge from block ",
                                        previous);
                return res;
            }
            ++res.dynInstrs;
        }
        for (const auto &[dst, value] : phiAssigns)
            assign(dst, value);

        for (; i < block.instrs.size(); ++i) {
            const Instr &inst = block.instrs[i];
            if (++res.dynInstrs > maxSteps) {
                res.error = "dynamic step limit exceeded";
                return res;
            }
            if (inst.op == isa::Op::Phi) {
                res.error = detail::cat("phi after non-phi in '",
                                        block.name, "'");
                return res;
            }
            switch (inst.op) {
              case isa::Op::Ld: {
                uint64_t addr = eval(inst.srcs[0]) +
                                static_cast<int64_t>(
                                    eval(inst.srcs[1]));
                if (addr & 7) {
                    res.error = detail::cat("misaligned load 0x", std::hex,
                                            addr, " in '", block.name,
                                            "'");
                    return res;
                }
                assign(inst.dst, mem.load(addr));
                break;
              }
              case isa::Op::St: {
                uint64_t addr = eval(inst.srcs[0]) +
                                static_cast<int64_t>(
                                    eval(inst.srcs[2]));
                if (addr & 7) {
                    res.error = detail::cat("misaligned store 0x",
                                            std::hex, addr, " in '",
                                            block.name, "'");
                    return res;
                }
                mem.store(addr, eval(inst.srcs[1]));
                break;
              }
              case isa::Op::Mov:
                assign(inst.dst, eval(inst.srcs[0]));
                break;
              case isa::Op::Movi:
                assign(inst.dst, eval(inst.srcs[0]));
                break;
              default: {
                dfp_assert(!isa::isPseudoOp(inst.op),
                           "pseudo-op in block body");
                isa::Token a, b;
                const auto &info = isa::opInfo(inst.op);
                if (info.numSrcs >= 1)
                    a.value = eval(inst.srcs[0]);
                if (info.numSrcs >= 2)
                    b.value = eval(inst.srcs[1]);
                isa::Token out = isa::evalOp(inst.op, a, b);
                if (out.excep) {
                    res.error = detail::cat("arithmetic exception at ",
                                            isa::opName(inst.op), " in '",
                                            block.name, "'");
                    return res;
                }
                assign(inst.dst, out.value);
                break;
              }
            }
        }

        previous = current;
        switch (block.term) {
          case Term::Jmp:
            current = fn.blockId(block.succLabels[0]);
            break;
          case Term::Br:
            current = fn.blockId(
                block.succLabels[eval(block.cond) != 0 ? 0 : 1]);
            break;
          case Term::Ret:
            res.ok = true;
            if (!block.retVal.isNone())
                res.retValue = eval(block.retVal);
            return res;
          default:
            res.error = detail::cat("block '", block.name,
                                    "' has no terminator");
            return res;
        }
        ++res.dynInstrs;
    }
}

} // namespace dfp::ir
