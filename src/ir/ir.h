/**
 * @file
 * The dfp compiler intermediate representation: a control-flow graph of
 * basic blocks holding three-address instructions over virtual
 * temporaries, matching the internal form the paper attributes to the
 * Scale compiler (§5, Figure 4).
 *
 * The same structures carry the program through every phase:
 *  - frontend CFG: blocks with Jmp/Br/Ret terminators, temps freely
 *    redefined;
 *  - SSA: unique defs plus Phi instructions;
 *  - hyperblock form: one block per hyperblock (kind == Hyper), every
 *    instruction optionally guarded by predicates, terminator replaced
 *    by predicated Bro instructions inside the body.
 */

#ifndef DFP_IR_IR_H
#define DFP_IR_IR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/logging.h"
#include "isa/opcodes.h"

namespace dfp::ir
{

/** Operand kinds. */
enum class Kind : uint8_t
{
    None, //!< absent (e.g. no destination)
    Temp, //!< virtual temporary t<id>
    Imm,  //!< 64-bit immediate (int bits; doubles stored as bit pattern)
};

/** An instruction operand. */
struct Opnd
{
    Kind kind = Kind::None;
    int id = 0;       //!< temp id when kind == Temp
    int64_t value = 0; //!< immediate value when kind == Imm

    static Opnd none() { return {}; }
    static Opnd temp(int id) { return {Kind::Temp, id, 0}; }
    static Opnd imm(int64_t v) { return {Kind::Imm, 0, v}; }

    bool isTemp() const { return kind == Kind::Temp; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }

    bool operator==(const Opnd &) const = default;
};

/**
 * A predicate guard: fire only when temp @p pred carries a value whose
 * truth matches @p onTrue. An instruction may carry several guards after
 * disjoint instruction merging (predicate-OR, §3.5/§5.3); the target ISA
 * requires all guards of one instruction to share a polarity.
 */
struct Guard
{
    int pred = 0;
    bool onTrue = true;

    bool operator==(const Guard &) const = default;
};

/** A three-address instruction. */
struct Instr
{
    isa::Op op = isa::Op::Nop;
    Opnd dst;                //!< result temp (None for St/Bro/...)
    std::vector<Opnd> srcs;  //!< data operands; immediates allowed inline
    std::vector<Guard> guards; //!< empty = unpredicated

    /** Phi only: CFG predecessor block id per source (parallel to srcs). */
    std::vector<int> phiBlocks;

    int lsid = -1;           //!< Ld/St sequence id within a hyperblock
    int reg = -1;            //!< Read/Write architectural register
    std::string broLabel;    //!< Bro: label of the successor block

    bool predicated() const { return !guards.empty(); }

    bool
    hasSideEffect() const
    {
        return op == isa::Op::St || op == isa::Op::Bro ||
               op == isa::Op::Write || op == isa::Op::Br ||
               op == isa::Op::Jmp || op == isa::Op::Ret;
    }

    /** Can this instruction raise an exception (§5.2 condition 3)? */
    bool
    canExcept() const
    {
        switch (op) {
          case isa::Op::Div: case isa::Op::Divi: case isa::Op::Fdiv:
          case isa::Op::Ld: case isa::Op::St:
            return true;
          default:
            return false;
        }
    }
};

/** Block terminator kinds (frontend / SSA stages). */
enum class Term : uint8_t
{
    None, //!< not yet set (illegal in finished functions)
    Jmp,  //!< unconditional jump to succLabels[0]
    Br,   //!< conditional: cond != 0 -> succLabels[0], else succLabels[1]
    Ret,  //!< return retVal (g1 at target level) and halt
    Hyper //!< hyperblock: Bro instructions in the body choose a successor
};

/** A basic block (or, after if-conversion, a hyperblock). */
struct BBlock
{
    int id = -1;
    std::string name;
    std::vector<Instr> instrs;

    Term term = Term::None;
    Opnd cond;                        //!< Br condition
    Opnd retVal;                      //!< Ret value (may be None)
    std::vector<std::string> succLabels;

    // Derived CFG links (block ids), refreshed by Function::computeCfg().
    std::vector<int> preds;
    std::vector<int> succs;
};

/** A compiled unit: one kernel function. */
class Function
{
  public:
    std::string name = "kernel";
    std::vector<BBlock> blocks;
    int entry = 0;

    /** Allocate a fresh temp id. */
    int newTemp() { return nextTemp_++; }

    /** Ensure the temp allocator is past @p id. */
    void
    noteTemp(int id)
    {
        if (id >= nextTemp_)
            nextTemp_ = id + 1;
    }

    int tempCount() const { return nextTemp_; }

    /** Add a block with a unique label; returns its id. */
    BBlock &addBlock(const std::string &label);

    /** Look up a block id by label; -1 if missing. */
    int blockId(const std::string &label) const;

    /** Recompute preds/succs and the label index from terminators. */
    void computeCfg();

    /** Remove blocks unreachable from the entry; recomputes the CFG. */
    void pruneUnreachable();

    /** Structural sanity checks; throws FatalError on malformed IR. */
    void verify() const;

  private:
    int nextTemp_ = 0;
    std::unordered_map<std::string, int> labelIndex_;
};

/** All successor labels of a block, including Bro labels in hyperblocks. */
std::vector<std::string> successorLabels(const BBlock &block);

} // namespace dfp::ir

#endif // DFP_IR_IR_H
