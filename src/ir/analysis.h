/**
 * @file
 * CFG analyses over ir::Function: reverse postorder, dominators and
 * post-dominators (Cooper-Harvey-Kennedy iterative algorithm),
 * dominance frontiers (for SSA construction), liveness, and natural
 * loop discovery (for unrolling and hyperblock region selection).
 */

#ifndef DFP_IR_ANALYSIS_H
#define DFP_IR_ANALYSIS_H

#include <set>
#include <vector>

#include "ir/ir.h"

namespace dfp::ir
{

/** Reverse postorder over reachable blocks starting at the entry. */
std::vector<int> reversePostorder(const Function &fn);

/** Dominator tree: for each block, its immediate dominator (-1 = entry
 *  or unreachable). */
struct DomTree
{
    std::vector<int> idom;

    bool
    dominates(int a, int b) const
    {
        while (b != -1 && b != a)
            b = idom[b];
        return b == a;
    }
};

/** Compute dominators. */
DomTree computeDominators(const Function &fn);

/**
 * Compute post-dominators. Blocks that cannot reach any exit get
 * idom -1 and postDominates() treats them conservatively.
 */
DomTree computePostDominators(const Function &fn);

/** Dominance frontier of each block (Cytron et al.). */
std::vector<std::set<int>> dominanceFrontiers(const Function &fn,
                                              const DomTree &dom);

/** Per-block liveness over temps. */
struct Liveness
{
    std::vector<std::set<int>> liveIn;
    std::vector<std::set<int>> liveOut;
};

/** Compute liveness of temps across the CFG. */
Liveness computeLiveness(const Function &fn);

/** Collect temps used (read) by an instruction, including guards. */
void collectUses(const Instr &inst, std::vector<int> &uses);

/** Temps used by a block's terminator. */
void collectTermUses(const BBlock &block, std::vector<int> &uses);

/** A natural loop: header plus body block set. */
struct Loop
{
    int header = -1;
    std::set<int> body; //!< includes the header
    std::vector<int> latches; //!< blocks with back edges to the header
};

/** Find natural loops (requires reducible back edges; others ignored). */
std::vector<Loop> findLoops(const Function &fn);

/**
 * Structural equality of two functions up to a bijective renaming of
 * temps: same block names/order/terminators, same instructions with
 * the same opcodes, immediates, guards, phi wiring, LSIDs and register
 * annotations. The printer/parser round-trip property test uses this —
 * the parser assigns temp ids by first use, so ids need not match.
 * When @p why is non-null, the first difference is described there.
 */
bool structurallyEquivalent(const Function &a, const Function &b,
                            std::string *why = nullptr);

} // namespace dfp::ir

#endif // DFP_IR_ANALYSIS_H
