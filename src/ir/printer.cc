#include "ir/printer.h"

#include <sstream>

namespace dfp::ir
{

std::string
toString(const Opnd &opnd)
{
    switch (opnd.kind) {
      case Kind::None:
        return "<none>";
      case Kind::Temp:
        return detail::cat("t", opnd.id);
      case Kind::Imm:
        return detail::cat(opnd.value);
    }
    return "?";
}

std::string
toString(const Instr &inst)
{
    std::ostringstream os;
    os << isa::opName(inst.op);
    if (!inst.guards.empty()) {
        os << (inst.guards.front().onTrue ? "_t<" : "_f<");
        for (size_t i = 0; i < inst.guards.size(); ++i) {
            os << (i ? ", " : "") << "t" << inst.guards[i].pred;
            if (inst.guards[i].onTrue != inst.guards.front().onTrue)
                os << (inst.guards[i].onTrue ? ":t" : ":f");
        }
        os << ">";
    }
    os << " ";
    bool first = true;
    auto emit = [&](const std::string &s) {
        os << (first ? "" : ", ") << s;
        first = false;
    };
    if (!inst.dst.isNone())
        emit(toString(inst.dst));
    if (inst.op == isa::Op::Write || inst.op == isa::Op::Read)
        emit(detail::cat("g", inst.reg));
    if (inst.op == isa::Op::Phi) {
        for (size_t i = 0; i < inst.srcs.size(); ++i) {
            emit(detail::cat("[b", inst.phiBlocks[i], ": ",
                             toString(inst.srcs[i]), "]"));
        }
    } else {
        for (const Opnd &src : inst.srcs)
            emit(toString(src));
    }
    if (inst.op == isa::Op::Bro)
        emit(inst.broLabel);
    if (inst.lsid >= 0)
        os << "  ; lsid=" << inst.lsid;
    return os.str();
}

namespace
{

/** Render an instruction in the parser's grammar (CFG-stage only). */
std::string
parseableForm(const Function &fn, const Instr &inst)
{
    std::ostringstream os;
    // Boundary-lowering ops have no frontend syntax; fall back to the
    // diagnostic form (such functions are printed for humans, not
    // re-parsed).
    if (inst.op == isa::Op::Read || inst.op == isa::Op::Write ||
        inst.op == isa::Op::Null || inst.op == isa::Op::Bro) {
        return toString(inst);
    }
    if (inst.op == isa::Op::St) {
        os << "st " << toString(inst.srcs[0]) << ", "
           << toString(inst.srcs[1]) << ", " << toString(inst.srcs[2]);
        return os.str();
    }
    os << toString(inst.dst) << " = " << isa::opName(inst.op);
    if (inst.op == isa::Op::Phi) {
        for (size_t k = 0; k < inst.srcs.size(); ++k) {
            os << (k ? ", [" : " [") << fn.blocks[inst.phiBlocks[k]].name
               << ": " << toString(inst.srcs[k]) << "]";
        }
        return os.str();
    }
    for (size_t k = 0; k < inst.srcs.size(); ++k)
        os << (k ? ", " : " ") << toString(inst.srcs[k]);
    return os.str();
}

} // namespace

void
print(std::ostream &os, const Function &fn)
{
    os << "func " << fn.name << " {\n";
    for (const BBlock &block : fn.blocks) {
        os << "block " << block.name << ":";
        if (block.term == Term::Hyper)
            os << "    # hyperblock";
        os << "\n";
        for (const Instr &inst : block.instrs) {
            if (block.term == Term::Hyper)
                os << "    " << toString(inst) << "\n";
            else
                os << "    " << parseableForm(fn, inst) << "\n";
        }
        switch (block.term) {
          case Term::Jmp:
            os << "    jmp " << block.succLabels[0] << "\n";
            break;
          case Term::Br:
            os << "    br " << toString(block.cond) << ", "
               << block.succLabels[0] << ", " << block.succLabels[1]
               << "\n";
            break;
          case Term::Ret:
            os << "    ret";
            if (!block.retVal.isNone())
                os << " " << toString(block.retVal);
            os << "\n";
            break;
          default:
            break;
        }
    }
    os << "}\n";
}

std::string
toString(const Function &fn)
{
    std::ostringstream os;
    print(os, fn);
    return os.str();
}

} // namespace dfp::ir
