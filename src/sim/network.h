/**
 * @file
 * Operand network (OPN) timing model: a 2-D mesh of execution tiles
 * with register tiles along the top edge and data tiles along the left
 * edge, one-cycle hops between adjacent tiles (the paper's tsim-proc
 * configuration), dimension-order routing, and single-operand-per-link
 * per-cycle contention modeled with per-link next-free-cycle tracking.
 */

#ifndef DFP_SIM_NETWORK_H
#define DFP_SIM_NETWORK_H

#include <cstdint>
#include <map>
#include <vector>

#include "base/serialize.h"
#include "base/stats.h"
#include "sim/fault.h"
#include "sim/trace.h"

namespace dfp::sim
{

/** Grid geometry shared by the network and the machine. */
struct Grid
{
    int rows = 4;
    int cols = 4;

    int tiles() const { return rows * cols; }
    int rowOf(int tile) const { return tile / cols; }
    int colOf(int tile) const { return tile % cols; }

    /** Register tile column serving architectural register @p reg. */
    int regCol(int reg) const { return reg % cols; }

    /** Data tile (cache bank) row serving a line address. */
    int
    bankRow(uint64_t addr, int lineBytes) const
    {
        return static_cast<int>((addr / lineBytes) % rows);
    }
};

/**
 * Mesh timing model. Nodes are tiles plus virtual register-tile nodes
 * (one per column above row 0) and data-tile nodes (one per row left of
 * column 0).
 */
class OperandNetwork
{
  public:
    explicit OperandNetwork(const Grid &grid, bool modelContention)
        : grid_(grid), contention_(modelContention)
    {}

    /** Attach an optional event sink; hop events are emitted per
     *  routed message. Pass nullptr to detach. */
    void attachTrace(TraceSink *trace) { trace_ = trace; }

    /** Attach a fault engine (not owned): net-delay faults stretch a
     *  message's in-flight time inside route(). Pass nullptr to detach;
     *  detached — the default — costs one predicted branch per route. */
    void attachFaults(FaultEngine *faults) { faults_ = faults; }

    /** Cycle at which an operand leaving @p from at @p cycle reaches
     *  @p to (adjacent tiles: +1; same tile: +0 via local bypass). */
    uint64_t deliver(int from, int to, uint64_t cycle);

    /** Execution tile -> register tile serving @p reg (for writes), or
     *  the reverse (for read injection). */
    uint64_t deliverToReg(int tile, int reg, uint64_t cycle);
    uint64_t deliverFromReg(int reg, int tile, uint64_t cycle);

    /** Execution tile <-> data tile (cache bank) for a memory access. */
    uint64_t deliverToBank(int tile, int bankRow, uint64_t cycle);
    uint64_t deliverFromBank(int bankRow, int tile, uint64_t cycle);

    uint64_t totalHops() const { return hops_; }
    uint64_t contentionStalls() const { return stalls_; }

    /**
     * Roll the network's counters and the per-message latency
     * histogram into @p stats under "sim.net.*" (plus the legacy
     * "sim.net_hops"/"sim.net_stalls" names).
     */
    void exportStats(StatSet &stats) const;

    void reset();

    /** Serialize/restore mutable state (counters, latency histogram,
     *  per-link occupancy). Geometry and attached trace/fault hooks are
     *  reconstructed by the owner. linkFree_ is an ordered map, so the
     *  encoding is deterministic. */
    void save(serialize::BinWriter &w) const;
    void load(serialize::BinReader &r);

  private:
    /** Route over a hop sequence with per-link occupancy. */
    uint64_t route(const std::vector<int> &path, uint64_t cycle);

    /** Cold out-of-line emission so route() stays compact. */
    __attribute__((noinline, cold)) void traceHop(
        const std::vector<int> &path, uint64_t cycle, uint64_t arrive,
        size_t links);

    /** Node ids: 0..tiles-1 = execution tiles; then register-tile nodes
     *  (one per column); then data-tile nodes (one per row). */
    int regNode(int col) const { return grid_.tiles() + col; }
    int bankNode(int row) const { return grid_.tiles() + grid_.cols + row; }

    std::vector<int> meshPath(int fromTile, int toTile) const;

    Grid grid_;
    bool contention_;
    uint64_t hops_ = 0;
    uint64_t stalls_ = 0;
    Histogram hopLatency_; //!< per-message inject-to-eject latency
    TraceSink *trace_ = nullptr;
    FaultEngine *faults_ = nullptr;
    std::map<std::pair<int, int>, uint64_t> linkFree_;
};

} // namespace dfp::sim

#endif // DFP_SIM_NETWORK_H
