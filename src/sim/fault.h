/**
 * @file
 * Deterministic fault injection for the cycle-level machine. A seeded
 * xorshift64* PRNG (no wall-clock, no std::random) drives one of several
 * pluggable fault models:
 *
 *  - net-drop     an operand-network message is lost in transit
 *  - net-corrupt  an operand-network message arrives with a flipped bit
 *                 (always caught by per-token parity at ejection)
 *  - net-delay    an operand-network message is delayed a few cycles
 *  - tile-stall   an execution tile transiently holds an issue slot
 *  - tile-fail    an execution tile silently swallows an issue (hard
 *                 fault; past a threshold the tile is mapped out)
 *  - cache-flip   an L1-D line access returns data with a flipped bit
 *                 (always caught by line parity when the data returns)
 *  - pred-lie     the next-block predictor returns a wrong target
 *
 * Each eligible site consults the engine exactly once per event, so a
 * given `--fault-seed` reproduces the exact same injection schedule on
 * every run. To make short runs and smoke tests meaningful, the engine
 * additionally forces one injection per 16 eligible sites at a
 * seed-chosen phase until the machine reports the first
 * fault-triggered recovery (an injection that lands on a falsely-
 * predicated path is architecturally harmless and triggers nothing, so
 * a single forced shot could be silently absorbed); benign models
 * (net-delay, tile-stall) and pred-lie, which recover through the
 * ordinary mispredict path, force only once. The 16-site period is
 * small enough that even the tiniest microkernel (a few dozen operand
 * messages end to end) sees a fault. The Bernoulli schedule applies
 * everywhere else.
 *
 * Cost model: the machine only constructs a FaultEngine when a fault
 * model is enabled, and every injection site is guarded by the
 * DFP_FAULT_ACTIVE macro — a predicted-not-taken null check (the same
 * zero-cost-off discipline as DFP_TRACE), or nothing at all when the
 * simulator is built with -DDFP_SIM_FAULTS=0.
 */

#ifndef DFP_SIM_FAULT_H
#define DFP_SIM_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.h"
#include "base/serialize.h"
#include "base/stats.h"

namespace dfp::sim
{

/** The pluggable fault models. */
enum class FaultModel : uint8_t
{
    None,
    NetDrop,
    NetCorrupt,
    NetDelay,
    TileStall,
    TileFail,
    CacheFlip,
    PredLie,
};

/** Stable CLI name ("net-drop", "cache-flip", ...). */
const char *faultModelName(FaultModel model);

/** Parse a CLI name; returns false on an unknown name. */
bool parseFaultModel(const std::string &name, FaultModel &out);

/** Fault-injection knobs (SimConfig::faults). */
struct FaultConfig
{
    FaultModel model = FaultModel::None;
    double rate = 0.0;        //!< per-opportunity injection probability
    uint64_t seed = 1;        //!< PRNG seed (--fault-seed)
    int maxDelayCycles = 8;   //!< net-delay: extra cycles in [1, max]
    int maxStallCycles = 6;   //!< tile-stall: extra cycles in [1, max]
    int tileFailThreshold = 3; //!< hard fails before a tile is mapped out

    bool
    enabled() const
    {
        return model != FaultModel::None && rate > 0.0;
    }
};

/**
 * The injection engine. One instance per simulation; the machine owns
 * it and attaches it to the operand network (delay faults), the L1-D
 * (bit flips), and the next-block predictor (lies). All decisions come
 * from the one shared PRNG, so consultation order — which is fully
 * deterministic in the event-driven machine — fixes the schedule.
 */
class FaultEngine
{
  public:
    /** Verdict for one operand-network message. */
    enum class MessageVerdict : uint8_t
    {
        Deliver, //!< unharmed (the common case)
        Drop,    //!< lost in transit; the consumer starves
        Corrupt, //!< bit flipped; parity catches it at ejection
    };

    FaultEngine(const FaultConfig &config, int numTiles, int numBlocks);

    /** One operand-network message (any send site). */
    MessageVerdict
    onMessage()
    {
        if (cfg_.model == FaultModel::NetDrop && fire()) {
            ++injected_;
            ++dropped_;
            return MessageVerdict::Drop;
        }
        if (cfg_.model == FaultModel::NetCorrupt && fire()) {
            ++injected_;
            ++corrupted_;
            return MessageVerdict::Corrupt;
        }
        return MessageVerdict::Deliver;
    }

    /** Extra in-flight cycles for one routed message (0 = none). */
    uint64_t
    netDelay()
    {
        if (cfg_.model != FaultModel::NetDelay || !fire())
            return 0;
        ++injected_;
        ++delayed_;
        uint64_t d = 1 + rng_.nextBelow(
                             static_cast<uint64_t>(cfg_.maxDelayCycles));
        delayCycles_ += d;
        return d;
    }

    /** Extra cycles before one issue slot frees up (0 = none). */
    uint64_t
    tileStall(int tile)
    {
        (void)tile;
        if (cfg_.model != FaultModel::TileStall || !fire())
            return 0;
        ++injected_;
        ++stalls_;
        uint64_t d = 1 + rng_.nextBelow(
                             static_cast<uint64_t>(cfg_.maxStallCycles));
        stallCycles_ += d;
        return d;
    }

    /**
     * Does @p tile hard-fail this issue (silently swallow it)? Counts
     * against the tile's map-out threshold. Never fires on the last
     * live tile, so the machine always retains an execution resource.
     */
    bool tileFailIssue(int tile);

    /** Was the last L1-D access corrupted by a bit flip? */
    bool
    cacheFlip()
    {
        if (cfg_.model != FaultModel::CacheFlip || !fire())
            return false;
        ++injected_;
        ++flips_;
        return true;
    }

    /**
     * Possibly replace @p predicted with a lie: a wrong (but in-range)
     * block index. @p predicted may be negative (no prediction / halt).
     */
    int predictorLie(int predicted);

    /**
     * Next tile whose injected hard-fail count crossed the threshold
     * and that has not been handed out yet; marks it dead. -1 = none.
     * The machine calls this during recovery to map tiles out.
     */
    int takeTileToMapOut();

    bool tileDead(int tile) const { return dead_[tile]; }
    int liveTiles() const { return liveTiles_; }

    /** The machine squashed and replayed a block because of a fault;
     *  the guaranteed-injection forcing stops once this happens. */
    void noteRecovery() { ++recoveries_; }

    uint64_t injected() const { return injected_; }

    /** Roll the injection counters into @p stats under "sim.fault.*". */
    void exportStats(StatSet &stats) const;

    /** Serialize/restore mutable state: PRNG position, opportunity and
     *  injection tallies, per-tile hard-fail/map-out state. The config
     *  (model, rate, seed, thresholds) is NOT serialized — the restored
     *  engine must be constructed from the same FaultConfig, which the
     *  checkpoint layer enforces via the config fingerprint. */
    void save(serialize::BinWriter &w) const;
    void load(serialize::BinReader &r);

  private:
    static constexpr uint64_t kForcePeriod = 16;
    static constexpr uint64_t kNoForce = ~0ull;

    /** One Bernoulli(rate) draw, plus the guaranteed injections. */
    bool
    fire()
    {
        ++opportunities_;
        if (rng_.next() < threshold_)
            return true;
        if (forcedPhase_ != kNoForce &&
            opportunities_ % kForcePeriod == forcedPhase_) {
            // Detectable models force until a recovery actually
            // happened; benign ones only within the first window.
            return detectable_ ? recoveries_ == 0
                               : opportunities_ <= kForcePeriod;
        }
        return false;
    }

    FaultConfig cfg_;
    Rng rng_;
    uint64_t threshold_; //!< rate scaled to the full 64-bit range
    uint64_t opportunities_ = 0;
    uint64_t forcedPhase_; //!< guaranteed-injection phase (kNoForce = off)
    bool detectable_;      //!< model can trigger a squash-and-replay
    uint64_t recoveries_ = 0;
    int numBlocks_;
    int liveTiles_;

    std::vector<int> hardFails_; //!< injected hard fails per tile
    std::vector<bool> dead_;     //!< tiles handed out for map-out

    // Injection tallies, exported under "sim.fault.*".
    uint64_t injected_ = 0;
    uint64_t dropped_ = 0;
    uint64_t corrupted_ = 0;
    uint64_t delayed_ = 0;
    uint64_t delayCycles_ = 0;
    uint64_t stalls_ = 0;
    uint64_t stallCycles_ = 0;
    uint64_t hardFailCount_ = 0;
    uint64_t flips_ = 0;
    uint64_t lies_ = 0;
};

} // namespace dfp::sim

// Compile-time kill switch: build with -DDFP_SIM_FAULTS=0 to remove
// every injection site (and its branch) from the simulator entirely.
#ifndef DFP_SIM_FAULTS
#define DFP_SIM_FAULTS 1
#endif

#if DFP_SIM_FAULTS
// Predicted-not-taken null check, mirroring DFP_TRACE: a fault-free run
// pays one predictable branch per site and never calls the engine.
#define DFP_FAULT_ACTIVE(engine) (__builtin_expect((engine) != nullptr, 0))
#else
#define DFP_FAULT_ACTIVE(engine) (false)
#endif

#endif // DFP_SIM_FAULT_H
