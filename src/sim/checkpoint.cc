#include "sim/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/serialize.h"

namespace dfp::sim
{

namespace
{

constexpr char kMagic[8] = {'D', 'F', 'P', 'C', 'K', 'P', 'T', '1'};

} // namespace

std::string
simConfigKey(const SimConfig &c)
{
    // Every knob that steers cycle-level behaviour, in a fixed order.
    // The checkpoint hooks (everyCycles, stop, sink, resume) are
    // deliberately absent: where a run pauses must not change what it
    // computes, and the byte-identity tests rely on that.
    std::ostringstream os;
    os << "grid=" << c.grid.rows << "x" << c.grid.cols
       << ";blocks=" << c.maxBlocksInFlight
       << ";fetch=" << c.fetchLatency << "/" << c.fetchWidth
       << ";pred=" << c.predictLatency
       << ";l1d=" << c.l1dBytes << "/" << c.l1dAssoc << "/"
       << c.l1dHitLatency
       << ";l1i=" << c.l1iBytes << "/" << c.l1iAssoc << "/"
       << c.l1iHitLatency
       << ";miss=" << c.missLatency << ";line=" << c.lineBytes
       << ";et=" << c.earlyTermination << ";pp=" << c.perfectPrediction
       << ";cont=" << c.modelContention << ";aggr=" << c.aggressiveLoads
       << ";maxcyc=" << c.maxCycles
       << ";fault=" << faultModelName(c.faults.model) << "/"
       << c.faults.rate << "/" << c.faults.seed << "/"
       << c.faults.maxDelayCycles << "/" << c.faults.maxStallCycles
       << "/" << c.faults.tileFailThreshold
       << ";rec=" << c.recovery.retryBudget << "/"
       << c.recovery.backoffBase << "/" << c.recovery.backoffCapShift
       << ";wd=" << c.watchdogCycles << ";pbs=" << c.perBlockStats;
    return os.str();
}

std::vector<uint8_t>
encodeCheckpoint(const Checkpoint &ckpt)
{
    serialize::BinWriter body;
    body.str(ckpt.toolVersion);
    body.str(ckpt.compileKey);
    body.str(ckpt.simKey);
    body.str(ckpt.workload);
    body.u64(ckpt.cycle);
    body.u64(ckpt.payload.size());
    body.raw(ckpt.payload.data(), ckpt.payload.size());

    serialize::BinWriter out;
    out.raw(kMagic, sizeof(kMagic));
    out.u32(Checkpoint::kFormatVersion);
    out.u32(serialize::crc32(body.bytes().data(), body.size()));
    out.raw(body.bytes().data(), body.size());
    return out.take();
}

CheckpointStatus
decodeCheckpoint(const std::vector<uint8_t> &bytes, Checkpoint &out,
                 std::string &error)
{
    if (bytes.size() < sizeof(kMagic) + 8) {
        error = "file too short to be a checkpoint";
        return CheckpointStatus::Corrupt;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
        error = "bad magic (not a dfp checkpoint)";
        return CheckpointStatus::Corrupt;
    }
    serialize::BinReader hdr(bytes.data() + sizeof(kMagic),
                             bytes.size() - sizeof(kMagic));
    uint32_t version = hdr.u32();
    if (version != Checkpoint::kFormatVersion) {
        error = "unsupported checkpoint format version " +
                std::to_string(version) + " (expected " +
                std::to_string(Checkpoint::kFormatVersion) + ")";
        return CheckpointStatus::Corrupt;
    }
    uint32_t storedCrc = hdr.u32();
    const uint8_t *body = bytes.data() + sizeof(kMagic) + 8;
    size_t bodyLen = bytes.size() - sizeof(kMagic) - 8;
    if (serialize::crc32(body, bodyLen) != storedCrc) {
        error = "checksum mismatch (truncated or corrupted file)";
        return CheckpointStatus::Corrupt;
    }

    serialize::BinReader r(body, bodyLen);
    out.toolVersion = r.str();
    out.compileKey = r.str();
    out.simKey = r.str();
    out.workload = r.str();
    out.cycle = r.u64();
    size_t payloadLen = r.len(1);
    out.payload.resize(payloadLen);
    r.raw(out.payload.data(), payloadLen);
    if (!r.ok() || !r.atEnd()) {
        error = "malformed checkpoint body";
        return CheckpointStatus::Corrupt;
    }
    return CheckpointStatus::Ok;
}

bool
writeCheckpointFile(const std::string &path, const Checkpoint &ckpt,
                    std::string &error)
{
    std::vector<uint8_t> bytes = encodeCheckpoint(ckpt);
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) {
            error = "write to '" + tmp + "' failed";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "rename '" + tmp + "' -> '" + path + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

CheckpointStatus
readCheckpointFile(const std::string &path, Checkpoint &out,
                   std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open '" + path + "'";
        return CheckpointStatus::Unreadable;
    }
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (is.bad()) {
        error = "read error on '" + path + "'";
        return CheckpointStatus::Unreadable;
    }
    return decodeCheckpoint(bytes, out, error);
}

} // namespace dfp::sim
