/**
 * @file
 * Next-block predictor. TRIPS predicts the successor of each block
 * (an "exit predictor") rather than individual branches; dfp models it
 * as a two-level predictor — a per-block pattern table indexed by a
 * hash of the block id and a short global history of committed block
 * ids — with a last-target fallback, plus a perfect mode for ablation.
 * Prediction costs 3 cycles in the paper's configuration (§6).
 */

#ifndef DFP_SIM_PREDICTOR_H
#define DFP_SIM_PREDICTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/serialize.h"
#include "base/stats.h"
#include "sim/fault.h"

namespace dfp::sim
{

/** Two-level next-block predictor with last-target fallback. */
class BlockPredictor
{
  public:
    /** Sentinel for "no prediction available" (distinct from halt). */
    static constexpr int kNoPrediction = -2;

    explicit BlockPredictor(int tableBits = 12);

    /** Predict the committed successor of @p block
     *  (kNoPrediction = no idea; -1 is a real halt prediction). */
    int predict(int block) const;

    /** Attach a fault engine (not owned): predictions may then be
     *  replaced by lies — wrong-but-valid targets caught later by the
     *  machine's commit-time validation. Detached by default. */
    void attachFaults(FaultEngine *faults) { faults_ = faults; }

    /** Train on an observed committed transition. */
    void train(int block, int next);

    uint64_t lookups() const { return lookups_; }
    uint64_t correct() const { return correct_; }

    /** Roll accuracy counters into @p stats under "sim.pred.*". */
    void exportStats(StatSet &stats) const;

    /** Record prediction accuracy (called by the machine at commit). */
    void
    noteOutcome(bool wasCorrect)
    {
        ++lookups_;
        correct_ += wasCorrect;
    }

    /** Serialize/restore mutable state (history, tables, counters).
     *  Table geometry comes from the constructor; the attached fault
     *  engine is re-attached by the owner. */
    void save(serialize::BinWriter &w) const;
    void load(serialize::BinReader &r);

  private:
    struct Entry
    {
        int32_t target = kNoPrediction;
        uint8_t confidence = 0; //!< 2-bit saturating
    };

    size_t index(int block) const;

    uint32_t mask_;
    uint64_t history_ = 0;
    FaultEngine *faults_ = nullptr;
    std::vector<Entry> pattern_;  //!< history-hashed table
    std::vector<Entry> lastSeen_; //!< per-block fallback
    mutable uint64_t lookups_ = 0;
    uint64_t correct_ = 0;
};

} // namespace dfp::sim

#endif // DFP_SIM_PREDICTOR_H
