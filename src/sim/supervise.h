/**
 * @file
 * Crash-resilient batch supervision on top of sim/batch.h. Where
 * BatchRunner::run() is a fire-and-forget fan-out, superviseBatch()
 * wraps every job with the machinery a long unattended sweep needs:
 *
 *  - a per-job wall-clock deadline enforced by a monitor thread (the
 *    machine's stop poll aborts the run; the result is marked
 *    errorKind "timeout"),
 *  - retry-with-exponential-backoff for transient failure kinds
 *    ("timeout", "exception") — deterministic failures ("compile",
 *    "golden", "sim") fail identically every time and are never
 *    retried,
 *  - an append-only journal (`manifest.jsonl` in journalDir): one
 *    CRC32-framed JSON line per event. A sweep killed mid-flight and
 *    re-invoked on the same directory restores every finished job's
 *    full BatchResult (scalars and StatSet, bit-exact) from its
 *    `done` line and re-runs only unfinished work, so the resumed
 *    summary's per-run results and merged stats are identical to an
 *    uninterrupted sweep's,
 *  - quarantine for journal lines that fail to parse or whose CRC
 *    does not match (torn writes, bit rot): the raw line is appended
 *    to `quarantine.jsonl`, counted, and never trusted — the job
 *    simply re-runs,
 *  - partial-failure reporting: the sweep runs to completion by
 *    default and the summary buckets failures by errorKind; strict
 *    mode restores fail-fast (the first failure stops new work and
 *    interrupts in-flight runs),
 *  - cooperative shutdown: an external stop flag (base/signals.h)
 *    interrupts in-flight runs and leaves them *unjournalled*, so
 *    the next resume re-runs them from scratch.
 *
 * Determinism: results are produced by BatchRunner::runOne(), which
 * is byte-identical to BatchRunner::run()'s per-job body. Timeouts
 * and stops are the only nondeterministic inputs, and both only ever
 * abort a run (never alter a completed one). Journalled wall-clock
 * fields (hostSeconds) and cache accounting naturally differ between
 * an interrupted-and-resumed sweep and a straight-through one; every
 * architectural statistic is identical, and tests/sim/
 * test_supervise.cc enforces that.
 *
 * The deadline covers simulation only: compilation does not poll the
 * stop flag, so a pathological compile runs to completion before the
 * timeout is observed.
 */

#ifndef DFP_SIM_SUPERVISE_H
#define DFP_SIM_SUPERVISE_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "sim/batch.h"

namespace dfp::sim
{

/**
 * Bit-exact BatchResult serialization: every field the identity gates
 * care about travels inside a binary blob (JSON numbers are doubles
 * and would round large counters). Shared by the sweep journal's
 * `done` lines and the dfp-serve response payload, so a journalled
 * result restored after a crash is byte-for-byte the result a live
 * run would have produced.
 */
void encodeBatchResult(const BatchResult &r, serialize::BinWriter &w);
bool decodeBatchResult(serialize::BinReader &r, BatchResult &out);

/**
 * The append-only crash-safe sweep journal behind `--resume-dir`.
 * Every line of `manifest.jsonl` is `{"crc":<crc32>,"p":{...}}` where
 * the CRC covers the exact text of the payload object, so a torn tail
 * line, a truncated file, or a flipped bit is detected line-locally:
 * the damaged line is quarantined (appended to `quarantine.jsonl`,
 * counted, never trusted) and the rest of the journal stays usable.
 *
 * open() replays an existing manifest: every valid `done` line's
 * result is restored into finished() keyed by job identity
 * (superviseJobId()), last wins. Writers — superviseBatch() and the
 * dfp-serve daemon — journal `start` before running a job and `done`
 * (with the full encodeBatchResult blob) after, so a process SIGKILLed
 * at any instant loses at most the jobs that had not finished, and a
 * restart re-runs exactly those. Thread-safe: appends take an internal
 * lock; replay happens before any concurrent use.
 */
class SweepJournal
{
  public:
    /** Create @p dir if missing, replay an existing manifest, then
     *  open it for append. False (with @p error set) when the
     *  directory or manifest is unusable. */
    bool open(const std::string &dir, const std::string &toolVersion,
              uint64_t jobCount, std::string &error);

    /** Journal that attempt @p attempt of job @p id is starting. */
    void start(const std::string &id, uint64_t attempt);

    /** Journal a finished job with its full bit-exact result. */
    void done(const std::string &id, uint64_t attempt,
              const BatchResult &r);

    /** Results restored from `done` lines during open(), by job id. */
    const std::map<std::string, BatchResult> &
    finished() const
    {
        return finished_;
    }

    /** The restored result for @p id, or nullptr. */
    const BatchResult *
    find(const std::string &id) const
    {
        auto it = finished_.find(id);
        return it == finished_.end() ? nullptr : &it->second;
    }

    uint64_t quarantined() const { return quarantined_; }
    const std::string &manifestPath() const { return manifestPath_; }
    const std::string &quarantinePath() const { return quarantinePath_; }

  private:
    void append(const std::string &payload);
    void quarantine(const std::string &line);
    void replay(std::string &error);
    bool replayLine(const std::string &line);

    std::map<std::string, BatchResult> finished_;
    uint64_t quarantined_ = 0;
    std::string manifestPath_;
    std::string quarantinePath_;
    std::mutex mu_;
    std::ofstream os_;
    std::ofstream quarantineOs_;
};

struct SuperviseOptions
{
    /** Worker count and per-run knobs, as BatchRunner::run() takes. */
    BatchOptions batch;

    /** Wall-clock budget per job attempt, in seconds; 0 = unlimited. */
    double jobTimeoutSeconds = 0;

    /** Extra attempts after a transient failure (timeout/exception). */
    uint64_t retries = 0;

    /** Delay before the first retry; doubles per attempt, capped at
     *  30s. The backoff sleep polls the stop flag. */
    double backoffSeconds = 0.5;

    /** Fail fast: the first failed job stops new work and interrupts
     *  in-flight runs, like BatchRunner users aborting on !allOk. */
    bool strict = false;

    /** Directory for manifest.jsonl / quarantine.jsonl. Empty runs
     *  the sweep without a journal (no resume, no quarantine). The
     *  directory is created if missing; an existing manifest is
     *  replayed for resume before any job runs. */
    std::string journalDir;

    /** External stop flag (e.g. base/signals.h stopRequested()); a
     *  nonzero value drains the sweep cooperatively. */
    const std::atomic<int> *stop = nullptr;

    /** Recorded in the journal header (informational). */
    std::string toolVersion;
};

struct SuperviseSummary
{
    /** Same shape run() produces: one result per job in submission
     *  order, merged stats, rollups. Restored jobs keep their
     *  journalled hostSeconds; compiles/cacheHits count only this
     *  invocation's cache traffic. */
    BatchSummary batch;

    uint64_t executed = 0;    //!< jobs actually run this invocation
    uint64_t restored = 0;    //!< finished jobs replayed from journal
    uint64_t retried = 0;     //!< extra attempts beyond each first
    uint64_t quarantined = 0; //!< corrupt journal lines set aside

    /** True when an external stop or a strict-mode abort cut the
     *  sweep short; unfinished jobs carry errorKind "interrupted". */
    bool interrupted = false;

    /** !ok results bucketed by BatchResult::errorKind. */
    std::map<std::string, uint64_t> failuresByKind;

    std::string journalPath;    //!< manifest in use ("" = no journal)
    std::string quarantinePath; //!< set iff quarantined > 0

    /** Fatal supervisor-level failure (journal dir unusable); the
     *  sweep did not run. */
    std::string error;
};

/** Run @p jobs under supervision. Blocks until every job finished,
 *  was restored from the journal, or the sweep was interrupted. */
SuperviseSummary superviseBatch(BatchRunner &runner,
                                const std::vector<BatchJob> &jobs,
                                const SuperviseOptions &opts);

/** The journal identity of one job: its label plus a fingerprint of
 *  everything that determines its result (compile options and
 *  timing-relevant SimConfig). A journalled result is only restored
 *  onto a job with the same identity, so editing a sweep between
 *  resume runs re-runs exactly the changed cells. */
std::string superviseJobId(const BatchJob &job);

} // namespace dfp::sim

#endif // DFP_SIM_SUPERVISE_H
