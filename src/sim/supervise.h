/**
 * @file
 * Crash-resilient batch supervision on top of sim/batch.h. Where
 * BatchRunner::run() is a fire-and-forget fan-out, superviseBatch()
 * wraps every job with the machinery a long unattended sweep needs:
 *
 *  - a per-job wall-clock deadline enforced by a monitor thread (the
 *    machine's stop poll aborts the run; the result is marked
 *    errorKind "timeout"),
 *  - retry-with-exponential-backoff for transient failure kinds
 *    ("timeout", "exception") — deterministic failures ("compile",
 *    "golden", "sim") fail identically every time and are never
 *    retried,
 *  - an append-only journal (`manifest.jsonl` in journalDir): one
 *    CRC32-framed JSON line per event. A sweep killed mid-flight and
 *    re-invoked on the same directory restores every finished job's
 *    full BatchResult (scalars and StatSet, bit-exact) from its
 *    `done` line and re-runs only unfinished work, so the resumed
 *    summary's per-run results and merged stats are identical to an
 *    uninterrupted sweep's,
 *  - quarantine for journal lines that fail to parse or whose CRC
 *    does not match (torn writes, bit rot): the raw line is appended
 *    to `quarantine.jsonl`, counted, and never trusted — the job
 *    simply re-runs,
 *  - partial-failure reporting: the sweep runs to completion by
 *    default and the summary buckets failures by errorKind; strict
 *    mode restores fail-fast (the first failure stops new work and
 *    interrupts in-flight runs),
 *  - cooperative shutdown: an external stop flag (base/signals.h)
 *    interrupts in-flight runs and leaves them *unjournalled*, so
 *    the next resume re-runs them from scratch.
 *
 * Determinism: results are produced by BatchRunner::runOne(), which
 * is byte-identical to BatchRunner::run()'s per-job body. Timeouts
 * and stops are the only nondeterministic inputs, and both only ever
 * abort a run (never alter a completed one). Journalled wall-clock
 * fields (hostSeconds) and cache accounting naturally differ between
 * an interrupted-and-resumed sweep and a straight-through one; every
 * architectural statistic is identical, and tests/sim/
 * test_supervise.cc enforces that.
 *
 * The deadline covers simulation only: compilation does not poll the
 * stop flag, so a pathological compile runs to completion before the
 * timeout is observed.
 */

#ifndef DFP_SIM_SUPERVISE_H
#define DFP_SIM_SUPERVISE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/batch.h"

namespace dfp::sim
{

struct SuperviseOptions
{
    /** Worker count and per-run knobs, as BatchRunner::run() takes. */
    BatchOptions batch;

    /** Wall-clock budget per job attempt, in seconds; 0 = unlimited. */
    double jobTimeoutSeconds = 0;

    /** Extra attempts after a transient failure (timeout/exception). */
    uint64_t retries = 0;

    /** Delay before the first retry; doubles per attempt, capped at
     *  30s. The backoff sleep polls the stop flag. */
    double backoffSeconds = 0.5;

    /** Fail fast: the first failed job stops new work and interrupts
     *  in-flight runs, like BatchRunner users aborting on !allOk. */
    bool strict = false;

    /** Directory for manifest.jsonl / quarantine.jsonl. Empty runs
     *  the sweep without a journal (no resume, no quarantine). The
     *  directory is created if missing; an existing manifest is
     *  replayed for resume before any job runs. */
    std::string journalDir;

    /** External stop flag (e.g. base/signals.h stopRequested()); a
     *  nonzero value drains the sweep cooperatively. */
    const std::atomic<int> *stop = nullptr;

    /** Recorded in the journal header (informational). */
    std::string toolVersion;
};

struct SuperviseSummary
{
    /** Same shape run() produces: one result per job in submission
     *  order, merged stats, rollups. Restored jobs keep their
     *  journalled hostSeconds; compiles/cacheHits count only this
     *  invocation's cache traffic. */
    BatchSummary batch;

    uint64_t executed = 0;    //!< jobs actually run this invocation
    uint64_t restored = 0;    //!< finished jobs replayed from journal
    uint64_t retried = 0;     //!< extra attempts beyond each first
    uint64_t quarantined = 0; //!< corrupt journal lines set aside

    /** True when an external stop or a strict-mode abort cut the
     *  sweep short; unfinished jobs carry errorKind "interrupted". */
    bool interrupted = false;

    /** !ok results bucketed by BatchResult::errorKind. */
    std::map<std::string, uint64_t> failuresByKind;

    std::string journalPath;    //!< manifest in use ("" = no journal)
    std::string quarantinePath; //!< set iff quarantined > 0

    /** Fatal supervisor-level failure (journal dir unusable); the
     *  sweep did not run. */
    std::string error;
};

/** Run @p jobs under supervision. Blocks until every job finished,
 *  was restored from the journal, or the sweep was interrupted. */
SuperviseSummary superviseBatch(BatchRunner &runner,
                                const std::vector<BatchJob> &jobs,
                                const SuperviseOptions &opts);

/** The journal identity of one job: its label plus a fingerprint of
 *  everything that determines its result (compile options and
 *  timing-relevant SimConfig). A journalled result is only restored
 *  onto a job with the same identity, so editing a sweep between
 *  resume runs re-runs exactly the changed cells. */
std::string superviseJobId(const BatchJob &job);

} // namespace dfp::sim

#endif // DFP_SIM_SUPERVISE_H
