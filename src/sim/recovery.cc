#include "sim/recovery.h"

#include <algorithm>
#include <sstream>

#include "base/json.h"
#include "base/logging.h"

namespace dfp::sim
{

int64_t
RecoveryManager::onSquash(int blockIdx)
{
    int &count = retries_[blockIdx];
    ++count;
    ++replays_;
    maxRetriesSeen_ = std::max(maxRetriesSeen_, count);
    if (count > cfg_.retryBudget)
        return -1;
    int shift = std::min(count - 1, cfg_.backoffCapShift);
    uint64_t backoff = cfg_.backoffBase << shift;
    backoffCycles_ += backoff;
    return static_cast<int64_t>(backoff);
}

void
RecoveryManager::exportStats(StatSet &stats) const
{
    stats.set("sim.recovery.replays", replays_);
    stats.set("sim.recovery.backoff_cycles", backoffCycles_);
    stats.set("sim.recovery.max_consecutive_retries",
              static_cast<uint64_t>(maxRetriesSeen_));
}

// ---------------------------------------------------------------------
// Forensics rendering.

std::string
DeadlockReport::summary() const
{
    if (frames.empty())
        return detail::cat("simulation deadlock (", reason, ") at cycle ",
                           cycle, " with no frames in flight");
    const DeadlockFrame &f = frames.front();
    std::string what;
    if (!f.stalled.empty()) {
        const StalledInst &s = f.stalled.front();
        what = detail::cat(": inst ", s.index, " (", s.op, ") missing");
        for (const std::string &m : s.missing)
            what += detail::cat(" ", m);
    } else if (!f.missingWrites.empty()) {
        what = detail::cat(": write slot ", f.missingWrites.front().first,
                           " (g", f.missingWrites.front().second,
                           ") never produced");
    } else if (!f.unresolvedLsids.empty()) {
        what = detail::cat(": store LSID ", f.unresolvedLsids.front(),
                           " never resolved");
    } else if (!f.branchFired) {
        what = ": no branch fired";
    }
    return detail::cat("deadlock in block '", f.label, "' (", reason,
                       ", cycle ", cycle, ", last progress ",
                       lastProgressCycle, ")", what);
}

std::string
DeadlockReport::renderText() const
{
    std::ostringstream os;
    os << "=== hang forensics (" << reason << ") ===\n"
       << "detected at cycle " << cycle << "; last progress at cycle "
       << lastProgressCycle << "; " << frames.size()
       << " frame(s) in flight (oldest first)\n";
    for (size_t i = 0; i < frames.size(); ++i) {
        const DeadlockFrame &f = frames[i];
        os << "frame[" << i << "] block " << f.blockIdx << " '" << f.label
           << "' gen " << f.gen << (f.fetched ? "" : " (fetch in flight)")
           << (f.complete ? " complete" : "")
           << (f.conservative ? " conservative" : "") << " pendingOps="
           << f.pendingOps << " branch=" << (f.branchFired ? "fired" : "MISSING")
           << "\n";
        for (const auto &[slot, reg] : f.missingWrites)
            os << "  missing write slot " << slot << " (g" << reg << ")\n";
        if (!f.unresolvedLsids.empty()) {
            os << "  unresolved store LSIDs:";
            for (int lsid : f.unresolvedLsids)
                os << " " << lsid;
            os << "\n";
        }
        for (const LsqResidue &r : f.lsqResidue) {
            os << "  LSQ residue: lsid " << r.lsid;
            if (r.nullResolved)
                os << " (nulled)";
            else
                os << " addr 0x" << std::hex << r.addr << std::dec;
            os << " (uncommitted)\n";
        }
        if (!f.waitingLoads.empty()) {
            os << "  loads deferred on earlier stores:";
            for (int idx : f.waitingLoads)
                os << " " << idx;
            os << "\n";
        }
        for (const StalledInst &s : f.stalled) {
            os << "  stalled inst " << s.index << ": " << s.op
               << " waiting on";
            for (const std::string &m : s.missing)
                os << " " << m;
            os << " (left=" << (s.hasLeft ? "y" : "n") << " right="
               << (s.hasRight ? "y" : "n") << " pred="
               << (s.predMatched ? "y" : "n") << ")\n";
        }
    }
    return os.str();
}

void
DeadlockReport::renderJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.key("reason").value(reason);
    w.key("cycle").value(cycle);
    w.key("last_progress_cycle").value(lastProgressCycle);
    w.key("frames").beginArray();
    for (const DeadlockFrame &f : frames) {
        w.beginObject();
        w.key("block").value(f.blockIdx);
        w.key("label").value(f.label);
        w.key("gen").value(f.gen);
        w.key("fetched").value(f.fetched);
        w.key("complete").value(f.complete);
        w.key("conservative").value(f.conservative);
        w.key("branch_fired").value(f.branchFired);
        w.key("pending_ops").value(f.pendingOps);
        w.key("missing_writes").beginArray();
        for (const auto &[slot, reg] : f.missingWrites) {
            w.beginObject();
            w.key("slot").value(slot);
            w.key("reg").value(reg);
            w.endObject();
        }
        w.endArray();
        w.key("unresolved_lsids").beginArray();
        for (int lsid : f.unresolvedLsids)
            w.value(lsid);
        w.endArray();
        w.key("lsq_residue").beginArray();
        for (const LsqResidue &r : f.lsqResidue) {
            w.beginObject();
            w.key("lsid").value(r.lsid);
            w.key("addr").value(r.addr);
            w.key("nulled").value(r.nullResolved);
            w.endObject();
        }
        w.endArray();
        w.key("waiting_loads").beginArray();
        for (int idx : f.waitingLoads)
            w.value(idx);
        w.endArray();
        w.key("stalled").beginArray();
        for (const StalledInst &s : f.stalled) {
            w.beginObject();
            w.key("inst").value(s.index);
            w.key("op").value(s.op);
            w.key("missing").beginArray();
            for (const std::string &m : s.missing)
                w.value(m);
            w.endArray();
            w.key("left").value(s.hasLeft);
            w.key("right").value(s.hasRight);
            w.key("pred_matched").value(s.predMatched);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace dfp::sim
