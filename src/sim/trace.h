/**
 * @file
 * Simulator event tracing. The cycle-level machine and the operand
 * network emit TraceEvents into an optional TraceSink; two backends are
 * provided — Chrome-trace-format JSON (loadable in chrome://tracing or
 * Perfetto) and compact JSONL (one event object per line, for scripted
 * analysis).
 *
 * Cost model: emission sites are wrapped in the DFP_TRACE macro, which
 * (a) compiles to nothing when DFP_SIM_TRACING is defined to 0, and
 * (b) otherwise guards both event construction and the virtual call
 * behind a null-pointer check, so a run with no sink attached pays one
 * predictable branch per site. See docs/TRACING.md for the schema.
 */

#ifndef DFP_SIM_TRACE_H
#define DFP_SIM_TRACE_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/telemetry.h"

namespace dfp::sim
{

/** What happened. Payload field meaning per kind is fixed; see
 *  docs/TRACING.md for the full schema table. */
enum class TraceEventKind : uint8_t
{
    BlockFetch,   //!< block fetch pipeline occupancy; dur = fetch latency
    BlockCommit,  //!< block lifetime; cycle = fetch start, dur = to commit
    BlockFlush,   //!< one squashed in-flight block; label = reason
    NetHop,       //!< operand network traversal; a = dest node, b = hops
    LsqLoad,      //!< load issued to a data tile; a = addr, b = LSID
    LsqStore,     //!< store LSID resolved; a = addr, b = LSID
    PredToken,    //!< predicate token delivery; a = matched, b = inst idx
    EarlyTerm,    //!< early mispredication termination; a = in-flight ops
    FaultInject,  //!< injected fault; label = model, a/b = model detail
    FaultDetect,  //!< fault detected; label = detector (parity/watchdog)
    Recovery,     //!< block squash-and-replay; a = retry #, b = backoff
    TileMapOut,   //!< hard-failed tile mapped out; a = replacement tile
    Watchdog,     //!< progress watchdog fired; a = last-progress cycle
    Span,         //!< service telemetry span (host µs, not cycles);
                  //!< label = span name, a = trace id, b = seq
};

/** Stable lowercase name for a kind ("block_fetch", "net_hop", ...). */
const char *traceEventKindName(TraceEventKind kind);

/** One simulator event. Instant events have duration 0. */
struct TraceEvent
{
    TraceEventKind kind;
    uint64_t cycle = 0;    //!< start cycle
    uint64_t duration = 0; //!< cycles spanned (0 = instant)
    int tile = -1;         //!< originating node; -1 = machine-global
    int block = -1;        //!< static block index, if any
    const char *label = ""; //!< block label / flush reason / detail
    uint64_t a = 0;        //!< kind-specific payload
    uint64_t b = 0;        //!< kind-specific payload
};

/** Abstract consumer of simulator events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent &event) = 0;
    /** Finalize the output (write trailers). Idempotent; also runs on
     *  destruction. */
    virtual void flush() {}
};

/**
 * Chrome trace event format writer: a {"traceEvents":[...]} JSON
 * document of "X" (complete) and "i" (instant) events, with cycles as
 * the time unit. Tracks: tid 0 is the machine-global track, tid N+1 is
 * execution tile N; thread-name metadata records are emitted lazily.
 */
class ChromeTraceSink final : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os);
    ~ChromeTraceSink() override;

    void emit(const TraceEvent &event) override;
    void flush() override;

    /** Pin an explicit display name on @p tid (e.g. "worker 3" for
     *  service-telemetry span tracks), overriding the lazy
     *  "machine"/"tile N" naming — first name wins, so call before
     *  the tid's first event. */
    void nameThread(int tid, const std::string &name);

  private:
    void nameTrack(int tid);

    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
    uint64_t namedTids_ = 0; //!< bitmap of tids with metadata emitted
};

/** Compact JSONL writer: one JSON object per line, one line per event. */
class JsonlTraceSink final : public TraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : os_(os) {}

    void emit(const TraceEvent &event) override;
    void flush() override;

  private:
    std::ostream &os_;
};

/**
 * Construct a sink writing to @p os. @p format is "chrome" or "jsonl";
 * anything else returns nullptr.
 */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &format,
                                         std::ostream &os);

/**
 * Render collected service-telemetry spans (base/telemetry.h) through
 * a simulator trace sink as TraceEventKind::Span events, so one
 * Chrome-trace/Perfetto document can hold both simulated events and
 * the host-side request path around them. Timestamps are the span's
 * microseconds-since-epoch (the sink's time unit is dimensionless);
 * each span's track becomes its own tid, named "worker <track>" when
 * the sink is a ChromeTraceSink.
 */
void flushSpans(const std::vector<telemetry::SpanRecord> &spans,
                TraceSink &sink);

} // namespace dfp::sim

// Compile-time kill switch: build with -DDFP_SIM_TRACING=0 to remove
// every emission site (and its branch) from the simulator entirely.
#ifndef DFP_SIM_TRACING
#define DFP_SIM_TRACING 1
#endif

#if DFP_SIM_TRACING
// The null check is hinted cold so the emission block (event
// construction + virtual call) is laid out off the hot path.
#define DFP_TRACE(sink, ...)                                                 \
    do {                                                                     \
        if (__builtin_expect((sink) != nullptr, 0))                          \
            (sink)->emit(__VA_ARGS__);                                       \
    } while (0)
#else
#define DFP_TRACE(sink, ...)                                                 \
    do {                                                                     \
    } while (0)
#endif

#endif // DFP_SIM_TRACE_H
