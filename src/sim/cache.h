/**
 * @file
 * Set-associative cache tag model with LRU replacement, used for the
 * distributed L1 data banks (32 KB, 2-way, 2-cycle in the paper's
 * tsim-proc configuration) and the L1 instruction cache (64 KB, 2-way,
 * 1-cycle). Only hit/miss behaviour is modeled — data lives in the
 * backing isa::Memory — which is all the relative-performance
 * experiments need.
 */

#ifndef DFP_SIM_CACHE_H
#define DFP_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "base/stats.h"
#include "sim/fault.h"

namespace dfp::sim
{

/** LRU set-associative tag array. */
class Cache
{
  public:
    /**
     * @param sizeBytes total capacity
     * @param assoc associativity
     * @param lineBytes line size (power of two)
     */
    Cache(uint64_t sizeBytes, int assoc, int lineBytes);

    /** Access @p addr: returns true on hit; allocates on miss. */
    bool access(uint64_t addr);

    /**
     * Attach a fault engine (not owned): each access may then suffer a
     * transient line bit flip, surfaced through lastAccessFlipped().
     * The machine attaches it to the L1-D only; detached — the default
     * — an access pays one predicted branch.
     */
    void attachFaults(FaultEngine *faults) { faults_ = faults; }

    /** Did the most recent access() return bit-flipped data? (Line
     *  parity catches the flip when the data comes back; the machine
     *  turns it into a squash-and-replay.) */
    bool lastAccessFlipped() const { return lastFlip_; }

    /** Probe without allocating. */
    bool probe(uint64_t addr) const;

    /** Invalidate everything. */
    void reset();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Roll per-line-access counters into @p stats as
     *  "<prefix>.hits" / "<prefix>.misses" / "<prefix>.accesses". */
    void exportStats(StatSet &stats, const std::string &prefix) const;

    /** Serialize/restore mutable state (tags, LRU clock, counters).
     *  Geometry comes from the constructor; the attached fault engine
     *  is re-attached by the owner after load(). */
    void save(serialize::BinWriter &w) const;
    void load(serialize::BinReader &r);

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    int numSets_;
    int assoc_;
    int lineShift_;
    FaultEngine *faults_ = nullptr;
    bool lastFlip_ = false;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    std::vector<Line> lines_; //!< numSets_ * assoc_
};

} // namespace dfp::sim

#endif // DFP_SIM_CACHE_H
