#include "sim/network.h"

#include <algorithm>

#include "base/logging.h"
#include "sim/timing_model.h"

namespace dfp::sim
{

std::vector<int>
OperandNetwork::meshPath(int fromTile, int toTile) const
{
    // Dimension-order (X then Y) over execution tiles.
    std::vector<int> path{fromTile};
    int r = grid_.rowOf(fromTile), c = grid_.colOf(fromTile);
    int tr = grid_.rowOf(toTile), tc = grid_.colOf(toTile);
    while (c != tc) {
        c += (tc > c) ? 1 : -1;
        path.push_back(r * grid_.cols + c);
    }
    while (r != tr) {
        r += (tr > r) ? 1 : -1;
        path.push_back(r * grid_.cols + c);
    }
    return path;
}

uint64_t
OperandNetwork::route(const std::vector<int> &path, uint64_t cycle)
{
    // timing::kHopCycles per hop. Contention is arbitrated at the
    // injection and ejection links only: the OPN's routers are
    // buffered, so transit flits rarely block each other, but each
    // tile can inject and accept one operand per cycle.
    uint64_t t = cycle;
    size_t links = path.size() - 1;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
        auto link = std::make_pair(path[i], path[i + 1]);
        uint64_t depart = t;
        if (contention_ && (i == 0 || i + 1 == links)) {
            uint64_t &free = linkFree_[link];
            if (free > depart) {
                stalls_ += free - depart;
                depart = free;
            }
            free = depart + timing::kLinkOccupancyCycles;
        }
        t = depart + timing::kHopCycles;
        ++hops_;
    }
    if (DFP_FAULT_ACTIVE(faults_))
        t += faults_->netDelay(); // transient link fault: extra transit
    hopLatency_.add(t - cycle);
#if DFP_SIM_TRACING
    if (__builtin_expect(trace_ != nullptr, 0))
        traceHop(path, cycle, t, links);
#endif
    return t;
}

void
OperandNetwork::traceHop(const std::vector<int> &path, uint64_t cycle,
                         uint64_t arrive, size_t links)
{
    trace_->emit(TraceEvent{TraceEventKind::NetHop, cycle,
                            arrive - cycle, path.front(), -1, "",
                            static_cast<uint64_t>(path.back()), links});
}

void
OperandNetwork::exportStats(StatSet &stats) const
{
    stats.set("sim.net_hops", hops_);
    stats.set("sim.net_stalls", stalls_);
    stats.set("sim.net.messages", hopLatency_.count());
    stats.setHistogram("sim.net.hop_latency", hopLatency_);
}

uint64_t
OperandNetwork::deliver(int from, int to, uint64_t cycle)
{
    if (from == to)
        return cycle; // local bypass
    return route(meshPath(from, to), cycle);
}

uint64_t
OperandNetwork::deliverToReg(int tile, int reg, uint64_t cycle)
{
    // Up the column to row 0, then across the top, then into the RT.
    int col = grid_.regCol(reg);
    std::vector<int> path = meshPath(tile, 0 * grid_.cols + col);
    path.push_back(regNode(col));
    return route(path, cycle);
}

uint64_t
OperandNetwork::deliverFromReg(int reg, int tile, uint64_t cycle)
{
    int col = grid_.regCol(reg);
    std::vector<int> path{regNode(col)};
    auto rest = meshPath(0 * grid_.cols + col, tile);
    path.insert(path.end(), rest.begin(), rest.end());
    return route(path, cycle);
}

uint64_t
OperandNetwork::deliverToBank(int tile, int bankRow, uint64_t cycle)
{
    std::vector<int> path = meshPath(tile, bankRow * grid_.cols + 0);
    path.push_back(bankNode(bankRow));
    return route(path, cycle);
}

uint64_t
OperandNetwork::deliverFromBank(int bankRow, int tile, uint64_t cycle)
{
    std::vector<int> path{bankNode(bankRow)};
    auto rest = meshPath(bankRow * grid_.cols + 0, tile);
    path.insert(path.end(), rest.begin(), rest.end());
    return route(path, cycle);
}

void
OperandNetwork::save(serialize::BinWriter &w) const
{
    w.u64(hops_);
    w.u64(stalls_);
    hopLatency_.save(w);
    w.u64(linkFree_.size());
    for (const auto &[link, free] : linkFree_) {
        w.i32(link.first);
        w.i32(link.second);
        w.u64(free);
    }
}

void
OperandNetwork::load(serialize::BinReader &r)
{
    reset();
    hops_ = r.u64();
    stalls_ = r.u64();
    hopLatency_.load(r);
    size_t n = r.len(16);
    for (size_t i = 0; i < n && r.ok(); ++i) {
        int a = r.i32();
        int b = r.i32();
        linkFree_[{a, b}] = r.u64();
    }
}

void
OperandNetwork::reset()
{
    linkFree_.clear();
    hops_ = 0;
    stalls_ = 0;
    hopLatency_.clear();
}

} // namespace dfp::sim
