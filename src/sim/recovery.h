/**
 * @file
 * Block-granular squash-and-replay recovery and hang forensics for the
 * cycle-level machine.
 *
 * The EDGE execution model makes the 128-instruction block the atomic
 * unit of commit, so a block is also the natural recovery boundary: no
 * architectural state (registers, memory) changes until a block
 * commits, which means any in-flight block can be squashed through the
 * existing early-termination flush machinery and refetched with no
 * cleanup beyond discarding its frame — store buffers and LSID state
 * die with the frame, so replay can never double-apply a store.
 *
 * RecoveryManager enforces a per-block retry budget with exponential
 * cycle backoff (a persistently faulty block eventually fails the run
 * loudly instead of livelocking); DeadlockReport is the structured
 * forensic dump produced when the machine hangs — by the per-frame
 * progress watchdog during a fault run, or by the event queue draining
 * with frames outstanding — replacing the old one-line "simulation
 * deadlock" string. See docs/RESILIENCE.md.
 */

#ifndef DFP_SIM_RECOVERY_H
#define DFP_SIM_RECOVERY_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "base/serialize.h"
#include "base/stats.h"

namespace dfp::sim
{

/** Squash-and-replay knobs (SimConfig::recovery). */
struct RecoveryConfig
{
    int retryBudget = 8;       //!< replays per block before giving up
    uint64_t backoffBase = 32; //!< first replay's refetch delay, cycles
    int backoffCapShift = 6;   //!< backoff doubles up to base << cap
};

/**
 * Tracks per-block replay budgets. The budget is charged per squash
 * and refunded when the block finally commits, so a hot loop block hit
 * by many independent transient faults over a long run is only limited
 * in *consecutive* failed attempts.
 */
class RecoveryManager
{
  public:
    explicit RecoveryManager(const RecoveryConfig &config) : cfg_(config) {}

    /**
     * Charge one squash of @p blockIdx. Returns the refetch backoff in
     * cycles, or -1 when the block exhausted its retry budget.
     */
    int64_t onSquash(int blockIdx);

    /** The block committed: its consecutive-retry count resets. */
    void
    onCommit(int blockIdx)
    {
        if (!retries_.empty())
            retries_.erase(blockIdx);
    }

    uint64_t replays() const { return replays_; }

    /** Roll recovery counters into @p stats under "sim.recovery.*". */
    void exportStats(StatSet &stats) const;

    /** Serialize/restore mutable state (per-block retry counts and
     *  tallies). The config comes from the constructor. */
    void
    save(serialize::BinWriter &w) const
    {
        w.u64(retries_.size());
        for (const auto &[block, count] : retries_) {
            w.i32(block);
            w.i32(count);
        }
        w.u64(replays_);
        w.u64(backoffCycles_);
        w.i32(maxRetriesSeen_);
    }

    void
    load(serialize::BinReader &r)
    {
        retries_.clear();
        size_t n = r.len(8);
        for (size_t i = 0; i < n && r.ok(); ++i) {
            int block = r.i32();
            retries_[block] = r.i32();
        }
        replays_ = r.u64();
        backoffCycles_ = r.u64();
        maxRetriesSeen_ = r.i32();
    }

  private:
    RecoveryConfig cfg_;
    std::map<int, int> retries_; //!< consecutive squashes per block
    uint64_t replays_ = 0;
    uint64_t backoffCycles_ = 0;
    int maxRetriesSeen_ = 0;
};

// ---------------------------------------------------------------------
// Hang forensics.

/** One unretired instruction and what it is still waiting for. */
struct StalledInst
{
    int index = -1;          //!< instruction index within the block
    std::string op;          //!< mnemonic
    bool hasLeft = false;    //!< left data operand arrived
    bool hasRight = false;   //!< right data operand arrived
    bool predMatched = false; //!< a matching predicate token arrived
    /** The operand slots still empty ("left", "right", "pred"). */
    std::vector<std::string> missing;
};

/** One store-buffer entry left behind by an unretired block. */
struct LsqResidue
{
    int lsid = -1;
    uint64_t addr = 0;
    bool nullResolved = false; //!< resolved by a null (no memory effect)
};

/** Snapshot of one in-flight frame at hang time, oldest first. */
struct DeadlockFrame
{
    int blockIdx = -1;
    std::string label;
    uint64_t gen = 0;
    bool fetched = false;
    bool complete = false;
    bool conservative = false;
    bool branchFired = false;
    int pendingOps = 0;
    std::vector<std::pair<int, int>> missingWrites; //!< (slot, register)
    std::vector<int> unresolvedLsids;
    std::vector<LsqResidue> lsqResidue; //!< resolved-but-uncommitted stores
    std::vector<int> waitingLoads;      //!< deferred load inst indices
    std::vector<StalledInst> stalled;
};

/**
 * The structured forensic dump. `renderText()` is the multi-line
 * human-readable form `dfpc` prints to stderr; `renderJson()` is the
 * `deadlock` record embedded in `--stats-json` output.
 */
struct DeadlockReport
{
    bool valid = false;
    std::string reason;        //!< "deadlock", "watchdog", "budget", ...
    uint64_t cycle = 0;        //!< detection cycle
    uint64_t lastProgressCycle = 0;
    std::vector<DeadlockFrame> frames;

    /** Compact one-line summary (becomes SimResult::error). */
    std::string summary() const;

    /** Multi-line human-readable dump. */
    std::string renderText() const;

    /** JSON object mirroring the structure above. */
    void renderJson(std::ostream &os) const;
};

} // namespace dfp::sim

#endif // DFP_SIM_RECOVERY_H
