/**
 * @file
 * The parallel batch-simulation engine: fan a workload × CompileOptions
 * matrix out across a base::ThreadPool, compile each distinct
 * (workload, options) pair exactly once into a shared immutable
 * program cache, give every run its own Machine/FaultEngine/ArchState/
 * StatSet so nothing races, and merge the per-run statistics back in
 * deterministic submission order.
 *
 * Each (workload, CompileOptions, SimConfig) simulation is completely
 * independent — the machine takes a `const TProgram &` and owns all of
 * its mutable state per run — so a sweep parallelises embarrassingly
 * while every per-run result stays **byte-identical to the serial
 * path**: `run()` with jobs=N and jobs=1 produce the same
 * BatchResult vector, the same merged StatSet, and the same error
 * strings; only the wall-clock time and the hostSeconds fields differ.
 * tests/sim/test_batch.cc enforces this, including under fault
 * injection (the FaultEngine PRNG is seeded per run from the job's
 * own FaultConfig).
 *
 * This is the engine under `dfpc --jobs`, `tools/dfp-bench`, and the
 * converted figure/ablation benches; see docs/PERFORMANCE.md for the
 * threading model and determinism guarantees.
 */

#ifndef DFP_SIM_BATCH_H
#define DFP_SIM_BATCH_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/stats.h"
#include "compiler/pipeline.h"
#include "sim/machine.h"
#include "workloads/suite.h"

namespace dfp::sim
{

/** One cell of the sweep matrix. */
struct BatchJob
{
    const workloads::Workload *workload = nullptr;
    std::string label;       //!< display name, e.g. "tblook01/both"
    std::string config;      //!< configuration name (informational)
    compiler::CompileOptions opts; //!< fully resolved compile options
    SimConfig sim;           //!< per-run machine configuration

    /** Fill predictedCycles for this job even when the runner's
     *  BatchOptions::predictCycles is off (dfp-serve's `analyze`
     *  requests opt in per job; plain sweeps stay free). */
    bool predict = false;
};

/** Build a job from a workload and a named §6 configuration, applying
 *  the workload's own unroll hint (the runWorkload() convention). */
BatchJob makeJob(const workloads::Workload &w, const std::string &config,
                 const SimConfig &simCfg = SimConfig());

/** Outcome of one job, in submission order. */
struct BatchResult
{
    std::string label;
    std::string config;
    std::string workload;

    bool ok = false;         //!< halted, golden-matched, nothing threw
    std::string error;       //!< failure reason when !ok

    /**
     * Machine-readable failure class when !ok, for the supervisor's
     * partial-failure report: "compile" (the pipeline or golden
     * reference threw), "sim" (the run ended without halting, or the
     * simulator reported an error), "golden" (architectural divergence
     * from the golden model), "interrupted" (an external stop request
     * aborted the run), "timeout" (the supervisor's deadline fired;
     * rewritten by the supervisor, never set here), or "exception"
     * (anything else thrown). Empty when ok.
     */
    std::string errorKind;

    uint64_t cycles = 0;
    uint64_t blocks = 0;
    uint64_t insts = 0;
    uint64_t movs = 0;
    uint64_t mispredicts = 0;
    uint64_t flushed = 0;
    uint64_t faultsInjected = 0;
    uint64_t replays = 0;
    uint64_t staticInsts = 0;
    uint64_t staticBlocks = 0;
    double hostSeconds = 0;  //!< this run's wall time (monotonic clock)

    /**
     * Static lower bound on this run's cycles from the performance
     * analyzer (analysis/predict.h), when BatchOptions::predictCycles
     * is on and the functional pre-run halted; 0 otherwise. The
     * invariant predictedCycles <= cycles holds on every ok run and is
     * enforced by `dfp-analyze --validate` and CI.
     */
    uint64_t predictedCycles = 0;

    /** Full simulator StatSet (empty when keepRunStats is off). */
    StatSet stats;

    /** Instructions committed per cycle. */
    double
    ipc() const
    {
        return cycles ? double(insts) / double(cycles) : 0.0;
    }
};

/** Whole-batch rollup. */
struct BatchSummary
{
    std::vector<BatchResult> results; //!< one per job, submission order

    StatSet merged;          //!< all run StatSets merged, in order
    uint64_t compiles = 0;   //!< pipeline invocations
    uint64_t cacheHits = 0;  //!< jobs served from the program cache
    uint64_t totalSimCycles = 0; //!< sum of per-run cycle counts
    double wallSeconds = 0;  //!< whole-batch wall time (monotonic)

    bool allOk = true;       //!< every result.ok

    /** Aggregate simulation throughput over the batch wall time. */
    double
    simCyclesPerSecond() const
    {
        return wallSeconds > 0 ? double(totalSimCycles) / wallSeconds
                               : 0.0;
    }
};

struct BatchOptions
{
    /** Worker threads; <= 1 runs serially on the calling thread. */
    int jobs = 1;

    /** Verify every run's architectural state against the golden IR
     *  interpreter (cached per workload). Divergence marks the run
     *  !ok; it never throws. */
    bool checkGolden = true;

    /** Keep each run's full StatSet in its BatchResult (the merged
     *  set is always built). Off saves memory on huge sweeps. */
    bool keepRunStats = true;

    /** Fill BatchResult::predictedCycles with the static analyzer's
     *  cycle lower bound (costs one functional pre-run per job). Off
     *  by default so plain sweeps pay nothing. */
    bool predictCycles = false;
};

/**
 * Runs batches. The compiled-program cache lives on the runner, so
 * consecutive run() calls (e.g. a bench harness's repetitions) reuse
 * compilations; compiles/cacheHits in each summary count that batch's
 * lookups only.
 */
class BatchRunner
{
  public:
    explicit BatchRunner(const BatchOptions &opts = BatchOptions());

    /** Execute all @p jobs; blocks until every run finished. */
    BatchSummary run(const std::vector<BatchJob> &jobs);

    /**
     * Run a single job to completion on the calling thread: compile
     * (through the shared program cache), simulate, verify against the
     * golden model. This is exactly the per-job body of run(), exposed
     * so the crash-resilient supervisor (sim/supervise.h) can own
     * scheduling, deadlines, and retries while producing byte-identical
     * BatchResults. Thread-safe: concurrent runOne() calls only share
     * the immutable program cache.
     *
     * @p stop, when non-null, is polled by the machine mid-run; once it
     * becomes nonzero the run aborts with errorKind "interrupted".
     */
    BatchResult runOne(const BatchJob &job,
                       const std::atomic<int> *stop = nullptr);

    /** As above, but also credits compile-cache accounting to the
     *  caller's counters (incremented under the cache lock, so one
     *  pair may be shared across concurrent callers). */
    BatchResult runOne(const BatchJob &job, const std::atomic<int> *stop,
                       uint64_t &compiles, uint64_t &cacheHits);

    /**
     * Compile @p job through the shared program cache without
     * simulating: the result carries the static code stats
     * (staticInsts/staticBlocks) and ok reflects whether compilation
     * succeeded (errorKind "compile" otherwise). Used by dfp-serve's
     * `compile` requests to warm the cache and validate workloads
     * cheaply; thread-safe like runOne().
     */
    BatchResult compileOnly(const BatchJob &job, uint64_t &compiles,
                            uint64_t &cacheHits);

    /**
     * The canonical cache key of one compilation: the workload name
     * plus a full serialization of every CompileOptions field that can
     * change generated code. Exposed for the cache-accounting tests.
     */
    static std::string compileKey(const std::string &workload,
                                  const compiler::CompileOptions &opts);

    /** Distinct compilations currently held by the shared program
     *  cache (a telemetry gauge; takes the cache lock briefly). */
    size_t cacheSize() const;

  private:
    struct Compiled; // CompileResult + golden reference, immutable

    std::shared_ptr<const Compiled> compiledFor(const BatchJob &job,
                                                uint64_t &compiles,
                                                uint64_t &cacheHits);

    void runJob(const BatchJob &job, BatchResult &out,
                const std::atomic<int> *stop, uint64_t &compiles,
                uint64_t &cacheHits);

    BatchOptions opts_;
    mutable std::mutex cacheMu_;
    std::map<std::string, std::shared_ptr<const Compiled>> cache_;
};

} // namespace dfp::sim

#endif // DFP_SIM_BATCH_H
