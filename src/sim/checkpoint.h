/**
 * @file
 * Checkpoint file format: the framing around a Machine snapshot payload
 * (see CheckpointControl in sim/machine.h) that makes it safe to park
 * on disk and resume in another process.
 *
 * Layout (all little-endian):
 *
 *   byte 0..7    magic "DFPCKPT1"
 *   byte 8..11   u32 format version (kFormatVersion)
 *   byte 12..15  u32 CRC32 (IEEE) of everything after this field
 *   then         str toolVersion   (git describe of the writer)
 *                str compileKey    (workload + CompileOptions fingerprint)
 *                str simKey        (SimConfig fingerprint, simConfigKey())
 *                str workload      (display name)
 *                u64 cycle         (simulated cycle the snapshot was cut)
 *                u64 payloadSize + payload bytes (Machine::saveState)
 *
 * A resumed run is byte-identical to an uninterrupted one ONLY if the
 * program and configuration are bit-for-bit the same, so the reader
 * verifies the CRC (DFPC106 on any truncation/corruption) and the
 * caller must verify the three keys against its own before handing the
 * payload to simulate() (DFPC107 on mismatch). Version policy: the
 * format version bumps on any payload layout change; there is no
 * cross-version migration — a checkpoint is a resume token, not an
 * archival format. See docs/CHECKPOINT.md.
 */

#ifndef DFP_SIM_CHECKPOINT_H
#define DFP_SIM_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace dfp::sim
{

/** One framed snapshot (decoded form). */
struct Checkpoint
{
    static constexpr uint32_t kFormatVersion = 1;

    std::string toolVersion; //!< versionString() of the writer
    std::string compileKey;  //!< workload + CompileOptions fingerprint
    std::string simKey;      //!< simConfigKey() of the run
    std::string workload;    //!< display name
    uint64_t cycle = 0;      //!< simulated cycle of the cut
    std::vector<uint8_t> payload; //!< Machine::saveState bytes
};

/** Outcome of decoding a checkpoint file. */
enum class CheckpointStatus : uint8_t
{
    Ok,
    Unreadable, //!< missing file / IO error (DFPC106)
    Corrupt,    //!< bad magic, truncation, or CRC mismatch (DFPC106)
};

/**
 * Fingerprint every SimConfig knob that affects cycle-level behaviour.
 * Two runs with equal fingerprints (and equal programs) are
 * cycle-identical, so a checkpoint may only resume under an equal
 * fingerprint. Checkpoint hooks themselves are excluded — pausing at
 * different points must not invalidate a snapshot.
 */
std::string simConfigKey(const SimConfig &config);

/** Encode the framed form (magic + version + CRC + fields). */
std::vector<uint8_t> encodeCheckpoint(const Checkpoint &ckpt);

/**
 * Decode and CRC-verify a framed checkpoint. On any structural problem
 * returns Corrupt with a human-readable reason in @p error; the decoded
 * fields are only valid on Ok.
 */
CheckpointStatus decodeCheckpoint(const std::vector<uint8_t> &bytes,
                                  Checkpoint &out, std::string &error);

/**
 * Write atomically: encode to "<path>.tmp", then rename over @p path,
 * so a crash mid-write never leaves a half-written file under the real
 * name. Returns false (with @p error set) on IO failure.
 */
bool writeCheckpointFile(const std::string &path, const Checkpoint &ckpt,
                         std::string &error);

/** Read + decode + CRC-verify @p path. */
CheckpointStatus readCheckpointFile(const std::string &path,
                                    Checkpoint &out, std::string &error);

} // namespace dfp::sim

#endif // DFP_SIM_CHECKPOINT_H
