#include "sim/fault.h"

#include <cmath>

#include "base/logging.h"

namespace dfp::sim
{

namespace
{

struct ModelName
{
    FaultModel model;
    const char *name;
};

constexpr ModelName kModelNames[] = {
    {FaultModel::None, "none"},
    {FaultModel::NetDrop, "net-drop"},
    {FaultModel::NetCorrupt, "net-corrupt"},
    {FaultModel::NetDelay, "net-delay"},
    {FaultModel::TileStall, "tile-stall"},
    {FaultModel::TileFail, "tile-fail"},
    {FaultModel::CacheFlip, "cache-flip"},
    {FaultModel::PredLie, "pred-lie"},
};

/** Rate in [0, 1] scaled to a threshold on the raw 64-bit PRNG draw. */
uint64_t
rateThreshold(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return ~0ull;
    return static_cast<uint64_t>(
        std::ldexp(rate, 64)); // rate * 2^64, exact for binary rates
}

} // namespace

const char *
faultModelName(FaultModel model)
{
    for (const ModelName &m : kModelNames) {
        if (m.model == model)
            return m.name;
    }
    return "?";
}

bool
parseFaultModel(const std::string &name, FaultModel &out)
{
    for (const ModelName &m : kModelNames) {
        if (name == m.name) {
            out = m.model;
            return true;
        }
    }
    return false;
}

FaultEngine::FaultEngine(const FaultConfig &config, int numTiles,
                         int numBlocks)
    : cfg_(config), rng_(config.seed), threshold_(rateThreshold(config.rate)),
      numBlocks_(numBlocks), liveTiles_(numTiles),
      hardFails_(numTiles, 0), dead_(numTiles, false)
{
    dfp_assert(numTiles > 0 && numBlocks > 0, "degenerate fault target");
    // The guaranteed injection lands at a seed-chosen phase of each
    // 16-opportunity window, so even a few-dozen-event microkernel
    // sees faults and two seeds differ in their schedule from the very
    // first site. Detectable models keep forcing until the machine
    // reports a recovery (see fire()); benign ones force once.
    forcedPhase_ = cfg_.enabled() ? rng_.nextBelow(kForcePeriod)
                                  : kNoForce;
    detectable_ = cfg_.model == FaultModel::NetDrop ||
                  cfg_.model == FaultModel::NetCorrupt ||
                  cfg_.model == FaultModel::TileFail ||
                  cfg_.model == FaultModel::CacheFlip;
}

bool
FaultEngine::tileFailIssue(int tile)
{
    if (cfg_.model != FaultModel::TileFail || !fire())
        return false;
    // Refuse to kill the machine outright: the last live tile (and any
    // tile already mapped out) absorbs the fault without effect.
    if (dead_[tile] || liveTiles_ <= 1)
        return false;
    ++injected_;
    ++hardFailCount_;
    ++hardFails_[tile];
    return true;
}

int
FaultEngine::predictorLie(int predicted)
{
    if (cfg_.model != FaultModel::PredLie || !fire())
        return predicted;
    ++injected_;
    ++lies_;
    if (numBlocks_ <= 1)
        return 0; // only one possible lie target
    if (predicted < 0 || predicted >= numBlocks_)
        return static_cast<int>(
            rng_.nextBelow(static_cast<uint64_t>(numBlocks_)));
    // A wrong-but-valid block: offset by a nonzero amount mod the
    // program size so the lie is never the true prediction.
    uint64_t off =
        1 + rng_.nextBelow(static_cast<uint64_t>(numBlocks_ - 1));
    return static_cast<int>(
        (static_cast<uint64_t>(predicted) + off) % numBlocks_);
}

int
FaultEngine::takeTileToMapOut()
{
    if (cfg_.model != FaultModel::TileFail)
        return -1;
    for (size_t t = 0; t < hardFails_.size(); ++t) {
        if (!dead_[t] && hardFails_[t] >= cfg_.tileFailThreshold &&
            liveTiles_ > 1) {
            dead_[t] = true;
            --liveTiles_;
            return static_cast<int>(t);
        }
    }
    return -1;
}

void
FaultEngine::save(serialize::BinWriter &w) const
{
    w.u64(rng_.state());
    w.u64(opportunities_);
    w.u64(recoveries_);
    w.i32(liveTiles_);
    w.u64(hardFails_.size());
    for (int f : hardFails_)
        w.i32(f);
    w.u64(dead_.size());
    for (bool d : dead_)
        w.b(d);
    w.u64(injected_);
    w.u64(dropped_);
    w.u64(corrupted_);
    w.u64(delayed_);
    w.u64(delayCycles_);
    w.u64(stalls_);
    w.u64(stallCycles_);
    w.u64(hardFailCount_);
    w.u64(flips_);
    w.u64(lies_);
}

void
FaultEngine::load(serialize::BinReader &r)
{
    rng_.setState(r.u64());
    opportunities_ = r.u64();
    recoveries_ = r.u64();
    liveTiles_ = r.i32();
    size_t nf = r.len(4);
    if (nf != hardFails_.size()) {
        r.fail();
        return;
    }
    for (int &f : hardFails_)
        f = r.i32();
    size_t nd = r.len(1);
    if (nd != dead_.size()) {
        r.fail();
        return;
    }
    for (size_t i = 0; i < dead_.size(); ++i)
        dead_[i] = r.b();
    injected_ = r.u64();
    dropped_ = r.u64();
    corrupted_ = r.u64();
    delayed_ = r.u64();
    delayCycles_ = r.u64();
    stalls_ = r.u64();
    stallCycles_ = r.u64();
    hardFailCount_ = r.u64();
    flips_ = r.u64();
    lies_ = r.u64();
}

void
FaultEngine::exportStats(StatSet &stats) const
{
    stats.set("sim.fault.opportunities", opportunities_);
    stats.set("sim.fault.injected", injected_);
    stats.set("sim.fault.net.dropped", dropped_);
    stats.set("sim.fault.net.corrupted", corrupted_);
    stats.set("sim.fault.net.delayed", delayed_);
    stats.set("sim.fault.net.delay_cycles", delayCycles_);
    stats.set("sim.fault.tile.stalls", stalls_);
    stats.set("sim.fault.tile.stall_cycles", stallCycles_);
    stats.set("sim.fault.tile.hard_fails", hardFailCount_);
    stats.set("sim.fault.cache.flips", flips_);
    stats.set("sim.fault.pred.lies", lies_);
}

} // namespace dfp::sim
