#include "sim/predictor.h"

namespace dfp::sim
{

BlockPredictor::BlockPredictor(int tableBits)
    : mask_((1u << tableBits) - 1),
      pattern_(1u << tableBits),
      lastSeen_(1u << tableBits)
{
}

size_t
BlockPredictor::index(int block) const
{
    uint64_t h = static_cast<uint64_t>(block) * 0x9e3779b97f4a7c15ull;
    h ^= history_ * 0xc2b2ae3d27d4eb4full;
    return static_cast<size_t>((h >> 16) & mask_);
}

int
BlockPredictor::predict(int block) const
{
    const Entry &pat = pattern_[index(block)];
    int target = pat.confidence >= 2 && pat.target != kNoPrediction
                     ? pat.target
                     : lastSeen_[static_cast<uint32_t>(block) & mask_]
                           .target;
    if (DFP_FAULT_ACTIVE(faults_))
        return faults_->predictorLie(target);
    return target;
}

void
BlockPredictor::train(int block, int next)
{
    Entry &pat = pattern_[index(block)];
    if (pat.target == next) {
        if (pat.confidence < 3)
            ++pat.confidence;
    } else {
        if (pat.confidence > 0) {
            --pat.confidence;
        } else {
            pat.target = next;
            pat.confidence = 1;
        }
    }
    Entry &last = lastSeen_[static_cast<uint32_t>(block) & mask_];
    last.target = next;
    history_ = (history_ << 4) ^ static_cast<uint64_t>(block + 1);
}

void
BlockPredictor::exportStats(StatSet &stats) const
{
    stats.set("sim.pred.lookups", lookups_);
    stats.set("sim.pred.correct", correct_);
}

} // namespace dfp::sim
