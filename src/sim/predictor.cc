#include "sim/predictor.h"

namespace dfp::sim
{

BlockPredictor::BlockPredictor(int tableBits)
    : mask_((1u << tableBits) - 1),
      pattern_(1u << tableBits),
      lastSeen_(1u << tableBits)
{
}

size_t
BlockPredictor::index(int block) const
{
    uint64_t h = static_cast<uint64_t>(block) * 0x9e3779b97f4a7c15ull;
    h ^= history_ * 0xc2b2ae3d27d4eb4full;
    return static_cast<size_t>((h >> 16) & mask_);
}

int
BlockPredictor::predict(int block) const
{
    const Entry &pat = pattern_[index(block)];
    int target = pat.confidence >= 2 && pat.target != kNoPrediction
                     ? pat.target
                     : lastSeen_[static_cast<uint32_t>(block) & mask_]
                           .target;
    if (DFP_FAULT_ACTIVE(faults_))
        return faults_->predictorLie(target);
    return target;
}

void
BlockPredictor::train(int block, int next)
{
    Entry &pat = pattern_[index(block)];
    if (pat.target == next) {
        if (pat.confidence < 3)
            ++pat.confidence;
    } else {
        if (pat.confidence > 0) {
            --pat.confidence;
        } else {
            pat.target = next;
            pat.confidence = 1;
        }
    }
    Entry &last = lastSeen_[static_cast<uint32_t>(block) & mask_];
    last.target = next;
    history_ = (history_ << 4) ^ static_cast<uint64_t>(block + 1);
}

void
BlockPredictor::save(serialize::BinWriter &w) const
{
    w.u64(history_);
    w.u64(lookups_);
    w.u64(correct_);
    w.u64(pattern_.size());
    for (const Entry &e : pattern_) {
        w.i32(e.target);
        w.u8(e.confidence);
    }
    w.u64(lastSeen_.size());
    for (const Entry &e : lastSeen_) {
        w.i32(e.target);
        w.u8(e.confidence);
    }
}

void
BlockPredictor::load(serialize::BinReader &r)
{
    history_ = r.u64();
    lookups_ = r.u64();
    correct_ = r.u64();
    auto loadTable = [&r](std::vector<Entry> &table) {
        size_t n = r.len(5);
        if (n != table.size()) {
            r.fail();
            return;
        }
        for (Entry &e : table) {
            e.target = r.i32();
            e.confidence = r.u8();
        }
    };
    loadTable(pattern_);
    loadTable(lastSeen_);
}

void
BlockPredictor::exportStats(StatSet &stats) const
{
    stats.set("sim.pred.lookups", lookups_);
    stats.set("sim.pred.correct", correct_);
}

} // namespace dfp::sim
