/**
 * @file
 * The dfp cycle-level processor model — the stand-in for the paper's
 * tsim-proc (§6). It models a TRIPS-like tiled microarchitecture:
 *
 *  - a rows x cols grid of execution tiles, each with reservation
 *    stations and one ALU issue slot per cycle;
 *  - a 2-D mesh operand network with 1-cycle hops and link contention;
 *  - register tiles on the top edge, data tiles (L1-D banks with an
 *    LSQ) on the left edge;
 *  - 8-cycle block fetch through a 64 KB 2-way L1-I (1 cycle);
 *  - 32 KB 2-way L1-D banks with 2-cycle hits;
 *  - a 3-cycle next-block predictor and up to 8 blocks in flight;
 *  - block completion by output counting (register writes, store LSIDs,
 *    one branch), null tokens, exception bits;
 *  - early mispredication termination (§4.3): a completed block commits
 *    and frees its frame even while falsely-predicated instructions are
 *    still in flight — switchable off for the ablation, in which case
 *    the frame must drain first;
 *  - aggressive load speculation with store-set-style dependence
 *    flushes, and register-write forwarding between in-flight blocks.
 */

#ifndef DFP_SIM_MACHINE_H
#define DFP_SIM_MACHINE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/stats.h"
#include "isa/exec.h"
#include "isa/tblock.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/recovery.h"
#include "sim/trace.h"

namespace dfp::sim
{

/**
 * Checkpoint/restore hooks (SimConfig::checkpoint). All disabled by
 * default; a run with everything at defaults schedules no polling and
 * stays cycle- and stats-identical to a build without the subsystem.
 * See docs/CHECKPOINT.md.
 */
struct CheckpointControl
{
    /**
     * Cut a snapshot each time the simulated clock crosses another N
     * cycles (0 = never). Snapshots are taken at event boundaries —
     * before the first event at or past the target cycle — so the
     * machine state is always quiescent mid-cut.
     */
    uint64_t everyCycles = 0;

    /**
     * External stop request (not owned; may be set from a signal
     * handler or a supervisor thread). When non-null and nonzero, the
     * run cuts a final snapshot, sets SimResult::interrupted, and
     * returns early. Polled every few hundred events.
     */
    const std::atomic<int> *stop = nullptr;

    /**
     * Receives each snapshot: the simulated cycle it was cut at and
     * the serialized machine payload (see sim/checkpoint.h for the
     * framed on-disk format layered on top).
     */
    std::function<void(uint64_t cycle, const std::vector<uint8_t> &payload)>
        sink;

    /**
     * Resume payload (not owned; must outlive simulate()). When
     * non-null the machine restores this snapshot instead of starting
     * from cycle 0; the program, ArchState seed, and SimConfig must
     * match the checkpointed run (enforced by the checkpoint layer's
     * fingerprints, see sim/checkpoint.h).
     */
    const std::vector<uint8_t> *resume = nullptr;
};

/** Machine configuration; defaults mirror the paper's tsim-proc (§6). */
struct SimConfig
{
    Grid grid;
    int maxBlocksInFlight = 8;
    int fetchLatency = 8;       //!< block fetch pipeline depth
    int fetchWidth = 16;        //!< instruction words fetched per cycle
    int predictLatency = 3;     //!< next-block prediction
    int l1dHitLatency = 2;
    int l1iHitLatency = 1;
    int missLatency = 40;       //!< L1 miss to the next level
    uint64_t l1dBytes = 32 * 1024;
    int l1dAssoc = 2;
    uint64_t l1iBytes = 64 * 1024;
    int l1iAssoc = 2;
    int lineBytes = 64;
    bool earlyTermination = true;  //!< §4.3 mechanism
    bool perfectPrediction = false; //!< oracle next-block trace
    bool modelContention = true;   //!< operand network link contention
    bool aggressiveLoads = true;   //!< speculate past unresolved stores
    uint64_t maxCycles = 1ull << 40;

    /**
     * Optional event sink (not owned; must outlive the run). When
     * null — the default — every emission site reduces to one
     * predicted-not-taken branch; see docs/TRACING.md.
     */
    TraceSink *trace = nullptr;

    /**
     * Per-block-label commit/flush rollups ("sim.block.<label>.*").
     * String-keyed, so off by default costs nothing; the per-tile and
     * per-opcode-class rollups are array-backed and always collected.
     */
    bool perBlockStats = false;

    /**
     * Fault injection (see docs/RESILIENCE.md). Disabled by default;
     * when disabled no engine is constructed and every injection site
     * reduces to one predicted-not-taken branch, so fault-free runs
     * are cycle-identical to a build without the subsystem.
     */
    FaultConfig faults;

    /** Squash-and-replay retry budget and backoff. */
    RecoveryConfig recovery;

    /**
     * Per-frame progress watchdog: if this many cycles pass with no
     * event retired (no fetch completion, operand delivery, store
     * resolution, or block commit), the stalled block is squashed and
     * replayed. 0 = automatic: armed at 10000 cycles when fault
     * injection is enabled, off otherwise (so fault-free runs schedule
     * no watchdog events and stay cycle-identical to the seed).
     */
    uint64_t watchdogCycles = 0;

    /** Checkpoint/restore hooks; see CheckpointControl. */
    CheckpointControl checkpoint;

    /**
     * Service-telemetry correlation id (base/telemetry.h), stamped
     * onto SimResult so a dfp-serve request can be traced through the
     * simulation it triggered. Pure metadata: not part of the
     * checkpoint identity key and never affects simulated behaviour.
     */
    uint64_t traceId = 0;
};

/** Result of one simulation. */
struct SimResult
{
    bool halted = false;
    bool raisedException = false;

    /**
     * The run stopped early on an external stop request (checkpoint
     * hooks) after cutting a final snapshot; `halted` is false and no
     * deadlock forensics are produced. Resuming the snapshot finishes
     * the run with results byte-identical to an uninterrupted one.
     */
    bool interrupted = false;
    std::string error;

    uint64_t cycles = 0;
    uint64_t blocksCommitted = 0;
    uint64_t blocksFlushed = 0;
    uint64_t instsCommitted = 0;   //!< fired in committed blocks
    uint64_t movsCommitted = 0;    //!< fired moves in committed blocks
    uint64_t mispredicts = 0;
    uint64_t loadViolations = 0;
    uint64_t faultsInjected = 0;  //!< faults the engine injected
    uint64_t replays = 0;         //!< blocks squashed and replayed
    uint64_t watchdogFires = 0;   //!< progress-watchdog detections
    uint64_t tilesMappedOut = 0;  //!< hard-failed tiles mapped out
    uint64_t traceId = 0;         //!< copied from SimConfig::traceId
    StatSet stats;

    /**
     * Structured hang forensics; valid when the run ended in a
     * deadlock, a watchdog-detected hang with an exhausted replay
     * budget, or a genuine (unrecoverable) starvation. `error` carries
     * its one-line summary.
     */
    DeadlockReport deadlock;
};

/**
 * Run @p program on the simulated machine, starting from @p state and
 * leaving the final architectural state in it.
 */
SimResult simulate(const isa::TProgram &program, isa::ArchState &state,
                   const SimConfig &config = SimConfig());

} // namespace dfp::sim

#endif // DFP_SIM_MACHINE_H
