#include "sim/trace.h"

#include "base/json.h"
#include "base/logging.h"

namespace dfp::sim
{

namespace
{

/** Per-kind payload key names, for self-describing JSON output. */
struct KindInfo
{
    const char *name;
    const char *aKey;
    const char *bKey;
};

const KindInfo &
kindInfo(TraceEventKind kind)
{
    static const KindInfo kTable[] = {
        {"block_fetch", "miss", "b"},
        {"block_commit", "fired", "b"},
        {"block_flush", "a", "b"},
        {"net_hop", "to", "hops"},
        {"lsq_load", "addr", "lsid"},
        {"lsq_store", "addr", "lsid"},
        {"pred_token", "matched", "inst"},
        {"early_term", "pending", "b"},
        {"fault_inject", "a", "b"},
        {"fault_detect", "a", "b"},
        {"recovery", "retry", "backoff"},
        {"tile_map_out", "to", "b"},
        {"watchdog", "last_progress", "b"},
        {"span", "trace_id", "seq"},
    };
    return kTable[static_cast<int>(kind)];
}

} // namespace

const char *
traceEventKindName(TraceEventKind kind)
{
    return kindInfo(kind).name;
}

// ---------------------------------------------------------------------
// Chrome trace event format.

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void
ChromeTraceSink::nameTrack(int tid)
{
    nameThread(tid, tid == 0 ? std::string("machine")
                             : detail::cat("tile ", tid - 1));
}

void
ChromeTraceSink::nameThread(int tid, const std::string &name)
{
    if (tid < 0 || tid >= 64 || (namedTids_ & (1ull << tid)))
        return;
    namedTids_ |= 1ull << tid;
    if (!first_)
        os_ << ",";
    first_ = false;
    os_ << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
        << tid << ",\"args\":{\"name\":\"" << json::escape(name)
        << "\"}}";
}

void
ChromeTraceSink::emit(const TraceEvent &event)
{
    if (finished_)
        return;
    const KindInfo &info = kindInfo(event.kind);
    int tid = event.tile < 0 ? 0 : event.tile + 1;
    nameTrack(tid);
    if (!first_)
        os_ << ",";
    first_ = false;
    os_ << "\n";
    json::Writer w(os_);
    w.beginObject();
    std::string name = info.name;
    if (event.label[0] != '\0')
        name = detail::cat(name, " ", event.label);
    w.key("name").value(name);
    w.key("cat").value(info.name);
    if (event.duration > 0) {
        w.key("ph").value("X");
        w.key("dur").value(event.duration);
    } else {
        w.key("ph").value("i");
        w.key("s").value("t");
    }
    w.key("ts").value(event.cycle);
    w.key("pid").value(0);
    w.key("tid").value(tid);
    w.key("args").beginObject();
    if (event.block >= 0)
        w.key("block").value(static_cast<int64_t>(event.block));
    w.key(info.aKey).value(event.a);
    w.key(info.bKey).value(event.b);
    w.endObject();
    w.endObject();
}

void
ChromeTraceSink::flush()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]}\n";
    os_.flush();
}

// ---------------------------------------------------------------------
// JSONL.

void
JsonlTraceSink::emit(const TraceEvent &event)
{
    const KindInfo &info = kindInfo(event.kind);
    json::Writer w(os_);
    w.beginObject();
    w.key("kind").value(info.name);
    w.key("cycle").value(event.cycle);
    if (event.duration > 0)
        w.key("dur").value(event.duration);
    if (event.tile >= 0)
        w.key("tile").value(static_cast<int64_t>(event.tile));
    if (event.block >= 0)
        w.key("block").value(static_cast<int64_t>(event.block));
    if (event.label[0] != '\0')
        w.key("label").value(event.label);
    w.key(info.aKey).value(event.a);
    w.key(info.bKey).value(event.b);
    w.endObject();
    os_ << "\n";
}

void
JsonlTraceSink::flush()
{
    os_.flush();
}

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &format, std::ostream &os)
{
    if (format == "chrome")
        return std::make_unique<ChromeTraceSink>(os);
    if (format == "jsonl")
        return std::make_unique<JsonlTraceSink>(os);
    return nullptr;
}

void
flushSpans(const std::vector<telemetry::SpanRecord> &spans,
           TraceSink &sink)
{
    auto *chrome = dynamic_cast<ChromeTraceSink *>(&sink);
    for (const telemetry::SpanRecord &span : spans) {
        // tid = track + 1, matching the emit() mapping; name the
        // track after the worker before its first event lands.
        if (chrome != nullptr)
            chrome->nameThread(span.track + 1,
                               detail::cat("worker ", span.track));
        TraceEvent event{};
        event.kind = TraceEventKind::Span;
        event.cycle = span.startUs;
        event.duration = span.durUs;
        event.tile = span.track;
        event.label = span.name.c_str();
        event.a = span.traceId;
        event.b = span.seq;
        sink.emit(event);
    }
}

} // namespace dfp::sim
