#include "sim/batch.h"

#include <chrono>

#include "analysis/cost_model.h"
#include "analysis/predict.h"
#include "base/logging.h"
#include "base/telemetry.h"
#include "base/threadpool.h"
#include "compiler/regalloc.h"

namespace dfp::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

/**
 * One compilation's immutable products, shared read-only across every
 * run that hits the cache: the compiled program (+ static stats) and
 * the golden reference the runs verify against. Simulation never
 * mutates the TProgram, so concurrent runs of the same pointer are
 * safe; each run still gets a private ArchState/Machine/StatSet.
 */
struct BatchRunner::Compiled
{
    compiler::CompileResult res;
    workloads::Golden golden;
};

BatchRunner::BatchRunner(const BatchOptions &opts) : opts_(opts) {}

BatchJob
makeJob(const workloads::Workload &w, const std::string &config,
        const SimConfig &simCfg)
{
    BatchJob job;
    job.workload = &w;
    job.config = config;
    job.label = w.name + "/" + config;
    job.opts = compiler::configNamed(config);
    job.opts.unroll.factor = w.unrollFactor;
    job.sim = simCfg;
    return job;
}

std::string
BatchRunner::compileKey(const std::string &workload,
                        const compiler::CompileOptions &o)
{
    // Every field that can change the generated program, in a fixed
    // order. A new CompileOptions knob that is forgotten here degrades
    // to a *correctness* bug (two different programs sharing a cache
    // slot), so the batch tests pin this key against configNamed().
    return detail::cat(
        workload, "|hb=", o.hyperblocks, ",intra=", o.predFanoutReduction,
        ",inter=", o.pathSensitive, ",merge=", o.merging,
        ",scalar=", o.scalarOpts, ",sched=", o.schedule,
        ",mcast=", o.multicast, ",verify=", o.verifyEachPass,
        ",u=", o.unroll.factor, "/", o.unroll.maxBodyInstrs, "/",
        o.unroll.maxBodyBlocks, ",region=", o.region.maxBlocksPerRegion,
        "/", o.region.instrBudget, "/", o.region.memOpBudget, "/",
        o.region.allowLoops, ",grid=", o.grid.rows, "x", o.grid.cols,
        ",break=", o.debugBreak);
}

std::shared_ptr<const BatchRunner::Compiled>
BatchRunner::compiledFor(const BatchJob &job, uint64_t &compiles,
                         uint64_t &cacheHits)
{
    const std::string key = compileKey(job.workload->name, job.opts);
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++cacheHits;
            return it->second;
        }
    }

    // Compile outside the lock — compilations of *different* keys run
    // concurrently. Two threads may race to compile the same key; the
    // first insertion wins and the loser's work is discarded, so the
    // cache stays single-valued and the published program identical
    // either way. (Sweeps enqueue a workload's configs contiguously,
    // so in practice the racers are compiling different keys.)
    auto fresh = std::make_shared<Compiled>();
    fresh->res = compiler::compileSource(job.workload->source, job.opts);
    fresh->golden = workloads::runGolden(*job.workload);

    std::lock_guard<std::mutex> lock(cacheMu_);
    auto [it, inserted] = cache_.emplace(key, std::move(fresh));
    if (inserted)
        ++compiles;
    else
        ++cacheHits;
    return it->second;
}

void
BatchRunner::runJob(const BatchJob &job, BatchResult &out,
                    const std::atomic<int> *stop, uint64_t &compiles,
                    uint64_t &cacheHits)
{
    out.label = job.label;
    out.config = job.config;
    out.workload = job.workload ? job.workload->name : "";
    // Anything thrown after compilation succeeded is a runtime fault;
    // the phase marker keeps the taxonomy honest without nested trys.
    const char *throwKind = "exception";
    try {
        dfp_assert(job.workload != nullptr,
                   "batch job '", job.label, "' has no workload");
        throwKind = "compile";
        std::shared_ptr<const Compiled> prog;
        {
            DFP_PHASE("phase.batch.compile");
            prog = compiledFor(job, compiles, cacheHits);
        }
        throwKind = "exception";

        isa::ArchState state;
        state.mem = workloads::initialMemory(*job.workload);
        SimConfig simCfg = job.sim;
        if (stop != nullptr)
            simCfg.checkpoint.stop = stop;
        Clock::time_point runStart = Clock::now();
        SimResult res;
        {
            DFP_PHASE("phase.batch.sim");
            res = simulate(prog->res.program, state, simCfg);
        }
        out.hostSeconds = secondsSince(runStart);

        out.cycles = res.cycles;
        out.blocks = res.blocksCommitted;
        out.insts = res.instsCommitted;
        out.movs = res.movsCommitted;
        out.mispredicts = res.mispredicts;
        out.flushed = res.blocksFlushed;
        out.faultsInjected = res.faultsInjected;
        out.replays = res.replays;
        out.staticInsts = prog->res.stats.get("codegen.insts");
        out.staticBlocks = prog->res.stats.get("codegen.blocks");
        if (opts_.keepRunStats)
            out.stats = std::move(res.stats);
        else
            out.stats = StatSet();

        if (opts_.predictCycles || job.predict) {
            DFP_PHASE("phase.batch.predict");
            isa::ArchState pstate;
            pstate.mem = workloads::initialMemory(*job.workload);
            analysis::Prediction p = analysis::predictCycles(
                prog->res.program, pstate,
                analysis::CostModel::fromSim(job.sim));
            if (p.ok)
                out.predictedCycles = p.predictedCycles;
        }

        if (res.interrupted) {
            out.error = "interrupted by a stop request";
            out.errorKind = "interrupted";
        } else if (!res.halted) {
            out.error = res.error.empty() ? "simulation did not halt"
                                          : res.error;
            out.errorKind = "sim";
        } else if (opts_.checkGolden &&
                   (state.regs[compiler::kRetArchReg] !=
                        prog->golden.retValue ||
                    state.mem.checksum() !=
                        prog->golden.memChecksum)) {
            out.error = "diverged from the golden model";
            out.errorKind = "golden";
        } else {
            out.ok = true;
        }
    } catch (const std::exception &err) {
        out.ok = false;
        out.error = err.what();
        out.errorKind = throwKind;
    }
}

BatchResult
BatchRunner::runOne(const BatchJob &job, const std::atomic<int> *stop)
{
    // The caller forgoes sweep-level accounting; cache lookups made on
    // its behalf still warm the shared cache either way.
    uint64_t compiles = 0, cacheHits = 0;
    return runOne(job, stop, compiles, cacheHits);
}

BatchResult
BatchRunner::runOne(const BatchJob &job, const std::atomic<int> *stop,
                    uint64_t &compiles, uint64_t &cacheHits)
{
    BatchResult out;
    runJob(job, out, stop, compiles, cacheHits);
    return out;
}

BatchResult
BatchRunner::compileOnly(const BatchJob &job, uint64_t &compiles,
                         uint64_t &cacheHits)
{
    BatchResult out;
    out.label = job.label;
    out.config = job.config;
    out.workload = job.workload ? job.workload->name : "";
    try {
        dfp_assert(job.workload != nullptr,
                   "batch job '", job.label, "' has no workload");
        std::shared_ptr<const Compiled> prog =
            compiledFor(job, compiles, cacheHits);
        out.staticInsts = prog->res.stats.get("codegen.insts");
        out.staticBlocks = prog->res.stats.get("codegen.blocks");
        out.ok = true;
    } catch (const std::exception &err) {
        out.ok = false;
        out.error = err.what();
        out.errorKind = "compile";
    }
    return out;
}

size_t
BatchRunner::cacheSize() const
{
    std::lock_guard<std::mutex> lock(cacheMu_);
    return cache_.size();
}

BatchSummary
BatchRunner::run(const std::vector<BatchJob> &jobs)
{
    BatchSummary summary;
    summary.results.resize(jobs.size());
    // Accounting is written under cacheMu_ by the workers.
    uint64_t compiles = 0, cacheHits = 0;

    Clock::time_point batchStart = Clock::now();
    ThreadPool pool(opts_.jobs);
    pool.parallelFor(jobs.size(), [&](size_t i) {
        runJob(jobs[i], summary.results[i], nullptr, compiles,
               cacheHits);
    });

    summary.wallSeconds = secondsSince(batchStart);
    summary.compiles = compiles;
    summary.cacheHits = cacheHits;
    for (const BatchResult &r : summary.results) {
        summary.merged.merge(r.stats);
        summary.totalSimCycles += r.cycles;
        summary.allOk = summary.allOk && r.ok;
    }
    return summary;
}

} // namespace dfp::sim
