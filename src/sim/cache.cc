#include "sim/cache.h"

#include "base/bitops.h"

namespace dfp::sim
{

Cache::Cache(uint64_t sizeBytes, int assoc, int lineBytes)
    : assoc_(assoc)
{
    dfp_assert(isPow2(lineBytes), "line size must be a power of two");
    lineShift_ = static_cast<int>(floorLog2(lineBytes));
    uint64_t numLines = sizeBytes / lineBytes;
    dfp_assert(numLines % assoc == 0, "capacity/assoc mismatch");
    numSets_ = static_cast<int>(numLines / assoc);
    dfp_assert(isPow2(numSets_), "set count must be a power of two");
    lines_.assign(numSets_ * assoc_, {});
}

bool
Cache::access(uint64_t addr)
{
    ++tick_;
    if (DFP_FAULT_ACTIVE(faults_))
        lastFlip_ = faults_->cacheFlip();
    uint64_t lineAddr = addr >> lineShift_;
    int set = static_cast<int>(lineAddr & (numSets_ - 1));
    uint64_t tag = lineAddr >> floorLog2(numSets_);

    Line *victim = nullptr;
    for (int w = 0; w < assoc_; ++w) {
        Line &line = lines_[set * assoc_ + w];
        if (line.valid && line.tag == tag) {
            line.lastUse = tick_;
            ++hits_;
            return true;
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lastUse < victim->lastUse)) {
            victim = &line;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t lineAddr = addr >> lineShift_;
    int set = static_cast<int>(lineAddr & (numSets_ - 1));
    uint64_t tag = lineAddr >> floorLog2(numSets_);
    for (int w = 0; w < assoc_; ++w) {
        const Line &line = lines_[set * assoc_ + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.set(prefix + ".hits", hits_);
    stats.set(prefix + ".misses", misses_);
    stats.set(prefix + ".accesses", hits_ + misses_);
}

void
Cache::save(serialize::BinWriter &w) const
{
    w.b(lastFlip_);
    w.u64(tick_);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(lines_.size());
    for (const Line &line : lines_) {
        w.u64(line.tag);
        w.b(line.valid);
        w.u64(line.lastUse);
    }
}

void
Cache::load(serialize::BinReader &r)
{
    lastFlip_ = r.b();
    tick_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
    size_t n = r.len(17);
    if (n != lines_.size()) {
        // Geometry mismatch — poison the reader so the caller rejects
        // the checkpoint instead of loading a torn tag array.
        r.fail();
        return;
    }
    for (Line &line : lines_) {
        line.tag = r.u64();
        line.valid = r.b();
        line.lastUse = r.u64();
    }
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = {};
    hits_ = misses_ = 0;
}

} // namespace dfp::sim
