/**
 * @file
 * The single source of truth for the machine's fixed timing constants.
 * Every latency the event-driven simulator hard-codes — the per-hop
 * operand-network cost, the wakeup-to-issue delay, the per-tile issue
 * repeat rate, the load AGU pipeline, the commit delay — lives here,
 * and the static cost-model analyzer (src/analysis) consumes the same
 * definitions, so the two can never drift apart. Configurable
 * latencies (fetch pipe depth, predictor, cache hit/miss times) stay
 * on sim::SimConfig; per-opcode execution latencies stay in the
 * isa::opInfo table and are re-exported here through opLatency() so
 * the analyzer has one include for the whole cost model.
 *
 * docs/ANALYSIS.md documents how these constants compose into the
 * analyzer's lower-bound recurrence; docs/SIM.md documents where the
 * simulator spends them.
 */

#ifndef DFP_SIM_TIMING_MODEL_H
#define DFP_SIM_TIMING_MODEL_H

#include <cstdint>

#include "isa/opcodes.h"

namespace dfp::sim::timing
{

/** Cycles an operand spends crossing one operand-network link
 *  (tile-to-tile, tile-to-register-tile, or tile-to-data-tile). */
inline constexpr uint64_t kHopCycles = 1;

/** Cycles a link stays occupied per operand under contention — each
 *  injection/ejection port accepts one operand per cycle. */
inline constexpr uint64_t kLinkOccupancyCycles = 1;

/** Cycles between a read-queue slot resolving its register value and
 *  the operand entering the network at the register tile. */
inline constexpr uint64_t kReadInjectCycles = 1;

/** Cycles between an instruction's last operand arriving (wakeup) and
 *  the earliest issue slot it can claim. */
inline constexpr uint64_t kWakeupToIssueCycles = 1;

/** Cycles a tile's single issue slot stays busy per instruction. */
inline constexpr uint64_t kIssueRepeatCycles = 1;

/** Cycles a load spends in the AGU pipeline before its cache access
 *  is injected toward the data tile. */
inline constexpr uint64_t kLoadPipeCycles = 1;

/** Cycles between a block completing (all outputs counted) and its
 *  commit retiring the frame. */
inline constexpr uint64_t kCommitCycles = 1;

/** Execution latency of @p op (the isa::opInfo table: 1 for simple
 *  ALU ops, 3 for multiplies, 24 for divides, 4/16 for FP, ...). */
inline uint64_t
opLatency(isa::Op op)
{
    return static_cast<uint64_t>(isa::opInfo(op).latency);
}

} // namespace dfp::sim::timing

#endif // DFP_SIM_TIMING_MODEL_H
