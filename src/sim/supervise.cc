#include "sim/supervise.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/json.h"
#include "base/json_reader.h"
#include "base/serialize.h"
#include "base/threadpool.h"
#include "sim/checkpoint.h"

namespace dfp::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

int64_t
nowNanos()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

std::string
toHex(const std::vector<uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xF];
    }
    return out;
}

bool
fromHex(const std::string &hex, std::vector<uint8_t> &out)
{
    if (hex.size() % 2 != 0)
        return false;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    out.clear();
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(uint8_t(hi << 4 | lo));
    }
    return true;
}

/** Per-job stop plumbing shared with the monitor thread. */
struct Slot
{
    std::atomic<int> stop{0};
    std::atomic<bool> active{false};
    std::atomic<bool> timedOut{false};
    std::atomic<int64_t> deadlineNs{0};
};

bool
retryable(const BatchResult &r)
{
    return !r.ok &&
           (r.errorKind == "timeout" || r.errorKind == "exception");
}

} // namespace

void
encodeBatchResult(const BatchResult &r, serialize::BinWriter &w)
{
    w.str(r.label);
    w.str(r.config);
    w.str(r.workload);
    w.b(r.ok);
    w.str(r.error);
    w.str(r.errorKind);
    w.u64(r.cycles);
    w.u64(r.blocks);
    w.u64(r.insts);
    w.u64(r.movs);
    w.u64(r.mispredicts);
    w.u64(r.flushed);
    w.u64(r.faultsInjected);
    w.u64(r.replays);
    w.u64(r.staticInsts);
    w.u64(r.staticBlocks);
    w.u64(r.predictedCycles);
    w.f64(r.hostSeconds);
    r.stats.save(w);
}

bool
decodeBatchResult(serialize::BinReader &r, BatchResult &out)
{
    out.label = r.str();
    out.config = r.str();
    out.workload = r.str();
    out.ok = r.b();
    out.error = r.str();
    out.errorKind = r.str();
    out.cycles = r.u64();
    out.blocks = r.u64();
    out.insts = r.u64();
    out.movs = r.u64();
    out.mispredicts = r.u64();
    out.flushed = r.u64();
    out.faultsInjected = r.u64();
    out.replays = r.u64();
    out.staticInsts = r.u64();
    out.staticBlocks = r.u64();
    out.predictedCycles = r.u64();
    out.hostSeconds = r.f64();
    out.stats.load(r);
    return r.ok() && r.atEnd();
}

bool
SweepJournal::open(const std::string &dir, const std::string &toolVersion,
                   uint64_t jobCount, std::string &error)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        error = "cannot create journal directory '" + dir +
                "': " + ec.message();
        return false;
    }
    manifestPath_ = dir + "/manifest.jsonl";
    quarantinePath_ = dir + "/quarantine.jsonl";
    replay(error);
    if (!error.empty())
        return false;
    os_.open(manifestPath_, std::ios::app);
    if (!os_) {
        error = "cannot open '" + manifestPath_ + "' for append";
        return false;
    }
    std::ostringstream payload;
    json::Writer w(payload);
    w.beginObject();
    w.key("kind").value("header");
    w.key("version").value(uint64_t{1});
    w.key("tool").value(toolVersion);
    w.key("jobs").value(jobCount);
    w.endObject();
    append(payload.str());
    return true;
}

void
SweepJournal::start(const std::string &id, uint64_t attempt)
{
    std::ostringstream payload;
    json::Writer w(payload);
    w.beginObject();
    w.key("kind").value("start");
    w.key("id").value(id);
    w.key("attempt").value(attempt);
    w.endObject();
    append(payload.str());
}

void
SweepJournal::done(const std::string &id, uint64_t attempt,
                   const BatchResult &r)
{
    serialize::BinWriter blob;
    encodeBatchResult(r, blob);
    std::ostringstream payload;
    json::Writer w(payload);
    w.beginObject();
    w.key("kind").value("done");
    w.key("id").value(id);
    w.key("attempt").value(attempt);
    // Human-readable mirror of the blob for journal spelunking.
    w.key("ok").value(r.ok);
    w.key("error_kind").value(r.errorKind);
    w.key("cycles").value(r.cycles);
    w.key("result_hex").value(toHex(blob.bytes()));
    w.endObject();
    append(payload.str());
}

void
SweepJournal::append(const std::string &payload)
{
    uint32_t crc = serialize::crc32(payload.data(), payload.size());
    std::lock_guard<std::mutex> lock(mu_);
    os_ << "{\"crc\":" << crc << ",\"p\":" << payload << "}\n";
    os_.flush();
}

void
SweepJournal::quarantine(const std::string &line)
{
    if (!quarantineOs_.is_open())
        quarantineOs_.open(quarantinePath_, std::ios::app);
    if (quarantineOs_) {
        quarantineOs_ << line << "\n";
        quarantineOs_.flush();
    }
    ++quarantined_;
}

/** Replay an existing manifest: restore every valid `done` line,
 *  quarantine everything damaged. A missing manifest is simply a
 *  fresh sweep. */
void
SweepJournal::replay(std::string &error)
{
    std::ifstream is(manifestPath_);
    if (!is)
        return;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (!replayLine(line))
            quarantine(line);
    }
    if (is.bad())
        error = "read error on '" + manifestPath_ + "'";
}

bool
SweepJournal::replayLine(const std::string &line)
{
    // The CRC is computed over the exact payload text, so find the
    // payload's bytes in the raw line first (the writer's framing
    // is fixed: {"crc":N,"p":<payload>}).
    size_t at = line.find(",\"p\":");
    if (at == std::string::npos || line.back() != '}')
        return false;
    std::string payload =
        line.substr(at + 5, line.size() - (at + 5) - 1);

    bool ok = false;
    minijson::Value doc = minijson::parse(line, &ok);
    if (!ok || !doc.isObject() || !doc["crc"].isNumber())
        return false;
    uint32_t crc = serialize::crc32(payload.data(), payload.size());
    if (double(crc) != doc["crc"].number)
        return false;

    const minijson::Value &p = doc["p"];
    if (!p.isObject() || !p["kind"].isString())
        return false;
    const std::string &kind = p["kind"].str;
    if (kind == "header" || kind == "start")
        return true; // informational; nothing to restore
    if (kind != "done")
        return false;
    if (!p["id"].isString() || !p["result_hex"].isString())
        return false;
    std::vector<uint8_t> blob;
    if (!fromHex(p["result_hex"].str, blob))
        return false;
    serialize::BinReader r(blob);
    BatchResult result;
    if (!decodeBatchResult(r, result))
        return false;
    finished_[p["id"].str] = std::move(result);
    return true;
}

std::string
superviseJobId(const BatchJob &job)
{
    std::string key =
        BatchRunner::compileKey(job.workload ? job.workload->name : "?",
                                job.opts) +
        "||" + simConfigKey(job.sim);
    char fp[16];
    std::snprintf(fp, sizeof(fp), "%08x",
                  serialize::crc32(key.data(), key.size()));
    return job.label + "@" + fp;
}

SuperviseSummary
superviseBatch(BatchRunner &runner, const std::vector<BatchJob> &jobs,
               const SuperviseOptions &opts)
{
    SuperviseSummary summary;
    summary.batch.results.resize(jobs.size());

    SweepJournal journal;
    const bool journalled = !opts.journalDir.empty();
    if (journalled) {
        if (!journal.open(opts.journalDir, opts.toolVersion,
                          jobs.size(), summary.error))
            return summary;
        summary.journalPath = journal.manifestPath();
        summary.quarantined = journal.quarantined();
        if (journal.quarantined() > 0)
            summary.quarantinePath = journal.quarantinePath();
    }

    const bool hasTimeout = opts.jobTimeoutSeconds > 0;
    const bool needMonitor =
        hasTimeout || opts.stop != nullptr || opts.strict;

    std::vector<std::unique_ptr<Slot>> slots(jobs.size());
    for (auto &s : slots)
        s = std::make_unique<Slot>();

    std::atomic<bool> abort{false};
    auto stopNow = [&] {
        return abort.load(std::memory_order_relaxed) ||
               (opts.stop != nullptr &&
                opts.stop->load(std::memory_order_relaxed) != 0);
    };

    // The monitor enforces deadlines and fans external stop / strict
    // aborts out to every in-flight run's stop flag. 20ms resolution
    // is plenty against multi-second timeouts.
    std::atomic<bool> monitorQuit{false};
    std::thread monitor;
    if (needMonitor) {
        monitor = std::thread([&] {
            while (!monitorQuit.load(std::memory_order_relaxed)) {
                int ext = opts.stop != nullptr
                              ? opts.stop->load(
                                    std::memory_order_relaxed)
                              : 0;
                bool halt =
                    ext != 0 || abort.load(std::memory_order_relaxed);
                int64_t now = nowNanos();
                for (auto &s : slots) {
                    if (!s->active.load(std::memory_order_acquire))
                        continue;
                    if (halt) {
                        s->stop.store(ext != 0 ? ext : 1,
                                      std::memory_order_relaxed);
                    } else if (hasTimeout &&
                               now >= s->deadlineNs.load(
                                          std::memory_order_relaxed)) {
                        s->timedOut.store(
                            true, std::memory_order_relaxed);
                        s->stop.store(1, std::memory_order_relaxed);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        });
    }

    std::atomic<uint64_t> executed{0}, restored{0}, retried{0};
    uint64_t compiles = 0, cacheHits = 0; // guarded by the cache lock

    Clock::time_point sweepStart = Clock::now();
    ThreadPool pool(opts.batch.jobs);
    pool.parallelFor(jobs.size(), [&](size_t i) {
        const BatchJob &job = jobs[i];
        BatchResult &out = summary.batch.results[i];
        const std::string id = superviseJobId(job);

        if (journalled) {
            if (const BatchResult *done = journal.find(id)) {
                out = *done;
                restored.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }

        Slot &slot = *slots[i];
        uint64_t attempt = 0;
        for (;;) {
            ++attempt;
            if (stopNow()) {
                // Deliberately unjournalled: the next resume re-runs
                // this job from scratch.
                out.label = job.label;
                out.config = job.config;
                out.workload =
                    job.workload ? job.workload->name : "";
                out.ok = false;
                out.error = "interrupted before the run started";
                out.errorKind = "interrupted";
                return;
            }
            if (journalled)
                journal.start(id, attempt);
            if (attempt == 1)
                executed.fetch_add(1, std::memory_order_relaxed);

            slot.stop.store(0, std::memory_order_relaxed);
            slot.timedOut.store(false, std::memory_order_relaxed);
            if (hasTimeout)
                slot.deadlineNs.store(
                    nowNanos() +
                        int64_t(opts.jobTimeoutSeconds * 1e9),
                    std::memory_order_relaxed);
            slot.active.store(true, std::memory_order_release);
            BatchResult r = runner.runOne(
                job, needMonitor ? &slot.stop : nullptr, compiles,
                cacheHits);
            slot.active.store(false, std::memory_order_release);

            if (r.errorKind == "interrupted") {
                if (slot.timedOut.load(std::memory_order_relaxed)) {
                    r.error = "exceeded the job timeout";
                    r.errorKind = "timeout";
                } else {
                    // External stop or strict abort: leave the job
                    // unfinished in the journal and drain.
                    out = std::move(r);
                    return;
                }
            }

            if (r.ok || !retryable(r) || attempt > opts.retries) {
                if (journalled)
                    journal.done(id, attempt, r);
                bool failed = !r.ok;
                out = std::move(r);
                if (failed && opts.strict)
                    abort.store(true, std::memory_order_relaxed);
                return;
            }

            retried.fetch_add(1, std::memory_order_relaxed);
            double delay =
                std::min(opts.backoffSeconds *
                             double(uint64_t{1} << (attempt - 1)),
                         30.0);
            Clock::time_point wakeAt =
                Clock::now() + std::chrono::duration_cast<
                                   Clock::duration>(
                                   std::chrono::duration<double>(delay));
            while (Clock::now() < wakeAt && !stopNow())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
        }
    });

    if (needMonitor) {
        monitorQuit.store(true, std::memory_order_relaxed);
        monitor.join();
    }

    summary.batch.wallSeconds = secondsSince(sweepStart);
    summary.batch.compiles = compiles;
    summary.batch.cacheHits = cacheHits;
    summary.executed = executed.load();
    summary.restored = restored.load();
    summary.retried = retried.load();
    for (const BatchResult &r : summary.batch.results) {
        summary.batch.merged.merge(r.stats);
        summary.batch.totalSimCycles += r.cycles;
        summary.batch.allOk = summary.batch.allOk && r.ok;
        if (!r.ok) {
            ++summary.failuresByKind[r.errorKind.empty()
                                         ? "unknown"
                                         : r.errorKind];
            if (r.errorKind == "interrupted")
                summary.interrupted = true;
        }
    }
    if (abort.load() ||
        (opts.stop != nullptr && opts.stop->load() != 0))
        summary.interrupted = true;
    return summary;
}

} // namespace dfp::sim
