#include "sim/machine.h"

#include <algorithm>
#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "base/serialize.h"

#include "isa/alu.h"
#include "sim/cache.h"
#include "sim/predictor.h"
#include "sim/timing_model.h"

namespace dfp::sim
{

namespace
{

using isa::Op;
using isa::Slot;
using isa::Target;
using isa::Token;

/**
 * Opcode classes for the "sim.ops.<class>" rollups. Buckets follow the
 * machine's functional units rather than the encoding: data movement,
 * integer ALU, tests, floating point, memory, control, legacy gates.
 */
enum class OpClass : uint8_t
{
    Mov, Alu, Test, Fp, Load, Store, Branch, Gate, Other, NumClasses
};

constexpr const char *kOpClassNames[] = {
    "mov", "alu", "test", "fp", "load", "store", "branch", "gate", "other",
};

constexpr OpClass
opClassOfSwitch(Op op)
{
    switch (op) {
      case Op::Mov: case Op::Mov4: case Op::Movi: case Op::Null:
        return OpClass::Mov;
      case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
      case Op::And: case Op::Or: case Op::Xor: case Op::Shl:
      case Op::Shr: case Op::Sra: case Op::Addi: case Op::Subi:
      case Op::Muli: case Op::Divi: case Op::Andi: case Op::Ori:
      case Op::Xori: case Op::Shli: case Op::Shri: case Op::Srai:
        return OpClass::Alu;
      case Op::Teq: case Op::Tne: case Op::Tlt: case Op::Tle:
      case Op::Tgt: case Op::Tge: case Op::Teqi: case Op::Tnei:
      case Op::Tlti: case Op::Tlei: case Op::Tgti: case Op::Tgei:
        return OpClass::Test;
      case Op::Fadd: case Op::Fsub: case Op::Fmul: case Op::Fdiv:
      case Op::Feq: case Op::Flt: case Op::Fle: case Op::Fgt:
      case Op::Fge: case Op::Itof: case Op::Ftoi:
        return OpClass::Fp;
      case Op::Ld:
        return OpClass::Load;
      case Op::St:
        return OpClass::Store;
      case Op::Bro:
        return OpClass::Branch;
      case Op::GateT: case Op::GateF: case Op::Switch:
        return OpClass::Gate;
      default:
        return OpClass::Other;
    }
}

/** Flat table so the per-issue classification is one load. */
constexpr auto kOpClassTable = [] {
    std::array<OpClass, size_t(Op::NumOps)> table{};
    for (size_t i = 0; i < table.size(); ++i)
        table[i] = opClassOfSwitch(Op(i));
    return table;
}();

inline OpClass
opClassOf(Op op)
{
    return kOpClassTable[size_t(op)];
}

/** One block in flight. */
struct Frame
{
    uint64_t gen = 0;
    int blockIdx = -1;
    const isa::TBlock *block = nullptr;
    bool fetched = false;
    bool conservative = false; //!< dependence predictor said "wait"

    struct IState
    {
        std::optional<Token> left;
        std::optional<Token> right;
        bool predMatched = false;
        bool fired = false;
    };
    std::vector<IState> ists;
    std::vector<std::optional<Token>> writeTok;
    std::optional<int32_t> branchTarget;

    std::map<uint8_t, std::pair<uint64_t, Token>> storeBuf;
    uint32_t resolvedLsids = 0;
    std::vector<std::pair<uint8_t, uint64_t>> doneLoads; //!< (lsid, addr)
    std::vector<int> waitingLoads; //!< inst indices deferred on stores

    int pendingOps = 0;      //!< scheduled events not yet handled
    bool complete = false;
    uint64_t completeCycle = 0;
    uint64_t lastOutputCycle = 0;
    uint64_t fetchStart = 0; //!< cycle the fetch pipeline accepted us

    // dynamic counters (accumulated into SimResult at commit)
    uint64_t fired = 0;
    uint64_t movs = 0;

    int predictedNext = BlockPredictor::kNoPrediction;
};

class Machine
{
  public:
    Machine(const isa::TProgram &program, isa::ArchState &state,
            const SimConfig &config)
        : program_(program), state_(state), cfg_(config),
          net_(config.grid, config.modelContention),
          l1d_(config.l1dBytes, config.l1dAssoc, config.lineBytes),
          l1i_(config.l1iBytes, config.l1iAssoc, config.lineBytes),
          recovery_(config.recovery),
          tileFree_(config.grid.tiles(), 0),
          tileIssued_(config.grid.tiles(), 0)
    {
        net_.attachTrace(cfg_.trace);
        if (cfg_.faults.enabled()) {
            faultOwner_ = std::make_unique<FaultEngine>(
                cfg_.faults, config.grid.tiles(),
                static_cast<int>(program.blocks.size()));
            faults_ = faultOwner_.get();
            net_.attachFaults(faults_);
            l1d_.attachFaults(faults_); // L1-I misses only re-fetch
            predictor_.attachFaults(faults_);
            tileRemap_.resize(config.grid.tiles());
            for (size_t t = 0; t < tileRemap_.size(); ++t)
                tileRemap_[t] = static_cast<int>(t);
        }
        watchdogCycles_ = cfg_.watchdogCycles != 0
                              ? cfg_.watchdogCycles
                              : (cfg_.faults.enabled() ? 10000 : 0);
        // Static code layout for the I-cache model.
        uint64_t base = 1ull << 40; // away from data
        for (const isa::TBlock &block : program.blocks) {
            codeBase_.push_back(base);
            base += (block.sizeBytes() + config.lineBytes - 1) /
                    config.lineBytes * config.lineBytes;
        }
        // The oracle trace replays the *initial* architectural state,
        // so on resume it is restored from the snapshot instead.
        if (cfg_.perfectPrediction && cfg_.checkpoint.resume == nullptr)
            buildOracleTrace();
        ckptArmed_ = cfg_.checkpoint.everyCycles != 0 ||
                     cfg_.checkpoint.stop != nullptr;
        nextCkpt_ = cfg_.checkpoint.everyCycles;
        if (cfg_.checkpoint.resume != nullptr) {
            serialize::BinReader r(*cfg_.checkpoint.resume);
            if (loadState(r) && r.ok() && r.atEnd()) {
                resumed_ = true;
                // Re-aim the periodic trigger past the restored clock.
                if (cfg_.checkpoint.everyCycles != 0) {
                    while (nextCkpt_ <= now_)
                        nextCkpt_ += cfg_.checkpoint.everyCycles;
                }
            } else {
                // The checkpoint layer CRC-validates payloads before
                // they reach us, so this means an internal mismatch
                // (e.g. a different program). Fail the run loudly.
                res_.error = "checkpoint payload does not match this "
                             "program/configuration";
                done_ = true;
            }
        }
    }

    SimResult run();

  private:
    // ------------------------------------------------------------------
    // Event machinery. Events are a closed set of tagged records (not
    // closures) so the pending-event queue can be serialized into a
    // checkpoint and restored bit-exactly; dispatch() is the single
    // interpreter. Pop order is a strict total order on (cycle, seq),
    // so restoring the heap array verbatim reproduces the schedule.
    enum class EvKind : uint8_t
    {
        // Frame-bound (scheduled via frameAt; generation-checked and
        // counted in Frame::pendingOps).
        FetchDone,      //!< block fetch pipeline delivered the block
        DeliverOperand, //!< token arrives at target (uses target, token)
        Execute,        //!< issue slot fires instruction idx
        RouteResult,    //!< result token fans out from inst idx
        ResolveStore,   //!< store reaches its bank (idx = lsid)
        FaultDetect,    //!< parity caught a flip (idx: 0=l1d, 1=net)
        // Global (scheduled via schedule(); no pendingOps accounting).
        CommitCheck, //!< oldest frame may commit (uses slot, gen)
        FetchResume, //!< replay-backoff hold expired
        WatchdogTick,
    };

    struct Event
    {
        uint64_t cycle = 0;
        uint64_t seq = 0;
        uint64_t gen = 0;
        uint64_t addr = 0;
        Token token{};
        Target target{};
        int32_t slot = -1;
        int32_t idx = 0;
        EvKind kind = EvKind::FetchResume;

        bool operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : seq > o.seq;
        }
    };

    /** Min-heap on (cycle, seq) over a plain vector so the container
     *  serializes; pop order is total, so heap layout cannot leak into
     *  behaviour. */
    std::vector<Event> events_;
    uint64_t seq_ = 0;
    uint64_t now_ = 0;

    void
    schedule(Event ev)
    {
        dfp_assert(ev.cycle >= now_, "event scheduled in the past");
        ev.seq = seq_++;
        events_.push_back(ev);
        std::push_heap(events_.begin(), events_.end(), std::greater<>{});
    }

    Event
    popEvent()
    {
        std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
        Event ev = events_.back();
        events_.pop_back();
        return ev;
    }

    /** Schedule an event tied to a frame; dropped if the frame is gone. */
    void
    frameAt(int slot, uint64_t cycle, Event ev)
    {
        ev.cycle = cycle;
        ev.slot = slot;
        ev.gen = frames_[slot]->gen;
        frames_[slot]->pendingOps++;
        schedule(ev);
    }

    void dispatch(const Event &ev);

    // ------------------------------------------------------------------
    int tileOf(const Frame &f, int idx) const
    {
        int t = !f.block->placement.empty() ? f.block->placement[idx]
                                            : idx % cfg_.grid.tiles();
        if (DFP_FAULT_ACTIVE(faults_))
            t = tileRemap_[t]; // hard-failed tiles are mapped out
        return t;
    }

    /** One progress tick for the watchdog: an event retired. */
    void
    noteProgress()
    {
        ++progress_;
        lastProgressCycle_ = now_;
    }

    void buildOracleTrace();
    void fetchMore();
    void startFetch(int blockIdx);
    void onFetchDone(Frame &f, int slot);
    void tryResolveRead(int slot, int readIdx);
    void deliverOperand(Frame &f, int slot, Target target, Token token,
                        uint64_t cycle);
    void maybeIssue(Frame &f, int slot, int idx);
    void execute(Frame &f, int slot, int idx, uint64_t issueCycle);
    void finish(Frame &f, int slot, int idx, Token result,
                uint64_t cycle);
    void routeResult(Frame &f, int slot, int idx, const Token &result,
                     uint64_t cycle);
    void doLoad(Frame &f, int slot, int idx, uint64_t issueCycle);
    void resolveStore(Frame &f, int slot, uint8_t lsid, uint64_t addr,
                      Token value, uint64_t cycle, bool nullified);
    void wakeRegWaiters(int reg);
    void checkCompletion(Frame &f, int slot);
    void tryCommit();
    void commitOldest();
    void flushFrom(size_t pos, const char *why, int redirectBlock);
    int frameOrder(int slot) const;

    // Fault injection, detection, and recovery (all cold: reachable
    // only behind DFP_FAULT_ACTIVE or from a watchdog/deadlock event).
    __attribute__((noinline, cold)) bool faultMessage(int slot,
                                                      uint64_t arrive);
    __attribute__((noinline, cold)) void onFaultDetected(
        int slot, const char *what);
    __attribute__((noinline, cold)) void recover(size_t pos,
                                                 const char *why);
    __attribute__((noinline, cold)) void mapOutTile(int tile);
    void armWatchdog();
    void watchdogTick();
    DeadlockReport buildForensics(const char *reason) const;

    // Checkpoint/restore (cold: reachable only behind ckptArmed_, which
    // is false unless SimConfig::checkpoint arms a hook, so a plain run
    // pays one predicted-not-taken branch per event).
    __attribute__((noinline, cold)) bool pauseRequested();
    __attribute__((noinline, cold)) void cutSnapshot();
    void saveState(serialize::BinWriter &w) const;
    bool loadState(serialize::BinReader &r);

    uint64_t readRegister(int slot, int reg, bool &ready, Token &out);

    // ------------------------------------------------------------------
    const isa::TProgram &program_;
    isa::ArchState &state_;
    SimConfig cfg_;
    OperandNetwork net_;
    Cache l1d_, l1i_;
    BlockPredictor predictor_;
    std::vector<uint64_t> codeBase_;

    // Fault injection and recovery. faults_ stays null on fault-free
    // runs, so every injection site is one predicted-not-taken branch.
    std::unique_ptr<FaultEngine> faultOwner_;
    FaultEngine *faults_ = nullptr;
    RecoveryManager recovery_;
    std::vector<int> tileRemap_;  //!< logical -> live physical tile
    uint64_t watchdogCycles_ = 0; //!< 0 = watchdog disarmed
    uint64_t progress_ = 0;       //!< events retired (watchdog signal)
    uint64_t watchdogLastProgress_ = 0;
    uint64_t lastProgressCycle_ = 0;
    uint64_t fetchHoldUntil_ = 0; //!< replay backoff gate on fetch
    bool holdScheduled_ = false;
    uint64_t watchdogFires_ = 0;
    uint64_t tilesMappedOut_ = 0;

    // Frames, oldest first. frames_[order]; slot index == position in
    // a fixed pool referenced by events.
    std::vector<std::unique_ptr<Frame>> frames_; //!< slot -> frame
    std::vector<int> order_;                     //!< oldest..youngest slots
    uint64_t nextGen_ = 1;

    std::vector<uint64_t> tileFree_;
    uint64_t lastFetchStart_ = 0;

    // Read subscriptions: register -> (slot, gen, readIdx) waiting.
    struct Waiter
    {
        int slot;
        uint64_t gen;
        int readIdx;
    };
    std::multimap<int, Waiter> regWaiters_;

    std::set<int> conservativeBlocks_; //!< dependence predictor state
    std::vector<int> oracle_;
    size_t oraclePos_ = 0;

    SimResult res_;
    bool done_ = false;
    int redirect_ = 0; //!< next block to fetch when no frames exist

    // Checkpoint machinery (see CheckpointControl).
    bool resumed_ = false;   //!< state restored from a snapshot
    bool ckptArmed_ = false; //!< any checkpoint hook active
    uint64_t nextCkpt_ = 0;  //!< next periodic snapshot cycle (0 = off)
    uint64_t stopFuse_ = 0;  //!< throttles the atomic stop poll

    // Hot-path metrics: plain members (kept after the cold state so
    // the hot layout above is undisturbed), folded into res_.stats
    // once at the end of run() so the per-event cost stays flat.
    std::vector<uint64_t> tileIssued_; //!< issue-slot occupancy per tile
    uint64_t opClassFired_[size_t(OpClass::NumClasses)] = {};
    uint64_t nulledTokens_ = 0;
    uint64_t predTokensDelivered_ = 0;
    uint64_t predTokensMatched_ = 0;
    uint64_t earlyTermBlocks_ = 0;
    uint64_t earlyTermOps_ = 0;
    uint64_t maxFramesInFlight_ = 0;

    // Cold trace helpers: out-of-line so the emission code (event
    // construction + virtual call) never bulks up the hot functions.
    __attribute__((noinline, cold)) void tracePredToken(
        const Frame &f, int idx, uint64_t cycle, bool matched);
    __attribute__((noinline, cold)) void traceLoad(
        const Frame &f, int idx, uint64_t addr, uint8_t lsid,
        uint64_t doneCycle, uint64_t back);
    __attribute__((noinline, cold)) void traceStore(
        const Frame &f, uint64_t addr, uint8_t lsid, uint64_t cycle,
        bool nullified);
};

void
Machine::buildOracleTrace()
{
    isa::ArchState copy = state_;
    isa::TProgram programCopy = program_;
    int32_t current = 0;
    uint64_t fuel = 1ull << 24;
    while (fuel-- > 0) {
        oracle_.push_back(current);
        isa::BlockOutcome out =
            isa::executeBlock(program_.blocks[current], copy);
        if (!out.ok || out.nextBlock == isa::kHaltTarget)
            break;
        current = out.nextBlock;
    }
}

int
Machine::frameOrder(int slot) const
{
    for (size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] == slot)
            return static_cast<int>(i);
    }
    return -1;
}

void
Machine::fetchMore()
{
    if (done_)
        return;
    if (__builtin_expect(now_ < fetchHoldUntil_, 0)) {
        // Replay backoff after a squash: resume fetching once, when the
        // hold expires (a later squash may extend it further).
        if (!holdScheduled_) {
            holdScheduled_ = true;
            Event ev;
            ev.cycle = fetchHoldUntil_;
            ev.kind = EvKind::FetchResume;
            schedule(ev);
        }
        return;
    }
    while (static_cast<int>(order_.size()) < cfg_.maxBlocksInFlight) {
        int next;
        if (order_.empty()) {
            next = redirect_;
        } else {
            Frame &tail = *frames_[order_.back()];
            if (cfg_.perfectPrediction) {
                size_t pos = oraclePos_ + order_.size();
                if (pos >= oracle_.size())
                    return; // oracle says nothing beyond here
                next = oracle_[pos];
            } else {
                next = predictor_.predict(tail.blockIdx);
            }
            tail.predictedNext = next;
            if (next < 0 ||
                next >= static_cast<int>(program_.blocks.size())) {
                return; // no prediction, or predicted halt: stop here
            }
        }
        startFetch(next);
    }
}

void
Machine::startFetch(int blockIdx)
{
    int slot = -1;
    for (size_t s = 0; s < frames_.size(); ++s) {
        if (!frames_[s]) {
            slot = static_cast<int>(s);
            break;
        }
    }
    if (slot < 0) {
        slot = static_cast<int>(frames_.size());
        frames_.emplace_back();
    }
    auto frame = std::make_unique<Frame>();
    frame->gen = nextGen_++;
    frame->blockIdx = blockIdx;
    frame->block = &program_.blocks[blockIdx];
    frame->conservative = conservativeBlocks_.count(blockIdx) > 0;
    frame->ists.resize(frame->block->insts.size());
    frame->writeTok.resize(frame->block->writes.size());
    frames_[slot] = std::move(frame);
    order_.push_back(slot);

    // Fetch timing: prediction + fetch pipe + I-cache. The fetch pipe
    // delivers fetchWidth instruction words per cycle, so a full block
    // occupies it for several cycles before the next block's fetch can
    // start (TRIPS: 16/cycle, 8 cycles for a 128-instruction block).
    uint64_t occupancy =
        std::max<uint64_t>(1, (frames_[slot]->block->sizeBytes() / 4 +
                               cfg_.fetchWidth - 1) /
                                  cfg_.fetchWidth);
    uint64_t start = std::max(now_, lastFetchStart_ + occupancy) +
                     cfg_.predictLatency;
    lastFetchStart_ = start;
    uint64_t extra = 0;
    uint64_t base = codeBase_[blockIdx];
    int bytes = frames_[slot]->block->sizeBytes();
    bool missed = false;
    for (int off = 0; off < bytes; off += cfg_.lineBytes)
        missed |= !l1i_.access(base + off);
    extra = missed ? cfg_.missLatency : cfg_.l1iHitLatency;
    res_.stats.inc(missed ? "sim.l1i_misses" : "sim.l1i_hits");

    frames_[slot]->fetchStart = start;
    if (order_.size() > maxFramesInFlight_)
        maxFramesInFlight_ = order_.size();
    DFP_TRACE(cfg_.trace,
              (TraceEvent{TraceEventKind::BlockFetch, start,
                          cfg_.fetchLatency + extra, -1, blockIdx,
                          frames_[slot]->block->label.c_str(),
                          uint64_t(missed), 0}));
    Event ev;
    ev.kind = EvKind::FetchDone;
    frameAt(slot, start + cfg_.fetchLatency + extra, ev);
    res_.stats.inc("sim.fetches");
}

uint64_t
Machine::readRegister(int slot, int reg, bool &ready, Token &out)
{
    // Committed value, then forward from older in-flight frames in
    // order; a null write leaves the previous value visible (§4.2).
    ready = true;
    out = Token{state_.regs[reg], false, false};
    uint64_t when = now_;
    int myPos = frameOrder(slot);
    for (int pos = 0; pos < myPos; ++pos) {
        Frame &g = *frames_[order_[pos]];
        for (size_t w = 0; w < g.block->writes.size(); ++w) {
            if (g.block->writes[w].reg != reg)
                continue;
            if (!g.fetched || !g.writeTok[w].has_value()) {
                ready = false;
                return when;
            }
            const Token &tok = *g.writeTok[w];
            if (!tok.null)
                out = tok;
        }
    }
    return when;
}

void
Machine::tryResolveRead(int slot, int readIdx)
{
    Frame &f = *frames_[slot];
    const isa::ReadSlot &read = f.block->reads[readIdx];
    bool ready = false;
    Token token;
    readRegister(slot, read.reg, ready, token);
    if (!ready) {
        regWaiters_.insert({read.reg, {slot, f.gen, readIdx}});
        return;
    }
    for (const Target &t : read.targets) {
        // A WriteQ target indexes the block's writes, not its
        // instructions: route the pass-through to the register tile
        // column serving the destination register instead of indexing
        // the placement vector with a write-slot index.
        int toTile = t.slot == Slot::WriteQ
                         ? cfg_.grid.regCol(f.block->writes[t.index].reg)
                         : tileOf(f, t.index);
        uint64_t arrive = net_.deliverFromReg(
            read.reg, toTile, now_ + timing::kReadInjectCycles);
        if (DFP_FAULT_ACTIVE(faults_) && !faultMessage(slot, arrive))
            continue;
        Event ev;
        ev.kind = EvKind::DeliverOperand;
        ev.target = t;
        ev.token = token;
        frameAt(slot, arrive, ev);
    }
}

void
Machine::wakeRegWaiters(int reg)
{
    auto range = regWaiters_.equal_range(reg);
    std::vector<Waiter> waiters;
    for (auto it = range.first; it != range.second; ++it)
        waiters.push_back(it->second);
    regWaiters_.erase(range.first, range.second);
    for (const Waiter &w : waiters) {
        if (w.slot < static_cast<int>(frames_.size()) &&
            frames_[w.slot] && frames_[w.slot]->gen == w.gen) {
            tryResolveRead(w.slot, w.readIdx);
        }
    }
}

void
Machine::tracePredToken(const Frame &f, int idx, uint64_t cycle,
                        bool matched)
{
    cfg_.trace->emit(TraceEvent{TraceEventKind::PredToken, cycle, 0,
                                tileOf(f, idx), f.blockIdx, "",
                                uint64_t(matched), uint64_t(idx)});
}

void
Machine::traceLoad(const Frame &f, int idx, uint64_t addr, uint8_t lsid,
                   uint64_t doneCycle, uint64_t back)
{
    cfg_.trace->emit(TraceEvent{TraceEventKind::LsqLoad, doneCycle,
                                back - doneCycle, tileOf(f, idx),
                                f.blockIdx, "", addr, lsid});
}

void
Machine::traceStore(const Frame &f, uint64_t addr, uint8_t lsid,
                    uint64_t cycle, bool nullified)
{
    cfg_.trace->emit(TraceEvent{TraceEventKind::LsqStore, cycle, 0, -1,
                                f.blockIdx, nullified ? "nulled" : "",
                                addr, lsid});
}

void
Machine::deliverOperand(Frame &f, int slot, Target target, Token token,
                        uint64_t cycle)
{
    noteProgress();
    if (token.null)
        ++nulledTokens_;
    if (target.slot == Slot::WriteQ) {
        auto &wt = f.writeTok[target.index];
        if (wt.has_value()) {
            res_.error = detail::cat("block '", f.block->label,
                                     "': write slot received two tokens");
            done_ = true;
            return;
        }
        wt = token;
        f.lastOutputCycle = std::max(f.lastOutputCycle, cycle);
        wakeRegWaiters(f.block->writes[target.index].reg);
        return;
    }

    int idx = target.index;
    const isa::TInst &def = f.block->insts[idx];
    Frame::IState &st = f.ists[idx];

    if (target.slot == Slot::Pred) {
        const bool matched = isa::predMatches(def.pr, token);
        ++predTokensDelivered_;
        predTokensMatched_ += matched;
#if DFP_SIM_TRACING
        if (__builtin_expect(cfg_.trace != nullptr, 0))
            tracePredToken(f, idx, cycle, matched);
#endif
        if (matched) {
            if (st.predMatched) {
                res_.error = detail::cat("block '", f.block->label,
                                         "': double matching predicate");
                done_ = true;
                return;
            }
            st.predMatched = true;
            maybeIssue(f, slot, idx);
        } else {
            res_.stats.inc("sim.nonmatching_preds");
        }
        return;
    }

    // A null reaching a store resolves its LSID with no memory effect.
    if (def.op == Op::St && token.null) {
        resolveStore(f, slot, def.lsid, 0, token, cycle, true);
        return;
    }

    auto &opnd = target.slot == Slot::Left ? st.left : st.right;
    if (opnd.has_value()) {
        res_.error = detail::cat("block '", f.block->label, "': inst ",
                                 idx, " operand received two tokens");
        done_ = true;
        return;
    }
    opnd = token;
    maybeIssue(f, slot, idx);
}

void
Machine::maybeIssue(Frame &f, int slot, int idx)
{
    const isa::TInst &inst = f.block->insts[idx];
    Frame::IState &st = f.ists[idx];
    if (st.fired)
        return;
    if (inst.predicated() && !st.predMatched)
        return;
    int need = inst.numSrcs();
    if (need >= 1 && !st.left.has_value())
        return;
    if (need >= 2 && !st.right.has_value())
        return;
    st.fired = true;
    f.fired++;
    if (inst.op == Op::Mov || inst.op == Op::Mov4 || inst.op == Op::Movi)
        f.movs++;

    // One issue slot per tile per cycle.
    int tile = tileOf(f, idx);
    ++tileIssued_[tile];
    ++opClassFired_[size_t(opClassOf(inst.op))];
    uint64_t issue =
        std::max(now_ + timing::kWakeupToIssueCycles, tileFree_[tile]);
    if (DFP_FAULT_ACTIVE(faults_)) {
        uint64_t stall = faults_->tileStall(tile);
        if (__builtin_expect(stall != 0, 0)) {
            issue += stall;
            DFP_TRACE(cfg_.trace,
                      (TraceEvent{TraceEventKind::FaultInject, now_,
                                  stall, tile, f.blockIdx, "tile-stall",
                                  stall, 0}));
        }
        if (__builtin_expect(faults_->tileFailIssue(tile), 0)) {
            // The issue is silently swallowed (hard fault): consumers
            // starve and the watchdog squashes and replays the block.
            tileFree_[tile] = issue + timing::kIssueRepeatCycles;
            DFP_TRACE(cfg_.trace,
                      (TraceEvent{TraceEventKind::FaultInject, now_, 0,
                                  tile, f.blockIdx, "tile-fail",
                                  uint64_t(idx), 0}));
            return;
        }
    }
    tileFree_[tile] = issue + timing::kIssueRepeatCycles;
    // The issue cycle IS the event cycle, so Execute re-derives it from
    // now_ at dispatch.
    Event ev;
    ev.kind = EvKind::Execute;
    ev.idx = idx;
    frameAt(slot, issue, ev);
}

void
Machine::execute(Frame &f, int slot, int idx, uint64_t issueCycle)
{
    const isa::TInst &inst = f.block->insts[idx];
    Frame::IState &st = f.ists[idx];
    Token a = st.left.value_or(Token{});
    Token b = st.right.value_or(Token{});
    Token immTok{static_cast<uint64_t>(
                     static_cast<int64_t>(inst.imm)),
                 false, false};
    uint64_t doneCycle = issueCycle + timing::opLatency(inst.op);

    switch (inst.op) {
      case Op::Bro: {
        if (f.branchTarget.has_value()) {
            res_.error = detail::cat("block '", f.block->label,
                                     "': two branches fired");
            done_ = true;
            return;
        }
        f.branchTarget = inst.imm;
        f.lastOutputCycle = std::max(f.lastOutputCycle, doneCycle);
        return;
      }
      case Op::St: {
        if (a.null || b.null) {
            resolveStore(f, slot, inst.lsid, 0, Token{0, true, false},
                         doneCycle, true);
            return;
        }
        uint64_t addr = a.value + static_cast<int64_t>(inst.imm);
        Token value = b;
        if (a.excep || (addr & 7))
            value.excep = true;
        int bank = cfg_.grid.bankRow(addr, cfg_.lineBytes);
        uint64_t arrive =
            net_.deliverToBank(tileOf(f, idx), bank, doneCycle);
        if (DFP_FAULT_ACTIVE(faults_) && !faultMessage(slot, arrive))
            return; // the LSID never resolves; the watchdog recovers
        Event ev;
        ev.kind = EvKind::ResolveStore;
        ev.idx = inst.lsid;
        ev.addr = addr;
        ev.token = value;
        frameAt(slot, arrive, ev);
        return;
      }
      case Op::Ld:
        doLoad(f, slot, idx, issueCycle);
        return;
      case Op::GateT:
      case Op::GateF: {
        if (a.null)
            return;
        bool truth = a.excep ? false : (a.value & 1) != 0;
        if (truth != (inst.op == Op::GateT))
            return;
        Token out = b;
        out.excep = out.excep || a.excep;
        finish(f, slot, idx, out, doneCycle);
        return;
      }
      case Op::Switch: {
        if (a.null)
            return;
        bool truth = a.excep ? false : (a.value & 1) != 0;
        Token out = b;
        out.excep = out.excep || a.excep;
        const Target &t = inst.targets[truth ? 0 : 1];
        uint64_t arrive = net_.deliver(
            tileOf(f, idx),
            t.slot == Slot::WriteQ ? tileOf(f, idx) : tileOf(f, t.index),
            doneCycle);
        if (DFP_FAULT_ACTIVE(faults_) && !faultMessage(slot, arrive))
            return;
        Event ev;
        ev.kind = EvKind::DeliverOperand;
        ev.target = t;
        ev.token = out;
        frameAt(slot, arrive, ev);
        return;
      }
      default: {
        Token result = isa::evalOp(
            inst.op, a, isa::opInfo(inst.op).hasImm ? immTok : b);
        finish(f, slot, idx, result, doneCycle);
        return;
      }
    }
}

void
Machine::finish(Frame &f, int slot, int idx, Token result,
                uint64_t cycle)
{
    routeResult(f, slot, idx, result, cycle);
}

void
Machine::routeResult(Frame &f, int slot, int idx, const Token &result,
                     uint64_t cycle)
{
    int fromTile = tileOf(f, idx);
    for (const Target &t : f.block->insts[idx].targets) {
        uint64_t arrive;
        if (t.slot == Slot::WriteQ) {
            arrive = net_.deliverToReg(
                fromTile, f.block->writes[t.index].reg, cycle);
        } else {
            arrive = net_.deliver(fromTile, tileOf(f, t.index), cycle);
        }
        if (DFP_FAULT_ACTIVE(faults_) && !faultMessage(slot, arrive))
            continue;
        Event ev;
        ev.kind = EvKind::DeliverOperand;
        ev.target = t;
        ev.token = result;
        frameAt(slot, arrive, ev);
    }
    if (f.block->insts[idx].targets.empty())
        f.lastOutputCycle = std::max(f.lastOutputCycle, cycle);
}

void
Machine::doLoad(Frame &f, int slot, int idx, uint64_t issueCycle)
{
    const isa::TInst &inst = f.block->insts[idx];
    const Token &addrTok = *f.ists[idx].left;
    uint64_t doneCycle = issueCycle + timing::kLoadPipeCycles;
    if (addrTok.null || addrTok.excep) {
        Token out;
        out.null = addrTok.null;
        out.excep = !addrTok.null && addrTok.excep;
        finish(f, slot, idx, out, doneCycle);
        return;
    }
    uint64_t addr = addrTok.value + static_cast<int64_t>(inst.imm);
    if (addr & 7) {
        finish(f, slot, idx, Token{0, false, true}, doneCycle);
        return;
    }

    // Conservative frames (and everything when aggressive load
    // speculation is off) defer loads until every earlier in-block
    // store LSID resolves.
    uint32_t earlier = f.block->storeMask & ((1u << inst.lsid) - 1);
    if ((f.conservative || !cfg_.aggressiveLoads) &&
        (earlier & ~f.resolvedLsids) != 0) {
        f.waitingLoads.push_back(idx);
        return;
    }

    // Value: committed memory, then older frames' resolved stores in
    // frame order, then this frame's earlier-LSID stores.
    Token out;
    out.value = state_.mem.load(addr);
    int myPos = frameOrder(slot);
    for (int pos = 0; pos <= myPos; ++pos) {
        Frame &g = *frames_[order_[pos]];
        for (const auto &[lsid, st] : g.storeBuf) {
            if (pos == myPos && lsid >= inst.lsid)
                continue;
            if (st.first == addr && !st.second.null)
                out.value = st.second.value;
        }
    }

    int bank = cfg_.grid.bankRow(addr, cfg_.lineBytes);
    uint64_t atBank =
        net_.deliverToBank(tileOf(f, idx), bank, doneCycle);
    bool hit = l1d_.access(addr);
    res_.stats.inc(hit ? "sim.l1d_hits" : "sim.l1d_misses");
    uint64_t dataReady =
        atBank + (hit ? cfg_.l1dHitLatency : cfg_.missLatency);
    uint64_t back = net_.deliverFromBank(bank, tileOf(f, idx), dataReady);

#if DFP_SIM_TRACING
    if (__builtin_expect(cfg_.trace != nullptr, 0))
        traceLoad(f, idx, addr, inst.lsid, doneCycle, back);
#endif
    if (DFP_FAULT_ACTIVE(faults_)) {
        if (__builtin_expect(l1d_.lastAccessFlipped(), 0)) {
            // Line parity catches the flip when the data returns; the
            // detection squashes and replays the block.
            DFP_TRACE(cfg_.trace,
                      (TraceEvent{TraceEventKind::FaultInject, now_, 0,
                                  tileOf(f, idx), f.blockIdx,
                                  "cache-flip", addr, inst.lsid}));
            Event ev;
            ev.kind = EvKind::FaultDetect;
            ev.idx = 0; // "l1d-parity"
            frameAt(slot, back, ev);
            return;
        }
        if (!faultMessage(slot, back))
            return; // reply lost; the watchdog recovers
    }
    f.doneLoads.push_back({inst.lsid, addr});
    Event ev;
    ev.kind = EvKind::RouteResult;
    ev.idx = idx;
    ev.token = out;
    frameAt(slot, back, ev);
}

void
Machine::resolveStore(Frame &f, int slot, uint8_t lsid, uint64_t addr,
                      Token value, uint64_t cycle, bool nullified)
{
    noteProgress();
    if (f.resolvedLsids & (1u << lsid)) {
        res_.error = detail::cat("block '", f.block->label,
                                 "': store LSID ", int(lsid),
                                 " resolved twice");
        done_ = true;
        return;
    }
    f.resolvedLsids |= 1u << lsid;
    if (!nullified)
        f.storeBuf[lsid] = {addr, value};
    f.lastOutputCycle = std::max(f.lastOutputCycle, cycle);
#if DFP_SIM_TRACING
    if (__builtin_expect(cfg_.trace != nullptr, 0))
        traceStore(f, addr, lsid, cycle, nullified);
#endif

    // Dependence violation check: a later load in this frame, or any
    // load in a younger frame, already read this address. The flush may
    // kill this frame too (same-frame violation); deferred-load wakeup
    // below must still run when the frame survives.
    if (!nullified) {
        uint64_t myGen = f.gen;
        int myPos = frameOrder(slot);
        bool violated = false;
        for (size_t pos = myPos;
             pos < order_.size() && !done_ && !violated; ++pos) {
            Frame &g = *frames_[order_[pos]];
            for (const auto &[llsid, laddr] : g.doneLoads) {
                bool younger = static_cast<int>(pos) > myPos;
                if (laddr == addr && (younger || llsid > lsid)) {
                    res_.loadViolations++;
                    conservativeBlocks_.insert(g.blockIdx);
                    flushFrom(pos, "load-store violation",
                              g.blockIdx);
                    violated = true;
                    break;
                }
            }
        }
        if (violated &&
            (!frames_[slot] || frames_[slot]->gen != myGen)) {
            return; // this frame itself was flushed
        }
    }

    // Wake deferred loads.
    if (!f.waitingLoads.empty()) {
        std::vector<int> loads = std::move(f.waitingLoads);
        f.waitingLoads.clear();
        for (int idx : loads) {
            uint32_t earlier =
                f.block->storeMask & ((1u << f.block->insts[idx].lsid) -
                                      1);
            if ((earlier & ~f.resolvedLsids) == 0) {
                doLoad(f, slot, idx, cycle);
            } else {
                f.waitingLoads.push_back(idx);
            }
        }
    }
}

void
Machine::checkCompletion(Frame &f, int slot)
{
    if (done_ || f.complete || !f.fetched)
        return;
    if (!f.branchTarget.has_value())
        return;
    if ((f.block->storeMask & ~f.resolvedLsids) != 0)
        return;
    for (const auto &tok : f.writeTok) {
        if (!tok.has_value())
            return;
    }
    if (!cfg_.earlyTermination && f.pendingOps > 0)
        return; // must drain without early termination (§4.3 ablation)
    f.complete = true;
    f.completeCycle = std::max(now_, f.lastOutputCycle);
    tryCommit();
    (void)slot;
}

void
Machine::tryCommit()
{
    if (done_ || order_.empty())
        return;
    Frame &oldest = *frames_[order_.front()];
    if (!oldest.complete)
        return;
    uint64_t when =
        std::max(now_, oldest.completeCycle) + timing::kCommitCycles;
    Event ev;
    ev.cycle = when;
    ev.kind = EvKind::CommitCheck;
    ev.slot = order_.front();
    ev.gen = oldest.gen;
    schedule(ev);
}

void
Machine::commitOldest()
{
    int slot = order_.front();
    Frame &f = *frames_[slot];

    // Commit stores in LSID order and register writes; raise any
    // exception bit that reached an output (§4.4).
    bool excep = false;
    for (const auto &[lsid, st] : f.storeBuf) {
        (void)lsid;
        if (st.second.excep) {
            excep = true;
            continue;
        }
        state_.mem.store(st.first, st.second.value);
    }
    for (size_t w = 0; w < f.writeTok.size(); ++w) {
        const Token &tok = *f.writeTok[w];
        if (tok.null)
            continue;
        if (tok.excep) {
            excep = true;
            continue;
        }
        state_.regs[f.block->writes[w].reg] = tok.value;
    }

    noteProgress();
    if (DFP_FAULT_ACTIVE(faults_) || watchdogCycles_ != 0)
        recovery_.onCommit(f.blockIdx); // consecutive-retry count resets
    res_.blocksCommitted++;
    res_.instsCommitted += f.fired;
    res_.movsCommitted += f.movs;
    res_.cycles = std::max(res_.cycles, now_);

    // Early mispredication termination (§4.3): committing while events
    // for falsely-predicated instructions are still in flight.
    if (f.pendingOps > 0) {
        ++earlyTermBlocks_;
        earlyTermOps_ += f.pendingOps;
        DFP_TRACE(cfg_.trace,
                  (TraceEvent{TraceEventKind::EarlyTerm, now_, 0, -1,
                              f.blockIdx, f.block->label.c_str(),
                              uint64_t(f.pendingOps), 0}));
    }
    DFP_TRACE(cfg_.trace,
              (TraceEvent{TraceEventKind::BlockCommit, f.fetchStart,
                          std::max<uint64_t>(now_ - f.fetchStart, 1),
                          -1, f.blockIdx, f.block->label.c_str(),
                          f.fired, 0}));
    if (cfg_.perBlockStats) {
        res_.stats.inc(
            detail::cat("sim.block.", f.block->label, ".commits"));
    }

    int actual = *f.branchTarget;
    predictor_.train(f.blockIdx, actual);
    if (cfg_.perfectPrediction)
        ++oraclePos_;

    if (excep) {
        res_.raisedException = true;
        res_.error = detail::cat("exception raised at block '",
                                 f.block->label, "'");
        done_ = true;
        return;
    }

    // The frame dies here; keep the committed block reachable for the
    // register wake-ups below (it lives in the program, not the frame).
    const isa::TBlock *const committed = f.block;
    order_.erase(order_.begin());
    frames_[slot].reset();

    if (actual == isa::kHaltTarget) {
        res_.halted = true;
        done_ = true;
        return;
    }

    // Validate the speculative chain against the actual successor.
    bool predictedRight =
        !order_.empty() &&
        frames_[order_.front()]->blockIdx == actual;
    predictor_.noteOutcome(predictedRight);
    if (!predictedRight) {
        res_.mispredicts++;
        flushFrom(0, "branch mispredict", actual);
    } else {
        // The next frame's reads may now resolve against committed
        // state (it may have been waiting on our writes).
        for (const isa::WriteSlot &w : committed->writes)
            wakeRegWaiters(w.reg);
        tryCommit();
    }
    fetchMore();
}

void
Machine::flushFrom(size_t pos, const char *why, int redirectBlock)
{
    for (size_t p = pos; p < order_.size(); ++p) {
        Frame &g = *frames_[order_[p]];
        DFP_TRACE(cfg_.trace,
                  (TraceEvent{TraceEventKind::BlockFlush, now_, 0, -1,
                              g.blockIdx, why, 0, 0}));
        if (cfg_.perBlockStats) {
            res_.stats.inc(
                detail::cat("sim.block.", g.block->label, ".flushes"));
        }
        frames_[order_[p]].reset();
        res_.blocksFlushed++;
    }
    order_.resize(pos);
    if (order_.empty())
        redirect_ = redirectBlock;
    res_.stats.inc(detail::cat("sim.flush.", why));
    // Orphaned regWaiters and in-flight events for dead frames are
    // filtered by generation checks when they surface.
    fetchMore();
}

void
Machine::onFetchDone(Frame &f, int slot)
{
    noteProgress();
    f.fetched = true;
    for (size_t r = 0; r < f.block->reads.size(); ++r)
        tryResolveRead(slot, static_cast<int>(r));
    for (size_t i = 0; i < f.block->insts.size(); ++i) {
        const isa::TInst &inst = f.block->insts[i];
        if (inst.numSrcs() == 0 && !inst.predicated())
            maybeIssue(f, slot, static_cast<int>(i));
    }
    checkCompletion(f, slot);
}

bool
Machine::faultMessage(int slot, uint64_t arrive)
{
    FaultEngine::MessageVerdict v = faults_->onMessage();
    if (__builtin_expect(v == FaultEngine::MessageVerdict::Deliver, 1))
        return true;
    Frame &f = *frames_[slot];
    const bool corrupt = v == FaultEngine::MessageVerdict::Corrupt;
    DFP_TRACE(cfg_.trace,
              (TraceEvent{TraceEventKind::FaultInject, now_, 0, -1,
                          f.blockIdx, corrupt ? "net-corrupt" : "net-drop",
                          arrive, 0}));
    if (corrupt) {
        // Per-token parity catches the flip at ejection: model the
        // detection as an event at the would-be arrival cycle. (A drop
        // has no such signal — only the progress watchdog sees it.)
        Event ev;
        ev.kind = EvKind::FaultDetect;
        ev.idx = 1; // "net-parity"
        frameAt(slot, arrive, ev);
    }
    return false;
}

void
Machine::onFaultDetected(int slot, const char *what)
{
    // Callers run under a frameAt generation check, so the frame is the
    // one the fault hit; it may still have committed already when early
    // termination retired the block before the detection surfaced — in
    // that case the fault landed on a falsely-predicated path and was
    // architecturally harmless (the gen check above filtered it).
    Frame *f = frames_[slot].get();
    if (!f || done_)
        return;
    DFP_TRACE(cfg_.trace,
              (TraceEvent{TraceEventKind::FaultDetect, now_, 0, -1,
                          f->blockIdx, what, 0, 0}));
    int pos = frameOrder(slot);
    if (pos < 0)
        return;
    recover(static_cast<size_t>(pos), what);
}

void
Machine::recover(size_t pos, const char *why)
{
    if (done_)
        return;
    int blockIdx = frames_[order_[pos]]->blockIdx;
    int64_t backoff = recovery_.onSquash(blockIdx);
    if (backoff < 0) {
        // A persistently faulty block fails the run loudly instead of
        // livelocking; the forensic dump explains what kept dying.
        res_.deadlock = buildForensics("replay budget exhausted");
        res_.error = res_.deadlock.summary();
        done_ = true;
        return;
    }
    DFP_TRACE(cfg_.trace,
              (TraceEvent{TraceEventKind::Recovery, now_,
                          uint64_t(backoff), -1, blockIdx, why,
                          recovery_.replays(), 0}));
    if (DFP_FAULT_ACTIVE(faults_))
        faults_->noteRecovery(); // stops the guaranteed-shot forcing
    // Map out any tile that crossed its hard-fail threshold before the
    // replay refetches, so replayed slots land on live tiles.
    if (DFP_FAULT_ACTIVE(faults_)) {
        for (int t = faults_->takeTileToMapOut(); t >= 0;
             t = faults_->takeTileToMapOut())
            mapOutTile(t);
    }
    fetchHoldUntil_ =
        std::max(fetchHoldUntil_, now_ + static_cast<uint64_t>(backoff));
    flushFrom(pos, why, blockIdx);
}

void
Machine::mapOutTile(int tile)
{
    // Re-route the dead tile's issue slots to the nearest live tile by
    // mesh distance. The engine never hands out the last live tile.
    int best = -1;
    int bestDist = 1 << 30;
    for (int t = 0; t < cfg_.grid.tiles(); ++t) {
        if (faults_->tileDead(t))
            continue;
        int dr = cfg_.grid.rowOf(t) - cfg_.grid.rowOf(tile);
        int dc = cfg_.grid.colOf(t) - cfg_.grid.colOf(tile);
        int dist = (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
        if (dist < bestDist) {
            bestDist = dist;
            best = t;
        }
    }
    dfp_assert(best >= 0, "no live tile to map out to");
    for (size_t t = 0; t < tileRemap_.size(); ++t) {
        if (tileRemap_[t] == tile)
            tileRemap_[t] = best;
    }
    ++tilesMappedOut_;
    DFP_TRACE(cfg_.trace,
              (TraceEvent{TraceEventKind::TileMapOut, now_, 0, tile, -1,
                          "", uint64_t(best), 0}));
}

void
Machine::armWatchdog()
{
    Event ev;
    ev.cycle = now_ + watchdogCycles_;
    ev.kind = EvKind::WatchdogTick;
    schedule(ev);
}

void
Machine::watchdogTick()
{
    if (done_)
        return;
    // A window with no event retired and frames outstanding is a hang
    // (a dropped token, a swallowed issue, a genuine deadlock). Replay
    // backoff legitimately idles the machine, so the hold is exempt.
    if (progress_ == watchdogLastProgress_ && !order_.empty() &&
        now_ >= fetchHoldUntil_) {
        ++watchdogFires_;
        // Victim: the oldest incomplete frame — it gates commit.
        size_t pos = 0;
        while (pos < order_.size() && frames_[order_[pos]]->complete)
            ++pos;
        if (pos == order_.size())
            pos = 0;
        Frame &f = *frames_[order_[pos]];
        DFP_TRACE(cfg_.trace,
                  (TraceEvent{TraceEventKind::Watchdog, now_, 0, -1,
                              f.blockIdx, f.block->label.c_str(),
                              lastProgressCycle_, 0}));
        recover(pos, "watchdog");
    }
    watchdogLastProgress_ = progress_;
    if (!done_ && (!order_.empty() || !events_.empty()))
        armWatchdog();
}

DeadlockReport
Machine::buildForensics(const char *reason) const
{
    DeadlockReport report;
    report.valid = true;
    report.reason = reason;
    report.cycle = now_;
    report.lastProgressCycle = lastProgressCycle_;
    for (int slot : order_) {
        const Frame &f = *frames_[slot];
        DeadlockFrame df;
        df.blockIdx = f.blockIdx;
        df.label = f.block->label;
        df.gen = f.gen;
        df.fetched = f.fetched;
        df.complete = f.complete;
        df.conservative = f.conservative;
        df.branchFired = f.branchTarget.has_value();
        df.pendingOps = f.pendingOps;
        for (size_t w = 0; w < f.writeTok.size(); ++w) {
            if (!f.writeTok[w].has_value()) {
                df.missingWrites.push_back(
                    {static_cast<int>(w),
                     static_cast<int>(f.block->writes[w].reg)});
            }
        }
        uint32_t lsids = f.block->storeMask & ~f.resolvedLsids;
        for (int l = 0; l < 32; ++l) {
            if (lsids & (1u << l))
                df.unresolvedLsids.push_back(l);
        }
        for (const auto &[lsid, st] : f.storeBuf)
            df.lsqResidue.push_back(
                {static_cast<int>(lsid), st.first, st.second.null});
        df.waitingLoads = f.waitingLoads;
        auto collectStalled = [&](bool requirePartial) {
            for (size_t i = 0; i < f.block->insts.size(); ++i) {
                const isa::TInst &inst = f.block->insts[i];
                const Frame::IState &st = f.ists[i];
                if (st.fired)
                    continue;
                bool partial = st.left.has_value() ||
                               st.right.has_value() || st.predMatched;
                if (requirePartial && !partial && inst.numSrcs() != 0)
                    continue;
                StalledInst si;
                si.index = static_cast<int>(i);
                si.op = isa::opName(inst.op);
                si.hasLeft = st.left.has_value();
                si.hasRight = st.right.has_value();
                si.predMatched = st.predMatched;
                if (inst.predicated() && !st.predMatched)
                    si.missing.push_back("pred");
                if (inst.numSrcs() >= 1 && !si.hasLeft)
                    si.missing.push_back("left");
                if (inst.numSrcs() >= 2 && !si.hasRight)
                    si.missing.push_back("right");
                df.stalled.push_back(std::move(si));
            }
        };
        // Untouched instructions with sources are usually dead
        // predicated paths, not stalls, so the first pass reports only
        // partially-fed ones (and source-free ones, which should have
        // fired at fetch). But an incomplete frame with NO partial
        // instruction starved totally — every operand was lost in
        // flight — and then the unfired instructions are the story.
        collectStalled(/*requirePartial=*/true);
        if (df.stalled.empty() && !f.complete)
            collectStalled(/*requirePartial=*/false);
        report.frames.push_back(std::move(df));
    }
    return report;
}

void
Machine::dispatch(const Event &ev)
{
    // Global events first: no frame binding, no pendingOps accounting.
    switch (ev.kind) {
      case EvKind::FetchResume:
        holdScheduled_ = false;
        fetchMore();
        return;
      case EvKind::WatchdogTick:
        watchdogTick();
        return;
      case EvKind::CommitCheck: {
        if (done_ || order_.empty() || order_.front() != ev.slot)
            return;
        Frame *f = frames_[ev.slot].get();
        if (!f || f->gen != ev.gen || !f->complete)
            return;
        commitOldest();
        return;
      }
      default:
        break;
    }

    // Frame-bound events: generation-checked, then completion-checked
    // (the handler may flush its own frame — same-frame dependence
    // violations, fault recovery — so re-fetch before the check).
    Frame *f = frames_[ev.slot].get();
    if (!f || f->gen != ev.gen)
        return; // flushed
    f->pendingOps--;
    switch (ev.kind) {
      case EvKind::FetchDone:
        onFetchDone(*f, ev.slot);
        break;
      case EvKind::DeliverOperand:
        deliverOperand(*f, ev.slot, ev.target, ev.token, now_);
        break;
      case EvKind::Execute:
        // The issue cycle is the cycle the event was scheduled for.
        execute(*f, ev.slot, ev.idx, now_);
        break;
      case EvKind::RouteResult:
        routeResult(*f, ev.slot, ev.idx, ev.token, now_);
        break;
      case EvKind::ResolveStore:
        resolveStore(*f, ev.slot, static_cast<uint8_t>(ev.idx), ev.addr,
                     ev.token, now_, false);
        break;
      case EvKind::FaultDetect:
        onFaultDetected(ev.slot,
                        ev.idx == 0 ? "l1d-parity" : "net-parity");
        break;
      default:
        break;
    }
    f = frames_[ev.slot].get();
    if (f && f->gen == ev.gen)
        checkCompletion(*f, ev.slot);
}

bool
Machine::pauseRequested()
{
    // External stop (signal handler / supervisor deadline): polled on a
    // throttle so the relaxed atomic load stays off the per-event path.
    const std::atomic<int> *stop = cfg_.checkpoint.stop;
    if (stop != nullptr && (++stopFuse_ & 0xFF) == 0 &&
        stop->load(std::memory_order_relaxed) != 0) {
        cutSnapshot();
        res_.interrupted = true;
        return true;
    }
    // Periodic snapshot: cut before popping the first event at or past
    // the target, so now_ still names the last retired cycle.
    if (nextCkpt_ != 0 && events_.front().cycle >= nextCkpt_) {
        cutSnapshot();
        while (nextCkpt_ <= events_.front().cycle)
            nextCkpt_ += cfg_.checkpoint.everyCycles;
    }
    return false;
}

void
Machine::cutSnapshot()
{
    if (!cfg_.checkpoint.sink)
        return;
    serialize::BinWriter w;
    saveState(w);
    cfg_.checkpoint.sink(now_, w.bytes());
}

namespace
{

void
saveToken(serialize::BinWriter &w, const Token &t)
{
    w.u64(t.value);
    w.b(t.null);
    w.b(t.excep);
}

Token
loadToken(serialize::BinReader &r)
{
    Token t;
    t.value = r.u64();
    t.null = r.b();
    t.excep = r.b();
    return t;
}

void
saveOptToken(serialize::BinWriter &w, const std::optional<Token> &t)
{
    w.b(t.has_value());
    if (t.has_value())
        saveToken(w, *t);
}

std::optional<Token>
loadOptToken(serialize::BinReader &r)
{
    if (!r.b())
        return std::nullopt;
    return loadToken(r);
}

} // namespace

void
Machine::saveState(serialize::BinWriter &w) const
{
    w.u64(now_);
    w.u64(seq_);

    // Event queue: the heap array verbatim. Pop order is a strict
    // total order on (cycle, seq), so restoring the array bit-exactly
    // reproduces the schedule regardless of heap layout history.
    w.u64(events_.size());
    for (const Event &ev : events_) {
        w.u64(ev.cycle);
        w.u64(ev.seq);
        w.u64(ev.gen);
        w.u64(ev.addr);
        saveToken(w, ev.token);
        w.u8(static_cast<uint8_t>(ev.target.slot));
        w.u8(ev.target.index);
        w.i32(ev.slot);
        w.i32(ev.idx);
        w.u8(static_cast<uint8_t>(ev.kind));
    }

    // In-flight frames (null slots included: events index by slot).
    w.u64(frames_.size());
    for (const auto &fp : frames_) {
        w.b(fp != nullptr);
        if (!fp)
            continue;
        const Frame &f = *fp;
        w.u64(f.gen);
        w.i32(f.blockIdx);
        w.b(f.fetched);
        w.b(f.conservative);
        w.u64(f.ists.size());
        for (const Frame::IState &st : f.ists) {
            saveOptToken(w, st.left);
            saveOptToken(w, st.right);
            w.b(st.predMatched);
            w.b(st.fired);
        }
        w.u64(f.writeTok.size());
        for (const auto &t : f.writeTok)
            saveOptToken(w, t);
        w.b(f.branchTarget.has_value());
        if (f.branchTarget.has_value())
            w.i32(*f.branchTarget);
        w.u64(f.storeBuf.size());
        for (const auto &[lsid, st] : f.storeBuf) {
            w.u8(lsid);
            w.u64(st.first);
            saveToken(w, st.second);
        }
        w.u32(f.resolvedLsids);
        w.u64(f.doneLoads.size());
        for (const auto &[lsid, addr] : f.doneLoads) {
            w.u8(lsid);
            w.u64(addr);
        }
        w.u64(f.waitingLoads.size());
        for (int idx : f.waitingLoads)
            w.i32(idx);
        w.i32(f.pendingOps);
        w.b(f.complete);
        w.u64(f.completeCycle);
        w.u64(f.lastOutputCycle);
        w.u64(f.fetchStart);
        w.u64(f.fired);
        w.u64(f.movs);
        w.i32(f.predictedNext);
    }

    w.u64(order_.size());
    for (int s : order_)
        w.i32(s);
    w.u64(nextGen_);
    w.u64(tileFree_.size());
    for (uint64_t t : tileFree_)
        w.u64(t);
    w.u64(lastFetchStart_);

    // Multimap iteration is key-sorted with equal keys in insertion
    // order; re-inserting in this order reproduces it exactly.
    w.u64(regWaiters_.size());
    for (const auto &[reg, waiter] : regWaiters_) {
        w.i32(reg);
        w.i32(waiter.slot);
        w.u64(waiter.gen);
        w.i32(waiter.readIdx);
    }

    w.u64(conservativeBlocks_.size());
    for (int b : conservativeBlocks_)
        w.i32(b);

    if (cfg_.perfectPrediction) {
        w.u64(oracle_.size());
        for (int b : oracle_)
            w.i32(b);
        w.u64(oraclePos_);
    }

    w.u64(fetchHoldUntil_);
    w.b(holdScheduled_);
    w.u64(watchdogFires_);
    w.u64(tilesMappedOut_);
    w.u64(progress_);
    w.u64(watchdogLastProgress_);
    w.u64(lastProgressCycle_);
    w.i32(redirect_);

    w.u64(tileIssued_.size());
    for (uint64_t t : tileIssued_)
        w.u64(t);
    for (size_t c = 0; c < size_t(OpClass::NumClasses); ++c)
        w.u64(opClassFired_[c]);
    w.u64(nulledTokens_);
    w.u64(predTokensDelivered_);
    w.u64(predTokensMatched_);
    w.u64(earlyTermBlocks_);
    w.u64(earlyTermOps_);
    w.u64(maxFramesInFlight_);

    // Result scalars and stats accumulated so far.
    w.u64(res_.cycles);
    w.u64(res_.blocksCommitted);
    w.u64(res_.blocksFlushed);
    w.u64(res_.instsCommitted);
    w.u64(res_.movsCommitted);
    w.u64(res_.mispredicts);
    w.u64(res_.loadViolations);
    res_.stats.save(w);

    // Architectural state (committed registers + memory).
    w.u64(state_.regs.size());
    for (uint64_t reg : state_.regs)
        w.u64(reg);
    state_.mem.save(w);

    // Components. The fault engine's presence must match the config
    // fingerprint, which the checkpoint layer enforces.
    net_.save(w);
    l1d_.save(w);
    l1i_.save(w);
    predictor_.save(w);
    recovery_.save(w);
    w.b(faults_ != nullptr);
    if (faults_ != nullptr) {
        faults_->save(w);
        w.u64(tileRemap_.size());
        for (int t : tileRemap_)
            w.i32(t);
    }
}

bool
Machine::loadState(serialize::BinReader &r)
{
    now_ = r.u64();
    seq_ = r.u64();

    size_t nEvents = r.len(31);
    events_.clear();
    events_.reserve(nEvents);
    for (size_t i = 0; i < nEvents && r.ok(); ++i) {
        Event ev;
        ev.cycle = r.u64();
        ev.seq = r.u64();
        ev.gen = r.u64();
        ev.addr = r.u64();
        ev.token = loadToken(r);
        uint8_t slotKind = r.u8();
        if (slotKind > static_cast<uint8_t>(Slot::WriteQ)) {
            r.fail();
            return false;
        }
        ev.target.slot = static_cast<Slot>(slotKind);
        ev.target.index = r.u8();
        ev.slot = r.i32();
        ev.idx = r.i32();
        uint8_t kind = r.u8();
        if (kind > static_cast<uint8_t>(EvKind::WatchdogTick)) {
            r.fail();
            return false;
        }
        ev.kind = static_cast<EvKind>(kind);
        events_.push_back(ev);
    }

    size_t nFrames = r.len(1);
    frames_.clear();
    for (size_t s = 0; s < nFrames && r.ok(); ++s) {
        if (!r.b()) {
            frames_.emplace_back();
            continue;
        }
        auto f = std::make_unique<Frame>();
        f->gen = r.u64();
        f->blockIdx = r.i32();
        if (f->blockIdx < 0 ||
            f->blockIdx >= static_cast<int>(program_.blocks.size())) {
            r.fail();
            return false;
        }
        f->block = &program_.blocks[f->blockIdx];
        f->fetched = r.b();
        f->conservative = r.b();
        size_t nIsts = r.len(4);
        if (nIsts != f->block->insts.size()) {
            r.fail();
            return false;
        }
        f->ists.resize(nIsts);
        for (Frame::IState &st : f->ists) {
            st.left = loadOptToken(r);
            st.right = loadOptToken(r);
            st.predMatched = r.b();
            st.fired = r.b();
        }
        size_t nWrites = r.len(1);
        if (nWrites != f->block->writes.size()) {
            r.fail();
            return false;
        }
        f->writeTok.resize(nWrites);
        for (auto &t : f->writeTok)
            t = loadOptToken(r);
        if (r.b())
            f->branchTarget = r.i32();
        size_t nStores = r.len(19);
        for (size_t i = 0; i < nStores && r.ok(); ++i) {
            uint8_t lsid = r.u8();
            uint64_t addr = r.u64();
            f->storeBuf[lsid] = {addr, loadToken(r)};
        }
        f->resolvedLsids = r.u32();
        size_t nLoads = r.len(9);
        for (size_t i = 0; i < nLoads && r.ok(); ++i) {
            uint8_t lsid = r.u8();
            uint64_t addr = r.u64();
            f->doneLoads.push_back({lsid, addr});
        }
        size_t nWaiting = r.len(4);
        for (size_t i = 0; i < nWaiting && r.ok(); ++i)
            f->waitingLoads.push_back(r.i32());
        f->pendingOps = r.i32();
        f->complete = r.b();
        f->completeCycle = r.u64();
        f->lastOutputCycle = r.u64();
        f->fetchStart = r.u64();
        f->fired = r.u64();
        f->movs = r.u64();
        f->predictedNext = r.i32();
        frames_.push_back(std::move(f));
    }

    size_t nOrder = r.len(4);
    order_.clear();
    for (size_t i = 0; i < nOrder && r.ok(); ++i) {
        int s = r.i32();
        if (s < 0 || s >= static_cast<int>(frames_.size()) ||
            !frames_[s]) {
            r.fail();
            return false;
        }
        order_.push_back(s);
    }
    // Frame-bound events must name a valid slot (the frame itself may
    // be gone — that is what generation checks are for).
    for (const Event &ev : events_) {
        bool frameBound = ev.kind == EvKind::FetchDone ||
                          ev.kind == EvKind::DeliverOperand ||
                          ev.kind == EvKind::Execute ||
                          ev.kind == EvKind::RouteResult ||
                          ev.kind == EvKind::ResolveStore ||
                          ev.kind == EvKind::FaultDetect ||
                          ev.kind == EvKind::CommitCheck;
        if (frameBound &&
            (ev.slot < 0 || ev.slot >= static_cast<int>(frames_.size()))) {
            r.fail();
            return false;
        }
    }
    nextGen_ = r.u64();

    size_t nTiles = r.len(8);
    if (nTiles != tileFree_.size()) {
        r.fail();
        return false;
    }
    for (uint64_t &t : tileFree_)
        t = r.u64();
    lastFetchStart_ = r.u64();

    regWaiters_.clear();
    size_t nWaiters = r.len(16);
    for (size_t i = 0; i < nWaiters && r.ok(); ++i) {
        int reg = r.i32();
        Waiter wtr;
        wtr.slot = r.i32();
        wtr.gen = r.u64();
        wtr.readIdx = r.i32();
        regWaiters_.insert({reg, wtr});
    }

    conservativeBlocks_.clear();
    size_t nCons = r.len(4);
    for (size_t i = 0; i < nCons && r.ok(); ++i)
        conservativeBlocks_.insert(r.i32());

    if (cfg_.perfectPrediction) {
        oracle_.clear();
        size_t nOracle = r.len(4);
        for (size_t i = 0; i < nOracle && r.ok(); ++i)
            oracle_.push_back(r.i32());
        oraclePos_ = r.u64();
    }

    fetchHoldUntil_ = r.u64();
    holdScheduled_ = r.b();
    watchdogFires_ = r.u64();
    tilesMappedOut_ = r.u64();
    progress_ = r.u64();
    watchdogLastProgress_ = r.u64();
    lastProgressCycle_ = r.u64();
    redirect_ = r.i32();

    size_t nIssued = r.len(8);
    if (nIssued != tileIssued_.size()) {
        r.fail();
        return false;
    }
    for (uint64_t &t : tileIssued_)
        t = r.u64();
    for (size_t c = 0; c < size_t(OpClass::NumClasses); ++c)
        opClassFired_[c] = r.u64();
    nulledTokens_ = r.u64();
    predTokensDelivered_ = r.u64();
    predTokensMatched_ = r.u64();
    earlyTermBlocks_ = r.u64();
    earlyTermOps_ = r.u64();
    maxFramesInFlight_ = r.u64();

    res_.cycles = r.u64();
    res_.blocksCommitted = r.u64();
    res_.blocksFlushed = r.u64();
    res_.instsCommitted = r.u64();
    res_.movsCommitted = r.u64();
    res_.mispredicts = r.u64();
    res_.loadViolations = r.u64();
    res_.stats.load(r);

    size_t nRegs = r.len(8);
    if (nRegs != state_.regs.size()) {
        r.fail();
        return false;
    }
    for (uint64_t &reg : state_.regs)
        reg = r.u64();
    state_.mem.load(r);

    net_.load(r);
    l1d_.load(r);
    l1i_.load(r);
    predictor_.load(r);
    recovery_.load(r);
    bool hadFaults = r.b();
    if (hadFaults != (faults_ != nullptr)) {
        r.fail();
        return false;
    }
    if (faults_ != nullptr) {
        faults_->load(r);
        size_t nRemap = r.len(4);
        if (nRemap != tileRemap_.size()) {
            r.fail();
            return false;
        }
        for (int &t : tileRemap_)
            t = r.i32();
    }
    return r.ok();
}

SimResult
Machine::run()
{
    if (!done_ && !resumed_) {
        fetchMore();
        if (watchdogCycles_ != 0)
            armWatchdog();
    }
    while (!events_.empty() && !done_) {
        if (__builtin_expect(ckptArmed_, 0) && pauseRequested())
            break;
        Event ev = popEvent();
        now_ = ev.cycle;
        if (now_ > cfg_.maxCycles) {
            res_.error = "cycle limit exceeded";
            break;
        }
        dispatch(ev);
    }
    res_.cycles = std::max(res_.cycles, now_);
    if (!done_ && !res_.interrupted && res_.error.empty() &&
        !res_.halted) {
        // Event queue drained with frames outstanding: a block deadlock.
        // The structured forensic dump carries the full per-frame state
        // (missing operand slots, unresolved LSIDs, LSQ residue); the
        // one-line summary becomes the error string.
        res_.deadlock = buildForensics("event queue drained");
        res_.error = res_.deadlock.summary();
    }
    res_.stats.set("sim.cycles", res_.cycles);
    res_.stats.set("sim.blocks", res_.blocksCommitted);
    res_.stats.set("sim.insts", res_.instsCommitted);
    res_.stats.set("sim.movs", res_.movsCommitted);
    res_.stats.set("sim.mispredicts", res_.mispredicts);
    res_.stats.set("sim.flushed", res_.blocksFlushed);
    res_.stats.set("sim.violations", res_.loadViolations);
    net_.exportStats(res_.stats);
    l1d_.exportStats(res_.stats, "sim.l1d");
    l1i_.exportStats(res_.stats, "sim.l1i");
    predictor_.exportStats(res_.stats);
    for (int t = 0; t < cfg_.grid.tiles(); ++t)
        res_.stats.set(detail::cat("sim.tile.", t, ".issued"),
                       tileIssued_[t]);
    for (size_t c = 0; c < size_t(OpClass::NumClasses); ++c) {
        res_.stats.set(detail::cat("sim.ops.", kOpClassNames[c]),
                       opClassFired_[c]);
    }
    res_.stats.set("sim.tokens.nulled", nulledTokens_);
    res_.stats.set("sim.tokens.pred_delivered", predTokensDelivered_);
    res_.stats.set("sim.tokens.pred_matched", predTokensMatched_);
    res_.stats.set("sim.early_term.blocks", earlyTermBlocks_);
    res_.stats.set("sim.early_term.insts", earlyTermOps_);
    res_.stats.set("sim.frames.max_in_flight", maxFramesInFlight_);
    // Fault and recovery rollups appear only when the subsystem was
    // armed, so fault-free stats output is byte-identical to a build
    // without it.
    res_.replays = recovery_.replays();
    res_.watchdogFires = watchdogFires_;
    res_.tilesMappedOut = tilesMappedOut_;
    if (faults_ != nullptr) {
        res_.faultsInjected = faults_->injected();
        faults_->exportStats(res_.stats);
    }
    if (faults_ != nullptr || watchdogCycles_ != 0) {
        recovery_.exportStats(res_.stats);
        res_.stats.set("sim.recovery.tiles_mapped_out", tilesMappedOut_);
        res_.stats.set("sim.watchdog.fires", watchdogFires_);
    }
    if (cfg_.trace)
        cfg_.trace->flush();
    return res_;
}

} // namespace

SimResult
simulate(const isa::TProgram &program, isa::ArchState &state,
         const SimConfig &config)
{
    dfp_assert(!program.blocks.empty(), "empty program");
    SimResult res = Machine(program, state, config).run();
    res.traceId = config.traceId;
    return res;
}

} // namespace dfp::sim
