/**
 * @file
 * Automotive-control-flavoured kernels: state machines, table lookups
 * with interpolation, sensor conditioning. These are the branchiest
 * kernels in the suite — short loop bodies dominated by if-ladders,
 * which is where hyperblock formation and the predicate optimizations
 * matter most (the paper's rotate01/tblook01-style winners).
 */

#include "workloads/suite.h"

#include "base/random.h"
#include "isa/alu.h"

namespace dfp::workloads
{

namespace
{

void
fillInts(isa::Memory &mem, uint64_t base, int n, uint64_t seed,
         int64_t lo, int64_t hi)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        mem.store(base + 8 * i,
                  static_cast<uint64_t>(rng.nextRange(lo, hi)));
}

void
fillSortedInts(isa::Memory &mem, uint64_t base, int n, uint64_t seed,
               int64_t step)
{
    Rng rng(seed);
    int64_t v = 0;
    for (int i = 0; i < n; ++i) {
        v += 1 + static_cast<int64_t>(rng.nextBelow(step));
        mem.store(base + 8 * i, static_cast<uint64_t>(v));
    }
}

void
fillDoubles(isa::Memory &mem, uint64_t base, int n, uint64_t seed,
            double lo, double hi)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        double v = lo + (hi - lo) * (rng.nextBelow(1 << 20) /
                                     double(1 << 20));
        mem.store(base + 8 * i, isa::packDouble(v));
    }
}

} // namespace

void
registerControlKernels(std::vector<Workload> &out)
{
    // ------------------------------------------------------------------
    // a2time01: angle-to-time conversion — per-tooth pulse processing
    // with window checks.
    out.push_back({
        "a2time01", "automotive",
        R"(func a2time01 {
block entry:
    i = movi 0
    last = movi 0
    csum = movi 0
    filt = movi 0
    drift = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    pulse = ld pa
    dt = sub pulse, last
    last = mov pulse
    cneg = tlt dt, 0
    br cneg, wrap, chk
block wrap:
    dt = add dt, 4096
    jmp chk
block chk:
    cwin = tgt dt, 512
    br cwin, firing, idle
block firing:
    angle = mul dt, 6
    adj = sra angle, 3
    f0 = mul filt, 3
    f1 = add f0, dt
    filt = sra f1, 2
    spark = xor filt, angle
    gain = shr spark, 2
    csum = add csum, gain
    csum = add csum, adj
    jmp step
block idle:
    drift = add drift, dt
    d0 = sra drift, 4
    csum = add csum, d0
    csum = add csum, 1
    jmp step
block step:
    po = add 196608, off
    st po, csum
    i = add i, 1
    c = tlt i, 220
    br c, loop, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 220, 21, 0, 4095);
        },
        2,
    });

    // ------------------------------------------------------------------
    // canrdr01: CAN message dispatch — id masking plus a 4-way
    // if-ladder over message classes.
    out.push_back({
        "canrdr01", "automotive",
        R"(func canrdr01 {
block entry:
    i = movi 0
    rtr = movi 0
    data = movi 0
    err = movi 0
    rsig = movi 0
    esig = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    msg = ld pa
    id = shr msg, 4
    kind = and msg, 3
    c0 = teq kind, 0
    br c0, isrtr, k1
block isrtr:
    r0 = shl id, 1
    r1 = xor r0, 21845
    rtr = add rtr, 1
    rsig = add rsig, r1
    jmp step
block k1:
    c1 = teq kind, 1
    br c1, isdata, k2
block isdata:
    b0 = and msg, 255
    b1 = shr msg, 8
    mix0 = mul b0, 31
    mix1 = add mix0, b1
    mix2 = xor mix1, id
    data = add data, mix2
    jmp step
block k2:
    c2 = teq kind, 2
    br c2, isover, iserr
block isover:
    data = add data, 2
    jmp step
block iserr:
    e0 = shl err, 1
    e1 = xor e0, id
    esig = and e1, 1023
    err = add err, 1
    jmp step
block step:
    i = add i, 1
    c = tlt i, 300
    br c, loop, done
block done:
    st 196608, rtr
    st 196616, data
    st 196624, err
    st 196632, rsig
    st 196640, esig
    r0 = add rtr, data
    r1 = add r0, err
    r2 = add r1, rsig
    r = add r2, esig
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 300, 22, 0, 65535);
        },
        2,
    });

    // ------------------------------------------------------------------
    // puwmod01: pulse-width modulation — duty-cycle tracking with
    // up/down counter and edge detection.
    out.push_back({
        "puwmod01", "automotive",
        R"(func puwmod01 {
block entry:
    i = movi 0
    level = movi 0
    edges = movi 0
    width = movi 0
    csum = movi 0
    smooth = movi 0
    low0 = movi 17
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    s = ld pa
    duty = and s, 255
    chigh = tgt duty, 127
    br chigh, high, low
block high:
    width = add width, 1
    w0 = mul width, 5
    w1 = sra w0, 2
    smooth = add smooth, w1
    cl = teq level, 0
    br cl, rise, step
block rise:
    edges = add edges, 1
    level = movi 1
    jmp step
block low:
    cf = teq level, 1
    br cf, fall, step
block fall:
    duty8 = shl width, 8
    period = add width, low0
    p0 = xor duty8, period
    p1 = shr p0, 1
    csum = add csum, p1
    csum = add csum, width
    width = movi 0
    level = movi 0
    edges = add edges, 1
    jmp step
block step:
    i = add i, 1
    c = tlt i, 350
    br c, loop, done
block done:
    st 196608, edges
    st 196616, csum
    r = add edges, csum
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 350, 23, 0, 255);
        },
        2,
    });

    // ------------------------------------------------------------------
    // rspeed01: road-speed calculation — delta thresholding with
    // acceleration classification.
    out.push_back({
        "rspeed01", "automotive",
        R"(func rspeed01 {
block entry:
    i = movi 0
    speed = movi 0
    accel = movi 0
    decel = movi 0
    lastd = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    tick = ld pa
    news = div 100000, tick
    d = sub news, speed
    speed = mov news
    cup = tgt d, 3
    br cup, faster, chkdown
block faster:
    a0 = mul d, d
    a1 = shr a0, 3
    a2 = add a1, d
    jerk = sub a2, lastd
    accel = add accel, jerk
    lastd = mov d
    jmp step
block chkdown:
    cdn = tlt d, -3
    br cdn, slower, step
block slower:
    s0 = sub 0, d
    s1 = mul s0, 3
    s2 = sra s1, 1
    decel = add decel, s2
    lastd = mov d
    jmp step
block step:
    po = add 196608, off
    st po, speed
    i = add i, 1
    c = tlt i, 260
    br c, loop, done
block done:
    st 262144, accel
    st 262152, decel
    r = add accel, decel
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 260, 24, 200, 5000);
        },
        2,
    });

    // ------------------------------------------------------------------
    // ttsprk01: tooth-to-spark — a small ignition state machine (4
    // states) advanced by sensor events.
    out.push_back({
        "ttsprk01", "automotive",
        R"(func ttsprk01 {
block entry:
    i = movi 0
    state = movi 0
    sparks = movi 0
    dwell = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    ev = ld pa
    tooth = and ev, 7
    c0 = teq state, 0
    br c0, s_idle, n0
block s_idle:
    cgo = teq tooth, 1
    br cgo, tocharge, step
block tocharge:
    state = movi 1
    jmp step
block n0:
    c1 = teq state, 1
    br c1, s_charge, n1
block s_charge:
    dwell = add dwell, tooth
    cfull = tgt dwell, 40
    br cfull, tofire, step
block tofire:
    state = movi 2
    jmp step
block n1:
    c2 = teq state, 2
    br c2, s_fire, s_cool
block s_fire:
    sparks = add sparks, 1
    dwell = movi 0
    state = movi 3
    jmp step
block s_cool:
    state = movi 0
    jmp step
block step:
    i = add i, 1
    c = tlt i, 320
    br c, loop, done
block done:
    st 196608, sparks
    st 196616, dwell
    r = add sparks, dwell
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 320, 25, 0, 15);
        },
        2,
    });

    // ------------------------------------------------------------------
    // basefp01: basic floating point — conditional rounding-mode paths
    // over a stream of doubles.
    out.push_back({
        "basefp01", "automotive",
        R"(func basefp01 {
block entry:
    i = movi 0
    accbits = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    x = ld pa
    y = fmul x, 1.5
    cbig = fgt y, 100.0
    br cbig, scale, small
block scale:
    y = fmul y, 0.25
    jmp emit
block small:
    y = fadd y, 1.0
    jmp emit
block emit:
    z = ftoi y
    accbits = add accbits, z
    po = add 196608, off
    st po, z
    i = add i, 1
    c = tlt i, 240
    br c, loop, done
block done:
    ret accbits
})",
        [](isa::Memory &mem) {
            fillDoubles(mem, kArrA, 240, 26, 0.0, 200.0);
        },
        2,
    });

    // ------------------------------------------------------------------
    // tblook01: table lookup and interpolate — binary search over a
    // sorted axis then a linear blend; heavily branchy.
    out.push_back({
        "tblook01", "automotive",
        R"(func tblook01 {
block entry:
    q = movi 0
    csum = movi 0
    jmp query
block query:
    qoff = shl q, 3
    pq = add 131072, qoff
    key = ld pq
    lo = movi 0
    hi = movi 63
    jmp search
block search:
    s = add lo, hi
    mid = shr s, 1
    moff = shl mid, 3
    pm = add 65536, moff
    mv = ld pm
    cless = tlt mv, key
    br cless, goright, goleft
block goright:
    lo = add mid, 1
    jmp chk
block goleft:
    hi = mov mid
    jmp chk
block chk:
    cdone = tlt lo, hi
    br cdone, search, interp
block interp:
    loff = shl lo, 3
    pl = add 65536, loff
    base = ld pl
    d = sub key, base
    cpos = tgt d, 0
    br cpos, blend, exact
block blend:
    nb0 = add pl, 8
    nxt = ld nb0
    span = sub nxt, base
    w0 = mul d, span
    w1 = sra w0, 5
    w2 = and w1, 4095
    v = add base, w2
    jmp emit
block exact:
    v = mov base
    jmp emit
block emit:
    csum = add csum, v
    q = add q, 1
    cq = tlt q, 96
    br cq, query, done
block done:
    st 196608, csum
    ret csum
})",
        [](isa::Memory &mem) {
            fillSortedInts(mem, kArrA, 64, 27, 50);
            fillInts(mem, kArrB, 96, 28, 0, 1600);
        },
        1,
    });

    // ------------------------------------------------------------------
    // matrix01: small matrix multiply with a conditional pivot clamp.
    out.push_back({
        "matrix01", "automotive",
        R"(func matrix01 {
block entry:
    i = movi 0
    csum = movi 0
    jmp rows
block rows:
    j = movi 0
    jmp cols
block cols:
    k = movi 0
    acc = movi 0
    jmp dot
block dot:
    r16 = shl i, 4
    ik = add r16, k
    o1 = shl ik, 3
    pa = add 65536, o1
    a = ld pa
    k16 = shl k, 4
    kj = add k16, j
    o2 = shl kj, 3
    pb = add 131072, o2
    b = ld pb
    m = mul a, b
    acc = add acc, m
    k = add k, 1
    ck = tlt k, 16
    br ck, dot, store
block store:
    cneg = tlt acc, 0
    br cneg, clampit, keep
block clampit:
    acc = movi 0
    jmp put
block keep:
    jmp put
block put:
    ij = add r16, j
    o3 = shl ij, 3
    po = add 196608, o3
    st po, acc
    csum = xor csum, acc
    j = add j, 1
    cj = tlt j, 16
    br cj, cols, nextrow
block nextrow:
    i = add i, 1
    ci = tlt i, 16
    br ci, rows, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 256, 29, -40, 40);
            fillInts(mem, kArrB, 256, 30, -40, 40);
        },
        1,
    });
}

} // namespace dfp::workloads
