/**
 * @file
 * Consumer/office-flavoured kernels (bezier, bitmap rotation, dither,
 * IDCT, text parsing), the genalg loop of the paper's Figure 6, and
 * the microkernels used by unit tests and the figure benches.
 */

#include "workloads/suite.h"

#include "base/random.h"
#include "isa/alu.h"

namespace dfp::workloads
{

namespace
{

void
fillInts(isa::Memory &mem, uint64_t base, int n, uint64_t seed,
         int64_t lo, int64_t hi)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        mem.store(base + 8 * i,
                  static_cast<uint64_t>(rng.nextRange(lo, hi)));
}

} // namespace

void
registerMiscKernels(std::vector<Workload> &out)
{
    // ------------------------------------------------------------------
    // bezier01: fixed-point quadratic bezier evaluation along a curve.
    out.push_back({
        "bezier01", "office",
        R"(func bezier01 {
block entry:
    i = movi 0
    csum = movi 0
    p0 = ld 65536
    p1 = ld 65544
    p2 = ld 65552
    jmp loop
block loop:
    t = and i, 255
    u = sub 256, t
    uu = mul u, u
    ut = mul u, t
    tt = mul t, t
    a = mul p0, uu
    b0 = mul p1, ut
    b = shl b0, 1
    c = mul p2, tt
    s0 = add a, b
    s1 = add s0, c
    y = shr s1, 16
    cflat = tlt y, 4
    br cflat, flat, steep
block flat:
    csum = add csum, y
    jmp emit
block steep:
    csum = xor csum, y
    jmp emit
block emit:
    off = shl i, 3
    po = add 196608, off
    st po, y
    i = add i, 1
    cl = tlt i, 256
    br cl, loop, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 3, 41, 1, 4000);
        },
        2,
    });

    // ------------------------------------------------------------------
    // bitmnp01: bit manipulation — per-bit inspection loop with
    // conditional set/clear/toggle actions.
    out.push_back({
        "bitmnp01", "automotive",
        R"(func bitmnp01 {
block entry:
    i = movi 0
    ones = movi 0
    word = movi 0
    hash = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    v = ld pa
    b = movi 0
    jmp bits
block bits:
    sh = shr v, b
    bit = and sh, 1
    cset = teq bit, 1
    br cset, isone, iszero
block isone:
    ones = add ones, 1
    m0 = shl 1, b
    word = xor word, m0
    wgt = mul b, 3
    h0 = add wgt, ones
    h1 = shl h0, 1
    h2 = xor h1, v
    hash = add hash, h2
    jmp nb
block iszero:
    word = shr word, 1
    jmp nb
block nb:
    b = add b, 1
    cb = tlt b, 12
    br cb, bits, nw
block nw:
    po = add 196608, off
    st po, word
    i = add i, 1
    ci = tlt i, 64
    br ci, loop, done
block done:
    st 262144, ones
    st 262152, hash
    r0 = add ones, word
    r = add r0, hash
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 64, 42, 0, 4095);
        },
        2,
    });

    // ------------------------------------------------------------------
    // dither01: error-diffusion halftoning — threshold, clamp, carry
    // the error forward.
    out.push_back({
        "dither01", "office",
        R"(func dither01 {
block entry:
    i = movi 0
    err = movi 0
    csum = movi 0
    carry = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    px = ld pa
    e2 = sra err, 1
    v = add px, e2
    cwhite = tgt v, 127
    br cwhite, white, black
block white:
    outp = movi 255
    e0 = sub v, 255
    e1 = mul e0, 7
    e2 = sra e1, 3
    err = add e2, carry
    carry = sra e0, 3
    jmp emit
block black:
    outp = movi 0
    e3 = mul v, 7
    e4 = sra e3, 3
    err = add e4, carry
    carry = sra v, 3
    jmp emit
block emit:
    po = add 196608, off
    st po, outp
    csum = add csum, outp
    i = add i, 1
    c = tlt i, 400
    br c, loop, done
block done:
    st 262144, err
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 400, 43, 0, 255);
        },
        3,
    });

    // ------------------------------------------------------------------
    // rotate01: bitmap rotation — per-bit gather from a column into a
    // row; the paper's biggest winner (59% combined speedup). Dense
    // short branches inside a doubly-nested loop.
    out.push_back({
        "rotate01", "office",
        R"(func rotate01 {
block entry:
    row = movi 0
    csum = movi 0
    jmp rows
block rows:
    outw = movi 0
    col = movi 0
    run = movi 0
    par = movi 0
    jmp cols
block cols:
    coff = shl col, 3
    ps = add 65536, coff
    srcw = ld ps
    sh = shr srcw, row
    bit = and sh, 1
    cset = teq bit, 1
    br cset, set, skip
block set:
    m = shl 1, col
    outw = or outw, m
    run = add run, 1
    r0 = mul run, run
    r1 = and r0, 255
    par = xor par, r1
    jmp nc
block skip:
    run = movi 0
    par = add par, 1
    jmp nc
block nc:
    col = add col, 1
    cc = tlt col, 32
    br cc, cols, emit
block emit:
    roff = shl row, 3
    po = add 196608, roff
    st po, outw
    csum = xor csum, outw
    csum = add csum, par
    row = add row, 1
    cr = tlt row, 32
    br cr, rows, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 32, 44, 0, (1ll << 32) - 1);
        },
        2,
    });

    // ------------------------------------------------------------------
    // text01: character-class parsing — a 5-way if-ladder per byte
    // (space / digit / upper / lower / other) with per-class actions.
    out.push_back({
        "text01", "office",
        R"(func text01 {
block entry:
    i = movi 0
    words = movi 0
    digits = movi 0
    caps = movi 0
    inword = movi 0
    num = movi 0
    fold = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    ch = ld pa
    cspace = tle ch, 32
    br cspace, space, graph
block space:
    inword = movi 0
    jmp step
block graph:
    cw = teq inword, 0
    br cw, newword, classify
block newword:
    words = add words, 1
    inword = movi 1
    jmp classify
block classify:
    cd0 = tge ch, 48
    br cd0, maybedigit, step
block maybedigit:
    cd1 = tle ch, 57
    br cd1, isdigit, maybeupper
block isdigit:
    dval = sub ch, 48
    n0 = mul num, 10
    num = add n0, dval
    nm = and num, 65535
    num = mov nm
    digits = add digits, 1
    jmp step
block maybeupper:
    cu0 = tge ch, 65
    br cu0, chkupper, step
block chkupper:
    cu1 = tle ch, 90
    br cu1, isupper, step
block isupper:
    lower = add ch, 32
    fh0 = mul fold, 31
    fh1 = add fh0, lower
    fold = and fh1, 1048575
    caps = add caps, 1
    jmp step
block step:
    i = add i, 1
    c = tlt i, 400
    br c, loop, done
block done:
    st 196608, words
    st 196616, digits
    st 196624, caps
    st 196632, num
    st 196640, fold
    r0 = add words, digits
    r1 = add r0, caps
    r2 = add r1, num
    r = add r2, fold
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 400, 45, 32, 122);
        },
        2,
    });

    // ------------------------------------------------------------------
    // idctrn01: 8x8 inverse DCT pass (row transform) with final clamp
    // to pixel range.
    out.push_back({
        "idctrn01", "automotive",
        R"(func idctrn01 {
block entry:
    r = movi 0
    csum = movi 0
    jmp rows
block rows:
    c = movi 0
    jmp cols
block cols:
    acc = movi 0
    k = movi 0
    jmp dot
block dot:
    r8 = shl r, 3
    rk = add r8, k
    o1 = shl rk, 3
    pa = add 65536, o1
    f = ld pa
    k8 = shl k, 3
    kc = add k8, c
    o2 = shl kc, 3
    pb = add 131072, o2
    w = ld pb
    m = mul f, w
    acc = add acc, m
    k = add k, 1
    ck = tlt k, 8
    br ck, dot, clamp
block clamp:
    v = sra acc, 10
    chi = tgt v, 255
    br chi, sathi, chklo
block sathi:
    v = movi 255
    jmp put
block chklo:
    clo = tlt v, 0
    br clo, satlo, put
block satlo:
    v = movi 0
    jmp put
block put:
    rc = add r8, c
    o3 = shl rc, 3
    po = add 196608, o3
    st po, v
    csum = add csum, v
    c = add c, 1
    cc = tlt c, 8
    br cc, cols, nr
block nr:
    r = add r, 1
    cr = tlt r, 8
    br cr, rows, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 64, 46, -512, 511);
            fillInts(mem, kArrB, 64, 47, -64, 64);
        },
        1,
    });
}

const Workload &
genalg()
{
    // The exact loop of the paper's Figure 6 (genalg, MIT-LL): a
    // roulette-wheel selection scan with a short-circuit condition
    // (rx > 0.0 && x < pop-1) and three live-outs (x, rx, p_fitness).
    // Run once per spin over a population of 400 fitness values.
    static const Workload w{
        "genalg", "apps",
        R"(func genalg {
block entry:
    spin = movi 0
    total = movi 0
    jmp spins
block spins:
    soff = shl spin, 3
    psp = add 131072, soff
    rx = ld psp
    x = movi 0
    ptr = movi 65536
    jmp loop
block loop:
    f = ld ptr
    rx = fsub rx, f
    x = add x, 1
    ptr = add ptr, 8
    c1 = fgt rx, 0.0
    br c1, chk2, exit
block chk2:
    c2 = tlt x, 399
    br c2, loop, exit
block exit:
    total = add total, x
    spin = add spin, 1
    cs = tlt spin, 24
    br cs, spins, done
block done:
    st 196608, total
    ret total
})",
        [](isa::Memory &mem) {
            Rng rng(48);
            for (int i = 0; i < 400; ++i) {
                double f = 0.25 + (rng.nextBelow(1000) / 1000.0);
                mem.store(kArrA + 8 * i, isa::packDouble(f));
            }
            for (int s = 0; s < 24; ++s) {
                double rx = 5.0 + (rng.nextBelow(20000) / 100.0);
                mem.store(kArrB + 8 * s, isa::packDouble(rx));
            }
        },
        4,
    };
    return w;
}

const std::vector<Workload> &
microSuite()
{
    static const std::vector<Workload> micro = [] {
        std::vector<Workload> m;

        // The paper's Figure 1/2 if-then-else.
        m.push_back({
            "ifthenelse", "micro",
            R"(func ifthenelse {
block entry:
    i = ld 65536
    j = ld 65544
    a = ld 65552
    c = teq i, j
    br c, then, else
block then:
    b = add a, 2
    jmp join
block else:
    b = add a, 3
    jmp join
block join:
    r = shl b, 1
    st 196608, r
    ret r
})",
            [](isa::Memory &mem) {
                mem.store(kArrA, 7);
                mem.store(kArrA + 8, 7);
                mem.store(kArrA + 16, 21);
            },
            1,
        });

        // Nested diamonds: matches the paper's Figure 4 block shape.
        m.push_back({
            "nesteddiamond", "micro",
            R"(func nesteddiamond {
block entry:
    g1 = ld 65536
    g2 = ld 65544
    c3 = tgt g2, 1
    br c3, big, small
block big:
    t4 = shl g1, 4
    t5a = add t4, 1
    t6a = mov g2
    jmp join
block small:
    t5b = mov g1
    c7 = teq g2, 0
    br c7, zero, nonzero
block zero:
    t6b = movi 1
    jmp smalljoin
block nonzero:
    t6c = mov g2
    jmp smalljoin
block smalljoin:
    t6d = phi [zero: t6b], [nonzero: t6c]
    jmp join
block join:
    t5 = phi [big: t5a], [smalljoin: t5b]
    t6 = phi [big: t6a], [smalljoin: t6d]
    st 196608, t5
    st 196616, t6
    r = add t5, t6
    ret r
})",
            [](isa::Memory &mem) {
                mem.store(kArrA, 13);
                mem.store(kArrA + 8, 0);
            },
            1,
        });

        // Figure 3a: while loop to unroll into a predicate-AND chain.
        m.push_back({
            "whilechain", "micro",
            R"(func whilechain {
block entry:
    ptr = movi 65536
    x = ld 131072
    jmp loop
block loop:
    x = ld ptr
    ptr = add ptr, 8
    c = tgt x, 0
    br c, loop, done
block done:
    st 196608, ptr
    ret ptr
})",
            [](isa::Memory &mem) {
                for (int i = 0; i < 100; ++i)
                    mem.store(kArrA + 8 * i, i < 90 ? 5 : 0);
                mem.store(kArrB, 1);
            },
            3,
        });

        // Stores on one path only: exercises store nullification.
        m.push_back({
            "condstore", "micro",
            R"(func condstore {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    v = ld pa
    c = tgt v, 50
    br c, dostore, skip
block dostore:
    po = add 196608, off
    st po, v
    acc = add acc, v
    jmp step
block skip:
    acc = add acc, 1
    jmp step
block step:
    i = add i, 1
    cl = tlt i, 100
    br cl, loop, done
block done:
    ret acc
})",
            [](isa::Memory &mem) {
                fillInts(mem, kArrA, 100, 49, 0, 100);
            },
            2,
        });

        return m;
    }();
    return micro;
}

} // namespace dfp::workloads
