/**
 * @file
 * DSP/telecom-flavoured kernels: FFT butterflies, FIR/IIR filters,
 * autocorrelation, bit allocation. These mirror the EEMBC telecom and
 * auto-DSP benchmarks' structure: tight arithmetic loops, some with
 * saturation/clamping conditionals that if-conversion turns into
 * predicated code.
 */

#include "workloads/suite.h"

#include "base/random.h"
#include "isa/alu.h"

namespace dfp::workloads
{

namespace
{

void
fillInts(isa::Memory &mem, uint64_t base, int n, uint64_t seed,
         int64_t lo, int64_t hi)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        mem.store(base + 8 * i,
                  static_cast<uint64_t>(rng.nextRange(lo, hi)));
}


} // namespace

void
registerDspKernels(std::vector<Workload> &out)
{
    // ------------------------------------------------------------------
    // aifftr01: decimation-in-time butterfly sweep (one FFT stage per
    // outer iteration). Mostly straight-line math in the inner loop.
    out.push_back({
        "aifftr01", "autodsp",
        R"(func aifftr01 {
block entry:
    span = movi 128
    base = movi 65536
    acc = movi 0
    jmp stage
block stage:
    i = movi 0
    jmp bfly
block bfly:
    off = shl i, 3
    pa = add base, off
    sp8 = shl span, 3
    pb = add pa, sp8
    a = ld pa
    b = ld pb
    tw = and i, 7
    twf = add tw, 1
    bt = mul b, twf
    lo = add a, bt
    hi = sub a, bt
    st pa, lo
    st pb, hi
    i = add i, 1
    c = tlt i, span
    br c, bfly, stagedone
block stagedone:
    acc = add acc, span
    span = shr span, 1
    c2 = tgt span, 0
    br c2, stage, done
block done:
    s = ld 65536
    r = add acc, s
    st 196608, r
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 300, 11, -1000, 1000);
        },
        1,
    });

    // ------------------------------------------------------------------
    // aifirf01: 16-tap FIR filter over a sample buffer.
    out.push_back({
        "aifirf01", "autodsp",
        R"(func aifirf01 {
block entry:
    n = movi 240
    i = movi 0
    csum = movi 0
    jmp outer
block outer:
    acc = movi 0
    t = movi 0
    jmp taps
block taps:
    it = add i, t
    o1 = shl it, 3
    pa = add 65536, o1
    x = ld pa
    o2 = shl t, 3
    pc = add 131072, o2
    h = ld pc
    m = mul x, h
    acc = add acc, m
    t = add t, 1
    ct = tlt t, 16
    br ct, taps, emit
block emit:
    o3 = shl i, 3
    po = add 196608, o3
    st po, acc
    csum = xor csum, acc
    i = add i, 1
    ci = tlt i, n
    br ci, outer, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 260, 12, -128, 127);
            fillInts(mem, kArrB, 16, 13, -16, 16);
        },
        1,
    });

    // ------------------------------------------------------------------
    // aiifft01: inverse-FFT-ish sweep with conjugate (sign flip) on odd
    // indices — a small conditional in a math loop.
    out.push_back({
        "aiifft01", "autodsp",
        R"(func aiifft01 {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    v = ld pa
    odd = and i, 1
    c = teq odd, 1
    br c, flip, keep
block flip:
    w = sub 0, v
    jmp join
block keep:
    w = mov v
    jmp join
block join:
    sc = sra w, 1
    acc = add acc, sc
    st pa, sc
    i = add i, 1
    cl = tlt i, 256
    br cl, loop, done
block done:
    st 196608, acc
    ret acc
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 256, 14, -4000, 4000);
        },
        3,
    });

    // ------------------------------------------------------------------
    // autcor00: autocorrelation — nested accumulate; the paper calls
    // this one out as benefiting from path-sensitive removal.
    out.push_back({
        "autcor00", "telecom",
        R"(func autcor00 {
block entry:
    lag = movi 0
    csum = movi 0
    jmp outer
block outer:
    acc = movi 0
    i = movi 0
    jmp inner
block inner:
    o1 = shl i, 3
    pa = add 65536, o1
    x = ld pa
    il = add i, lag
    o2 = shl il, 3
    pb = add 65536, o2
    y = ld pb
    m = mul x, y
    big = tgt m, 0
    br big, pos, neg
block pos:
    acc = add acc, m
    jmp istep
block neg:
    h = sra m, 2
    acc = add acc, h
    jmp istep
block istep:
    i = add i, 1
    ci = tlt i, 160
    br ci, inner, emit
block emit:
    o3 = shl lag, 3
    po = add 196608, o3
    st po, acc
    csum = add csum, acc
    lag = add lag, 1
    cl = tlt lag, 16
    br cl, outer, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 200, 15, -64, 64);
        },
        2,
    });

    // ------------------------------------------------------------------
    // fft00: radix-2 butterfly pass with bit-reversal-flavoured index
    // swizzle.
    out.push_back({
        "fft00", "telecom",
        R"(func fft00 {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    r0 = and i, 85
    r1 = shl r0, 1
    r2 = and i, 170
    r3 = shr r2, 1
    rev = or r1, r3
    o1 = shl i, 3
    o2 = shl rev, 3
    pa = add 65536, o1
    pb = add 65536, o2
    a = ld pa
    b = ld pb
    s = add a, b
    d = sub a, b
    po = add 196608, o1
    st po, s
    po2 = add 204800, o1
    st po2, d
    acc = xor acc, s
    i = add i, 1
    c = tlt i, 256
    br c, loop, done
block done:
    st 262144, acc
    ret acc
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 256, 16, -30000, 30000);
        },
        2,
    });

    // ------------------------------------------------------------------
    // iirflt01: direct-form-II biquad with saturation — the paper
    // reports 5-9% from path-sensitive removal here.
    out.push_back({
        "iirflt01", "autodsp",
        R"(func iirflt01 {
block entry:
    i = movi 0
    w1 = movi 0
    w2 = movi 0
    csum = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    x = ld pa
    a1w = mul w1, 3
    a2w = mul w2, -2
    t0 = add a1w, a2w
    t1 = sra t0, 2
    w0 = add x, t1
    hi = tgt w0, 32767
    br hi, sathi, chklo
block sathi:
    w0 = movi 32767
    jmp emit
block chklo:
    lo = tlt w0, -32768
    br lo, satlo, emit
block satlo:
    w0 = movi -32768
    jmp emit
block emit:
    b1w = mul w1, 2
    y0 = add w0, b1w
    y1 = add y0, w2
    po = add 196608, off
    st po, y1
    csum = add csum, y1
    w2 = mov w1
    w1 = mov w0
    i = add i, 1
    c = tlt i, 300
    br c, loop, done
block done:
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 300, 17, -20000, 20000);
        },
        2,
    });

    // ------------------------------------------------------------------
    // fbital00: bit-allocation waterfilling — compare-and-adjust loop
    // with two conditional updates per step.
    out.push_back({
        "fbital00", "telecom",
        R"(func fbital00 {
block entry:
    pool = movi 512
    i = movi 0
    csum = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    snr = ld pa
    bits = sra snr, 4
    cmax = tgt bits, 7
    br cmax, clamp, chkpool
block clamp:
    bits = movi 7
    jmp chkpool
block chkpool:
    cpool = tlt pool, bits
    br cpool, drain, take
block drain:
    bits = mov pool
    jmp take
block take:
    pool = sub pool, bits
    po = add 196608, off
    st po, bits
    csum = add csum, bits
    i = add i, 1
    c = tlt i, 256
    br c, loop, done
block done:
    st 262144, pool
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 256, 18, 0, 160);
        },
        2,
    });
}

} // namespace dfp::workloads
