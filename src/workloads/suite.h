/**
 * @file
 * The dfp workload suite: 28 kernels named after — and shaped like —
 * the EEMBC 2.0 benchmarks the paper evaluates (§6, Figure 7), plus
 * the genalg loop of Figure 6 and a few microkernels. EEMBC is a
 * licensed suite, so each kernel is a synthetic reconstruction of that
 * benchmark's control-flow/compute character (see DESIGN.md): the
 * paper's results are *relative* comparisons of compiler
 * configurations, which depend on the mix of branchy control
 * structures, not on the exact licensed source.
 *
 * Every kernel is written in the dfp textual IR, carries a
 * deterministic memory-image initializer, and is validated against the
 * golden IR interpreter.
 */

#ifndef DFP_WORKLOADS_SUITE_H
#define DFP_WORKLOADS_SUITE_H

#include <functional>
#include <string>
#include <vector>

#include "isa/memory.h"

namespace dfp::workloads
{

/** Conventional data addresses used by the kernels. */
constexpr uint64_t kArrA = 0x10000;   //!< first input array
constexpr uint64_t kArrB = 0x20000;   //!< second input array
constexpr uint64_t kArrC = 0x28000;   //!< third input array
constexpr uint64_t kOut = 0x30000;    //!< output array
constexpr uint64_t kScratch = 0x40000;

/** One benchmark kernel. */
struct Workload
{
    std::string name;
    std::string category;   //!< automotive / telecom / consumer / ...
    std::string source;     //!< dfp IR text
    std::function<void(isa::Memory &)> init; //!< builds the memory image
    int unrollFactor = 1;   //!< suggested loop unrolling for hyperblocks
};

/** The 28 EEMBC-named kernels, in the paper's Figure 7 order. */
const std::vector<Workload> &eembcSuite();

/** Look up one kernel by name (nullptr if missing). */
const Workload *findWorkload(const std::string &name);

/** The genalg loop of Figure 6. */
const Workload &genalg();

/** Small microkernels used by unit tests and the figure benches. */
const std::vector<Workload> &microSuite();

/** Golden execution of a workload (IR interpreter). */
struct Golden
{
    uint64_t retValue = 0;
    uint64_t memChecksum = 0;
    uint64_t dynInstrs = 0;
};
Golden runGolden(const Workload &w);

/** Fresh memory image for a workload. */
isa::Memory initialMemory(const Workload &w);

// Kernel group registration (internal; one per source file).
void registerControlKernels(std::vector<Workload> &out);
void registerDspKernels(std::vector<Workload> &out);
void registerNetKernels(std::vector<Workload> &out);
void registerMiscKernels(std::vector<Workload> &out);

} // namespace dfp::workloads

#endif // DFP_WORKLOADS_SUITE_H
