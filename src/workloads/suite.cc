#include "workloads/suite.h"

#include <algorithm>
#include <map>

#include "base/logging.h"
#include "ir/interp.h"
#include "ir/parser.h"

namespace dfp::workloads
{

namespace
{

/** Figure 7 presentation order. */
const char *kFig7Order[] = {
    "a2time01", "aifftr01", "aifirf01", "aiifft01", "autcor00",
    "basefp01", "bezier01", "bitmnp01", "cacheb01", "canrdr01",
    "conven00", "dither01", "fbital00", "fft00",    "idctrn01",
    "iirflt01", "matrix01", "ospf",     "pktflow",  "pntrch01",
    "puwmod01", "rotate01", "routelookup", "rspeed01", "tblook01",
    "text01",   "ttsprk01", "viterb00",
};

std::vector<Workload>
buildSuite()
{
    std::vector<Workload> all;
    registerControlKernels(all);
    registerDspKernels(all);
    registerNetKernels(all);
    registerMiscKernels(all);

    std::map<std::string, Workload> byName;
    for (Workload &w : all)
        byName[w.name] = std::move(w);

    std::vector<Workload> ordered;
    for (const char *name : kFig7Order) {
        auto it = byName.find(name);
        dfp_assert(it != byName.end(), "missing kernel '", name, "'");
        ordered.push_back(std::move(it->second));
    }
    return ordered;
}

} // namespace

const std::vector<Workload> &
eembcSuite()
{
    static const std::vector<Workload> suite = buildSuite();
    return suite;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : eembcSuite()) {
        if (w.name == name)
            return &w;
    }
    if (genalg().name == name)
        return &genalg();
    for (const Workload &w : microSuite()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

isa::Memory
initialMemory(const Workload &w)
{
    isa::Memory mem;
    if (w.init)
        w.init(mem);
    return mem;
}

Golden
runGolden(const Workload &w)
{
    isa::Memory mem = initialMemory(w);
    ir::Function fn = ir::parseFunction(w.source);
    ir::InterpResult r = ir::interpret(fn, mem);
    if (!r.ok)
        dfp_fatal("golden run of '", w.name, "' failed: ", r.error);
    Golden g;
    g.retValue = r.retValue;
    g.memChecksum = mem.checksum();
    g.dynInstrs = r.dynInstrs;
    return g;
}

} // namespace dfp::workloads
