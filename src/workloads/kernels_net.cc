/**
 * @file
 * Networking-flavoured kernels: shortest-path relaxation, packet
 * classification, route lookup, pointer chasing, a convolutional
 * encoder and a Viterbi add-compare-select — data-dependent branches
 * and irregular memory access, the hard cases for branch predictors
 * that predication is meant to absorb.
 */

#include "workloads/suite.h"

#include "base/random.h"

namespace dfp::workloads
{

namespace
{

void
fillInts(isa::Memory &mem, uint64_t base, int n, uint64_t seed,
         int64_t lo, int64_t hi)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i)
        mem.store(base + 8 * i,
                  static_cast<uint64_t>(rng.nextRange(lo, hi)));
}

} // namespace

void
registerNetKernels(std::vector<Workload> &out)
{
    // ------------------------------------------------------------------
    // ospf: Bellman-Ford-style edge relaxation over a random graph.
    // dist[] at kOut; edges as (src, dst, weight) triples at kArrA.
    out.push_back({
        "ospf", "networking",
        R"(func ospf {
block entry:
    round = movi 0
    relax = movi 0
    jmp pass
block pass:
    e = movi 0
    jmp edge
block edge:
    eoff = mul e, 24
    pe = add 65536, eoff
    src = ld pe
    dst = ld pe, 8
    w = ld pe, 16
    so = shl src, 3
    ps = add 196608, so
    ds = ld ps
    cand = add ds, w
    do2 = shl dst, 3
    pd = add 196608, do2
    dd = ld pd
    cbetter = tlt cand, dd
    br cbetter, update, step
block update:
    st pd, cand
    relax = add relax, 1
    jmp step
block step:
    e = add e, 1
    ce = tlt e, 64
    br ce, edge, endpass
block endpass:
    round = add round, 1
    cr = tlt round, 6
    br cr, pass, done
block done:
    st 262144, relax
    ret relax
})",
        [](isa::Memory &mem) {
            Rng rng(31);
            for (int e = 0; e < 64; ++e) {
                mem.store(kArrA + 24 * e, rng.nextBelow(32));
                mem.store(kArrA + 24 * e + 8, rng.nextBelow(32));
                mem.store(kArrA + 24 * e + 16,
                          1 + rng.nextBelow(100));
            }
            for (int v = 0; v < 32; ++v)
                mem.store(kOut + 8 * v, v == 0 ? 0 : 100000);
        },
        1,
    });

    // ------------------------------------------------------------------
    // pktflow: packet header classification — validity checks, TTL
    // decrement, and per-class counters; an if-ladder per packet.
    out.push_back({
        "pktflow", "networking",
        R"(func pktflow {
block entry:
    i = movi 0
    fwd = movi 0
    dropped = movi 0
    local = movi 0
    lsig = movi 0
    cksig = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    hdr = ld pa
    ttl = and hdr, 255
    cttl = tle ttl, 1
    br cttl, drop, alive
block drop:
    dropped = add dropped, 1
    jmp step
block alive:
    dst = shr hdr, 8
    net = and dst, 15
    cloc = teq net, 7
    br cloc, deliver, route
block deliver:
    h0 = mul dst, 2654435
    h1 = shr h0, 8
    h2 = xor h1, ttl
    port = and h2, 15
    lsig = add lsig, port
    local = add local, 1
    jmp step
block route:
    nttl = sub ttl, 1
    ndst = shl dst, 8
    nhdr = or ndst, nttl
    ck0 = shr nhdr, 4
    ck1 = xor ck0, nhdr
    ck2 = and ck1, 255
    cksig = add cksig, ck2
    st pa, nhdr
    fwd = add fwd, 1
    jmp step
block step:
    i = add i, 1
    c = tlt i, 400
    br c, loop, done
block done:
    st 196608, fwd
    st 196616, dropped
    st 196624, local
    st 196632, lsig
    st 196640, cksig
    r0 = add fwd, dropped
    r1 = add r0, local
    r2 = add r1, lsig
    r = add r2, cksig
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 400, 32, 0, (1 << 20));
        },
        2,
    });

    // ------------------------------------------------------------------
    // routelookup: 4-level radix-trie walk per destination address.
    // Node table at kArrA: four children per node.
    out.push_back({
        "routelookup", "networking",
        R"(func routelookup {
block entry:
    q = movi 0
    csum = movi 0
    jmp query
block query:
    qoff = shl q, 3
    pq = add 131072, qoff
    addr = ld pq
    node = movi 0
    level = movi 0
    jmp walk
block walk:
    sh = shl level, 1
    nib0 = shr addr, sh
    nib = and nib0, 3
    slot0 = shl node, 2
    slot = add slot0, nib
    soff = shl slot, 3
    pn = add 65536, soff
    next = ld pn
    cleaf = teq next, 0
    br cleaf, leaf, descend
block descend:
    node = mov next
    level = add level, 1
    cmax = tlt level, 4
    br cmax, walk, leaf
block leaf:
    csum = add csum, node
    q = add q, 1
    cq = tlt q, 200
    br cq, query, done
block done:
    st 196608, csum
    ret csum
})",
        [](isa::Memory &mem) {
            Rng rng(33);
            // 64 trie nodes with sparse children (0 = leaf).
            for (int n = 0; n < 64; ++n) {
                for (int k = 0; k < 4; ++k) {
                    uint64_t child =
                        rng.nextBelow(3) ? rng.nextBelow(64) : 0;
                    mem.store(kArrA + 8 * (4 * n + k), child);
                }
            }
            fillInts(mem, kArrB, 200, 34, 0, 255);
        },
        1,
    });

    // ------------------------------------------------------------------
    // pntrch01: pointer chasing through a linked list with a key match
    // test at every hop.
    out.push_back({
        "pntrch01", "networking",
        R"(func pntrch01 {
block entry:
    q = movi 0
    found = movi 0
    hops = movi 0
    jmp query
block query:
    qoff = shl q, 3
    pq = add 131072, qoff
    key = ld pq
    cur = ld 262144
    jmp chase
block chase:
    v = ld cur
    next = ld cur, 8
    hops = add hops, 1
    chit = teq v, key
    br chit, hit, miss
block hit:
    found = add found, 1
    jmp step
block miss:
    cnil = teq next, 0
    br cnil, step, follow
block follow:
    cur = mov next
    jmp chase
block step:
    q = add q, 1
    cq = tlt q, 40
    br cq, query, done
block done:
    st 196608, found
    st 196616, hops
    r = add found, hops
    ret r
})",
        [](isa::Memory &mem) {
            Rng rng(35);
            // 64-node list at kArrA: node = {value, next-ptr}.
            constexpr int kNodes = 64;
            for (int n = 0; n < kNodes; ++n) {
                uint64_t addr = kArrA + 16 * n;
                mem.store(addr, rng.nextBelow(50));
                mem.store(addr + 8,
                          n + 1 < kNodes ? kArrA + 16 * (n + 1) : 0);
            }
            mem.store(kScratch, kArrA); // list head
            fillInts(mem, kArrB, 40, 36, 0, 60);
        },
        1,
    });

    // ------------------------------------------------------------------
    // cacheb01: strided sweeps with conditional dirtying — exercises
    // the L1-D banks and store nullification paths.
    out.push_back({
        "cacheb01", "networking",
        R"(func cacheb01 {
block entry:
    pass = movi 0
    csum = movi 0
    sig = movi 0
    jmp sweep
block sweep:
    i = movi 0
    stride = add pass, 1
    jmp touch
block touch:
    idx = mul i, stride
    wrap = and idx, 511
    off = shl wrap, 3
    pa = add 65536, off
    v = ld pa
    codd = and v, 1
    cw = teq codd, 1
    br cw, dirty, clean
block dirty:
    nv0 = mul v, 3
    nv1 = shr nv0, 2
    nv = add nv1, pass
    tag = xor nv, idx
    sig = add sig, tag
    st pa, nv
    csum = add csum, 1
    jmp next
block clean:
    csum = xor csum, v
    jmp next
block next:
    i = add i, 1
    ci = tlt i, 128
    br ci, touch, endsweep
block endsweep:
    pass = add pass, 1
    cp = tlt pass, 4
    br cp, sweep, done
block done:
    st 196608, csum
    st 196616, sig
    r = add csum, sig
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 512, 37, 0, 100000);
        },
        2,
    });

    // ------------------------------------------------------------------
    // conven00: convolutional encoder — shift register, XOR parity
    // taps, two output streams. The paper highlights this kernel for
    // path-sensitive removal.
    out.push_back({
        "conven00", "telecom",
        R"(func conven00 {
block entry:
    i = movi 0
    sr = movi 0
    outw = movi 0
    csum = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 65536, off
    bit = ld pa
    sr0 = shl sr, 1
    sr = or sr0, bit
    sr = and sr, 63
    g0a = shr sr, 5
    g0b = shr sr, 2
    g0c = xor g0a, g0b
    g0 = and g0c, 1
    g1a = shr sr, 4
    g1b = xor g1a, sr
    g1 = and g1b, 1
    pair0 = shl g0, 1
    pair = or pair0, g1
    cpunct = and i, 3
    cskip = teq cpunct, 3
    br cskip, puncture, emit
block puncture:
    csum = add csum, 1
    jmp step
block emit:
    ow0 = shl outw, 2
    outw = or ow0, pair
    csum = xor csum, outw
    jmp step
block step:
    i = add i, 1
    c = tlt i, 384
    br c, loop, done
block done:
    st 196608, outw
    st 196616, csum
    r = add outw, csum
    ret r
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 384, 38, 0, 1);
        },
        3,
    });

    // ------------------------------------------------------------------
    // viterb00: Viterbi add-compare-select over a 8-state trellis —
    // min-selects per state per step.
    out.push_back({
        "viterb00", "telecom",
        R"(func viterb00 {
block entry:
    t = movi 0
    csum = movi 0
    jmp step
block step:
    s = movi 0
    jmp acs
block acs:
    p0 = shr s, 0
    p0 = and s, 7
    e0 = shl p0, 3
    pm0 = add 196608, e0
    m0 = ld pm0
    p1 = xor p0, 4
    e1 = shl p1, 3
    pm1 = add 196608, e1
    m1 = ld pm1
    toff = shl t, 3
    pb = add 65536, toff
    sym = ld pb
    bm = xor sym, s
    bm = and bm, 3
    c0 = add m0, bm
    c1 = add m1, bm
    cless = tlt c0, c1
    br cless, pick0, pick1
block pick0:
    best = mov c0
    jmp write
block pick1:
    best = mov c1
    jmp write
block write:
    so = shl s, 3
    pn = add 204800, so
    st pn, best
    csum = add csum, best
    s = add s, 1
    cs = tlt s, 8
    br cs, acs, swap
block swap:
    k = movi 0
    jmp copy
block copy:
    ko = shl k, 3
    pfrom = add 204800, ko
    v = ld pfrom
    pto = add 196608, ko
    st pto, v
    k = add k, 1
    ck = tlt k, 8
    br ck, copy, endstep
block endstep:
    t = add t, 1
    ct = tlt t, 64
    br ct, step, done
block done:
    st 262144, csum
    ret csum
})",
        [](isa::Memory &mem) {
            fillInts(mem, kArrA, 64, 39, 0, 3);
            for (int s = 0; s < 8; ++s)
                mem.store(kOut + 8 * s, s == 0 ? 0 : 10);
        },
        1,
    });
}

} // namespace dfp::workloads
