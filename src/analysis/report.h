/**
 * @file
 * The dfp-analyze report: per-block critical path, predicate
 * structure and resource pressure rolled up over a compiled program,
 * plus the DFPA placement-quality diagnostics (verify/diag.h 4xx
 * range) flagging blocks whose numbers look pathological:
 *
 *  - DFPA401 hop inflation: network hops on the limiting chain
 *    dominate the critical path, i.e. placement (not computation) sets
 *    the block's speed;
 *  - DFPA402 deep predicate fanout: a test's mov relay tree is deeper
 *    than the minimal tree for its fanout (§5.1 headroom left on the
 *    table);
 *  - DFPA403 link-dominated bound: one operand-network link must carry
 *    more messages than the critical path has cycles, so serialization
 *    on that link, not dataflow, bounds the block;
 *  - DFPA404 merge lengthened path: a block compiled under merging has
 *    a longer critical path than the same block without it (emitted by
 *    compareMergeBaseline, which dfp-analyze drives with a second
 *    compile).
 *
 * Thresholds live in AnalyzeOptions; the defaults are calibrated so
 * the stock workload suite under every §6 configuration is clean, and
 * CI keeps it that way (`dfp-analyze --all-workloads -c all --strict`).
 */

#ifndef DFP_ANALYSIS_REPORT_H
#define DFP_ANALYSIS_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "analysis/critical_path.h"
#include "analysis/predicates.h"
#include "analysis/pressure.h"
#include "compiler/pipeline.h"
#include "verify/diag.h"

namespace dfp::analysis
{

/** Analyzer knobs. */
struct AnalyzeOptions
{
    CostModel cm;
    verify::VerifyOptions verify; //!< path-enumeration limits

    bool enumeratePaths = true; //!< per-path predicate profile
    bool warnings = true;       //!< emit DFPA diagnostics

    // -- DFPA thresholds ---------------------------------------------
    /** DFPA401: hop cycles on the limiting chain must be at least this
     *  many cycles AND at least this fraction of the critical path. */
    uint64_t hopInflationMinCycles = 24;
    double hopInflationRatio = 0.6;

    /** DFPA402: relay depth may exceed the minimal tree by this much. */
    int fanoutDepthSlack = 1;

    /** DFPA403: busiest-link messages must exceed ratio * critPath and
     *  this floor. */
    double linkDominanceRatio = 1.0;
    uint64_t linkDominanceMinMessages = 24;

    /** DFPA404: merged critical path must exceed the unmerged one by
     *  this factor and this many cycles. */
    double mergeRegressRatio = 1.1;
    uint64_t mergeRegressMinCycles = 8;
};

/** Everything the analyzer knows about one block. */
struct BlockReport
{
    std::string label;
    int insts = 0;
    int sizeBytes = 0;
    BlockCost cost;
    PredicateReport pred;
    PressureReport pressure;
};

/** Program-level rollup. */
struct ProgramReport
{
    std::vector<BlockReport> blocks;

    uint64_t maxCritPath = 0;
    std::string maxCritBlock;
    uint64_t totalCritPath = 0; //!< sum over blocks (serial floor)

    int archRegs = 0; //!< architectural registers the program uses
    int maxLiveRegs = 0;
    std::vector<compiler::BlockPressure> regPressure;

    verify::DiagList diags; //!< DFPA findings (warnings/notes)
};

/** Analyze a compiled program. */
ProgramReport analyzeProgram(const compiler::CompileResult &res,
                             const AnalyzeOptions &opts = {});

/**
 * DFPA404: compare a merge-configuration compile against the same
 * source compiled without merging; blocks (matched by label) whose
 * critical path regressed past the thresholds are flagged into
 * @p merged.diags.
 */
void compareMergeBaseline(ProgramReport &merged,
                          const ProgramReport &baseline,
                          const AnalyzeOptions &opts);

/** Human-readable report; @p perBlock adds one section per block. */
void renderText(const ProgramReport &rep, std::ostream &os,
                bool perBlock);

/** Machine-readable report (one JSON object). */
void renderJson(const ProgramReport &rep, std::ostream &os);

} // namespace dfp::analysis

#endif // DFP_ANALYSIS_REPORT_H
