#include "analysis/predict.h"

#include <algorithm>

#include "analysis/critical_path.h"
#include "base/logging.h"
#include "sim/timing_model.h"

namespace dfp::analysis
{

Prediction
predictCycles(const isa::TProgram &program, isa::ArchState &state,
              const CostModel &cm, uint64_t maxBlocks)
{
    Prediction out;
    if (program.blocks.empty()) {
        out.error = "empty program";
        return out;
    }

    // Per-block static facts, computed once per distinct block.
    size_t nblocks = program.blocks.size();
    std::vector<uint64_t> crit(nblocks, kNever);
    std::vector<uint64_t> occ(nblocks);
    auto critOf = [&](int idx) {
        if (crit[idx] == kNever) {
            BlockCost bc = blockCost(program.blocks[idx], cm);
            crit[idx] = bc.valid ? bc.critPath : 0;
            occ[idx] = cm.fetchOccupancy(program.blocks[idx]);
        }
        return crit[idx];
    };

    // Functional committed-block trace.
    std::vector<int32_t> trace;
    int32_t cur = 0;
    while (out.blocks < maxBlocks) {
        if (cur < 0 || cur >= static_cast<int32_t>(nblocks)) {
            out.error = detail::cat("branch to invalid block ", cur);
            return out;
        }
        isa::BlockOutcome bo =
            isa::executeBlock(program.blocks[cur], state);
        if (!bo.ok) {
            out.error = bo.error;
            return out;
        }
        trace.push_back(cur);
        ++out.blocks;
        if (bo.nextBlock == isa::kHaltTarget) {
            out.ok = true;
            break;
        }
        cur = bo.nextBlock;
    }
    if (!out.ok) {
        out.error = detail::cat("no halt within ", maxBlocks,
                                " blocks");
        return out;
    }

    // The entry block's first fetch misses a cold I-cache — unless the
    // entry block can be squashed and refetched warm, which (faults and
    // watchdog aside, see CostModel::coldEntryFetch) only an intra-
    // block load-store dependence violation can cause. Claim the miss
    // only when the entry block provably cannot raise one.
    const isa::TBlock &entry = program.blocks[trace.front()];
    bool entryHasLoad = false;
    for (const isa::TInst &inst : entry.insts)
        entryHasLoad |= inst.op == isa::Op::Ld;
    bool coldMiss = cm.coldEntryFetch &&
                    (!entryHasLoad || entry.storeMask == 0);

    uint64_t n = static_cast<uint64_t>(trace.size());
    uint64_t chain = 0, best = 0;
    for (uint64_t k = 0; k < n; ++k) {
        int idx = trace[k];
        uint64_t critRel = critOf(idx);
        chain += occ[idx] + static_cast<uint64_t>(cm.predictLatency);
        uint64_t l1i = (k == 0 && coldMiss)
                           ? static_cast<uint64_t>(cm.missLatency)
                           : cm.l1iFloor();
        uint64_t commitLB = chain +
                            static_cast<uint64_t>(cm.fetchLatency) +
                            l1i + critRel +
                            sim::timing::kCommitCycles + (n - 1 - k);
        if (commitLB > best) {
            best = commitLB;
            out.limitingPosition = k;
            out.limitingBlock = idx;
        }
    }
    out.predictedCycles = best;
    return out;
}

} // namespace dfp::analysis
