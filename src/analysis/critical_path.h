/**
 * @file
 * Static dataflow critical path of one scheduled TBlock: a provable
 * lower bound on the cycles between the block's fetch completing and
 * its last required output (register writes, masked store LSIDs, the
 * branch) resolving, priced with the simulator's own latencies
 * (sim/timing_model.h via analysis/cost_model.h).
 *
 * The recursion is path-INsensitive and therefore sound: an
 * instruction's earliest issue takes the max over its *required*
 * operand slots of the min over each slot's *static* producers. Every
 * dynamic schedule — whichever predicate path executes, wherever
 * contention stalls messages — can only be later than this bound,
 * because contention, L1 misses, issue-port conflicts, deferred loads
 * and refetches all strictly delay events, and the min/max structure
 * under-approximates every firing the machine could choose.
 *
 * Output rules mirror sim/machine.cc:
 *  - a write slot resolves when ANY producer's token arrives at its
 *    row-0 parking tile (min over producers; read passthroughs skip
 *    the target register's RT link; a switch parks on its own tile);
 *  - a masked store LSID resolves no earlier than the first token
 *    (real or null) reaching any of its St instructions' data slots
 *    (the null fast path resolves at arrival, a firing store later);
 *  - the branch resolves when the earliest Bro could complete.
 */

#ifndef DFP_ANALYSIS_CRITICAL_PATH_H
#define DFP_ANALYSIS_CRITICAL_PATH_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "isa/tblock.h"

namespace dfp::analysis
{

/** Sentinel for "cannot happen" (statically unreachable firing). */
constexpr uint64_t kNever = ~uint64_t{0};

/** Static cost of one block. */
struct BlockCost
{
    bool valid = false; //!< false: block failed structural validation

    /** Cycles from fetch-done to the last required output (rel.). */
    uint64_t critPath = 0;

    /** The same bound with every network distance priced at zero —
     *  the placement-independent floor. critPath - zeroHopCritPath is
     *  the latency the spatial schedule itself adds. */
    uint64_t zeroHopCritPath = 0;

    /** Decomposition of critPath along the limiting chain. */
    uint64_t hopCycles = 0;     //!< operand-network link traversals
    uint64_t latencyCycles = 0; //!< ALU/cache/issue/commit latencies

    /** Which output the bound is limited by: "write g<n>",
     *  "store lsid <n>", or "branch". */
    std::string limitingOutput;

    /** Instruction indices along the limiting chain, producer first.
     *  A chain starting at a read-queue passthrough may be empty. */
    std::vector<int> critChain;

    /** Per-instruction earliest issue cycle (rel. fetch-done);
     *  kNever = the instruction can never fire. */
    std::vector<uint64_t> issueTime;

    /** Per-instruction earliest predicate arrival (rel. fetch-done);
     *  0 for unpredicated instructions, kNever = unreachable. */
    std::vector<uint64_t> predArrival;
};

/** Price @p block under @p cm. */
BlockCost blockCost(const isa::TBlock &block, const CostModel &cm);

} // namespace dfp::analysis

#endif // DFP_ANALYSIS_CRITICAL_PATH_H
