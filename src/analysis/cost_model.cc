#include "analysis/cost_model.h"

namespace dfp::analysis
{

CostModel
CostModel::fromSim(const sim::SimConfig &cfg)
{
    CostModel cm;
    cm.grid = cfg.grid;
    cm.fetchLatency = cfg.fetchLatency;
    cm.fetchWidth = cfg.fetchWidth;
    cm.predictLatency = cfg.predictLatency;
    cm.l1dHitLatency = cfg.l1dHitLatency;
    cm.l1iHitLatency = cfg.l1iHitLatency;
    cm.missLatency = cfg.missLatency;
    cm.lineBytes = cfg.lineBytes;
    // Fault injection and the watchdog can squash the entry block and
    // refetch it into a warm I-cache; only the fault-free machine
    // guarantees the cold first-fetch miss.
    cm.coldEntryFetch =
        !cfg.faults.enabled() && cfg.watchdogCycles == 0;
    return cm;
}

} // namespace dfp::analysis
