/**
 * @file
 * Whole-workload cycle prediction: a provable lower bound on
 * sim::simulate()'s cycle count for a program, built from the
 * functional executor's committed-block trace and each block's static
 * critical path. `dfp-analyze --validate` checks the bound against the
 * real simulator on every (workload, configuration) pair; a violation
 * means the analyzer's cost model and the machine have diverged.
 *
 * The bound: the machine fetches blocks through one fetch pipe whose
 * start-to-start spacing is at least the block's pipe occupancy plus
 * the predictor latency (sim/machine.cc fetchMore keeps lastFetchStart
 * monotone over ALL fetches, wrong-path ones included, and the
 * committed blocks are an ordered subsequence of the fetches). Block k
 * of the N committed blocks therefore finishes fetching no earlier
 * than
 *
 *     sum_{i<=k} (occupancy_i + predictLatency) + fetchLatency + L1I_k
 *
 * where L1I_k is the I-cache floor (the entry block's first fetch
 * deterministically misses a cold cache when CostModel::coldEntryFetch
 * holds). Its outputs then need at least its static critical path, its
 * commit another cycle, and the N-k commits after it one strictly
 * increasing cycle each. The final cycle count is at least the max of
 * this over every trace position k.
 */

#ifndef DFP_ANALYSIS_PREDICT_H
#define DFP_ANALYSIS_PREDICT_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "isa/exec.h"
#include "isa/tblock.h"

namespace dfp::analysis
{

/** Workload-level prediction. */
struct Prediction
{
    bool ok = false; //!< functional execution reached a clean halt

    /** Lower bound on sim::simulate() cycles for the same initial
     *  architectural state. Meaningless unless ok. */
    uint64_t predictedCycles = 0;

    /** Committed (functional) dynamic block count. */
    uint64_t blocks = 0;

    /** Trace position whose bound term was the max ("the block the
     *  prediction pivots on") and its block index. */
    uint64_t limitingPosition = 0;
    int limitingBlock = 0;

    std::string error; //!< non-empty when !ok
};

/**
 * Predict @p program 's simulated cycles from @p state (consumed: the
 * functional executor runs in it). Pass the same initial state the
 * simulator will get. @p maxBlocks bounds the functional run.
 */
Prediction predictCycles(const isa::TProgram &program,
                         isa::ArchState &state, const CostModel &cm,
                         uint64_t maxBlocks = 1u << 22);

} // namespace dfp::analysis

#endif // DFP_ANALYSIS_PREDICT_H
