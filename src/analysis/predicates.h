/**
 * @file
 * Static predicate-structure analysis of one block: how high the
 * predicate dependence chain is (when the latest predicate could
 * arrive), how deep the compiler's mov fanout trees are against the
 * minimal tree for the same fanout (§5.1 is precisely about shrinking
 * these), and — reusing the verifier's path enumeration — how deep
 * into the block each predicate path keeps executing before early
 * termination (§4.3) could cut it off.
 */

#ifndef DFP_ANALYSIS_PREDICATES_H
#define DFP_ANALYSIS_PREDICATES_H

#include <cstdint>

#include "analysis/critical_path.h"
#include "isa/tblock.h"
#include "verify/block_verify.h"

namespace dfp::analysis
{

/** Predicate-structure report for one block. */
struct PredicateReport
{
    int predicatedInsts = 0;

    /** Max over predicated instructions of the earliest cycle their
     *  predicate can arrive (rel. fetch-done): the height of the
     *  predicate dependence chain. */
    uint64_t predHeight = 0;

    /** Deepest mov relay chain between a test instruction and a
     *  predicate slot it feeds (0 = tests feed predicates directly). */
    int maxFanoutDepth = 0;

    /** Minimal relay depth a tree with the same branching factor
     *  needs for the worst test's predicate fanout. */
    int idealFanoutDepth = 0;

    /** Predicate consumers fed by the worst (deepest-tree) test. */
    int worstFanout = 0;

    /** Mov/Mov4 instructions relaying predicate values. */
    int fanoutMovs = 0;

    /** Block uses Mov4 multicast trees. Only then is the ideal-depth
     *  comparison actionable: without --multicast the compiler's
     *  canonical fanout form is a linear mov chain, and flagging it
     *  (DFPA402) would mark every predicate-heavy block. */
    bool multicast = false;

    // -- per-path profile (verify::enumeratePaths) --------------------
    bool enumerated = false; //!< paths below were actually enumerated
    bool exhaustive = true;  //!< every assignment visited (else sampled)
    int pathVariables = 0;
    uint64_t paths = 0;

    /** Instructions nullified (never fire) per path. */
    double meanNullified = 0;
    uint64_t maxNullified = 0;

    /** Early-termination depth per path: the latest predicate arrival
     *  among that path's nullified instructions — how long the block
     *  keeps a mispredicated instruction pending before §4.3 could
     *  retire past it. */
    double meanTermDepth = 0;
    uint64_t maxTermDepth = 0;
};

/**
 * Analyze @p block. @p cost must be the blockCost() result for the
 * same block (its predArrival feeds the height/termination metrics).
 * When @p enumerate is false the per-path section is skipped (cheap
 * mode for very large sweeps).
 */
PredicateReport analyzePredicates(const isa::TBlock &block,
                                  const BlockCost &cost,
                                  const verify::VerifyOptions &vo,
                                  bool enumerate = true);

} // namespace dfp::analysis

#endif // DFP_ANALYSIS_PREDICATES_H
