/**
 * @file
 * The static analyzer's timing model. Every latency here is either a
 * shared constant from sim/timing_model.h or a copy of a SimConfig
 * field, so the analyzer and the simulator price the machine
 * identically by construction — a divergence is a bug, and
 * `dfp-analyze --validate` cross-checks the two on every workload.
 *
 * Distances mirror sim/network.cc exactly: dimension-order (X then Y)
 * mesh routing between execution tiles, one virtual register-tile node
 * per column above row 0 (one extra link), and one data-tile node per
 * row left of column 0 (one extra link).
 */

#ifndef DFP_ANALYSIS_COST_MODEL_H
#define DFP_ANALYSIS_COST_MODEL_H

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "isa/tblock.h"
#include "sim/machine.h"
#include "sim/network.h"
#include "sim/timing_model.h"

namespace dfp::analysis
{

/** Timing parameters the analyzer prices blocks with. */
struct CostModel
{
    sim::Grid grid;
    int fetchLatency = 8;
    int fetchWidth = 16;
    int predictLatency = 3;
    int l1dHitLatency = 2;
    int l1iHitLatency = 1;
    int missLatency = 40;
    int lineBytes = 64;

    /**
     * True when the simulated machine's first fetch deterministically
     * misses the cold L1-I (the default). Fault injection and the
     * progress watchdog can squash and refetch the entry block into a
     * now-warm cache, so fromSim() clears this when either is armed.
     */
    bool coldEntryFetch = true;

    /** Build a model priced identically to @p cfg. */
    static CostModel fromSim(const sim::SimConfig &cfg);

    /** Mesh distance between execution tiles, in links. */
    int
    tileDist(int a, int b) const
    {
        return std::abs(grid.rowOf(a) - grid.rowOf(b)) +
               std::abs(grid.colOf(a) - grid.colOf(b));
    }

    /** Links between register @p reg 's register tile and @p tile
     *  (either direction): one RT link plus the mesh path via row 0. */
    int
    regDist(int reg, int tile) const
    {
        return 1 + grid.rowOf(tile) +
               std::abs(grid.colOf(tile) - grid.regCol(reg));
    }

    /** Links a read-queue passthrough to a write slot traverses:
     *  RT link, then along row 0 to the write register's column (the
     *  machine parks write tokens at that row-0 tile). */
    int
    readToWriteDist(int readReg, int writeReg) const
    {
        return 1 + std::abs(grid.regCol(readReg) - grid.regCol(writeReg));
    }

    /** Minimum round-trip links tile <-> any L1-D bank (achieved by
     *  the bank on the tile's own row): down to column 0 and the DT
     *  link, each way. */
    int
    minBankRoundTrip(int tile) const
    {
        return 2 * grid.colOf(tile) + 2;
    }

    /** Fetch-pipe occupancy of a block in cycles (sim/machine.cc
     *  fetchMore: fetchWidth instruction words per cycle). */
    uint64_t
    fetchOccupancy(const isa::TBlock &block) const
    {
        uint64_t words = static_cast<uint64_t>(block.sizeBytes()) / 4;
        return std::max<uint64_t>(1, (words + fetchWidth - 1) / fetchWidth);
    }

    /** Guaranteed-minimum L1 latencies (a hit is not cheaper than the
     *  configured hit latency, a miss not cheaper than either). */
    uint64_t
    l1dFloor() const
    {
        return static_cast<uint64_t>(std::min(l1dHitLatency, missLatency));
    }
    uint64_t
    l1iFloor() const
    {
        return static_cast<uint64_t>(std::min(l1iHitLatency, missLatency));
    }

    /** Execution tile of instruction @p idx under the block's placement
     *  (round-robin default when the scheduler did not run). */
    int
    tileOf(const isa::TBlock &block, int idx) const
    {
        return !block.placement.empty()
                   ? block.placement[idx]
                   : idx % grid.tiles();
    }
};

} // namespace dfp::analysis

#endif // DFP_ANALYSIS_COST_MODEL_H
