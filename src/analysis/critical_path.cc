#include "analysis/critical_path.h"

#include <algorithm>

#include "isa/validate.h"
#include "sim/timing_model.h"

namespace dfp::analysis
{

namespace
{

using sim::timing::kCommitCycles;
using sim::timing::kHopCycles;
using sim::timing::kLoadPipeCycles;
using sim::timing::kReadInjectCycles;
using sim::timing::kWakeupToIssueCycles;

/** A static producer of a token: a read-queue slot or an instruction. */
struct ProdRef
{
    bool isRead = false;
    int id = 0;
};

/** Per-instruction static producer sets, one per operand slot. */
struct SlotProds
{
    std::vector<ProdRef> left, right, pred;
};

/**
 * The earliest-event fixpoint solver. Instantiated twice per block:
 * once with real network distances and once with every distance zero
 * (the placement-independent floor).
 */
class Pricer
{
  public:
    Pricer(const isa::TBlock &b, const CostModel &cm, bool useHops)
        : b_(b), cm_(cm), hops_(useHops),
          n_(static_cast<int>(b.insts.size()))
    {
        prods_.resize(n_);
        writeProds_.resize(b.writes.size());
        for (int r = 0; r < static_cast<int>(b.reads.size()); ++r) {
            for (const isa::Target &t : b_.reads[r].targets)
                addTarget({true, r}, t);
        }
        for (int i = 0; i < n_; ++i) {
            for (const isa::Target &t : b_.insts[i].targets)
                addTarget({false, i}, t);
        }
        solve();
    }

    /** Earliest issue cycle of instruction @p i (rel. fetch-done). */
    uint64_t issueAt(int i) const { return t_[i]; }

    /** Earliest predicate arrival; 0 for unpredicated instructions. */
    uint64_t
    predArrival(int i) const
    {
        if (!b_.insts[i].predicated())
            return 0;
        return slotMin(prods_[i].pred, i).first;
    }

    /** Earliest resolution of write slot @p w. */
    uint64_t
    writeBound(int w) const
    {
        uint64_t best = kNever;
        for (const ProdRef &p : writeProds_[w])
            best = std::min(best, arrivalToWrite(p, w));
        return best;
    }

    /** Earliest resolution of store LSID @p lsid: the first token
     *  (real or null) reaching any matching St's data slots. */
    uint64_t
    storeBound(int lsid) const
    {
        uint64_t best = kNever;
        for (int i = 0; i < n_; ++i) {
            const isa::TInst &inst = b_.insts[i];
            if (inst.op != isa::Op::St || inst.lsid != lsid)
                continue;
            best = std::min(best, slotMin(prods_[i].left, i).first);
            best = std::min(best, slotMin(prods_[i].right, i).first);
        }
        return best;
    }

    /** Earliest completing branch. */
    uint64_t
    branchBound() const
    {
        uint64_t best = kNever;
        for (int i = 0; i < n_; ++i) {
            if (b_.insts[i].op == isa::Op::Bro && t_[i] != kNever) {
                best = std::min(
                    best, t_[i] + sim::timing::opLatency(isa::Op::Bro));
            }
        }
        return best;
    }

    // -- limiting-chain reconstruction (hop/latency decomposition) ----

    struct Chain
    {
        uint64_t hopCycles = 0;
        uint64_t latencyCycles = 0;
        std::vector<int> insts; //!< producer-first instruction indices
    };

    /** Walk the limiting chain behind write slot @p w. */
    Chain
    writeChain(int w) const
    {
        Chain c;
        uint64_t best = kNever;
        ProdRef bestP;
        for (const ProdRef &p : writeProds_[w]) {
            uint64_t a = arrivalToWrite(p, w);
            if (a < best) {
                best = a;
                bestP = p;
            }
        }
        if (best == kNever)
            return c;
        if (bestP.isRead) {
            c.hopCycles += hopCost(cm_.readToWriteDist(
                b_.reads[bestP.id].reg, b_.writes[w].reg));
            c.latencyCycles += kReadInjectCycles;
            return c;
        }
        if (b_.insts[bestP.id].op != isa::Op::Switch) {
            c.hopCycles += hopCost(
                cm_.regDist(b_.writes[w].reg, tileOf(bestP.id)));
        }
        walkFrom(bestP.id, c);
        return c;
    }

    /** Walk the limiting chain behind store LSID @p lsid. */
    Chain
    storeChain(int lsid) const
    {
        Chain c;
        uint64_t best = kNever;
        ProdRef bestP;
        int bestConsumer = -1;
        for (int i = 0; i < n_; ++i) {
            const isa::TInst &inst = b_.insts[i];
            if (inst.op != isa::Op::St || inst.lsid != lsid)
                continue;
            for (const std::vector<ProdRef> *slot :
                 {&prods_[i].left, &prods_[i].right}) {
                for (const ProdRef &p : *slot) {
                    uint64_t a = arrivalToInst(p, i);
                    if (a < best) {
                        best = a;
                        bestP = p;
                        bestConsumer = i;
                    }
                }
            }
        }
        if (best == kNever)
            return c;
        walkEdge(bestP, bestConsumer, c);
        return c;
    }

    /** Walk the limiting chain behind the branch. */
    Chain
    branchChain() const
    {
        Chain c;
        uint64_t best = kNever;
        int bestI = -1;
        for (int i = 0; i < n_; ++i) {
            if (b_.insts[i].op == isa::Op::Bro && t_[i] != kNever) {
                uint64_t done =
                    t_[i] + sim::timing::opLatency(isa::Op::Bro);
                if (done < best) {
                    best = done;
                    bestI = i;
                }
            }
        }
        if (bestI < 0)
            return c;
        walkFrom(bestI, c);
        return c;
    }

  private:
    void
    addTarget(ProdRef p, const isa::Target &t)
    {
        if (t.slot == isa::Slot::WriteQ) {
            writeProds_[t.index].push_back(p);
            return;
        }
        SlotProds &sp = prods_[t.index];
        (t.slot == isa::Slot::Left
             ? sp.left
             : t.slot == isa::Slot::Right ? sp.right : sp.pred)
            .push_back(p);
    }

    int tileOf(int idx) const { return cm_.tileOf(b_, idx); }

    uint64_t
    hopCost(int links) const
    {
        return hops_ ? static_cast<uint64_t>(links) * kHopCycles : 0;
    }

    /** Token-departure time from producer @p j 's tile. Loads leave
     *  only after the pipe, the bank round trip and the L1-D floor. */
    uint64_t
    outTime(int j) const
    {
        if (t_[j] == kNever)
            return kNever;
        const isa::TInst &inst = b_.insts[j];
        if (inst.op == isa::Op::Ld) {
            return t_[j] + kLoadPipeCycles +
                   hopCost(cm_.minBankRoundTrip(tileOf(j))) +
                   cm_.l1dFloor();
        }
        return t_[j] + sim::timing::opLatency(inst.op);
    }

    uint64_t
    arrivalToInst(const ProdRef &p, int i) const
    {
        if (p.isRead) {
            return kReadInjectCycles +
                   hopCost(cm_.regDist(b_.reads[p.id].reg, tileOf(i)));
        }
        uint64_t out = outTime(p.id);
        if (out == kNever)
            return kNever;
        return out + hopCost(cm_.tileDist(tileOf(p.id), tileOf(i)));
    }

    uint64_t
    arrivalToWrite(const ProdRef &p, int w) const
    {
        if (p.isRead) {
            return kReadInjectCycles +
                   hopCost(cm_.readToWriteDist(b_.reads[p.id].reg,
                                               b_.writes[w].reg));
        }
        uint64_t out = outTime(p.id);
        if (out == kNever)
            return kNever;
        // A switch parks its token on its own tile (sim/machine.cc
        // Op::Switch: deliver(tile, tile)); everything else routes to
        // the write register's row-0 column and RT link.
        if (b_.insts[p.id].op == isa::Op::Switch)
            return out;
        return out +
               hopCost(cm_.regDist(b_.writes[w].reg, tileOf(p.id)));
    }

    /** (earliest arrival, producer) over one slot's producer set. */
    std::pair<uint64_t, ProdRef>
    slotMin(const std::vector<ProdRef> &slot, int i) const
    {
        uint64_t best = kNever;
        ProdRef bestP;
        for (const ProdRef &p : slot) {
            uint64_t a = arrivalToInst(p, i);
            if (a < best) {
                best = a;
                bestP = p;
            }
        }
        return {best, bestP};
    }

    /**
     * Descending fixpoint from "never": each round recomputes every
     * instruction's earliest issue from the current estimates. Values
     * only decrease, instructions on pure cycles stay at kNever (they
     * can indeed never fire), and a DAG of firing depth d converges in
     * d rounds, so n+1 rounds always suffice.
     */
    void
    solve()
    {
        t_.assign(n_, kNever);
        for (int round = 0; round <= n_; ++round) {
            bool changed = false;
            for (int i = 0; i < n_; ++i) {
                uint64_t v = recompute(i);
                if (v != t_[i]) {
                    t_[i] = v;
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
    }

    uint64_t
    recompute(int i) const
    {
        const isa::TInst &inst = b_.insts[i];
        uint64_t latest = 0;
        auto need = [&](const std::vector<ProdRef> &slot) -> bool {
            uint64_t a = slotMin(slot, i).first;
            if (a == kNever)
                return false;
            latest = std::max(latest, a);
            return true;
        };
        if (inst.numSrcs() >= 1 && !need(prods_[i].left))
            return kNever;
        if (inst.numSrcs() >= 2 && !need(prods_[i].right))
            return kNever;
        if (inst.predicated() && !need(prods_[i].pred))
            return kNever;
        return latest + kWakeupToIssueCycles;
    }

    /** Decompose one producer->consumer edge, then keep walking. */
    void
    walkEdge(const ProdRef &p, int consumer, Chain &c) const
    {
        if (p.isRead) {
            c.hopCycles += hopCost(
                cm_.regDist(b_.reads[p.id].reg, tileOf(consumer)));
            c.latencyCycles += kReadInjectCycles;
            return;
        }
        c.hopCycles +=
            hopCost(cm_.tileDist(tileOf(p.id), tileOf(consumer)));
        walkFrom(p.id, c);
    }

    /** Accumulate instruction @p i 's own cost and its limiting input
     *  chain. Arrival times strictly increase along edges, so the walk
     *  terminates; the cap is sheer paranoia. */
    void
    walkFrom(int i, Chain &c) const
    {
        for (int steps = 0; steps <= n_ && i >= 0; ++steps) {
            c.insts.push_back(i);
            const isa::TInst &inst = b_.insts[i];
            if (inst.op == isa::Op::Ld) {
                c.hopCycles += hopCost(cm_.minBankRoundTrip(tileOf(i)));
                c.latencyCycles += kLoadPipeCycles + cm_.l1dFloor();
            } else {
                c.latencyCycles += sim::timing::opLatency(inst.op);
            }
            c.latencyCycles += kWakeupToIssueCycles;

            // Find the limiting slot and its earliest producer.
            uint64_t latest = 0;
            const std::vector<ProdRef> *limiting = nullptr;
            ProdRef bestP;
            auto consider = [&](const std::vector<ProdRef> &slot,
                                bool required) {
                if (!required)
                    return;
                auto [a, p] = slotMin(slot, i);
                if (a != kNever && a >= latest) {
                    latest = a;
                    limiting = &slot;
                    bestP = p;
                }
            };
            consider(prods_[i].left, inst.numSrcs() >= 1);
            consider(prods_[i].right, inst.numSrcs() >= 2);
            consider(prods_[i].pred, inst.predicated());
            if (!limiting)
                return; // source instruction (no required inputs)
            if (bestP.isRead) {
                c.hopCycles += hopCost(
                    cm_.regDist(b_.reads[bestP.id].reg, tileOf(i)));
                c.latencyCycles += kReadInjectCycles;
                return;
            }
            c.hopCycles +=
                hopCost(cm_.tileDist(tileOf(bestP.id), tileOf(i)));
            i = bestP.id;
        }
    }

    const isa::TBlock &b_;
    const CostModel &cm_;
    bool hops_;
    int n_;
    std::vector<SlotProds> prods_;
    std::vector<std::vector<ProdRef>> writeProds_;
    std::vector<uint64_t> t_;
};

} // namespace

BlockCost
blockCost(const isa::TBlock &block, const CostModel &cm)
{
    BlockCost out;
    verify::DiagList structural;
    isa::validateBlock(block, structural);
    if (structural.hasErrors())
        return out;
    out.valid = true;

    Pricer priced(block, cm, /*useHops=*/true);
    Pricer floor(block, cm, /*useHops=*/false);

    int n = static_cast<int>(block.insts.size());
    out.issueTime.resize(n);
    out.predArrival.resize(n);
    for (int i = 0; i < n; ++i) {
        out.issueTime[i] = priced.issueAt(i);
        out.predArrival[i] = priced.predArrival(i);
    }

    // The block's last required output, under both pricings.
    enum class Kind { Write, Store, Branch };
    Kind kind = Kind::Branch;
    int kindIdx = -1;
    auto fold = [](uint64_t &acc, uint64_t v) {
        if (v != kNever)
            acc = std::max(acc, v);
    };
    uint64_t crit = 0, zero = 0;
    for (int w = 0; w < static_cast<int>(block.writes.size()); ++w) {
        uint64_t v = priced.writeBound(w);
        if (v != kNever && v > crit) {
            crit = v;
            kind = Kind::Write;
            kindIdx = w;
        }
        fold(zero, floor.writeBound(w));
    }
    for (int lsid = 0; lsid < isa::kMaxLsids; ++lsid) {
        if (!(block.storeMask & (1u << lsid)))
            continue;
        uint64_t v = priced.storeBound(lsid);
        if (v != kNever && v > crit) {
            crit = v;
            kind = Kind::Store;
            kindIdx = lsid;
        }
        fold(zero, floor.storeBound(lsid));
    }
    {
        uint64_t v = priced.branchBound();
        if (v != kNever && v > crit) {
            crit = v;
            kind = Kind::Branch;
            kindIdx = -1;
        }
        fold(zero, floor.branchBound());
    }
    out.critPath = crit;
    out.zeroHopCritPath = zero;

    Pricer::Chain chain;
    switch (kind) {
      case Kind::Write:
        if (kindIdx >= 0) {
            chain = priced.writeChain(kindIdx);
            out.limitingOutput =
                "write g" + std::to_string(block.writes[kindIdx].reg);
        }
        break;
      case Kind::Store:
        chain = priced.storeChain(kindIdx);
        out.limitingOutput = "store lsid " + std::to_string(kindIdx);
        break;
      case Kind::Branch:
        chain = priced.branchChain();
        out.limitingOutput = "branch";
        break;
    }
    out.hopCycles = chain.hopCycles;
    out.latencyCycles = chain.latencyCycles;
    out.critChain.assign(chain.insts.rbegin(), chain.insts.rend());
    return out;
}

} // namespace dfp::analysis
