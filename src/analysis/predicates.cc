#include "analysis/predicates.h"

#include <algorithm>
#include <vector>

namespace dfp::analysis
{

namespace
{

/**
 * Follow one test instruction's value through Mov/Mov4 relays,
 * counting how many predicate slots it reaches and through how many
 * relay levels. Depth-bounded by the instruction count (the validator
 * rejects dataflow cycles, but stay safe on unvalidated input).
 */
void
traceFanout(const isa::TBlock &b, int idx, int depth, int limit,
            int &fanout, int &maxDepth)
{
    if (depth > limit)
        return;
    for (const isa::Target &t : b.insts[idx].targets) {
        if (t.slot == isa::Slot::WriteQ)
            continue;
        if (t.slot == isa::Slot::Pred) {
            ++fanout;
            maxDepth = std::max(maxDepth, depth);
            continue;
        }
        const isa::TInst &next = b.insts[t.index];
        if (next.op == isa::Op::Mov || next.op == isa::Op::Mov4)
            traceFanout(b, t.index, depth + 1, limit, fanout, maxDepth);
    }
}

/** Minimal relay depth to reach @p fanout predicate consumers when a
 *  producer has @p rootWidth targets and each relay @p relayWidth. */
int
idealDepth(int fanout, int rootWidth, int relayWidth)
{
    int depth = 0;
    long capacity = rootWidth;
    while (capacity < fanout && depth < 64) {
        capacity *= relayWidth;
        ++depth;
    }
    return depth;
}

} // namespace

PredicateReport
analyzePredicates(const isa::TBlock &block, const BlockCost &cost,
                  const verify::VerifyOptions &vo, bool enumerate)
{
    PredicateReport rep;
    int n = static_cast<int>(block.insts.size());

    for (int i = 0; i < n; ++i) {
        if (!block.insts[i].predicated())
            continue;
        ++rep.predicatedInsts;
        if (i < static_cast<int>(cost.predArrival.size()) &&
            cost.predArrival[i] != kNever) {
            rep.predHeight =
                std::max(rep.predHeight, cost.predArrival[i]);
        }
    }

    // Fanout trees: movs whose value feeds at least one predicate slot.
    bool hasMov4 = false;
    for (const isa::TInst &inst : block.insts)
        hasMov4 |= inst.op == isa::Op::Mov4;
    rep.multicast = hasMov4;
    std::vector<char> feedsPred(n, 0);
    for (bool changed = true; changed;) {
        changed = false;
        for (int i = 0; i < n; ++i) {
            if (feedsPred[i])
                continue;
            for (const isa::Target &t : block.insts[i].targets) {
                bool feeds =
                    t.slot == isa::Slot::Pred ||
                    (t.slot != isa::Slot::WriteQ && feedsPred[t.index] &&
                     (block.insts[t.index].op == isa::Op::Mov ||
                      block.insts[t.index].op == isa::Op::Mov4));
                if (feeds) {
                    feedsPred[i] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    for (int i = 0; i < n; ++i) {
        const isa::TInst &inst = block.insts[i];
        if ((inst.op == isa::Op::Mov || inst.op == isa::Op::Mov4) &&
            feedsPred[i])
            ++rep.fanoutMovs;
        if (!isa::isTestOp(inst.op))
            continue;
        int fanout = 0, depth = 0;
        traceFanout(block, i, 0, n, fanout, depth);
        if (fanout == 0)
            continue;
        if (depth > rep.maxFanoutDepth ||
            (depth == rep.maxFanoutDepth && fanout > rep.worstFanout)) {
            rep.maxFanoutDepth = depth;
            rep.worstFanout = fanout;
            rep.idealFanoutDepth =
                idealDepth(fanout, block.insts[i].maxTargets(),
                           hasMov4 ? 4 : 2);
        }
    }

    if (!enumerate)
        return rep;
    verify::PathEnumeration pe = verify::enumeratePaths(block, vo);
    if (pe.paths.empty())
        return rep;
    rep.enumerated = true;
    rep.exhaustive = pe.exhaustive;
    rep.pathVariables = pe.variables;
    rep.paths = pe.paths.size();
    double sumNull = 0, sumDepth = 0;
    for (const verify::PathProfile &p : pe.paths) {
        uint64_t nullified = 0, depth = 0;
        for (int i = 0; i < n && i < static_cast<int>(p.fired.size());
             ++i) {
            if (p.fired[i])
                continue;
            ++nullified;
            if (block.insts[i].predicated() &&
                i < static_cast<int>(cost.predArrival.size()) &&
                cost.predArrival[i] != kNever)
                depth = std::max(depth, cost.predArrival[i]);
        }
        sumNull += static_cast<double>(nullified);
        sumDepth += static_cast<double>(depth);
        rep.maxNullified = std::max(rep.maxNullified, nullified);
        rep.maxTermDepth = std::max(rep.maxTermDepth, depth);
    }
    rep.meanNullified = sumNull / static_cast<double>(rep.paths);
    rep.meanTermDepth = sumDepth / static_cast<double>(rep.paths);
    return rep;
}

} // namespace dfp::analysis
