#include "analysis/pressure.h"

#include <algorithm>
#include <map>

namespace dfp::analysis
{

namespace
{

/**
 * Static link-traffic accumulator mirroring OperandNetwork's node
 * numbering: execution tiles, then one register-tile node per column,
 * then one data-tile node per row.
 */
class LinkCounter
{
  public:
    explicit LinkCounter(const CostModel &cm) : cm_(cm) {}

    int regNode(int col) const { return cm_.grid.tiles() + col; }
    int
    bankNode(int row) const
    {
        return cm_.grid.tiles() + cm_.grid.cols + row;
    }

    /** Dimension-order (X then Y) mesh walk, as network.cc meshPath. */
    void
    mesh(int fromTile, int toTile)
    {
        int r = cm_.grid.rowOf(fromTile), c = cm_.grid.colOf(fromTile);
        int tr = cm_.grid.rowOf(toTile), tc = cm_.grid.colOf(toTile);
        int at = fromTile;
        while (c != tc) {
            c += (tc > c) ? 1 : -1;
            int next = r * cm_.grid.cols + c;
            link(at, next);
            at = next;
        }
        while (r != tr) {
            r += (tr > r) ? 1 : -1;
            int next = r * cm_.grid.cols + c;
            link(at, next);
            at = next;
        }
    }

    void
    link(int from, int to)
    {
        ++counts_[{from, to}];
        ++hops_;
    }

    void message() { ++messages_; }

    uint64_t messages() const { return messages_; }
    uint64_t hops() const { return hops_; }

    void
    busiest(uint64_t &load, std::string &name, double &mean) const
    {
        load = 0;
        mean = 0;
        std::pair<int, int> argmax{-1, -1};
        for (const auto &[lk, n] : counts_) {
            mean += static_cast<double>(n);
            if (n > load) {
                load = n;
                argmax = lk;
            }
        }
        if (!counts_.empty())
            mean /= static_cast<double>(counts_.size());
        if (argmax.first >= 0)
            name = nodeName(argmax.first) + "->" + nodeName(argmax.second);
    }

  private:
    std::string
    nodeName(int node) const
    {
        int tiles = cm_.grid.tiles();
        if (node < tiles) {
            return "E" + std::to_string(cm_.grid.rowOf(node)) +
                   std::to_string(cm_.grid.colOf(node));
        }
        if (node < tiles + cm_.grid.cols)
            return "R" + std::to_string(node - tiles);
        return "D" + std::to_string(node - tiles - cm_.grid.cols);
    }

    const CostModel &cm_;
    std::map<std::pair<int, int>, uint64_t> counts_;
    uint64_t messages_ = 0;
    uint64_t hops_ = 0;
};

} // namespace

PressureReport
analyzePressure(const isa::TBlock &block, const CostModel &cm)
{
    PressureReport rep;
    int tiles = cm.grid.tiles();
    rep.tileLoad.assign(tiles, 0);
    rep.tileCapacity = (isa::kMaxInsts + tiles - 1) / tiles;

    int n = static_cast<int>(block.insts.size());
    for (int i = 0; i < n; ++i)
        ++rep.tileLoad[cm.tileOf(block, i)];
    for (int load : rep.tileLoad)
        rep.maxTileLoad = std::max(rep.maxTileLoad, load);

    LinkCounter lc(cm);
    auto row0Tile = [&](int col) { return 0 * cm.grid.cols + col; };

    // Read-queue injections: RT link, then the mesh to each consumer
    // (write-slot passthroughs park at the write register's column).
    for (const isa::ReadSlot &read : block.reads) {
        int col = cm.grid.regCol(read.reg);
        for (const isa::Target &t : read.targets) {
            int dest = t.slot == isa::Slot::WriteQ
                           ? row0Tile(cm.grid.regCol(
                                 block.writes[t.index].reg))
                           : cm.tileOf(block, t.index);
            lc.message();
            lc.link(lc.regNode(col), row0Tile(col));
            lc.mesh(row0Tile(col), dest);
        }
    }

    for (int i = 0; i < n; ++i) {
        const isa::TInst &inst = block.insts[i];
        int tile = cm.tileOf(block, i);
        for (const isa::Target &t : inst.targets) {
            lc.message();
            if (t.slot == isa::Slot::WriteQ) {
                // A switch parks the token on its own tile; everything
                // else routes to the write register's RT.
                if (inst.op == isa::Op::Switch)
                    continue;
                int col = cm.grid.regCol(block.writes[t.index].reg);
                lc.mesh(tile, row0Tile(col));
                lc.link(row0Tile(col), lc.regNode(col));
            } else {
                lc.mesh(tile, cm.tileOf(block, t.index));
            }
        }
        // Memory traffic, attributed to the tile's own-row bank.
        int bankRow = cm.grid.rowOf(tile);
        int bankTile = bankRow * cm.grid.cols + 0;
        if (inst.op == isa::Op::Ld) {
            lc.message();
            lc.mesh(tile, bankTile);
            lc.link(bankTile, lc.bankNode(bankRow));
            lc.message();
            lc.link(lc.bankNode(bankRow), bankTile);
            lc.mesh(bankTile, tile);
        } else if (inst.op == isa::Op::St) {
            lc.message();
            lc.mesh(tile, bankTile);
            lc.link(bankTile, lc.bankNode(bankRow));
        }
    }

    rep.messages = lc.messages();
    rep.totalHops = lc.hops();
    lc.busiest(rep.maxLinkLoad, rep.maxLinkName, rep.meanLinkLoad);
    return rep;
}

} // namespace dfp::analysis
