#include "analysis/report.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "base/json.h"
#include "base/logging.h"

namespace dfp::analysis
{

namespace
{

void
emitDfpa(const AnalyzeOptions &opts, const BlockReport &br,
         verify::DiagList &diags)
{
    const BlockCost &c = br.cost;
    if (!c.valid || !opts.warnings)
        return;

    if (c.critPath > 0 &&
        c.hopCycles >= opts.hopInflationMinCycles &&
        static_cast<double>(c.hopCycles) >=
            opts.hopInflationRatio * static_cast<double>(c.critPath)) {
        diags.warning(
            verify::codes::HopInflation, {br.label, -1},
            detail::cat("operand-network hops contribute ", c.hopCycles,
                        " of the ", c.critPath,
                        "-cycle critical path (limiting output: ",
                        c.limitingOutput,
                        "); placement, not computation, bounds this "
                        "block"));
    }

    // Without Mov4 multicast the compiler's fanout form is a linear
    // mov chain by construction; depth-vs-ideal is only a regression
    // signal when the multicast fanout pass actually ran.
    if (br.pred.multicast &&
        br.pred.maxFanoutDepth >
            br.pred.idealFanoutDepth + opts.fanoutDepthSlack) {
        diags.warning(
            verify::codes::DeepPredFanout, {br.label, -1},
            detail::cat("predicate fanout tree is ",
                        br.pred.maxFanoutDepth, " mov levels deep for ",
                        br.pred.worstFanout, " consumers; ",
                        br.pred.idealFanoutDepth,
                        " levels would suffice"));
    }

    if (c.critPath > 0 &&
        br.pressure.maxLinkLoad >= opts.linkDominanceMinMessages &&
        static_cast<double>(br.pressure.maxLinkLoad) >
            opts.linkDominanceRatio * static_cast<double>(c.critPath)) {
        diags.warning(
            verify::codes::LinkDominatedBound, {br.label, -1},
            detail::cat("link ", br.pressure.maxLinkName,
                        " carries up to ", br.pressure.maxLinkLoad,
                        " operands but the critical path is only ",
                        c.critPath,
                        " cycles; that link's serialization bounds "
                        "the block"));
    }
}

} // namespace

ProgramReport
analyzeProgram(const compiler::CompileResult &res,
               const AnalyzeOptions &opts)
{
    ProgramReport rep;
    rep.regPressure = res.regalloc.pressure;
    rep.maxLiveRegs = res.regalloc.maxLive;
    rep.archRegs = res.regalloc.regsUsed;

    for (const isa::TBlock &block : res.program.blocks) {
        BlockReport br;
        br.label = block.label;
        br.insts = static_cast<int>(block.insts.size());
        br.sizeBytes = block.sizeBytes();
        br.cost = blockCost(block, opts.cm);
        br.pred = analyzePredicates(block, br.cost, opts.verify,
                                    opts.enumeratePaths);
        br.pressure = analyzePressure(block, opts.cm);

        if (br.cost.valid) {
            rep.totalCritPath += br.cost.critPath;
            if (br.cost.critPath > rep.maxCritPath) {
                rep.maxCritPath = br.cost.critPath;
                rep.maxCritBlock = br.label;
            }
        }
        emitDfpa(opts, br, rep.diags);
        rep.blocks.push_back(std::move(br));
    }
    return rep;
}

void
compareMergeBaseline(ProgramReport &merged,
                     const ProgramReport &baseline,
                     const AnalyzeOptions &opts)
{
    if (!opts.warnings)
        return;
    std::map<std::string, std::pair<uint64_t, int>> base;
    for (const BlockReport &br : baseline.blocks) {
        if (br.cost.valid)
            base[br.label] = {br.cost.critPath, br.insts};
    }
    for (const BlockReport &br : merged.blocks) {
        auto it = base.find(br.label);
        if (it == base.end() || !br.cost.valid)
            continue;
        // A block whose instruction count changed absorbed (or shed)
        // code during merging; a longer path there is the price of the
        // merge itself, not a regression. Compare only blocks merging
        // left structurally untouched — their path may still move
        // through scheduling/placement perturbation, and that is the
        // signal DFPA404 exists for.
        if (br.insts != it->second.second)
            continue;
        uint64_t before = it->second.first, after = br.cost.critPath;
        if (after >= before + opts.mergeRegressMinCycles &&
            static_cast<double>(after) >
                opts.mergeRegressRatio * static_cast<double>(before)) {
            merged.diags.warning(
                verify::codes::MergeLengthenedPath, {br.label, -1},
                detail::cat("merging stretched the critical path from ",
                            before, " to ", after, " cycles"));
        }
    }
}

void
renderText(const ProgramReport &rep, std::ostream &os, bool perBlock)
{
    os << "blocks: " << rep.blocks.size() << "\n";
    os << "critical path: max " << rep.maxCritPath << " cycles";
    if (!rep.maxCritBlock.empty())
        os << " (block '" << rep.maxCritBlock << "')";
    os << ", serial total " << rep.totalCritPath << "\n";
    os << "registers: " << rep.archRegs << " architectural, peak "
       << rep.maxLiveRegs << " live\n";
    if (perBlock) {
        for (const BlockReport &br : rep.blocks) {
            os << "\nblock '" << br.label << "' (" << br.insts
               << " insts, " << br.sizeBytes << " bytes)\n";
            if (!br.cost.valid) {
                os << "  INVALID (failed structural validation)\n";
                continue;
            }
            os << "  critical path: " << br.cost.critPath
               << " cycles (" << br.cost.hopCycles << " hop + "
               << br.cost.latencyCycles << " latency), zero-hop floor "
               << br.cost.zeroHopCritPath << ", limited by "
               << br.cost.limitingOutput << "\n";
            os << "  chain:";
            for (int idx : br.cost.critChain)
                os << " #" << idx;
            os << "\n";
            os << "  predicates: " << br.pred.predicatedInsts
               << " predicated, height " << br.pred.predHeight
               << ", fanout depth " << br.pred.maxFanoutDepth
               << " (ideal " << br.pred.idealFanoutDepth << ", "
               << br.pred.fanoutMovs << " movs)\n";
            if (br.pred.enumerated) {
                os << "  paths: " << br.pred.paths
                   << (br.pred.exhaustive ? "" : " (sampled)")
                   << " over " << br.pred.pathVariables
                   << " vars, mean nullified " << br.pred.meanNullified
                   << " (max " << br.pred.maxNullified
                   << "), mean early-termination depth "
                   << br.pred.meanTermDepth << " (max "
                   << br.pred.maxTermDepth << ")\n";
            }
            os << "  pressure: max tile load " << br.pressure.maxTileLoad
               << "/" << br.pressure.tileCapacity << ", "
               << br.pressure.messages << " messages over "
               << br.pressure.totalHops << " hops, busiest link "
               << (br.pressure.maxLinkName.empty()
                       ? "-"
                       : br.pressure.maxLinkName)
               << " x" << br.pressure.maxLinkLoad << "\n";
        }
    }
    if (!rep.diags.empty()) {
        os << "\n";
        rep.diags.renderText(os);
    }
}

void
renderJson(const ProgramReport &rep, std::ostream &os)
{
    json::Writer w(os);
    w.beginObject();
    w.key("max_crit_path").value(rep.maxCritPath);
    w.key("max_crit_block").value(rep.maxCritBlock);
    w.key("total_crit_path").value(rep.totalCritPath);
    w.key("arch_regs").value(rep.archRegs);
    w.key("max_live_regs").value(rep.maxLiveRegs);
    w.key("blocks").beginArray();
    for (const BlockReport &br : rep.blocks) {
        w.beginObject();
        w.key("label").value(br.label);
        w.key("insts").value(br.insts);
        w.key("size_bytes").value(br.sizeBytes);
        w.key("valid").value(br.cost.valid);
        if (br.cost.valid) {
            w.key("crit_path").value(br.cost.critPath);
            w.key("zero_hop_crit_path").value(br.cost.zeroHopCritPath);
            w.key("hop_cycles").value(br.cost.hopCycles);
            w.key("latency_cycles").value(br.cost.latencyCycles);
            w.key("limiting_output").value(br.cost.limitingOutput);
            w.key("pred_height").value(br.pred.predHeight);
            w.key("predicated_insts").value(br.pred.predicatedInsts);
            w.key("fanout_depth").value(br.pred.maxFanoutDepth);
            w.key("ideal_fanout_depth").value(br.pred.idealFanoutDepth);
            w.key("fanout_movs").value(br.pred.fanoutMovs);
            if (br.pred.enumerated) {
                w.key("paths").value(br.pred.paths);
                w.key("paths_exhaustive").value(br.pred.exhaustive);
                w.key("mean_nullified").value(br.pred.meanNullified);
                w.key("max_nullified").value(br.pred.maxNullified);
                w.key("mean_term_depth").value(br.pred.meanTermDepth);
                w.key("max_term_depth").value(br.pred.maxTermDepth);
            }
            w.key("max_tile_load").value(br.pressure.maxTileLoad);
            w.key("tile_capacity").value(br.pressure.tileCapacity);
            w.key("messages").value(br.pressure.messages);
            w.key("total_hops").value(br.pressure.totalHops);
            w.key("max_link_load").value(br.pressure.maxLinkLoad);
            w.key("max_link").value(br.pressure.maxLinkName);
        }
        w.endObject();
    }
    w.endArray();
    w.key("reg_pressure").beginArray();
    for (const compiler::BlockPressure &bp : rep.regPressure) {
        w.beginObject();
        w.key("block").value(bp.block);
        w.key("live_regs").value(bp.liveRegs);
        w.endObject();
    }
    w.endArray();
    w.key("diags");
    rep.diags.renderJson(os);
    w.endObject();
    os << "\n";
}

} // namespace dfp::analysis
