/**
 * @file
 * Static resource-pressure analysis of one scheduled block: execution
 * tile occupancy against the reservation-station capacity the fetch
 * protocol reserves (GridShape::slotsPerTile), and a static per-link
 * traffic upper bound over the operand network, counting every message
 * the block could send along the simulator's own dimension-order
 * routes (sim/network.cc). Since each link moves one operand per
 * cycle, a link whose static message count exceeds the block's
 * critical path cannot hide its serialization — the DFPA403 signal.
 */

#ifndef DFP_ANALYSIS_PRESSURE_H
#define DFP_ANALYSIS_PRESSURE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.h"
#include "isa/tblock.h"

namespace dfp::analysis
{

/** Resource-pressure report for one block. */
struct PressureReport
{
    /** Instructions placed on each execution tile. */
    std::vector<int> tileLoad;
    int maxTileLoad = 0;

    /** Reservation-station slots per tile the block format reserves
     *  (ceil(128 / tiles), mirrors GridShape::slotsPerTile). */
    int tileCapacity = 0;

    /** Static message and link-traversal totals, all senders firing. */
    uint64_t messages = 0;
    uint64_t totalHops = 0;

    /** The single busiest link and its static message count. Memory
     *  traffic is attributed to each tile's own-row bank (the nearest;
     *  real banks are address-dependent, so this is representative,
     *  not exact). */
    uint64_t maxLinkLoad = 0;
    std::string maxLinkName;
    double meanLinkLoad = 0;
};

/** Count @p block 's static traffic under @p cm. */
PressureReport analyzePressure(const isa::TBlock &block,
                               const CostModel &cm);

} // namespace dfp::analysis

#endif // DFP_ANALYSIS_PRESSURE_H
