/**
 * @file
 * Loop unrolling on pre-SSA CFG IR. The paper's key predication
 * showcases (the while loop of Figure 3a and the genalg loop of
 * Figure 6) rely on statically unrolling short loops so hyperblock
 * formation can pack several iterations — and their predicate-AND
 * chained tests — into one 128-instruction block.
 *
 * Unrolling duplicates the loop body k-1 times and chains the copies:
 * the back edge of copy i is retargeted at copy i+1's header, the last
 * copy's back edge returns to the original header, and every exit edge
 * keeps its original target. Because pre-SSA temps are freely
 * redefined, no renaming is needed.
 */

#ifndef DFP_COMPILER_UNROLL_H
#define DFP_COMPILER_UNROLL_H

#include "ir/ir.h"

namespace dfp::compiler
{

/** Unrolling knobs. */
struct UnrollOptions
{
    int factor = 1;          //!< 1 = disabled
    int maxBodyInstrs = 48;  //!< only unroll loops that can still pack
    int maxBodyBlocks = 12;  //!< into the 128-instruction block format
};

/** Unroll eligible innermost loops; returns loops unrolled. */
int unrollLoops(ir::Function &fn, const UnrollOptions &opts);

} // namespace dfp::compiler

#endif // DFP_COMPILER_UNROLL_H
