/**
 * @file
 * Architectural register assignment. Boundary lowering
 * (core/null_insertion.h) moved all cross-hyperblock values into
 * *virtual* registers; this pass colors them onto the 64 architectural
 * registers (g0..g63) using hyperblock-granularity liveness and a
 * greedy interference coloring. Virtual register 0 (the return value)
 * is pinned to g1.
 */

#ifndef DFP_COMPILER_REGALLOC_H
#define DFP_COMPILER_REGALLOC_H

#include <map>
#include <string>
#include <vector>

#include "ir/ir.h"

namespace dfp::compiler
{

/** Architectural register of the kernel return value. */
constexpr int kRetArchReg = 1;

/** Register-file pressure inside one hyperblock (introspection for
 *  the static performance analyzer; see docs/ANALYSIS.md). */
struct BlockPressure
{
    std::string block; //!< hyperblock name (matches the TBlock label)
    int liveRegs = 0;  //!< virtual registers live across this block
};

/** Result of coloring. */
struct RegAllocResult
{
    std::map<int, int> color; //!< virtual -> architectural register
    int regsUsed = 0;

    /** Per-hyperblock liveness intervals, in block order. */
    std::vector<BlockPressure> pressure;

    /** Peak simultaneous liveness over all hyperblocks. */
    int maxLive = 0;
};

/**
 * Color virtual registers in a hyperblock-form function, rewriting the
 * `reg` field of every Read/Write in place. Throws FatalError when the
 * function needs more than 63 simultaneously-live registers (dfp does
 * not spill; kernels never approach the limit).
 */
RegAllocResult allocateRegisters(ir::Function &fn);

} // namespace dfp::compiler

#endif // DFP_COMPILER_REGALLOC_H
