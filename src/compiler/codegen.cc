#include "compiler/codegen.h"

#include <map>
#include <vector>

#include "base/bitops.h"
#include "ir/analysis.h"

namespace dfp::compiler
{

namespace
{

using isa::Op;
using isa::Slot;
using isa::Target;

/** Generates one TBlock from one hyperblock. */
class BlockGen
{
  public:
    BlockGen(const ir::BBlock &hb, const CodegenOptions &opts,
             StatSet *stats)
        : hb_(hb), opts_(opts), stats_(stats)
    {}

    isa::TBlock run(std::vector<std::string> &broLabels);

  private:
    void bump(const char *name, uint64_t d = 1)
    {
        if (stats_)
            stats_->inc(name, d);
    }

    void legalize();
    ir::Opnd materialize(int64_t value);
    void assignSlots();
    void wire();
    void fanout();

    /** Append a legalized instruction, keeping memoized constants. */
    void emit(ir::Instr inst) { legal_.push_back(std::move(inst)); }

    const ir::BBlock &hb_;
    const CodegenOptions &opts_;
    StatSet *stats_;

    std::vector<ir::Instr> legal_;      //!< legalized IR instructions
    std::map<int64_t, int> constMemo_;  //!< value -> temp
    int nextTemp_ = 0;                  //!< fresh temps for synthesis

    isa::TBlock block_;
    std::vector<int> tIdx_;             //!< legal_ index -> TInst index
    std::map<int, std::vector<int>> defsOf_; //!< temp -> legal_ indices
    std::map<int, int> writeSlotOf_;    //!< arch reg -> write slot
    std::map<int, int> storeIdxOfToken_; //!< store token -> TInst index
    std::vector<std::vector<Target>> targets_; //!< per TInst
    std::vector<std::string> broLabelOf_;      //!< per TInst ("" if not)
};

ir::Opnd
BlockGen::materialize(int64_t value)
{
    auto it = constMemo_.find(value);
    if (it != constMemo_.end())
        return ir::Opnd::temp(it->second);

    if (fitsSigned(value, 14)) {
        int t = nextTemp_++;
        ir::Instr movi;
        movi.op = Op::Movi;
        movi.dst = ir::Opnd::temp(t);
        movi.srcs.push_back(ir::Opnd::imm(value));
        emit(std::move(movi));
        constMemo_[value] = t;
        bump("codegen.const_synth");
        return ir::Opnd::temp(t);
    }
    // Wide constant: synthesize the high part recursively, then shift
    // in one low byte: (hi << 8) | (value & 0xff). Since the shifted
    // accumulator has zero low bits, the ori reassembles exactly; a
    // 64-bit constant costs at most 1 + 2*7 instructions, and typical
    // address constants (e.g. 0x10000) cost 2-3.
    int64_t hi = value >> 8; // arithmetic shift keeps the sign
    int64_t lowByte = value & 0xff;
    ir::Opnd acc = materialize(hi);
    int shifted = nextTemp_++;
    ir::Instr shl;
    shl.op = Op::Shli;
    shl.dst = ir::Opnd::temp(shifted);
    shl.srcs = {acc, ir::Opnd::imm(8)};
    emit(std::move(shl));
    bump("codegen.const_synth");
    int result = shifted;
    if (lowByte != 0) {
        result = nextTemp_++;
        ir::Instr ori;
        ori.op = Op::Ori;
        ori.dst = ir::Opnd::temp(result);
        ori.srcs = {ir::Opnd::temp(shifted), ir::Opnd::imm(lowByte)};
        emit(std::move(ori));
        bump("codegen.const_synth");
    }
    constMemo_[value] = result;
    return ir::Opnd::temp(result);
}

void
BlockGen::legalize()
{
    // Fresh temps must not collide with existing ones.
    for (const ir::Instr &inst : hb_.instrs) {
        if (inst.dst.isTemp())
            nextTemp_ = std::max(nextTemp_, inst.dst.id + 1);
        for (const ir::Opnd &src : inst.srcs) {
            if (src.isTemp())
                nextTemp_ = std::max(nextTemp_, src.id + 1);
        }
        for (const ir::Guard &g : inst.guards)
            nextTemp_ = std::max(nextTemp_, g.pred + 1);
    }

    for (const ir::Instr &orig : hb_.instrs) {
        ir::Instr inst = orig;
        switch (inst.op) {
          case Op::Read:
          case Op::Bro:
          case Op::Null:
            emit(std::move(inst));
            continue;
          case Op::Write:
            if (inst.srcs[0].isImm())
                inst.srcs[0] = materialize(inst.srcs[0].value);
            emit(std::move(inst));
            continue;
          case Op::Mov:
            if (inst.srcs[0].isImm()) {
                inst.op = Op::Movi;
            }
            [[fallthrough]];
          case Op::Movi:
            if (inst.op == Op::Movi &&
                !fitsSigned(inst.srcs[0].value, 14)) {
                ir::Opnd c = materialize(inst.srcs[0].value);
                inst.op = Op::Mov;
                inst.srcs[0] = c;
            }
            emit(std::move(inst));
            continue;
          case Op::Ld:
            if (inst.srcs[0].isImm())
                inst.srcs[0] = materialize(inst.srcs[0].value);
            if (!fitsSigned(inst.srcs[1].value, isa::kImmBits)) {
                ir::Opnd off = materialize(inst.srcs[1].value);
                int t = nextTemp_++;
                ir::Instr add;
                add.op = Op::Add;
                add.dst = ir::Opnd::temp(t);
                add.srcs = {inst.srcs[0], off};
                add.guards = inst.guards;
                emit(std::move(add));
                inst.srcs[0] = ir::Opnd::temp(t);
                inst.srcs[1] = ir::Opnd::imm(0);
            }
            emit(std::move(inst));
            continue;
          case Op::St:
            if (inst.srcs[0].isImm())
                inst.srcs[0] = materialize(inst.srcs[0].value);
            if (inst.srcs[1].isImm())
                inst.srcs[1] = materialize(inst.srcs[1].value);
            if (!fitsSigned(inst.srcs[2].value, isa::kImmBits)) {
                ir::Opnd off = materialize(inst.srcs[2].value);
                int t = nextTemp_++;
                ir::Instr add;
                add.op = Op::Add;
                add.dst = ir::Opnd::temp(t);
                add.srcs = {inst.srcs[0], off};
                add.guards = inst.guards;
                emit(std::move(add));
                inst.srcs[0] = ir::Opnd::temp(t);
                inst.srcs[2] = ir::Opnd::imm(0);
            }
            emit(std::move(inst));
            continue;
          default:
            break;
        }

        // Generic ALU/test: fold one immediate into the encoding when
        // possible, otherwise materialize.
        const auto &info = isa::opInfo(inst.op);
        if (info.numSrcs == 2) {
            if (inst.srcs[0].isImm() && !inst.srcs[1].isImm() &&
                isa::isCommutative(inst.op)) {
                std::swap(inst.srcs[0], inst.srcs[1]);
            }
            if (inst.srcs[1].isImm()) {
                Op immOp = isa::immediateForm(inst.op);
                if (immOp != Op::NumOps &&
                    fitsSigned(inst.srcs[1].value, isa::kImmBits)) {
                    inst.op = immOp;
                    int64_t imm = inst.srcs[1].value;
                    inst.srcs.pop_back();
                    inst.srcs.push_back(ir::Opnd::imm(imm));
                    // Immediate kept as srcs[1] for uniform handling.
                } else {
                    inst.srcs[1] = materialize(inst.srcs[1].value);
                }
            }
            if (inst.srcs[0].isImm())
                inst.srcs[0] = materialize(inst.srcs[0].value);
        }
        emit(std::move(inst));
    }
}

void
BlockGen::assignSlots()
{
    int lsid = 0;
    for (size_t i = 0; i < legal_.size(); ++i) {
        ir::Instr &inst = legal_[i];
        switch (inst.op) {
          case Op::Read: {
            if (block_.reads.size() >= isa::kMaxReads)
                dfp_fatal("block too large: '", hb_.name,
                          "' exceeds read queue");
            isa::ReadSlot slot;
            slot.reg = static_cast<uint8_t>(inst.reg);
            int rslot = static_cast<int>(block_.reads.size());
            block_.reads.push_back(slot);
            tIdx_.push_back(-1 - rslot);
            break;
          }
          case Op::Write: {
            if (!writeSlotOf_.count(inst.reg)) {
                if (block_.writes.size() >= isa::kMaxWrites)
                    dfp_fatal("block too large: '", hb_.name,
                              "' exceeds write queue");
                writeSlotOf_[inst.reg] =
                    static_cast<int>(block_.writes.size());
                block_.writes.push_back(
                    {static_cast<uint8_t>(inst.reg)});
            }
            tIdx_.push_back(-1000000); // no TInst
            break;
          }
          default: {
            isa::TInst tinst;
            tinst.op = inst.op;
            if (!inst.guards.empty()) {
                bool onTrue = inst.guards.front().onTrue;
                for (const ir::Guard &g : inst.guards) {
                    dfp_assert(g.onTrue == onTrue,
                               "mixed guard polarity reaches codegen");
                }
                tinst.pr = onTrue ? isa::PredMode::OnTrue
                                  : isa::PredMode::OnFalse;
            }
            if (inst.op == Op::Ld || inst.op == Op::St) {
                if (lsid >= isa::kMaxLsids)
                    dfp_fatal("block too large: '", hb_.name,
                              "' exceeds LSID space");
                if (inst.op == Op::St) {
                    if (inst.lsid >= 0) {
                        storeIdxOfToken_[inst.lsid] =
                            static_cast<int>(block_.insts.size());
                    }
                    block_.storeMask |= 1u << lsid;
                    tinst.imm = static_cast<int32_t>(
                        inst.srcs[2].value);
                } else {
                    tinst.imm = static_cast<int32_t>(
                        inst.srcs[1].value);
                }
                tinst.lsid = static_cast<uint8_t>(lsid++);
            } else if (inst.op == Op::Movi) {
                tinst.imm = static_cast<int32_t>(inst.srcs[0].value);
            } else if (isa::opInfo(inst.op).hasImm &&
                       inst.op != Op::Bro) {
                tinst.imm = static_cast<int32_t>(inst.srcs[1].value);
            }
            tIdx_.push_back(static_cast<int>(block_.insts.size()));
            broLabelOf_.push_back(
                inst.op == Op::Bro ? inst.broLabel : "");
            block_.insts.push_back(std::move(tinst));
            break;
          }
        }
        if (inst.dst.isTemp())
            defsOf_[inst.dst.id].push_back(static_cast<int>(i));
    }
    targets_.assign(block_.insts.size(), {});
}

void
BlockGen::wire()
{
    // Read-slot targets accumulate separately, then fan out like any
    // other producer via synthetic movs when needed.
    std::vector<std::vector<Target>> readTargets(block_.reads.size());

    auto addProducerTarget = [&](int temp, Target target) {
        auto it = defsOf_.find(temp);
        dfp_assert(it != defsOf_.end(), "block '", hb_.name,
                   "': no producer for t", temp);
        for (int defIdx : it->second) {
            int t = tIdx_[defIdx];
            if (t <= -1 && t > -1000000) {
                readTargets[-t - 1].push_back(target);
            } else {
                dfp_assert(t >= 0, "write cannot produce a temp");
                targets_[t].push_back(target);
            }
        }
    };

    for (size_t i = 0; i < legal_.size(); ++i) {
        const ir::Instr &inst = legal_[i];
        if (inst.op == Op::Read)
            continue;
        if (inst.op == Op::Write) {
            int slot = writeSlotOf_.at(inst.reg);
            Target wt{Slot::WriteQ, static_cast<uint8_t>(slot)};
            if (inst.guards.empty()) {
                addProducerTarget(inst.srcs[0].id, wt);
            } else {
                // Guarded write: a predicated mov gates the token.
                isa::TInst mov;
                mov.op = Op::Mov;
                mov.pr = inst.guards.front().onTrue
                             ? isa::PredMode::OnTrue
                             : isa::PredMode::OnFalse;
                int movIdx = static_cast<int>(block_.insts.size());
                block_.insts.push_back(mov);
                broLabelOf_.push_back("");
                targets_.push_back({wt});
                bump("codegen.write_movs");
                addProducerTarget(
                    inst.srcs[0].id,
                    {Slot::Left, static_cast<uint8_t>(movIdx)});
                for (const ir::Guard &g : inst.guards) {
                    addProducerTarget(
                        g.pred,
                        {Slot::Pred, static_cast<uint8_t>(movIdx)});
                }
            }
            continue;
        }

        int t = tIdx_[i];
        dfp_assert(t >= 0, "unexpected slot kind");
        uint8_t idx = static_cast<uint8_t>(t);

        // Store-nullification: a Null tagged with a store token targets
        // the matching store's left operand.
        if (inst.op == Op::Null && inst.lsid >= 0 &&
            !inst.dst.isTemp()) {
            auto sit = storeIdxOfToken_.find(inst.lsid);
            dfp_assert(sit != storeIdxOfToken_.end(),
                       "store token ", inst.lsid, " without store in '",
                       hb_.name, "'");
            targets_[t].push_back(
                {Slot::Left, static_cast<uint8_t>(sit->second)});
        }

        // Data operands.
        const auto &info = isa::opInfo(inst.op);
        int dataSrcs = info.numSrcs;
        for (int k = 0; k < dataSrcs; ++k) {
            const ir::Opnd &src = inst.srcs[k];
            if (src.isImm()) {
                // Encoded immediate (srcs[1] of an imm-form op).
                dfp_assert(k == 1 && info.hasImm,
                           "unmaterialized immediate operand");
                continue;
            }
            addProducerTarget(src.id,
                              {k == 0 ? Slot::Left : Slot::Right, idx});
        }
        // Predicate operands.
        for (const ir::Guard &g : inst.guards)
            addProducerTarget(g.pred, {Slot::Pred, idx});
    }

    // Install targets with fanout expansion.
    int movCap = opts_.multicast ? 4 : 2;
    auto expand = [&](std::vector<Target> &list, int cap) {
        while (static_cast<int>(list.size()) > cap) {
            isa::TInst mov;
            mov.op = opts_.multicast ? Op::Mov4 : Op::Mov;
            int movIdx = static_cast<int>(block_.insts.size());
            int take = std::min<int>(movCap, list.size());
            mov.targets.assign(list.end() - take, list.end());
            list.resize(list.size() - take);
            list.push_back({Slot::Left, static_cast<uint8_t>(movIdx)});
            block_.insts.push_back(std::move(mov));
            broLabelOf_.push_back("");
            targets_.push_back({}); // its targets are already installed
            bump("codegen.fanout_movs");
        }
    };

    for (size_t r = 0; r < readTargets.size(); ++r) {
        // Work on a copy: expand() appends fanout movs to block_.insts
        // and targets_, which would invalidate references into them.
        std::vector<Target> list = std::move(readTargets[r]);
        expand(list, 2);
        block_.reads[r].targets = std::move(list);
    }
    for (size_t t = 0; t < block_.insts.size(); ++t) {
        if (!targets_[t].empty()) {
            std::vector<Target> list = std::move(targets_[t]);
            expand(list, block_.insts[t].maxTargets());
            block_.insts[t].targets.insert(block_.insts[t].targets.end(),
                                           list.begin(), list.end());
        }
    }
}

isa::TBlock
BlockGen::run(std::vector<std::string> &broLabels)
{
    block_.label = hb_.name;
    legalize();
    assignSlots();
    wire();
    if (block_.insts.size() > isa::kMaxInsts) {
        dfp_fatal("block too large: '", hb_.name, "' has ",
                  block_.insts.size(), " instructions after codegen");
    }
    bump("codegen.blocks");
    bump("codegen.insts", block_.insts.size());
    bump("codegen.reads", block_.reads.size());
    bump("codegen.writes", block_.writes.size());
    broLabels = std::move(broLabelOf_);
    return block_;
}

} // namespace

isa::TProgram
generateProgram(const ir::Function &fn, const CodegenOptions &opts,
                StatSet *stats)
{
    isa::TProgram program;
    std::vector<std::vector<std::string>> broLabels(fn.blocks.size());
    for (size_t b = 0; b < fn.blocks.size(); ++b) {
        const ir::BBlock &hb = fn.blocks[b];
        dfp_assert(hb.term == ir::Term::Hyper,
                   "codegen requires hyperblock form");
        program.blocks.push_back(
            BlockGen(hb, opts, stats).run(broLabels[b]));
        program.labelIndex[hb.name] = static_cast<int>(b);
    }
    // Link branch targets.
    for (size_t b = 0; b < program.blocks.size(); ++b) {
        auto &insts = program.blocks[b].insts;
        for (size_t i = 0; i < insts.size(); ++i) {
            if (insts[i].op != Op::Bro)
                continue;
            const std::string &label =
                i < broLabels[b].size() ? broLabels[b][i] : "";
            dfp_assert(!label.empty(), "bro without label");
            if (label == "@halt") {
                insts[i].imm = isa::kHaltTarget;
            } else {
                int t = program.indexOf(label);
                dfp_assert(t >= 0, "bro to unknown label '", label, "'");
                insts[i].imm = t;
            }
        }
    }
    return program;
}

} // namespace dfp::compiler
