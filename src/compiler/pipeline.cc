#include "compiler/pipeline.h"

#include "base/telemetry.h"
#include "compiler/regalloc.h"
#include "compiler/scalar_opts.h"
#include "core/merging.h"
#include "core/null_insertion.h"
#include "core/path_sensitive.h"
#include "core/pfg.h"
#include "core/pred_fanout.h"
#include "core/ssa.h"
#include "ir/parser.h"
#include "isa/validate.h"
#include "verify/ir_verify.h"

namespace dfp::compiler
{

CompileOptions
configNamed(const std::string &name)
{
    CompileOptions opts;
    if (name == "bb") {
        opts.hyperblocks = false;
    } else if (name == "hyper") {
        // defaults
    } else if (name == "intra") {
        opts.predFanoutReduction = true;
    } else if (name == "inter") {
        opts.pathSensitive = true;
    } else if (name == "both") {
        opts.predFanoutReduction = true;
        opts.pathSensitive = true;
    } else if (name == "merge") {
        opts.predFanoutReduction = true;
        opts.pathSensitive = true;
        opts.merging = true;
    } else {
        dfp_fatal("unknown configuration '", name,
                  "' (want bb|hyper|intra|inter|both|merge)");
    }
    return opts;
}

const std::vector<std::string> &
allConfigNames()
{
    static const std::vector<std::string> names = {
        "bb", "hyper", "intra", "inter", "both", "merge"};
    return names;
}

namespace
{

/**
 * The fuzzer's deliberate-miscompilation hook (CompileOptions::
 * debugBreak). Applied after the predicate optimizations and their
 * checks, so the damage reaches codegen the way a real pass bug
 * would. Returns the number of instructions tampered with.
 */
int
applyDebugBreak(ir::Function &fn, const std::string &mode)
{
    if (mode != "flip-guard")
        dfp_fatal("unknown debugBreak mode '", mode,
                  "' (want flip-guard)");
    // Prefer a predicated compute instruction; fall back to a
    // predicated bro so even straight-line single-block hyperblocks
    // (the bb configuration) can be broken.
    ir::Instr *victim = nullptr;
    for (ir::BBlock &block : fn.blocks) {
        if (block.term != ir::Term::Hyper)
            continue;
        for (ir::Instr &inst : block.instrs) {
            if (inst.guards.empty())
                continue;
            if (inst.op != isa::Op::Bro) {
                victim = &inst;
                break;
            }
            if (!victim)
                victim = &inst;
        }
        if (victim && victim->op != isa::Op::Bro)
            break;
    }
    if (!victim)
        return 0;
    for (ir::Guard &g : victim->guards)
        g.onTrue = !g.onTrue;
    return 1;
}

CompileResult
compileOnce(const ir::Function &source, const CompileOptions &opts,
            const core::RegionConfig &region)
{
    CompileResult res;
    ir::Function fn = source;

    // Inter-pass IR checking: each pass must leave the function
    // satisfying the invariants of its stage, or the pipeline stops
    // right there instead of miscompiling three passes later.
    auto check = [&](verify::IrStage stage, const char *pass) {
        if (opts.verifyEachPass)
            verify::checkIrOrPanic(fn, stage, pass);
    };
    check(verify::IrStage::Cfg, "input");

    // Every pass is bracketed by a DFP_PHASE wall-time span
    // ("phase.compile.<pass>"); one dead branch each when no
    // PhaseProfiler is installed (base/telemetry.h).

    // 1. Frontend cleanups that are safe pre-SSA.
    {
        DFP_PHASE("phase.compile.foldConstants");
        foldConstants(fn);
    }
    check(verify::IrStage::Cfg, "foldConstants");

    // 2. Loop unrolling (pre-SSA: temps copy verbatim).
    if (opts.unroll.factor > 1) {
        DFP_PHASE("phase.compile.unrollLoops");
        int unrolled = unrollLoops(fn, opts.unroll);
        res.stats.set("pipe.unrolled_loops", unrolled);
        check(verify::IrStage::Cfg, "unrollLoops");
    }

    // 3. SSA and scalar optimizations.
    {
        DFP_PHASE("phase.compile.buildSsa");
        core::buildSsa(fn);
    }
    check(verify::IrStage::Ssa, "buildSsa");
    // Unconditional (not an -O flag): correlated branches must share
    // predicate temps before region selection, or the predicate passes
    // can't see the correlation (see normalizeBranchConds).
    {
        DFP_PHASE("phase.compile.normalizeBranchConds");
        res.stats.set("pipe.br_normalized", normalizeBranchConds(fn));
    }
    check(verify::IrStage::Ssa, "normalizeBranchConds");
    if (opts.scalarOpts) {
        DFP_PHASE("phase.compile.runScalarOpts");
        res.stats.set("pipe.scalar_changes", runScalarOpts(fn));
        check(verify::IrStage::Ssa, "runScalarOpts");
    }

    // 4. Region selection. Naive predication spends block space on
    // predicate fanout trees, so the hyperblock former must leave more
    // headroom in the 128-instruction format; fanout reduction wins
    // that space back, letting regions grow (one source of the paper's
    // 5% dynamic-block reduction, §6).
    core::RegionConfig rc = region;
    if (!opts.hyperblocks)
        rc.maxBlocksPerRegion = 1;
    core::RegionPlan plan;
    {
        DFP_PHASE("phase.compile.selectRegions");
        plan = core::selectRegions(fn, rc);
    }
    res.stats.set("pipe.regions", plan.regions.size());

    // 5. Boundary lowering: registers, null writes, store tokens.
    {
        DFP_PHASE("phase.compile.lowerBoundaries");
        core::BoundaryStats bs = core::lowerBoundaries(fn, plan);
        res.stats.set("pipe.virt_regs", bs.virtRegs);
        res.stats.set("pipe.null_writes", bs.nullWrites);
        res.stats.set("pipe.split_blocks", bs.splitBlocks);
    }
    check(verify::IrStage::Cfg, "lowerBoundaries");

    // 6. If-conversion into hyperblocks (naive predication baseline).
    {
        DFP_PHASE("phase.compile.ifConvert");
        core::ifConvert(fn, plan);
    }
    for (const ir::BBlock &hb : fn.blocks)
        core::checkHyperblock(hb);
    check(verify::IrStage::Hyper, "ifConvert");

    // 7. Dataflow predicate optimizations (§5).
    if (opts.predFanoutReduction) {
        DFP_PHASE("phase.compile.reducePredFanout");
        res.stats.set("pipe.fanout_removed",
                      core::reducePredFanout(fn));
        check(verify::IrStage::Hyper, "reducePredFanout");
    }
    if (opts.pathSensitive) {
        DFP_PHASE("phase.compile.removePathSensitivePreds");
        res.stats.set("pipe.path_sensitive",
                      core::removePathSensitivePreds(fn));
        check(verify::IrStage::Hyper, "removePathSensitivePreds");
    }
    if (opts.merging) {
        DFP_PHASE("phase.compile.mergeDisjointInstructions");
        res.stats.set("pipe.merged",
                      core::mergeDisjointInstructions(fn));
        check(verify::IrStage::Hyper, "mergeDisjointInstructions");
    }
    // Cleanup after the predicate passes.
    {
        DFP_PHASE("phase.compile.eliminateDeadCode");
        eliminateDeadCode(fn);
    }
    for (const ir::BBlock &hb : fn.blocks)
        core::checkHyperblock(hb);
    check(verify::IrStage::Hyper, "eliminateDeadCode");

    if (!opts.debugBreak.empty()) {
        res.stats.set("pipe.debug_break",
                      applyDebugBreak(fn, opts.debugBreak));
    }

    // 8. Register allocation.
    {
        DFP_PHASE("phase.compile.allocateRegisters");
        RegAllocResult ra = allocateRegisters(fn);
        res.stats.set("pipe.arch_regs", ra.regsUsed);
        res.stats.set("pipe.max_live_regs", ra.maxLive);
        res.regalloc = std::move(ra);
    }
    check(verify::IrStage::Hyper, "allocateRegisters");

    // 9. Code generation and linking.
    {
        DFP_PHASE("phase.compile.generateProgram");
        CodegenOptions cg;
        cg.multicast = opts.multicast;
        res.program = generateProgram(fn, cg, &res.stats);
    }

    // 10. Spatial scheduling.
    if (opts.schedule) {
        DFP_PHASE("phase.compile.scheduleProgram");
        scheduleProgram(res.program, opts.grid);
    }

    // Final validation.
    {
        DFP_PHASE("phase.compile.validateProgram");
        isa::ValidationResult vr = isa::validateProgram(res.program);
        if (!vr.ok()) {
            dfp_panic("generated program failed validation: ",
                      vr.joined());
        }
    }
    res.hyperIr = std::move(fn);
    return res;
}

} // namespace

CompileResult
compile(const ir::Function &source, const CompileOptions &opts)
{
    // Region budgets are estimates; fanout trees and constant synthesis
    // can push a block past the 128-instruction format limit, in which
    // case codegen raises "block too large" and we retry smaller.
    core::RegionConfig region = opts.region;
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            return compileOnce(source, opts, region);
        } catch (const FatalError &err) {
            std::string what = err.what();
            if (what.find("block too large") == std::string::npos ||
                attempt == 4) {
                throw;
            }
            region.instrBudget = std::max(8, region.instrBudget * 2 / 3);
            region.memOpBudget = std::max(4, region.memOpBudget * 2 / 3);
            region.maxBlocksPerRegion =
                std::max(1, region.maxBlocksPerRegion / 2);
        }
    }
    dfp_fatal("unreachable: retry loop exhausted for '", source.name,
              "'");
}

CompileResult
compileSource(const std::string &source, const CompileOptions &opts)
{
    return compile(ir::parseFunction(source), opts);
}

} // namespace dfp::compiler
