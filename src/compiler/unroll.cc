#include "compiler/unroll.h"

#include <map>
#include <set>

#include "ir/analysis.h"

namespace dfp::compiler
{

namespace
{

bool
isInnermost(const ir::Loop &loop, const std::vector<ir::Loop> &all)
{
    for (const ir::Loop &other : all) {
        if (other.header == loop.header)
            continue;
        if (loop.body.count(other.header))
            return false;
    }
    return true;
}

bool
eligible(const ir::Function &fn, const ir::Loop &loop,
         const UnrollOptions &opts)
{
    if (static_cast<int>(loop.body.size()) > opts.maxBodyBlocks)
        return false;
    // Never re-unroll a loop that already contains unrolled copies.
    for (int b : loop.body) {
        if (fn.blocks[b].name.find(".u") != std::string::npos)
            return false;
    }
    int instrs = 0;
    for (int b : loop.body) {
        instrs += static_cast<int>(fn.blocks[b].instrs.size());
        for (const ir::Instr &inst : fn.blocks[b].instrs) {
            if (inst.op == isa::Op::Phi)
                return false; // pre-SSA only
        }
    }
    return instrs <= opts.maxBodyInstrs;
}

/** Duplicate one loop @p copies times; pre-SSA, so temps copy as-is. */
void
unrollOne(ir::Function &fn, const ir::Loop &loop, int copies)
{
    const std::string headerName = fn.blocks[loop.header].name;

    // Copy i's blocks get suffix ".u<i>". Map original block id ->
    // label per copy.
    auto copyLabel = [&](int block, int copy) {
        return detail::cat(fn.blocks[block].name, ".u", copy);
    };

    for (int c = 1; c <= copies; ++c) {
        for (int b : loop.body) {
            ir::BBlock clone = fn.blocks[b]; // instrs copied verbatim
            clone.name = copyLabel(b, c);
            clone.preds.clear();
            clone.succs.clear();
            // Retarget internal edges into this copy; back edges to the
            // header go to the next copy (or the original header after
            // the last copy).
            for (std::string &succ : clone.succLabels) {
                int target = fn.blockId(succ);
                if (target < 0 || !loop.body.count(target))
                    continue; // exit edge: unchanged
                if (target == loop.header) {
                    succ = (c == copies) ? headerName
                                         : copyLabel(loop.header, c + 1);
                } else {
                    succ = copyLabel(target, c);
                }
            }
            ir::BBlock &added = fn.addBlock(clone.name);
            int id = added.id;
            fn.blocks[id] = std::move(clone);
            fn.blocks[id].id = id;
        }
    }
    // Original body's back edges now enter copy 1's header.
    for (int b : loop.body) {
        for (std::string &succ : fn.blocks[b].succLabels) {
            if (succ == headerName)
                succ = copyLabel(loop.header, 1);
        }
    }
    fn.computeCfg();
}

} // namespace

int
unrollLoops(ir::Function &fn, const UnrollOptions &opts)
{
    if (opts.factor <= 1)
        return 0;
    std::vector<ir::Loop> loops = ir::findLoops(fn);
    int unrolled = 0;
    for (const ir::Loop &loop : loops) {
        if (!isInnermost(loop, loops))
            continue;
        if (!eligible(fn, loop, opts))
            continue;
        unrollOne(fn, loop, opts.factor - 1);
        ++unrolled;
        // Block ids and the loop forest are stale after one transform;
        // one unrolled loop per call keeps this pass simple. Re-run for
        // more (the pipeline calls it once; nested re-application would
        // unroll the copies again).
        break;
    }
    if (unrolled) {
        fn.verify();
        // Try the remaining loops against the refreshed CFG.
        unrolled += unrollLoops(fn, opts);
    }
    return unrolled;
}

} // namespace dfp::compiler
