/**
 * @file
 * Code generation: hyperblock-form IR to linked isa::TProgram.
 *
 * Responsibilities:
 *  - operand legalization: select immediate opcode forms for 9-bit
 *    immediates, synthesize wide constants from movi/shli/ori chains;
 *  - LSID assignment in program order for loads and stores;
 *  - dataflow wiring: every producing instruction's targets are filled
 *    with (consumer, operand slot) pairs, guards become predicate-slot
 *    targets, Write IR instructions become write-queue slots fed either
 *    directly by their producer or by a predicated mov when guarded;
 *  - store nullification: boundary-inserted Null instructions tagged
 *    with a store token are wired at the matching store so every store
 *    LSID resolves on every path (paper §4.2);
 *  - software fanout trees (paper §3.6): producers whose consumer count
 *    exceeds their target capacity feed mov (or, with the multicast
 *    option, mov4) trees;
 *  - block size/read/write limit checks, with FatalError("block too
 *    large...") so the pipeline can retry with a smaller region budget.
 */

#ifndef DFP_COMPILER_CODEGEN_H
#define DFP_COMPILER_CODEGEN_H

#include "base/stats.h"
#include "ir/ir.h"
#include "isa/tblock.h"

namespace dfp::compiler
{

/** Code generation knobs. */
struct CodegenOptions
{
    bool multicast = false; //!< use mov4 in fanout trees (§7 future work)
};

/**
 * Generate a linked program from a hyperblock-form, register-allocated
 * function. @p stats (optional) receives static counters:
 * codegen.insts, codegen.fanout_movs, codegen.blocks, ...
 */
isa::TProgram generateProgram(const ir::Function &fn,
                              const CodegenOptions &opts,
                              StatSet *stats = nullptr);

} // namespace dfp::compiler

#endif // DFP_COMPILER_CODEGEN_H
