/**
 * @file
 * Spatial instruction scheduler — a greedy variant of the spatial path
 * scheduling the TRIPS toolchain uses (Coons et al. [10] in the paper's
 * bibliography). Each block instruction is assigned an execution tile
 * on the processor grid so that producer/consumer pairs sit close
 * together on the operand network, with register tiles modeled along
 * the top edge (reads/writes prefer their register's column).
 *
 * The result is written into TBlock::placement; an empty placement
 * means the naive round-robin default (the ablation baseline).
 */

#ifndef DFP_COMPILER_SCHEDULER_H
#define DFP_COMPILER_SCHEDULER_H

#include "isa/tblock.h"

namespace dfp::compiler
{

/** Grid dimensions the scheduler optimizes for. */
struct GridShape
{
    int rows = 4;
    int cols = 4;

    int tiles() const { return rows * cols; }

    /** Instructions a tile's reservation stations hold per block. */
    int
    slotsPerTile() const
    {
        return (isa::kMaxInsts + tiles() - 1) / tiles();
    }
};

/** Compute a placement for one block (fills block.placement). */
void scheduleBlock(isa::TBlock &block, const GridShape &grid);

/** Schedule every block of a program. */
void scheduleProgram(isa::TProgram &program, const GridShape &grid);

/** Estimated total operand-network hop count for a placement (for
 *  tests and the scheduler ablation bench). Uses the default
 *  round-robin placement when block.placement is empty. */
int estimateHops(const isa::TBlock &block, const GridShape &grid);

} // namespace dfp::compiler

#endif // DFP_COMPILER_SCHEDULER_H
