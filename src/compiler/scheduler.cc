#include "compiler/scheduler.h"

#include <algorithm>
#include <vector>

#include "base/logging.h"

namespace dfp::compiler
{

namespace
{

/** Manhattan distance between two tiles. */
int
tileDist(const GridShape &grid, int a, int b)
{
    int ar = a / grid.cols, ac = a % grid.cols;
    int br = b / grid.cols, bc = b % grid.cols;
    return std::abs(ar - br) + std::abs(ac - bc);
}

/** Distance from a register tile (top edge, one per column group) to an
 *  execution tile. */
int
regDist(const GridShape &grid, int reg, int tile)
{
    int regCol = reg % grid.cols;
    int tr = tile / grid.cols, tc = tile % grid.cols;
    return (tr + 1) + std::abs(tc - regCol);
}

int
tileOf(const isa::TBlock &block, const GridShape &grid, int idx)
{
    if (!block.placement.empty())
        return block.placement[idx];
    return idx % grid.tiles();
}

} // namespace

void
scheduleBlock(isa::TBlock &block, const GridShape &grid)
{
    const int n = static_cast<int>(block.insts.size());
    block.placement.assign(n, 0);

    // Producer lists per instruction: (kind, who) where kind 0 = inst,
    // kind 1 = read slot (register tile).
    struct Producer
    {
        bool fromRead;
        int id; // inst index or register number
    };
    std::vector<std::vector<Producer>> producers(n);
    std::vector<int> indeg(n, 0);
    for (int i = 0; i < n; ++i) {
        for (const isa::Target &t : block.insts[i].targets) {
            if (t.slot == isa::Slot::WriteQ)
                continue;
            producers[t.index].push_back({false, i});
            ++indeg[t.index];
        }
    }
    for (const isa::ReadSlot &read : block.reads) {
        for (const isa::Target &t : read.targets) {
            if (t.slot != isa::Slot::WriteQ)
                producers[t.index].push_back({true, read.reg});
        }
    }

    // Consumers that are register writes pull instructions toward the
    // destination register's column.
    std::vector<std::vector<int>> writeRegsOf(n);
    for (int i = 0; i < n; ++i) {
        for (const isa::Target &t : block.insts[i].targets) {
            if (t.slot == isa::Slot::WriteQ)
                writeRegsOf[i].push_back(block.writes[t.index].reg);
        }
    }

    // Greedy topological placement.
    std::vector<int> load(grid.tiles(), 0);
    std::vector<int> order;
    order.reserve(n);
    {
        std::vector<int> deg = indeg;
        std::vector<int> stack;
        for (int i = 0; i < n; ++i) {
            if (deg[i] == 0)
                stack.push_back(i);
        }
        while (!stack.empty()) {
            int u = stack.back();
            stack.pop_back();
            order.push_back(u);
            for (const isa::Target &t : block.insts[u].targets) {
                if (t.slot == isa::Slot::WriteQ)
                    continue;
                if (--deg[t.index] == 0)
                    stack.push_back(t.index);
            }
        }
        // Cycles are rejected by the validator; tolerate here by
        // appending any leftovers in index order.
        if (static_cast<int>(order.size()) != n) {
            std::vector<char> seen(n, 0);
            for (int u : order)
                seen[u] = 1;
            for (int i = 0; i < n; ++i) {
                if (!seen[i])
                    order.push_back(i);
            }
        }
    }

    const int cap = grid.slotsPerTile();
    for (int u : order) {
        int bestTile = -1;
        int bestCost = INT32_MAX;
        for (int t = 0; t < grid.tiles(); ++t) {
            if (load[t] >= cap)
                continue;
            int cost = 2 * load[t];
            for (const Producer &p : producers[u]) {
                cost += 4 * (p.fromRead
                                 ? regDist(grid, p.id, t)
                                 : tileDist(grid, block.placement[p.id],
                                            t));
            }
            for (int reg : writeRegsOf[u])
                cost += 4 * regDist(grid, reg, t);
            if (cost < bestCost) {
                bestCost = cost;
                bestTile = t;
            }
        }
        dfp_assert(bestTile >= 0, "no tile has capacity");
        block.placement[u] = static_cast<uint8_t>(bestTile);
        ++load[bestTile];
    }
}

void
scheduleProgram(isa::TProgram &program, const GridShape &grid)
{
    for (isa::TBlock &block : program.blocks)
        scheduleBlock(block, grid);
}

int
estimateHops(const isa::TBlock &block, const GridShape &grid)
{
    int hops = 0;
    for (size_t i = 0; i < block.insts.size(); ++i) {
        int from = tileOf(block, grid, static_cast<int>(i));
        for (const isa::Target &t : block.insts[i].targets) {
            if (t.slot == isa::Slot::WriteQ) {
                hops += regDist(grid, block.writes[t.index].reg, from);
            } else {
                hops += tileDist(grid, from,
                                 tileOf(block, grid, t.index));
            }
        }
    }
    for (const isa::ReadSlot &read : block.reads) {
        for (const isa::Target &t : read.targets) {
            if (t.slot != isa::Slot::WriteQ) {
                hops += regDist(grid, read.reg,
                                tileOf(block, grid, t.index));
            }
        }
    }
    return hops;
}

} // namespace dfp::compiler
