/**
 * @file
 * The dfp compilation pipeline, mirroring the paper's Scale flow (§5):
 * scalar optimizations, loop unrolling, SSA construction, region
 * selection, boundary lowering (reads/writes/nulls), if-conversion into
 * hyperblocks, the three dataflow predicate optimizations, register
 * allocation, code generation with fanout trees, and spatial
 * scheduling.
 *
 * The evaluated configurations of §6 map onto CompileOptions:
 *
 *   BB    = {hyperblocks: false}
 *   Hyper = {hyperblocks: true}                       (naive baseline)
 *   Intra = Hyper + {predFanoutReduction: true}
 *   Inter = Hyper + {pathSensitive: true}
 *   Both  = Hyper + both
 *   Merge = Both  + {merging: true}                   (§5.3, automated)
 */

#ifndef DFP_COMPILER_PIPELINE_H
#define DFP_COMPILER_PIPELINE_H

#include <string>
#include <vector>

#include "base/stats.h"
#include "compiler/codegen.h"
#include "compiler/regalloc.h"
#include "compiler/scheduler.h"
#include "compiler/unroll.h"
#include "core/ifconvert.h"
#include "ir/ir.h"
#include "isa/tblock.h"

namespace dfp::compiler
{

/** Full pipeline configuration. */
struct CompileOptions
{
    bool hyperblocks = true;        //!< false = BB configuration
    bool predFanoutReduction = false; //!< §5.1, "intra"
    bool pathSensitive = false;       //!< §5.2, "inter"
    bool merging = false;             //!< §5.3
    bool scalarOpts = true;
    bool schedule = true;             //!< spatial placement
    bool multicast = false;           //!< mov4 fanout (§7 future work)

    /**
     * Run the verify::checkIrOrPanic IR checker between every pipeline
     * pass (stage-appropriate: cfg / ssa / hyper invariants). On by
     * default in Debug builds so every ctest run exercises the
     * inter-pass checks; off in Release so hot benchmark paths pay
     * nothing. `dfpc --verify` forces it on.
     */
#ifdef NDEBUG
    bool verifyEachPass = false;
#else
    bool verifyEachPass = true;
#endif
    UnrollOptions unroll;
    core::RegionConfig region;
    GridShape grid;

    /**
     * Deliberate-miscompilation hook for the differential fuzzer's
     * self-test (tools/dfp-fuzz --break-opt; see docs/FUZZING.md).
     * Empty = off. "flip-guard" inverts the guard polarity of one
     * predicated instruction after the predicate optimizations — a
     * realistic predication bug the oracle must catch and the reducer
     * must minimize. Never set by production configurations.
     */
    std::string debugBreak;
};

/** The canonical §6 configurations by name. */
CompileOptions configNamed(const std::string &name);

/**
 * The six §6 configuration names in evaluation order (bb, hyper,
 * intra, inter, both, merge) — the enumeration the sweep-style tools
 * (dfp-lint -c all, dfp-fuzz) iterate.
 */
const std::vector<std::string> &allConfigNames();

/** Output of a compilation. */
struct CompileResult
{
    isa::TProgram program;
    ir::Function hyperIr;   //!< final hyperblock-form IR (diagnostics)
    StatSet stats;          //!< static counters from every stage

    /** Register-allocation introspection (coloring + per-hyperblock
     *  liveness pressure) for the static performance analyzer. */
    RegAllocResult regalloc;
};

/** Compile a frontend-stage function; throws FatalError on bad input. */
CompileResult compile(const ir::Function &source,
                      const CompileOptions &opts);

/** Parse and compile IR source text. */
CompileResult compileSource(const std::string &source,
                            const CompileOptions &opts);

} // namespace dfp::compiler

#endif // DFP_COMPILER_PIPELINE_H
