#include "compiler/scalar_opts.h"

#include <map>
#include <set>

#include "ir/analysis.h"
#include "isa/alu.h"
#include "isa/opcodes.h"

namespace dfp::compiler
{

int
foldConstants(ir::Function &fn)
{
    int changes = 0;
    for (ir::BBlock &block : fn.blocks) {
        for (ir::Instr &inst : block.instrs) {
            const auto &info = isa::opInfo(inst.op);
            if (isa::isPseudoOp(inst.op) || inst.op == isa::Op::Ld ||
                inst.op == isa::Op::St || inst.op == isa::Op::Movi ||
                inst.op == isa::Op::Null || inst.op == isa::Op::Read ||
                inst.op == isa::Op::Write || inst.op == isa::Op::Bro ||
                inst.op == isa::Op::Nop || !inst.dst.isTemp()) {
                continue;
            }
            bool allImm = true;
            for (const ir::Opnd &src : inst.srcs)
                allImm &= src.isImm();
            if (!allImm || info.numSrcs == 0)
                continue;
            isa::Token a, b;
            a.value = static_cast<uint64_t>(inst.srcs[0].value);
            if (info.numSrcs >= 2)
                b.value = static_cast<uint64_t>(inst.srcs[1].value);
            isa::Token r = isa::evalOp(inst.op, a, b);
            if (r.excep)
                continue; // leave the faulting op for runtime semantics
            inst.op = isa::Op::Movi;
            inst.srcs = {ir::Opnd::imm(static_cast<int64_t>(r.value))};
            ++changes;
        }
        // Branch folding.
        if (block.term == ir::Term::Br) {
            if (block.cond.isImm()) {
                std::string taken =
                    block.succLabels[block.cond.value != 0 ? 0 : 1];
                std::string other =
                    block.succLabels[block.cond.value != 0 ? 1 : 0];
                // Phi inputs from this block along the dead edge vanish.
                int dead = fn.blockId(other);
                if (dead >= 0 && other != taken) {
                    for (ir::Instr &phi : fn.blocks[dead].instrs) {
                        if (phi.op != isa::Op::Phi)
                            break;
                        for (size_t k = phi.phiBlocks.size(); k-- > 0;) {
                            if (phi.phiBlocks[k] == block.id) {
                                phi.phiBlocks.erase(
                                    phi.phiBlocks.begin() + k);
                                phi.srcs.erase(phi.srcs.begin() + k);
                            }
                        }
                    }
                }
                block.term = ir::Term::Jmp;
                block.succLabels = {taken};
                block.cond = ir::Opnd::none();
                ++changes;
            } else if (block.succLabels[0] == block.succLabels[1]) {
                block.term = ir::Term::Jmp;
                block.succLabels = {block.succLabels[0]};
                block.cond = ir::Opnd::none();
                ++changes;
            }
        }
    }
    if (changes) {
        fn.computeCfg();
        fn.pruneUnreachable();
    }
    return changes;
}

namespace
{

/** If @p inst computes `xor t, 1` (either operand order), the temp t; else -1. */
int
negatedTemp(const ir::Instr &inst)
{
    if (inst.op != isa::Op::Xor || inst.srcs.size() != 2)
        return -1;
    if (inst.srcs[0].isTemp() && inst.srcs[1].isImm() &&
        inst.srcs[1].value == 1) {
        return inst.srcs[0].id;
    }
    if (inst.srcs[1].isTemp() && inst.srcs[0].isImm() &&
        inst.srcs[0].value == 1) {
        return inst.srcs[1].id;
    }
    return -1;
}

} // namespace

int
normalizeBranchConds(ir::Function &fn)
{
    // SSA: one definition per temp.
    std::map<int, const ir::Instr *> defs;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp() && !defs.count(inst.dst.id))
                defs[inst.dst.id] = &inst;
        }
    }

    // `xor t, 1` is logical negation only for 0/1 values: a test
    // result, a 0/1 constant, or a chain of such negations.
    auto isBoolean = [&](int t) {
        for (int fuel = 0; fuel < 8; ++fuel) {
            auto it = defs.find(t);
            if (it == defs.end())
                return false;
            const ir::Instr &d = *it->second;
            if (isa::isTestOp(d.op))
                return true;
            if (d.op == isa::Op::Movi && d.srcs.size() == 1 &&
                d.srcs[0].isImm() &&
                (d.srcs[0].value == 0 || d.srcs[0].value == 1)) {
                return true;
            }
            int inner = negatedTemp(d);
            if (inner < 0)
                return false;
            t = inner;
        }
        return false;
    };

    int changes = 0;
    for (ir::BBlock &block : fn.blocks) {
        if (block.term != ir::Term::Br || !block.cond.isTemp())
            continue;
        // Peel negations one at a time; each swap re-inspects the new
        // condition so double negations collapse fully.
        for (int fuel = 0; fuel < 8; ++fuel) {
            auto it = defs.find(block.cond.id);
            if (it == defs.end())
                break;
            int inner = negatedTemp(*it->second);
            if (inner < 0 || !isBoolean(inner))
                break;
            block.cond = ir::Opnd::temp(inner);
            std::swap(block.succLabels[0], block.succLabels[1]);
            ++changes;
        }
    }
    if (changes)
        fn.computeCfg();
    return changes;
}

int
propagateCopies(ir::Function &fn)
{
    // In SSA a mov's destination can be replaced by its source
    // everywhere; a movi's destination by the immediate.
    std::map<int, ir::Opnd> replace;
    for (ir::BBlock &block : fn.blocks) {
        for (ir::Instr &inst : block.instrs) {
            if (!inst.dst.isTemp())
                continue;
            if (inst.op == isa::Op::Mov && inst.srcs[0].isTemp())
                replace[inst.dst.id] = inst.srcs[0];
            else if (inst.op == isa::Op::Movi && inst.srcs[0].isImm())
                replace[inst.dst.id] = inst.srcs[0];
            else if (inst.op == isa::Op::Phi && inst.srcs.size() == 1)
                replace[inst.dst.id] = inst.srcs[0]; // degenerate phi
        }
    }
    if (replace.empty())
        return 0;
    // Resolve chains (a -> b -> c).
    auto resolve = [&](ir::Opnd o) {
        int fuel = 64;
        while (o.isTemp() && replace.count(o.id) && fuel-- > 0)
            o = replace[o.id];
        return o;
    };
    int changes = 0;
    auto rewrite = [&](ir::Opnd &o) {
        if (!o.isTemp() || !replace.count(o.id))
            return;
        o = resolve(o);
        ++changes;
    };
    for (ir::BBlock &block : fn.blocks) {
        for (ir::Instr &inst : block.instrs) {
            for (ir::Opnd &src : inst.srcs)
                rewrite(src);
            // A degenerate phi is now an ordinary copy of its input.
            if (inst.op == isa::Op::Phi && inst.srcs.size() == 1) {
                inst.op = inst.srcs[0].isImm() ? isa::Op::Movi
                                               : isa::Op::Mov;
                inst.phiBlocks.clear();
                ++changes;
            }
        }
        rewrite(block.cond);
        rewrite(block.retVal);
    }
    return changes;
}

int
eliminateCommonSubexprs(ir::Function &fn)
{
    int changes = 0;
    for (ir::BBlock &block : fn.blocks) {
        std::map<std::string, int> available; // key -> temp
        std::map<int, int> replace;
        uint64_t memClock = 0;
        for (ir::Instr &inst : block.instrs) {
            // Rewrite operands with already-discovered equivalences.
            for (ir::Opnd &src : inst.srcs) {
                if (src.isTemp() && replace.count(src.id)) {
                    src = ir::Opnd::temp(replace[src.id]);
                    ++changes;
                }
            }
            if (inst.op == isa::Op::St) {
                ++memClock; // conservatively invalidate loads
                continue;
            }
            bool pure;
            switch (inst.op) {
              case isa::Op::Read: case isa::Op::Write:
              case isa::Op::Bro:  case isa::Op::Phi:
              case isa::Op::Null: case isa::Op::Nop:
              case isa::Op::Movi: case isa::Op::Mov:
                pure = false;
                break;
              case isa::Op::Ld:
                pure = true; // versioned by memClock
                break;
              default:
                pure = inst.dst.isTemp() && !isa::isPseudoOp(inst.op);
                break;
            }
            if (!pure)
                continue;
            std::string key = isa::opName(inst.op);
            std::vector<ir::Opnd> srcs = inst.srcs;
            if (isa::isCommutative(inst.op) && srcs.size() == 2) {
                auto rank = [](const ir::Opnd &o) -> int64_t {
                    return o.isTemp() ? o.id : (1ll << 28) + o.value;
                };
                if (rank(srcs[0]) > rank(srcs[1]))
                    std::swap(srcs[0], srcs[1]);
            }
            for (const ir::Opnd &src : srcs) {
                key += src.isTemp() ? detail::cat("|t", src.id)
                                    : detail::cat("|#", src.value);
            }
            if (inst.op == isa::Op::Ld)
                key += detail::cat("|m", memClock);
            auto it = available.find(key);
            if (it != available.end()) {
                replace[inst.dst.id] = it->second;
                // The duplicate becomes a dead mov; DCE removes it.
                inst.op = isa::Op::Mov;
                inst.srcs = {ir::Opnd::temp(it->second)};
                ++changes;
            } else {
                available[key] = inst.dst.id;
            }
        }
        // Propagate replacements into the terminator and phi inputs.
        auto rewriteOpnd = [&](ir::Opnd &o) {
            if (o.isTemp() && replace.count(o.id))
                o = ir::Opnd::temp(replace[o.id]);
        };
        rewriteOpnd(block.cond);
        rewriteOpnd(block.retVal);
        for (int succ : block.succs) {
            for (ir::Instr &phi : fn.blocks[succ].instrs) {
                if (phi.op != isa::Op::Phi)
                    break;
                for (size_t k = 0; k < phi.phiBlocks.size(); ++k) {
                    if (phi.phiBlocks[k] == block.id)
                        rewriteOpnd(phi.srcs[k]);
                }
            }
        }
    }
    return changes;
}

int
eliminateDeadCode(ir::Function &fn)
{
    int total = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::set<int> used;
        auto note = [&](const ir::Opnd &o) {
            if (o.isTemp())
                used.insert(o.id);
        };
        for (const ir::BBlock &block : fn.blocks) {
            for (const ir::Instr &inst : block.instrs) {
                for (const ir::Opnd &src : inst.srcs)
                    note(src);
                for (const ir::Guard &g : inst.guards)
                    used.insert(g.pred);
            }
            note(block.cond);
            note(block.retVal);
        }
        for (ir::BBlock &block : fn.blocks) {
            for (size_t i = block.instrs.size(); i-- > 0;) {
                const ir::Instr &inst = block.instrs[i];
                if (inst.hasSideEffect() || inst.op == isa::Op::Read ||
                    inst.op == isa::Op::Null) {
                    continue;
                }
                if (inst.dst.isTemp() && !used.count(inst.dst.id)) {
                    block.instrs.erase(block.instrs.begin() + i);
                    ++total;
                    changed = true;
                }
            }
        }
    }
    return total;
}

int
runScalarOpts(ir::Function &fn)
{
    int total = 0;
    for (int round = 0; round < 8; ++round) {
        int changes = 0;
        changes += foldConstants(fn);
        changes += propagateCopies(fn);
        changes += eliminateCommonSubexprs(fn);
        changes += eliminateDeadCode(fn);
        total += changes;
        if (!changes)
            break;
    }
    fn.verify();
    return total;
}

} // namespace dfp::compiler
