/**
 * @file
 * Classic scalar optimizations run before hyperblock formation (the
 * paper's Scale compiler "performs all traditional loop and scalar
 * optimizations before it forms hyperblocks", §5): constant folding,
 * branch folding, copy propagation, local common-subexpression
 * elimination (with a conservative memory clock for load CSE), and
 * dead-code elimination. Copy propagation, CSE and DCE require SSA
 * form; constant/branch folding work on any CFG-stage function.
 */

#ifndef DFP_COMPILER_SCALAR_OPTS_H
#define DFP_COMPILER_SCALAR_OPTS_H

#include "ir/ir.h"

namespace dfp::compiler
{

/** Fold constant expressions and constant/degenerate branches. */
int foldConstants(ir::Function &fn);

/**
 * Rewrite branches on negated predicates (`br (xor p, 1), A, B` with
 * boolean p) into `br p, B, A`. SSA only.
 *
 * Correlated branches then share one predicate temp, which is what
 * makes them visible to the predicate passes: path-sensitive removal
 * (§5.2) matches on predicate identity, and PredInfo's disjointness
 * prover only chains through guard temps — a negation routed through
 * a fresh xor temp would make provably-exclusive paths look
 * independent and forbid otherwise-legal §5.3 merges.
 */
int normalizeBranchConds(ir::Function &fn);

/** Propagate copies (mov/movi) into uses. SSA only. */
int propagateCopies(ir::Function &fn);

/** Local CSE within each block. SSA only. */
int eliminateCommonSubexprs(ir::Function &fn);

/** Remove side-effect-free instructions with unused results. SSA only. */
int eliminateDeadCode(ir::Function &fn);

/** Run the full scalar pipeline to a fixpoint (bounded). SSA only. */
int runScalarOpts(ir::Function &fn);

} // namespace dfp::compiler

#endif // DFP_COMPILER_SCALAR_OPTS_H
