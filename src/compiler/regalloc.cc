#include "compiler/regalloc.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/null_insertion.h"
#include "isa/tblock.h"

namespace dfp::compiler
{

namespace
{

/**
 * Hyperblock-level liveness of virtual registers. Guarded and
 * null-token writes do not kill (a write that may not fire, or fires
 * with a null token, preserves the previous register value — §4.2), so
 * a write only ends the old value's live range when it is unguarded
 * AND its value is definitely real: every in-block definition of the
 * written temp is itself unguarded and not a Null. Without kills,
 * every register reads as live from entry to its last use, and the
 * inflated interference cliques exhaust the 64-register file on
 * programs that actually fit (found by dfp-fuzz under merge-u4).
 */
std::vector<std::set<int>>
liveInPerBlock(const ir::Function &fn)
{
    size_t n = fn.blocks.size();
    std::vector<std::set<int>> liveIn(n), use(n), kill(n);
    for (const ir::BBlock &block : fn.blocks) {
        std::map<int, std::vector<const ir::Instr *>> defs;
        for (const ir::Instr &inst : block.instrs) {
            if (inst.dst.isTemp())
                defs[inst.dst.id].push_back(&inst);
        }
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Read)
                use[block.id].insert(inst.reg);
            if (inst.op == isa::Op::Bro && inst.broLabel == "@halt")
                use[block.id].insert(core::kRetVirtReg);
            if (inst.op != isa::Op::Write || !inst.guards.empty() ||
                inst.srcs.empty()) {
                continue;
            }
            bool definite = false;
            if (inst.srcs[0].isImm()) {
                definite = true;
            } else if (inst.srcs[0].isTemp()) {
                auto it = defs.find(inst.srcs[0].id);
                definite = it != defs.end();
                if (definite) {
                    for (const ir::Instr *d : it->second) {
                        definite &= d->op != isa::Op::Null &&
                                    d->guards.empty();
                    }
                }
            }
            if (definite)
                kill[block.id].insert(inst.reg);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = n; b-- > 0;) {
            std::set<int> in = use[b];
            for (int s : fn.blocks[b].succs) {
                for (int r : liveIn[s]) {
                    if (!kill[b].count(r))
                        in.insert(r);
                }
            }
            if (in != liveIn[b]) {
                liveIn[b] = std::move(in);
                changed = true;
            }
        }
    }
    return liveIn;
}

} // namespace

RegAllocResult
allocateRegisters(ir::Function &fn)
{
    auto liveIn = liveInPerBlock(fn);

    // Interference: two virtual registers conflict when both are live
    // into the same block, or one is written in a block where the other
    // is live out of it (block granularity, conservative).
    std::set<int> vregs;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Read || inst.op == isa::Op::Write)
                vregs.insert(inst.reg);
        }
    }
    std::map<int, std::set<int>> conflicts;
    auto addClique = [&](const std::set<int> &group) {
        for (int a : group) {
            for (int b : group) {
                if (a != b)
                    conflicts[a].insert(b);
            }
        }
    };
    RegAllocResult res;
    for (const ir::BBlock &block : fn.blocks) {
        std::set<int> active = liveIn[block.id];
        std::set<int> liveOut;
        for (int s : block.succs) {
            for (int r : liveIn[s])
                liveOut.insert(r);
        }
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Write) {
                active.insert(inst.reg);
                liveOut.insert(inst.reg);
            }
            if (inst.op == isa::Op::Bro && inst.broLabel == "@halt")
                liveOut.insert(core::kRetVirtReg);
        }
        for (int r : liveOut)
            active.insert(r);
        addClique(active);
        res.pressure.push_back(
            {block.name, static_cast<int>(active.size())});
        res.maxLive =
            std::max(res.maxLive, static_cast<int>(active.size()));
    }

    res.color[core::kRetVirtReg] = kRetArchReg;
    std::set<int> usedColors{kRetArchReg};
    for (int v : vregs) {
        if (res.color.count(v))
            continue;
        std::set<int> taken;
        for (int other : conflicts[v]) {
            auto it = res.color.find(other);
            if (it != res.color.end())
                taken.insert(it->second);
        }
        int chosen = -1;
        for (int c = 1; c < isa::kNumRegs; ++c) {
            if (!taken.count(c)) {
                chosen = c;
                break;
            }
        }
        if (chosen < 0) {
            dfp_fatal("register allocator ran out of registers in '",
                      fn.name, "' (", vregs.size(), " virtual registers)");
        }
        res.color[v] = chosen;
        usedColors.insert(chosen);
    }
    res.regsUsed = static_cast<int>(usedColors.size());

    for (ir::BBlock &block : fn.blocks) {
        for (ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Read || inst.op == isa::Op::Write)
                inst.reg = res.color.at(inst.reg);
        }
    }
    return res;
}

} // namespace dfp::compiler
