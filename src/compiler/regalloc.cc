#include "compiler/regalloc.h"

#include <set>
#include <vector>

#include "core/null_insertion.h"
#include "isa/tblock.h"

namespace dfp::compiler
{

namespace
{

/** Hyperblock-level liveness of virtual registers. Writes do not kill
 *  (a null write preserves the previous value). */
std::vector<std::set<int>>
liveInPerBlock(const ir::Function &fn)
{
    size_t n = fn.blocks.size();
    std::vector<std::set<int>> liveIn(n), use(n);
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Read)
                use[block.id].insert(inst.reg);
            if (inst.op == isa::Op::Bro && inst.broLabel == "@halt")
                use[block.id].insert(core::kRetVirtReg);
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = n; b-- > 0;) {
            std::set<int> in = use[b];
            for (int s : fn.blocks[b].succs) {
                for (int r : liveIn[s])
                    in.insert(r);
            }
            if (in != liveIn[b]) {
                liveIn[b] = std::move(in);
                changed = true;
            }
        }
    }
    return liveIn;
}

} // namespace

RegAllocResult
allocateRegisters(ir::Function &fn)
{
    auto liveIn = liveInPerBlock(fn);

    // Interference: two virtual registers conflict when both are live
    // into the same block, or one is written in a block where the other
    // is live out of it (block granularity, conservative).
    std::set<int> vregs;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Read || inst.op == isa::Op::Write)
                vregs.insert(inst.reg);
        }
    }
    std::map<int, std::set<int>> conflicts;
    auto addClique = [&](const std::set<int> &group) {
        for (int a : group) {
            for (int b : group) {
                if (a != b)
                    conflicts[a].insert(b);
            }
        }
    };
    for (const ir::BBlock &block : fn.blocks) {
        std::set<int> active = liveIn[block.id];
        std::set<int> liveOut;
        for (int s : block.succs) {
            for (int r : liveIn[s])
                liveOut.insert(r);
        }
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Write) {
                active.insert(inst.reg);
                liveOut.insert(inst.reg);
            }
            if (inst.op == isa::Op::Bro && inst.broLabel == "@halt")
                liveOut.insert(core::kRetVirtReg);
        }
        for (int r : liveOut)
            active.insert(r);
        addClique(active);
    }

    RegAllocResult res;
    res.color[core::kRetVirtReg] = kRetArchReg;
    std::set<int> usedColors{kRetArchReg};
    for (int v : vregs) {
        if (res.color.count(v))
            continue;
        std::set<int> taken;
        for (int other : conflicts[v]) {
            auto it = res.color.find(other);
            if (it != res.color.end())
                taken.insert(it->second);
        }
        int chosen = -1;
        for (int c = 1; c < isa::kNumRegs; ++c) {
            if (!taken.count(c)) {
                chosen = c;
                break;
            }
        }
        if (chosen < 0) {
            dfp_fatal("register allocator ran out of registers in '",
                      fn.name, "' (", vregs.size(), " virtual registers)");
        }
        res.color[v] = chosen;
        usedColors.insert(chosen);
    }
    res.regsUsed = static_cast<int>(usedColors.size());

    for (ir::BBlock &block : fn.blocks) {
        for (ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Read || inst.op == isa::Op::Write)
                inst.reg = res.color.at(inst.reg);
        }
    }
    return res;
}

} // namespace dfp::compiler
