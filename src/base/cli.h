/**
 * @file
 * Shared CLI numeric-flag parsing. Every tool that takes a count
 * ("--watchdog-cycles", "--checkpoint-every", "--retries") or a
 * duration ("--job-timeout") validates through these helpers, so a
 * malformed value produces the same DFPC108 diagnostic (exit 2)
 * everywhere instead of per-tool strtoull ad-hockery that silently
 * read "10x" as 10 or "abc" as 0.
 */

#ifndef DFP_BASE_CLI_H
#define DFP_BASE_CLI_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace dfp::cli
{

/**
 * Parse a non-negative integer count. The whole string must be
 * digits — trailing garbage, signs, empty strings, and overflow all
 * fail with a human-readable reason in @p error.
 */
inline bool
parseCount(const std::string &text, uint64_t &out, std::string &error)
{
    if (text.empty()) {
        error = "empty value (expected a non-negative integer)";
        return false;
    }
    for (char c : text) {
        if (c < '0' || c > '9') {
            error = "'" + text +
                    "' is not a non-negative integer";
            return false;
        }
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size()) {
        error = "'" + text + "' is out of range for a 64-bit count";
        return false;
    }
    out = static_cast<uint64_t>(v);
    return true;
}

/**
 * Parse a duration into seconds. Accepts a non-negative decimal number
 * with an optional unit suffix: "30" / "30s" = 30 seconds, "5m" = 300,
 * "2h" = 7200, "1.5s" = 1.5. Anything else fails with a reason.
 */
inline bool
parseSeconds(const std::string &text, double &out, std::string &error)
{
    if (text.empty()) {
        error = "empty value (expected a duration like '30', '30s', "
                "'5m', or '1h')";
        return false;
    }
    std::string number = text;
    double scale = 1.0;
    switch (text.back()) {
      case 's':
        number = text.substr(0, text.size() - 1);
        break;
      case 'm':
        number = text.substr(0, text.size() - 1);
        scale = 60.0;
        break;
      case 'h':
        number = text.substr(0, text.size() - 1);
        scale = 3600.0;
        break;
      default:
        break;
    }
    if (number.empty()) {
        error = "'" + text + "' has a unit but no number";
        return false;
    }
    // Reject signs and whitespace up front; strtod accepts both.
    for (char c : number) {
        if ((c < '0' || c > '9') && c != '.') {
            error = "'" + text +
                    "' is not a duration (expected e.g. '30', '30s', "
                    "'5m', '1h')";
            return false;
        }
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(number.c_str(), &end);
    if (errno == ERANGE || end != number.c_str() + number.size() ||
        v < 0.0) {
        error = "'" + text + "' is not a valid duration";
        return false;
    }
    out = v * scale;
    return true;
}

} // namespace dfp::cli

#endif // DFP_BASE_CLI_H
