#include "base/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "base/json.h"

namespace dfp::telemetry
{

namespace
{

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

uint64_t
mintTraceId()
{
    static std::atomic<uint64_t> counter{0};
    const uint64_t wall = uint64_t(
        std::chrono::system_clock::now().time_since_epoch().count());
    uint64_t id = splitmix64(wall ^ (uint64_t(getpid()) << 32) ^
                             counter.fetch_add(1, std::memory_order_relaxed));
    // 0 means "no trace id" on the wire; never mint it.
    return id != 0 ? id : 1;
}

// ---------------------------------------------------------------------
// SpanCollector.

SpanCollector::SpanCollector(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity != 0 ? capacity : 1)
{}

uint64_t
SpanCollector::nowUs() const
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - epoch_)
                        .count());
}

void
SpanCollector::record(const std::string &name, uint64_t traceId,
                      uint64_t startUs, uint64_t durUs, int track)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= capacity_) {
        spans_.pop_front();
        ++dropped_;
    }
    spans_.push_back(SpanRecord{name, traceId, startUs, durUs, track, seq_++});
}

std::vector<SpanRecord>
SpanCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

uint64_t
SpanCollector::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

size_t
SpanCollector::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

// ---------------------------------------------------------------------
// PhaseProfiler.

void
PhaseProfiler::record(const char *phase, uint64_t micros)
{
    std::lock_guard<std::mutex> lock(mu_);
    phases_[phase].add(micros);
}

std::map<std::string, Histogram>
PhaseProfiler::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return phases_;
}

void
PhaseProfiler::mergeInto(StatSet &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, hist] : phases_)
        out.histogram(name).merge(hist);
}

namespace
{
std::atomic<PhaseProfiler *> gPhaseProfiler{nullptr};
} // namespace

PhaseProfiler *
phaseProfiler()
{
    return gPhaseProfiler.load(std::memory_order_acquire);
}

void
setPhaseProfiler(PhaseProfiler *profiler)
{
    gPhaseProfiler.store(profiler, std::memory_order_release);
}

namespace detail
{

ScopedPhase::ScopedPhase(const char *phase)
    : profiler_(gPhaseProfiler.load(std::memory_order_acquire)), phase_(phase)
{
    if (__builtin_expect(profiler_ != nullptr, 0))
        start_ = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase()
{
    if (__builtin_expect(profiler_ != nullptr, 0)) {
        const auto end = std::chrono::steady_clock::now();
        profiler_->record(
            phase_,
            uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                         end - start_)
                         .count()));
    }
}

} // namespace detail

// ---------------------------------------------------------------------
// Gauges / sampler.

void
GaugeRegistry::add(const std::string &name, Fn fn)
{
    std::lock_guard<std::mutex> lock(mu_);
    gauges_.emplace_back(name, std::move(fn));
}

std::vector<std::string>
GaugeRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(gauges_.size());
    for (const auto &[name, fn] : gauges_)
        out.push_back(name);
    return out;
}

std::vector<double>
GaugeRegistry::sample() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<double> out;
    out.reserve(gauges_.size());
    for (const auto &[name, fn] : gauges_)
        out.push_back(fn ? fn() : 0.0);
    return out;
}

size_t
GaugeRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_.size();
}

double
rssBytes()
{
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0.0;
    unsigned long long vmPages = 0, rssPages = 0;
    const int got = std::fscanf(f, "%llu %llu", &vmPages, &rssPages);
    std::fclose(f);
    if (got != 2)
        return 0.0;
    return double(rssPages) * double(sysconf(_SC_PAGESIZE));
}

MetricRing::MetricRing(size_t capacity) : capacity_(capacity != 0 ? capacity : 1)
{}

void
MetricRing::push(MetricSample sample)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() >= capacity_)
        samples_.pop_front();
    samples_.push_back(std::move(sample));
}

std::vector<MetricSample>
MetricRing::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<MetricSample>(samples_.begin(), samples_.end());
}

size_t
MetricRing::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
}

void
Sampler::start(const GaugeRegistry *gauges, MetricRing *ring,
               uint64_t periodMs, std::function<void()> onSample)
{
    if (periodMs == 0 || thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = false;
    }
    thread_ = std::thread(&Sampler::loop, this, gauges, ring, periodMs,
                          std::move(onSample));
}

void
Sampler::stop()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Sampler::loop(const GaugeRegistry *gauges, MetricRing *ring,
              uint64_t periodMs, std::function<void()> onSample)
{
    const auto epoch = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
        if (cv_.wait_for(lock, std::chrono::milliseconds(periodMs),
                         [this] { return stopping_; }))
            break;
        lock.unlock();
        MetricSample s;
        s.steadyMs = uint64_t(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - epoch)
                .count());
        if (gauges != nullptr)
            s.values = gauges->sample();
        if (ring != nullptr)
            ring->push(std::move(s));
        ticks_.fetch_add(1, std::memory_order_relaxed);
        if (onSample)
            onSample();
        lock.lock();
    }
}

// ---------------------------------------------------------------------
// Exposition.

std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

void
writePrometheus(std::ostream &os, const StatSet &stats,
                const std::vector<std::string> &gaugeNames,
                const std::vector<double> &gaugeValues)
{
    for (const auto &[name, value] : stats.all()) {
        const std::string m = promName(name);
        os << "# HELP " << m << " Counter " << name << "\n";
        os << "# TYPE " << m << " counter\n";
        os << m << " " << value << "\n";
    }
    // Gauges arrive in registration order; sort for a stable payload.
    std::vector<std::pair<std::string, double>> gauges;
    const size_t n = std::min(gaugeNames.size(), gaugeValues.size());
    gauges.reserve(n);
    for (size_t i = 0; i < n; ++i)
        gauges.emplace_back(gaugeNames[i], gaugeValues[i]);
    std::sort(gauges.begin(), gauges.end());
    for (const auto &[name, value] : gauges) {
        const std::string m = promName(name);
        os << "# HELP " << m << " Gauge " << name << "\n";
        os << "# TYPE " << m << " gauge\n";
        os << m << " " << value << "\n";
    }
    for (const auto &[name, hist] : stats.allHistograms()) {
        const std::string m = promName(name);
        os << "# HELP " << m << " Histogram " << name << "\n";
        os << "# TYPE " << m << " histogram\n";
        // Power-of-two capture buckets: everything in bucket i is
        // <= 2^i - 1, so those are the natural `le` bounds. The last
        // bucket is open-ended and folds into +Inf.
        uint64_t cumulative = 0;
        const auto &buckets = hist.buckets();
        for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
            cumulative += buckets[i];
            os << m << "_bucket{le=\"" << Histogram::bucketHi(i) << "\"} "
               << cumulative << "\n";
        }
        os << m << "_bucket{le=\"+Inf\"} " << hist.count() << "\n";
        os << m << "_sum " << hist.sum() << "\n";
        os << m << "_count " << hist.count() << "\n";
    }
}

void
writeMetricsJson(std::ostream &os, const StatSet &stats,
                 const std::vector<std::string> &gaugeNames,
                 const std::vector<double> &gaugeValues,
                 const MetricRing *ring)
{
    json::Writer w(os);
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : stats.all())
        w.key(name).value(value);
    w.endObject();
    w.key("gauges").beginObject();
    const size_t n = std::min(gaugeNames.size(), gaugeValues.size());
    for (size_t i = 0; i < n; ++i)
        w.key(gaugeNames[i]).value(gaugeValues[i]);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, hist] : stats.allHistograms()) {
        w.key(name).beginObject();
        w.key("count").value(hist.count());
        w.key("sum").value(hist.sum());
        w.key("min").value(hist.min());
        w.key("max").value(hist.max());
        w.key("mean").value(hist.mean());
        w.key("p50").value(hist.quantile(0.50));
        w.key("p90").value(hist.quantile(0.90));
        w.key("p99").value(hist.quantile(0.99));
        w.endObject();
    }
    w.endObject();
    if (ring != nullptr) {
        w.key("series").beginArray();
        for (const MetricSample &s : ring->snapshot()) {
            w.beginObject();
            w.key("t_ms").value(s.steadyMs);
            w.key("values").beginArray();
            for (double v : s.values)
                w.value(v);
            w.endArray();
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

void
rollupSpans(const std::vector<SpanRecord> &spans, StatSet &out)
{
    for (const SpanRecord &span : spans) {
        out.inc("span.count");
        out.sample("span." + span.name + "_us", span.durUs);
    }
}

} // namespace dfp::telemetry
