/**
 * @file
 * A tiny recursive-descent JSON parser. Parses a complete document
 * into an owned DOM; enough of RFC 8259 to read back anything
 * dfp::json::Writer produced. Consumers: `dfp-bench --compare`
 * (reads BENCH_*.json baselines) and the test suite's assertions on
 * every JSON artifact (via tests/support/minijson.h, an alias of this
 * header). Not a general-purpose parser — numbers are doubles, \u
 * escapes decode the low byte only.
 */

#ifndef DFP_BASE_JSON_READER_H
#define DFP_BASE_JSON_READER_H

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dfp::minijson
{

struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }

    bool has(const std::string &key) const
    {
        return type == Type::Object && obj.count(key) > 0;
    }

    /** Object member access; returns a Null value for misses. */
    const Value &operator[](const std::string &key) const
    {
        static const Value kNull;
        auto it = obj.find(key);
        return it == obj.end() ? kNull : it->second;
    }
};

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    /** Parse one complete document; ok() reports success. */
    Value
    parse()
    {
        Value v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

  private:
    void
    fail(const char *what)
    {
        if (error_.empty())
            error_ = std::string(what) + " at offset " +
                     std::to_string(pos_);
        pos_ = text_.size(); // stop consuming
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    Value
    parseValue()
    {
        // Hostile input must fail cleanly, not blow the stack: a
        // document of a million '[' characters would otherwise recurse
        // once per bracket. The cap is far above anything the tools
        // emit (their artifacts nest a handful of levels).
        if (depth_ >= kMaxDepth) {
            fail("nesting too deep");
            return Value();
        }
        ++depth_;
        Value v;
        switch (peek()) {
          case '{': v = parseObject(); break;
          case '[': v = parseArray(); break;
          case '"': v = parseString(); break;
          case 't':
          case 'f': v = parseBool(); break;
          case 'n': v = parseNull(); break;
          default: v = parseNumber(); break;
        }
        --depth_;
        return v;
    }

    Value
    parseObject()
    {
        Value v;
        v.type = Value::Type::Object;
        consume('{');
        if (consume('}'))
            return v;
        do {
            if (peek() != '"') {
                fail("expected object key");
                return v;
            }
            Value key = parseString();
            if (!consume(':')) {
                fail("expected ':'");
                return v;
            }
            v.obj[key.str] = parseValue();
        } while (consume(','));
        if (!consume('}'))
            fail("expected '}'");
        return v;
    }

    Value
    parseArray()
    {
        Value v;
        v.type = Value::Type::Array;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.arr.push_back(parseValue());
        } while (consume(','));
        if (!consume(']'))
            fail("expected ']'");
        return v;
    }

    Value
    parseString()
    {
        Value v;
        v.type = Value::Type::String;
        consume('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return v;
                }
                for (size_t i = 0; i < 4; i++) {
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + i]))) {
                        fail("bad \\u escape");
                        return v;
                    }
                }
                // Tests only need ASCII; decode the low byte.
                v.str += static_cast<char>(std::strtoul(
                    std::string(text_.substr(pos_, 4)).c_str(), nullptr,
                    16));
                pos_ += 4;
                break;
              }
              default: fail("bad escape"); return v;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return v;
    }

    Value
    parseNumber()
    {
        Value v;
        v.type = Value::Type::Number;
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            fail("expected value");
            return v;
        }
        // strtod must consume the whole token: the character scan above
        // admits shapes like "1.2.3", "--5", or a bare "e" that strtod
        // silently truncates or reads as zero.
        std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char *end = nullptr;
        v.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            fail("bad number");
            return v;
        }
        if (errno == ERANGE && std::fabs(v.number) == HUGE_VAL) {
            fail("number out of range");
            return v;
        }
        return v;
    }

    Value
    parseBool()
    {
        Value v;
        v.type = Value::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    Value
    parseNull()
    {
        Value v;
        if (text_.compare(pos_, 4, "null") == 0)
            pos_ += 4;
        else
            fail("bad literal");
        return v;
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

/** One-shot parse; sets @p ok (when non-null) to the parse status. */
inline Value
parse(std::string_view text, bool *ok = nullptr, std::string *err = nullptr)
{
    Parser p(text);
    Value v = p.parse();
    if (ok)
        *ok = p.ok();
    if (err)
        *err = p.error();
    return v;
}

} // namespace dfp::minijson

#endif // DFP_BASE_JSON_READER_H
