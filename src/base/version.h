/**
 * @file
 * Build provenance. The returned string is the `git describe --always
 * --dirty --tags` output captured at configure time ("unknown" when the
 * source tree is not a git checkout). Tools print it for --version and
 * embed it in their JSON artifacts so every emitted file records the
 * revision that produced it.
 */

#ifndef DFP_BASE_VERSION_H
#define DFP_BASE_VERSION_H

namespace dfp
{

/** The git describe string baked in at configure time. */
const char *versionString();

} // namespace dfp

#endif // DFP_BASE_VERSION_H
