/**
 * @file
 * A tiny named-statistics registry, in the spirit of the gem5 stats
 * package: simulator and compiler components register scalar counters
 * and latency histograms under dotted names; harnesses dump them as
 * text or JSON, or query them after a run.
 *
 * Names are hierarchical by convention ("sim.tile.3.issued",
 * "sim.net.hop_latency"): consumers can roll sub-trees up by prefix.
 */

#ifndef DFP_BASE_STATS_H
#define DFP_BASE_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "base/serialize.h"

namespace dfp
{

/**
 * A power-of-two-bucketed distribution, cheap enough for simulator hot
 * paths: bucket 0 holds zero-valued samples, bucket i holds samples in
 * [2^(i-1), 2^i), and the last bucket absorbs everything larger.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 17;

    /** Record one sample. Inline — simulator hot paths call this per
     *  event (e.g. per operand-network message). */
    void
    add(uint64_t value)
    {
        ++count_;
        sum_ += value;
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
        int bucket = 0;
        if (value > 0) {
            // floorLog2(value) + 1, capped to the last bucket.
            int log = 63 - __builtin_clzll(value);
            bucket = log + 1 < kBuckets ? log + 1 : kBuckets - 1;
        }
        ++buckets_[bucket];
    }

    void merge(const Histogram &other);
    void clear() { *this = Histogram(); }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    /** Smallest/largest sample seen; 0 when empty. */
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }
    const std::array<uint64_t, kBuckets> &buckets() const { return buckets_; }

    /** Inclusive lower bound of bucket @p i (0, 1, 2, 4, 8, ...). */
    static uint64_t bucketLo(int i) { return i == 0 ? 0 : 1ull << (i - 1); }

    /** Inclusive upper bound of bucket @p i (0, 1, 3, 7, 15, ...). */
    static uint64_t
    bucketHi(int i)
    {
        return i == 0 ? 0 : (1ull << i) - 1;
    }

    /**
     * Estimate the @p q quantile (q in [0,1]) by linear interpolation
     * within the power-of-two bucket containing the target rank,
     * clamped to the observed [min, max]. Exact for q=0/q=1; within a
     * factor of two elsewhere, which is what bucketed capture can
     * honestly promise. Returns 0 for an empty histogram.
     */
    double quantile(double q) const;

    /**
     * Rebuild from previously exported aggregates (checkpoint payloads,
     * journal entries). @p minSeen is the raw smallest sample; pass 0
     * with @p count == 0 to reconstruct an empty histogram exactly.
     */
    void
    restore(uint64_t count, uint64_t sum, uint64_t minSeen, uint64_t maxSeen,
            const std::array<uint64_t, kBuckets> &buckets)
    {
        count_ = count;
        sum_ = sum;
        min_ = count ? minSeen : ~0ull;
        max_ = maxSeen;
        buckets_ = buckets;
    }

    void save(serialize::BinWriter &w) const;
    void load(serialize::BinReader &r);

  private:
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ull;
    uint64_t max_ = 0;
    std::array<uint64_t, kBuckets> buckets_{};
};

/**
 * An ordered collection of named scalar statistics and histograms.
 *
 * Values are 64-bit counters; ratio-style derived values are computed by
 * the consumer. Lookup of a missing name returns 0 so harness code can be
 * written without existence checks.
 */
class StatSet
{
  public:
    /** Add @p delta to the counter @p name (creating it at zero). */
    void
    inc(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Overwrite the counter @p name. */
    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Maximum-update for high-water-mark style stats. */
    void
    maxOf(const std::string &name, uint64_t value)
    {
        uint64_t &slot = counters_[name];
        if (value > slot)
            slot = value;
    }

    /** Read a counter; missing names read as 0. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Record one sample into the histogram @p name (creating it). */
    void
    sample(const std::string &name, uint64_t value)
    {
        histograms_[name].add(value);
    }

    /** Access (and create) the histogram @p name — components that
     *  sample on hot paths should hold this reference, not re-look-up. */
    Histogram &histogram(const std::string &name) { return histograms_[name]; }

    /** Adopt a component-owned histogram wholesale. */
    void
    setHistogram(const std::string &name, const Histogram &h)
    {
        histograms_[name] = h;
    }

    /** Remove all counters and histograms. */
    void
    clear()
    {
        counters_.clear();
        histograms_.clear();
    }

    /** Merge another set into this one (counters add, histograms merge). */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
        for (const auto &[name, hist] : other.histograms_)
            histograms_[name].merge(hist);
    }

    /** Dump "name value" lines (and histogram summaries), sorted by name. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Emit the whole set as one JSON object:
     *   {"counters":{...},"histograms":{name:{count,sum,min,max,mean,
     *    buckets:[...]}}}
     */
    void dumpJson(std::ostream &os) const;

    /** Serialize/restore the full set (checkpoint payloads). */
    void save(serialize::BinWriter &w) const;
    void load(serialize::BinReader &r);

    /** Access all counters (sorted by name). */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Access all histograms (sorted by name). */
    const std::map<std::string, Histogram> &
    allHistograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace dfp

#endif // DFP_BASE_STATS_H
