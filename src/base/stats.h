/**
 * @file
 * A tiny named-statistics registry, in the spirit of the gem5 stats
 * package: simulator and compiler components register scalar counters
 * under dotted names; harnesses dump or query them after a run.
 */

#ifndef DFP_BASE_STATS_H
#define DFP_BASE_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace dfp
{

/**
 * An ordered collection of named scalar statistics.
 *
 * Values are 64-bit counters; ratio-style derived values are computed by
 * the consumer. Lookup of a missing name returns 0 so harness code can be
 * written without existence checks.
 */
class StatSet
{
  public:
    /** Add @p delta to the counter @p name (creating it at zero). */
    void
    inc(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Overwrite the counter @p name. */
    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Maximum-update for high-water-mark style stats. */
    void
    maxOf(const std::string &name, uint64_t value)
    {
        uint64_t &slot = counters_[name];
        if (value > slot)
            slot = value;
    }

    /** Read a counter; missing names read as 0. */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Remove all counters. */
    void clear() { counters_.clear(); }

    /** Merge another set into this one by addition. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Dump "name value" lines, sorted by name. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Access all counters (sorted by name). */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace dfp

#endif // DFP_BASE_STATS_H
