#include "base/signals.h"

#include <csignal>

#include "base/io.h"

namespace dfp::signals
{

namespace
{

std::atomic<int> g_stop{0};
std::atomic<int> g_count{0};

extern "C" void
onStopSignal(int signo)
{
    // Only the atomic stores: everything else is deferred to the
    // polling loop, keeping the handler trivially async-signal-safe.
    g_stop.store(signo, std::memory_order_relaxed);
    g_count.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

void
installStopHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: let blocking IO fail fast too
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // A disconnected peer must be an EPIPE error, never process death
    // — neither for the serve daemon nor for a tool piping to a pager.
    io::ignoreSigpipe();
}

const std::atomic<int> &
stopRequested()
{
    return g_stop;
}

int
stopSignal()
{
    return g_stop.load(std::memory_order_relaxed);
}

int
stopCount()
{
    return g_count.load(std::memory_order_relaxed);
}

} // namespace dfp::signals
