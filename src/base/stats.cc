#include "base/stats.h"

#include "base/json.h"

namespace dfp
{

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

void
Histogram::save(serialize::BinWriter &w) const
{
    w.u64(count_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
    for (uint64_t b : buckets_)
        w.u64(b);
}

void
Histogram::load(serialize::BinReader &r)
{
    count_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] = r.u64();
}

void
StatSet::save(serialize::BinWriter &w) const
{
    w.u64(counters_.size());
    for (const auto &[name, value] : counters_) {
        w.str(name);
        w.u64(value);
    }
    w.u64(histograms_.size());
    for (const auto &[name, hist] : histograms_) {
        w.str(name);
        hist.save(w);
    }
}

void
StatSet::load(serialize::BinReader &r)
{
    clear();
    size_t nc = r.len(9);
    for (size_t i = 0; i < nc && r.ok(); ++i) {
        std::string name = r.str();
        counters_[name] = r.u64();
    }
    size_t nh = r.len(8);
    for (size_t i = 0; i < nh && r.ok(); ++i) {
        std::string name = r.str();
        histograms_[name].load(r);
    }
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : counters_)
        os << prefix << name << " " << value << "\n";
    for (const auto &[name, hist] : histograms_) {
        os << prefix << name << " count=" << hist.count()
           << " sum=" << hist.sum() << " min=" << hist.min()
           << " max=" << hist.max() << " mean=" << hist.mean() << "\n";
    }
}

void
StatSet::dumpJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : counters_)
        w.key(name).value(value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, hist] : histograms_) {
        w.key(name).beginObject();
        w.key("count").value(hist.count());
        w.key("sum").value(hist.sum());
        w.key("min").value(hist.min());
        w.key("max").value(hist.max());
        w.key("mean").value(hist.mean());
        w.key("buckets").beginArray();
        for (uint64_t b : hist.buckets())
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace dfp
