#include "base/stats.h"

namespace dfp
{

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : counters_)
        os << prefix << name << " " << value << "\n";
}

} // namespace dfp
