#include "base/stats.h"

#include <algorithm>

#include "base/json.h"

namespace dfp
{

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

void
Histogram::save(serialize::BinWriter &w) const
{
    w.u64(count_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
    for (uint64_t b : buckets_)
        w.u64(b);
}

void
Histogram::load(serialize::BinReader &r)
{
    count_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] = r.u64();
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q <= 0.0)
        return double(min());
    if (q >= 1.0)
        return double(max_);
    // Rank of the target sample (1-based), then walk the cumulative
    // bucket counts until it is covered.
    const double rank = q * double(count_);
    uint64_t below = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const uint64_t here = buckets_[i];
        if (here == 0)
            continue;
        if (double(below + here) >= rank) {
            // Interpolate within [lo, hi] by the fraction of the
            // bucket's population below the target rank.
            double lo = double(bucketLo(i));
            double hi = double(bucketHi(i));
            // The top bucket is open-ended; the observed max is the
            // only honest upper bound for it.
            if (i == kBuckets - 1)
                hi = double(max_);
            lo = std::max(lo, double(min()));
            hi = std::min(hi, double(max_));
            if (hi < lo)
                hi = lo;
            const double frac = (rank - double(below)) / double(here);
            return lo + frac * (hi - lo);
        }
        below += here;
    }
    return double(max_);
}

void
StatSet::save(serialize::BinWriter &w) const
{
    w.u64(counters_.size());
    for (const auto &[name, value] : counters_) {
        w.str(name);
        w.u64(value);
    }
    w.u64(histograms_.size());
    for (const auto &[name, hist] : histograms_) {
        w.str(name);
        hist.save(w);
    }
}

void
StatSet::load(serialize::BinReader &r)
{
    clear();
    size_t nc = r.len(9);
    for (size_t i = 0; i < nc && r.ok(); ++i) {
        std::string name = r.str();
        counters_[name] = r.u64();
    }
    size_t nh = r.len(8);
    for (size_t i = 0; i < nh && r.ok(); ++i) {
        std::string name = r.str();
        histograms_[name].load(r);
    }
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : counters_)
        os << prefix << name << " " << value << "\n";
    for (const auto &[name, hist] : histograms_) {
        os << prefix << name << " count=" << hist.count()
           << " sum=" << hist.sum() << " min=" << hist.min()
           << " max=" << hist.max() << " mean=" << hist.mean()
           << " p50=" << hist.quantile(0.50)
           << " p90=" << hist.quantile(0.90)
           << " p99=" << hist.quantile(0.99) << "\n";
    }
}

void
StatSet::dumpJson(std::ostream &os) const
{
    json::Writer w(os);
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : counters_)
        w.key(name).value(value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, hist] : histograms_) {
        w.key(name).beginObject();
        w.key("count").value(hist.count());
        w.key("sum").value(hist.sum());
        w.key("min").value(hist.min());
        w.key("max").value(hist.max());
        w.key("mean").value(hist.mean());
        w.key("p50").value(hist.quantile(0.50));
        w.key("p90").value(hist.quantile(0.90));
        w.key("p99").value(hist.quantile(0.99));
        w.key("buckets").beginArray();
        for (uint64_t b : hist.buckets())
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

} // namespace dfp
