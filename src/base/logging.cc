#include "base/logging.h"

#include <cstdio>

namespace dfp
{

std::atomic<bool> quietWarnings{false};

namespace detail
{

std::string
formatMessage(const char *level, const char *file, int line,
              const std::string &msg)
{
    std::ostringstream os;
    os << level << ": " << file << ":" << line << ": " << msg;
    return os.str();
}

void
emitLog(const char *level, const std::string &msg)
{
    if (quietWarnings.load(std::memory_order_relaxed))
        return;
    // One buffer, one write: stderr is unbuffered, so a single fwrite
    // maps to a single write(2) and concurrent emitters cannot
    // interleave characters within a line.
    std::string line;
    line.reserve(msg.size() + 16);
    line += level;
    line += ": ";
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace detail
} // namespace dfp
