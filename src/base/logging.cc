#include "base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace dfp
{

std::atomic<bool> quietWarnings{false};

namespace detail
{

std::atomic<int> logTimestampsOverride{-1};

namespace
{

// DFP_LOG_TIMESTAMPS=1 prefixes every emitLog line with an ISO-8601
// UTC timestamp and the emitting thread's id — for correlating daemon
// logs with scraped metrics. Read once: flipping the environment
// mid-process is not a supported way to toggle log formats.
bool
timestampsEnabled()
{
    const int forced = logTimestampsOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool enabled = [] {
        const char *v = std::getenv("DFP_LOG_TIMESTAMPS");
        return v != nullptr && v[0] == '1' && v[1] == '\0';
    }();
    return enabled;
}

// "2026-08-08T12:34:56.789Z [tid] " — composed into the caller's
// buffer so the single-fwrite no-interleave guarantee holds.
void
appendTimestampPrefix(std::string &line)
{
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);
    char buf[48];
    std::size_t n = std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
    line.append(buf, n);
    std::snprintf(buf, sizeof buf, ".%03ldZ", ts.tv_nsec / 1000000);
    line += buf;
    std::ostringstream tid;
    tid << " [" << std::this_thread::get_id() << "] ";
    line += tid.str();
}

} // namespace

std::string
formatMessage(const char *level, const char *file, int line,
              const std::string &msg)
{
    std::ostringstream os;
    os << level << ": " << file << ":" << line << ": " << msg;
    return os.str();
}

void
emitLog(const char *level, const std::string &msg)
{
    if (quietWarnings.load(std::memory_order_relaxed))
        return;
    // One buffer, one write: stderr is unbuffered, so a single fwrite
    // maps to a single write(2) and concurrent emitters cannot
    // interleave characters within a line.
    std::string line;
    line.reserve(msg.size() + 64);
    if (timestampsEnabled())
        appendTimestampPrefix(line);
    line += level;
    line += ": ";
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace detail
} // namespace dfp
