#include "base/logging.h"

#include <cstdio>

namespace dfp
{

bool quietWarnings = false;

namespace detail
{

std::string
formatMessage(const char *level, const char *file, int line,
              const std::string &msg)
{
    std::ostringstream os;
    os << level << ": " << file << ":" << line << ": " << msg;
    return os.str();
}

void
emitLog(const char *level, const std::string &msg)
{
    if (quietWarnings)
        return;
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace detail
} // namespace dfp
