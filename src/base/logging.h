/**
 * @file
 * Error reporting and logging for dfp, following the gem5 convention:
 * panic() for internal invariant violations (a dfp bug), fatal() for
 * conditions caused by user input (bad IR, malformed configuration),
 * warn()/inform() for status messages.
 *
 * Unlike gem5, panic() and fatal() throw typed exceptions instead of
 * aborting the process, so the test suite can assert on them; the
 * top-level drivers catch them and exit with an error code.
 */

#ifndef DFP_BASE_LOGGING_H
#define DFP_BASE_LOGGING_H

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dfp
{

/** Thrown by panic(): an internal dfp invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user's input or configuration is invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Builds a "file:line: message" string for panic/fatal reports. */
std::string formatMessage(const char *level, const char *file, int line,
                          const std::string &msg);

/** Emits a warning/info line to stderr. Thread-safe: the whole line
 *  (level, message, newline) is composed in a buffer and written with
 *  a single call, so warnings from BatchRunner workers and server
 *  threads never interleave mid-line. With DFP_LOG_TIMESTAMPS=1 in
 *  the environment every line gains an ISO-8601 UTC timestamp and
 *  thread-id prefix (read once at first use). */
void emitLog(const char *level, const std::string &msg);

/** Test-only: -1 = follow DFP_LOG_TIMESTAMPS (the default), 0 = force
 *  off, 1 = force on. The environment variable is latched on first
 *  use, so tests toggle this instead of setenv(). */
extern std::atomic<int> logTimestampsOverride;

/** Variadic stream-style formatting: concatenates all args via ostream. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

} // namespace detail

/** True while a unit test wants warnings suppressed. Atomic so tests
 *  and harnesses may toggle it while worker threads are logging. */
extern std::atomic<bool> quietWarnings;

} // namespace dfp

/** Report an internal bug and unwind with PanicError. */
#define dfp_panic(...)                                                       \
    throw ::dfp::PanicError(::dfp::detail::formatMessage(                    \
        "panic", __FILE__, __LINE__, ::dfp::detail::cat(__VA_ARGS__)))

/** Report a user-caused error and unwind with FatalError. */
#define dfp_fatal(...)                                                       \
    throw ::dfp::FatalError(::dfp::detail::formatMessage(                    \
        "fatal", __FILE__, __LINE__, ::dfp::detail::cat(__VA_ARGS__)))

/** Panic unless a condition holds. */
#define dfp_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            dfp_panic("assertion '" #cond "' failed. ",                      \
                      ::dfp::detail::cat(__VA_ARGS__));                      \
        }                                                                    \
    } while (0)

/** Non-fatal diagnostic for suspicious-but-survivable conditions. */
#define dfp_warn(...)                                                        \
    ::dfp::detail::emitLog("warn", ::dfp::detail::cat(__VA_ARGS__))

/** Status message with no connotation of incorrect behaviour. */
#define dfp_inform(...)                                                      \
    ::dfp::detail::emitLog("info", ::dfp::detail::cat(__VA_ARGS__))

#endif // DFP_BASE_LOGGING_H
