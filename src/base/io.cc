#include "base/io.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dfp::io
{

void
ignoreSigpipe()
{
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPIPE, &sa, nullptr);
}

bool
readFull(int fd, void *buf, size_t n)
{
    auto *p = static_cast<uint8_t *>(buf);
    while (n > 0) {
        ssize_t got = ::read(fd, p, n);
        if (got > 0) {
            p += got;
            n -= size_t(got);
            continue;
        }
        if (got == 0) {
            errno = 0; // EOF, not an error: let the caller tell them apart
            return false;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeFull(int fd, const void *buf, size_t n)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (n > 0) {
        ssize_t put = ::write(fd, p, n);
        if (put >= 0) {
            p += put;
            n -= size_t(put);
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

int
acceptRetry(int listenFd)
{
    for (;;) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        return -1;
    }
}

int
pollIn(int fd, int timeoutMs)
{
    using Clock = std::chrono::steady_clock;
    Clock::time_point deadline =
        timeoutMs < 0 ? Clock::time_point::max()
                      : Clock::now() + std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int wait = -1;
        if (timeoutMs >= 0) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
            wait = left > 0 ? int(left) : 0;
        }
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, wait);
        if (rc > 0)
            return 1;
        if (rc == 0)
            return 0;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

} // namespace dfp::io
