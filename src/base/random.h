/**
 * @file
 * Deterministic xorshift64* RNG used by workload generators so that every
 * run of the suite sees identical data (and therefore identical dynamic
 * instruction streams), independent of the platform's std::mt19937.
 */

#ifndef DFP_BASE_RANDOM_H
#define DFP_BASE_RANDOM_H

#include <cstdint>

namespace dfp
{

/** xorshift64* pseudo-random generator with a fixed default seed. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    uint64_t nextBelow(uint64_t bound) { return next() % bound; }

    /** Uniform signed value in [lo, hi]. */
    int64_t
    nextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        nextBelow(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Raw generator state, for checkpointing mid-stream. */
    uint64_t state() const { return state_; }

    /** Restore a previously captured state (0 maps to 1, as in the
     *  constructor — xorshift cannot leave the all-zero state). */
    void setState(uint64_t s) { state_ = s ? s : 1; }

  private:
    uint64_t state_;
};

} // namespace dfp

#endif // DFP_BASE_RANDOM_H
