/**
 * @file
 * A fixed-size work-stealing thread pool for embarrassingly-parallel
 * batch work (the parallel simulation sweeps of sim::BatchRunner and
 * tools/dfp-bench).
 *
 * Design points:
 *
 *  - **Fixed worker count**, chosen at construction. `threads <= 1`
 *    means "no worker threads at all": every task submitted through
 *    parallelFor() runs inline on the calling thread, in submission
 *    order. The serial path therefore executes byte-for-byte the same
 *    code as a plain loop — the determinism anchor the batch tests
 *    compare the parallel path against.
 *
 *  - **Work stealing.** Each worker owns a deque; submissions are
 *    dealt round-robin across the deques. A worker pops from the front
 *    of its own deque (cache-warm, FIFO-ish) and steals from the back
 *    of a victim's when its own is empty, so an unlucky distribution
 *    of long tasks cannot idle the pool.
 *
 *  - **Deterministic result ordering by submission index.**
 *    parallelFor(n, fn) invokes fn(i) for every i in [0, n) exactly
 *    once and returns when all calls finished. Callers write results
 *    into slot i of a pre-sized vector, so the output order never
 *    depends on the execution interleaving. If one or more calls
 *    throw, parallelFor rethrows the exception with the *lowest*
 *    submission index after every task has finished — again
 *    independent of scheduling — and the pool stays usable.
 *
 * The pool is *not* a general async executor: there are no futures and
 * no detached submission; parallelFor is the whole public surface
 * (plus size()). That keeps the invariants small enough to test
 * exhaustively under ThreadSanitizer (tests/base/test_threadpool.cc).
 */

#ifndef DFP_BASE_THREADPOOL_H
#define DFP_BASE_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dfp
{

class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads workers. Values <= 1 create no
     * threads; parallelFor then runs inline on the caller.
     */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending work is finished first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 = inline/serial mode). */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Run @p fn(i) for every i in [0, n), distributing across the
     * workers (the calling thread also executes tasks, so a 1-worker
     * pool still overlaps with the caller). Blocks until every call
     * has finished. Rethrows the lowest-index exception, if any.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * The host's advertised concurrency (>= 1) — the default for
     * --jobs flags. hardware_concurrency() may return 0 on exotic
     * platforms; this never does.
     */
    static int defaultThreads();

  private:
    struct Batch; // one parallelFor invocation's shared state

    void workerLoop(size_t self);
    /** Pop one task index for worker @p self (own front, then steal
     *  from the back of the others). Returns false when drained. */
    bool takeTask(size_t self, size_t &index);
    void runTask(size_t index);

    std::vector<std::thread> workers_;
    // Per-worker deques of task indices into the current batch, plus
    // one shared overflow deque (slot workers_.size()) the caller
    // drains too. One mutex guards them all: batch tasks here are
    // whole simulations (milliseconds), so queue contention is noise,
    // and a single lock keeps the stealing protocol trivially correct
    // under TSan.
    std::vector<std::deque<size_t>> queues_;
    std::mutex mu_;
    std::condition_variable cv_;      //!< workers wait for tasks
    std::condition_variable doneCv_;  //!< caller waits for completion
    Batch *batch_ = nullptr;          //!< active parallelFor, if any
    bool stop_ = false;
};

} // namespace dfp

#endif // DFP_BASE_THREADPOOL_H
