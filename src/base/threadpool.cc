#include "base/threadpool.h"

#include <algorithm>

#include "base/logging.h"

namespace dfp
{

/**
 * Shared state of one parallelFor invocation. Task *indices* live in
 * the per-worker deques; everything else — the callable, completion
 * count, and the winning (lowest-index) exception — lives here, under
 * the pool mutex.
 */
struct ThreadPool::Batch
{
    const std::function<void(size_t)> *fn = nullptr;
    size_t total = 0;     //!< tasks in this batch
    size_t finished = 0;  //!< tasks completed (ok or thrown)
    size_t errorIndex = 0;
    std::exception_ptr error; //!< from the lowest-index failing task
};

ThreadPool::ThreadPool(int threads)
{
    int n = std::max(0, threads - 1); // the caller is a worker too
    queues_.resize(static_cast<size_t>(n) + 1); // +1 = shared overflow
    workers_.reserve(static_cast<size_t>(n));
    for (size_t w = 0; w < static_cast<size_t>(n); ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

int
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

bool
ThreadPool::takeTask(size_t self, size_t &index)
{
    // Caller holds mu_. Own queue front first, then steal from the
    // back of every other queue (including the shared overflow slot).
    if (!queues_[self].empty()) {
        index = queues_[self].front();
        queues_[self].pop_front();
        return true;
    }
    for (size_t q = 0; q < queues_.size(); ++q) {
        if (q == self || queues_[q].empty())
            continue;
        index = queues_[q].back();
        queues_[q].pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::runTask(size_t index)
{
    const std::function<void(size_t)> *fn;
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn = batch_->fn;
    }
    std::exception_ptr err;
    try {
        (*fn)(index);
    } catch (...) {
        err = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (err && (!batch_->error || index < batch_->errorIndex)) {
            batch_->error = err;
            batch_->errorIndex = index;
        }
        if (++batch_->finished == batch_->total)
            doneCv_.notify_all();
    }
}

void
ThreadPool::workerLoop(size_t self)
{
    for (;;) {
        size_t index = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] {
                return stop_ || (batch_ && takeTask(self, index));
            });
            if (stop_ && !batch_)
                return;
            if (stop_) {
                // Drain the active batch before exiting so a caller
                // blocked in parallelFor always wakes up.
                if (!takeTask(self, index))
                    return;
            }
        }
        runTask(index);
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        // Serial mode: byte-identical to a plain loop, first failure
        // propagates immediately (it is necessarily the lowest index).
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch batch;
    batch.fn = &fn;
    batch.total = n;
    {
        std::lock_guard<std::mutex> lock(mu_);
        dfp_assert(batch_ == nullptr,
                   "ThreadPool::parallelFor is not reentrant");
        batch_ = &batch;
        // Deal indices round-robin across the worker deques; the
        // caller's share goes to the shared overflow slot, where any
        // worker can steal it back if the caller is slow.
        size_t slots = queues_.size();
        for (size_t i = 0; i < n; ++i)
            queues_[i % slots].push_back(i);
    }
    cv_.notify_all();

    // The calling thread works too: drain from the overflow slot
    // (stealing from workers when it is empty).
    const size_t self = queues_.size() - 1;
    for (;;) {
        size_t index = 0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!takeTask(self, index))
                break;
        }
        runTask(index);
    }

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] { return batch.finished == batch.total; });
        batch_ = nullptr;
        error = batch.error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace dfp
