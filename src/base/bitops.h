/**
 * @file
 * Bit-manipulation helpers used by the ISA encoder/decoder and the
 * cache/predictor index functions.
 */

#ifndef DFP_BASE_BITOPS_H
#define DFP_BASE_BITOPS_H

#include <cstdint>

#include "base/logging.h"

namespace dfp
{

/** Extract bits [lo, lo+width) of a word. */
constexpr uint32_t
bits(uint32_t word, unsigned lo, unsigned width)
{
    return (word >> lo) & ((width >= 32) ? ~0u : ((1u << width) - 1));
}

/** Insert the low @p width bits of @p value at position @p lo of @p word. */
constexpr uint32_t
insertBits(uint32_t word, unsigned lo, unsigned width, uint32_t value)
{
    uint32_t mask = ((width >= 32) ? ~0u : ((1u << width) - 1)) << lo;
    return (word & ~mask) | ((value << lo) & mask);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
sext(uint64_t value, unsigned width)
{
    uint64_t m = 1ull << (width - 1);
    uint64_t v = value & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
    return static_cast<int64_t>((v ^ m) - m);
}

/** True if @p value fits in a signed field of @p width bits. */
constexpr bool
fitsSigned(int64_t value, unsigned width)
{
    int64_t lo = -(1ll << (width - 1));
    int64_t hi = (1ll << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** Integer log2 for power-of-two sizes (panics otherwise). */
inline unsigned
floorLog2(uint64_t value)
{
    dfp_assert(value > 0, "floorLog2 of 0");
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** True if @p value is a power of two. */
constexpr bool
isPow2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace dfp

#endif // DFP_BASE_BITOPS_H
