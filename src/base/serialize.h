/**
 * @file
 * Binary serialization helpers for the checkpoint/restore subsystem.
 *
 * A checkpoint must round-trip bit-exactly across processes, so the
 * encoding is fixed little-endian regardless of host order, and the
 * reader is fully bounds-checked: a truncated or corrupted payload
 * flips a sticky error flag and every subsequent read returns a zero
 * value instead of touching out-of-range bytes. Callers check
 * `reader.ok()` once at the end instead of wrapping every field.
 *
 * The CRC32 here (polynomial 0xEDB88320, the zlib/IEEE one) guards
 * checkpoint payloads against torn writes; it is not cryptographic.
 */

#ifndef DFP_BASE_SERIALIZE_H
#define DFP_BASE_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dfp::serialize
{

/** CRC32 (IEEE, reflected) over @p data; @p seed chains partial runs. */
inline uint32_t
crc32(const void *data, size_t len, uint32_t seed = 0)
{
    static const auto table = [] {
        std::vector<uint32_t> t(256);
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; i++)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/** Append-only little-endian encoder backing a checkpoint payload. */
class BinWriter
{
  public:
    const std::vector<uint8_t> &bytes() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }

    void
    i32(int32_t v)
    {
        u32(uint32_t(v));
    }

    void
    i64(int64_t v)
    {
        u64(uint64_t(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f64(double v)
    {
        // Bit-pattern copy: checkpoints only ever reload on the same
        // IEEE-754 representation this toolchain targets.
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(std::string_view s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    raw(const void *data, size_t len)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked little-endian decoder. Any read past the end of the
 * buffer sets the sticky error flag and yields zeros; no read ever
 * touches memory outside the buffer, so garbage input degrades to a
 * clean `!ok()` instead of UB.
 */
class BinReader
{
  public:
    BinReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}
    explicit BinReader(const std::vector<uint8_t> &buf)
        : BinReader(buf.data(), buf.size())
    {}

    bool ok() const { return ok_; }
    bool atEnd() const { return pos_ == len_; }
    size_t remaining() const { return len_ - pos_; }

    /** Poison the reader — callers reject payloads whose decoded
     *  values are structurally impossible (e.g. geometry mismatch). */
    void fail() { ok_ = false; }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= uint32_t(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= uint64_t(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    int32_t i32() { return int32_t(u32()); }
    int64_t i64() { return int64_t(u64()); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        uint64_t n = u64();
        // Reject lengths the remaining buffer cannot possibly hold
        // before allocating — a corrupted length field must not turn
        // into a multi-gigabyte allocation.
        if (!ok_ || n > remaining()) {
            ok_ = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      size_t(n));
        pos_ += size_t(n);
        return s;
    }

    /** Copy @p n raw bytes out; false (error flag set) on truncation. */
    bool
    raw(void *dst, size_t n)
    {
        if (n == 0)
            return ok_;
        if (!need(n))
            return false;
        std::memcpy(dst, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    /**
     * Read a container length field, validating it against the bytes
     * actually left assuming each element costs at least
     * @p minElemBytes. Returns 0 (with the error flag set) on a length
     * the buffer cannot hold, so resize-by-length stays safe.
     */
    size_t
    len(size_t minElemBytes = 1)
    {
        uint64_t n = u64();
        if (!ok_ || (minElemBytes && n > remaining() / minElemBytes)) {
            ok_ = false;
            return 0;
        }
        return size_t(n);
    }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || len_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace dfp::serialize

#endif // DFP_BASE_SERIALIZE_H
