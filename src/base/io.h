/**
 * @file
 * EINTR-safe POSIX IO wrappers shared by the serve daemon, its client,
 * and any tool that talks to a file descriptor while signal handlers
 * are installed. base/signals.h deliberately installs its handlers
 * WITHOUT SA_RESTART so blocking IO fails fast on SIGINT/SIGTERM; the
 * price is that every read/write/accept/poll can return EINTR at any
 * time, and naive call sites turn that into spurious disconnects.
 * These helpers retry EINTR and nothing else, preserve errno for the
 * caller on real failures, and handle short reads/writes (a socket is
 * free to transfer fewer bytes than asked).
 *
 * SIGPIPE policy: a peer that disconnects mid-write must surface as an
 * EPIPE error, never as process death. installStopHandlers()
 * (base/signals.h) ignores SIGPIPE process-wide; ignoreSigpipe() is
 * exposed separately for code paths that touch sockets before any
 * handler installation.
 */

#ifndef DFP_BASE_IO_H
#define DFP_BASE_IO_H

#include <cstddef>

namespace dfp::io
{

/** Ignore SIGPIPE process-wide (idempotent). Writes to a closed peer
 *  then fail with EPIPE instead of killing the process. */
void ignoreSigpipe();

/**
 * Read exactly @p n bytes. Retries EINTR and short reads. Returns
 * true on success; false on EOF-before-n (errno = 0) or a real error
 * (errno set by the failing read). @p n == 0 trivially succeeds.
 */
bool readFull(int fd, void *buf, size_t n);

/**
 * Write exactly @p n bytes, retrying EINTR and short writes. Returns
 * true on success, false on error with errno set (EPIPE when the peer
 * vanished, given SIGPIPE is ignored).
 */
bool writeFull(int fd, const void *buf, size_t n);

/** accept(2) retrying EINTR (and ECONNABORTED, which just means the
 *  peer gave up while queued). Returns the connection fd, or -1 with
 *  errno set on a real listener error. */
int acceptRetry(int listenFd);

/**
 * Wait until @p fd is readable. Returns 1 when readable (or the peer
 * hung up — the subsequent read observes the EOF), 0 on timeout, -1
 * on error with errno set. EINTR is retried with the remaining
 * timeout, so a stop signal does not shorten the wait; callers poll
 * in bounded ticks and check their stop flags between ticks.
 * @p timeoutMs < 0 blocks indefinitely.
 */
int pollIn(int fd, int timeoutMs);

} // namespace dfp::io

#endif // DFP_BASE_IO_H
