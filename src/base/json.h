/**
 * @file
 * A minimal streaming JSON writer, shared by the stats registry, the
 * simulator trace sinks, and the tool/bench harnesses. Emits compact
 * (single-line) JSON; no reflection, no DOM — the caller drives the
 * structure with begin/end calls and the writer tracks where commas
 * are needed.
 */

#ifndef DFP_BASE_JSON_H
#define DFP_BASE_JSON_H

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dfp::json
{

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * Streaming writer with automatic comma placement. Usage:
 *
 *   json::Writer w(os);
 *   w.beginObject();
 *   w.key("cycles").value(uint64_t{42});
 *   w.key("tiles").beginArray();
 *   w.value(uint64_t{1}).value(uint64_t{2});
 *   w.endArray();
 *   w.endObject();
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    Writer &
    beginObject()
    {
        pre();
        os_ << '{';
        first_.push_back(true);
        return *this;
    }

    Writer &
    endObject()
    {
        first_.pop_back();
        os_ << '}';
        return *this;
    }

    Writer &
    beginArray()
    {
        pre();
        os_ << '[';
        first_.push_back(true);
        return *this;
    }

    Writer &
    endArray()
    {
        first_.pop_back();
        os_ << ']';
        return *this;
    }

    Writer &
    key(std::string_view name)
    {
        pre();
        os_ << '"' << escape(name) << "\":";
        haveKey_ = true;
        return *this;
    }

    Writer &
    value(std::string_view s)
    {
        pre();
        os_ << '"' << escape(s) << '"';
        return *this;
    }

    Writer &value(const char *s) { return value(std::string_view(s)); }

    Writer &
    value(uint64_t v)
    {
        pre();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        os_ << buf;
        return *this;
    }

    Writer &
    value(int64_t v)
    {
        pre();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRId64, v);
        os_ << buf;
        return *this;
    }

    Writer &value(int v) { return value(static_cast<int64_t>(v)); }
    Writer &value(unsigned v) { return value(static_cast<uint64_t>(v)); }

    Writer &
    value(double v)
    {
        pre();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        os_ << buf;
        return *this;
    }

    Writer &
    value(bool v)
    {
        pre();
        os_ << (v ? "true" : "false");
        return *this;
    }

  private:
    /** Write the separating comma if needed; keys suppress the next one. */
    void
    pre()
    {
        if (haveKey_) {
            haveKey_ = false;
            return;
        }
        if (!first_.empty()) {
            if (!first_.back())
                os_ << ',';
            first_.back() = false;
        }
    }

    std::ostream &os_;
    std::vector<bool> first_;
    bool haveKey_ = false;
};

} // namespace dfp::json

#endif // DFP_BASE_JSON_H
