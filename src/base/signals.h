/**
 * @file
 * Async-signal-safe stop-request plumbing for the tools. A SIGINT or
 * SIGTERM stores its signal number into a lock-free atomic that long
 * loops (the simulator's checkpoint poll, the batch supervisor, the
 * dfp-serve accept loop) watch; the tool then shuts down cleanly —
 * cutting a checkpoint first when one is armed, draining in-flight
 * requests when serving — and exits with the conventional 128+signo
 * status.
 *
 * Escalation contract: the FIRST stop signal requests a graceful
 * shutdown (stop accepting new work, finish or checkpoint what is in
 * flight, then exit 128+signo). A SECOND SIGINT/SIGTERM means the
 * user is done waiting: long loops observe stopCount() >= 2 and exit
 * immediately, abandoning in-flight work (crash-only design makes
 * that safe — anything unjournalled simply re-runs on resume). The
 * handlers record every delivery; honouring the escalation is the
 * polling loop's job.
 *
 * installStopHandlers() also ignores SIGPIPE process-wide: a client
 * that disconnects mid-response (or a pager that exits under a tool
 * piping output) must surface as an EPIPE write error, never kill the
 * process.
 *
 * The handler does nothing but atomic stores, so it is safe under any
 * interleaving; everything interesting happens on the normal control
 * path.
 */

#ifndef DFP_BASE_SIGNALS_H
#define DFP_BASE_SIGNALS_H

#include <atomic>

namespace dfp::signals
{

/** Install SIGINT/SIGTERM handlers that record the signal number, and
 *  ignore SIGPIPE process-wide. Idempotent; call once near the top of
 *  main(). */
void installStopHandlers();

/** The flag the handlers write: 0 = no stop requested, otherwise the
 *  signal number. Poll with relaxed loads; pass to
 *  CheckpointControl::stop or SuperviseOptions. */
const std::atomic<int> &stopRequested();

/** The recorded signal number (0 = none). */
int stopSignal();

/** How many stop signals have been delivered. 0 = run on; 1 = drain
 *  gracefully; >= 2 = the user escalated, exit immediately. */
int stopCount();

} // namespace dfp::signals

#endif // DFP_BASE_SIGNALS_H
