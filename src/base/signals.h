/**
 * @file
 * Async-signal-safe stop-request plumbing for the tools. A SIGINT or
 * SIGTERM stores its signal number into a lock-free atomic that long
 * loops (the simulator's checkpoint poll, the batch supervisor) watch;
 * the tool then shuts down cleanly — cutting a checkpoint first when
 * one is armed — and exits with the conventional 128+signo status.
 *
 * The handler does nothing but the one atomic store, so it is safe
 * under any interleaving; everything interesting happens on the normal
 * control path.
 */

#ifndef DFP_BASE_SIGNALS_H
#define DFP_BASE_SIGNALS_H

#include <atomic>

namespace dfp::signals
{

/** Install SIGINT/SIGTERM handlers that record the signal number.
 *  Idempotent; call once near the top of main(). */
void installStopHandlers();

/** The flag the handlers write: 0 = no stop requested, otherwise the
 *  signal number. Poll with relaxed loads; pass to
 *  CheckpointControl::stop or SuperviseOptions. */
const std::atomic<int> &stopRequested();

/** The recorded signal number (0 = none). */
int stopSignal();

} // namespace dfp::signals

#endif // DFP_BASE_SIGNALS_H
