/**
 * @file
 * Service-level telemetry for the fleet-facing layers (dfp-serve, the
 * batch runner, the compiler driver): request-scoped spans, registered
 * gauges sampled into a bounded time-series ring, and Prometheus/JSON
 * exposition. This is deliberately distinct from sim/trace.h — that
 * layer records *simulated* events on the simulated clock; this one
 * records *host* wall-clock behaviour of the service around the
 * simulator (where does a request's time actually go). The two meet in
 * sim::flushSpans(), which renders collected spans through the
 * existing TraceSink backends so one Chrome-trace/Perfetto view shows
 * both. docs/TELEMETRY.md is the user-facing reference.
 *
 * Cost model, in the DFP_TRACE style (docs/TRACING.md):
 *
 *  - every emission site is gated on a null check of the collector /
 *    profiler pointer, so a process that never enables telemetry pays
 *    one predicted-not-taken branch per site;
 *  - `-DDFP_TELEMETRY=0` removes the DFP_PHASE sites entirely;
 *  - the Sampler starts **zero threads when disabled** (periodMs == 0
 *    or no gauges registered), so dfpc/dfp-bench sweeps are thread-
 *    and cycle-identical to a build without the subsystem. The
 *    perf-smoke CI gate enforces "compiled in but disabled" costs
 *    nothing measurable.
 */

#ifndef DFP_BASE_TELEMETRY_H
#define DFP_BASE_TELEMETRY_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "base/stats.h"

namespace dfp::telemetry
{

// ---------------------------------------------------------------------
// Request-scoped spans.

/**
 * Mint a process-unique trace id: nonzero, unpredictable enough that
 * two clients racing on the same socket never collide (pid, a
 * monotonic counter, and the wall clock, mixed through splitmix64).
 * Zero is reserved for "no trace id" everywhere in the protocol.
 */
uint64_t mintTraceId();

/** One finished span: a named wall-clock interval on a track. */
struct SpanRecord
{
    std::string name;     //!< e.g. "serve.execute"
    uint64_t traceId = 0; //!< request correlation id; 0 = unscoped
    uint64_t startUs = 0; //!< microseconds since the collector epoch
    uint64_t durUs = 0;   //!< wall-clock duration, microseconds
    int track = 0;        //!< rendering lane (worker/connection index)
    uint64_t seq = 0;     //!< collector-assigned emission order
};

/**
 * Thread-safe sink for finished spans. Bounded: once `capacity` spans
 * are held the oldest are dropped (and counted), so a long-running
 * daemon with tracing left on cannot grow without bound. The epoch is
 * the collector's construction instant on the monotonic clock;
 * every SpanRecord::startUs is relative to it, so flushed traces start
 * near t=0 regardless of process uptime.
 */
class SpanCollector
{
  public:
    explicit SpanCollector(size_t capacity = 1 << 16);

    /** Record one finished span (called by Span's destructor). */
    void record(const std::string &name, uint64_t traceId,
                uint64_t startUs, uint64_t durUs, int track);

    /** Microseconds elapsed since the collector epoch (monotonic). */
    uint64_t nowUs() const;

    /** Point-in-time copy, in emission order. */
    std::vector<SpanRecord> snapshot() const;

    uint64_t dropped() const;
    size_t size() const;

  private:
    const std::chrono::steady_clock::time_point epoch_;
    const size_t capacity_;
    mutable std::mutex mu_;
    std::deque<SpanRecord> spans_;
    uint64_t seq_ = 0;
    uint64_t dropped_ = 0;
};

/**
 * RAII span: captures the start time at construction and records into
 * the collector at destruction (or at end(), whichever comes first).
 * A null collector makes both ends of the span a no-op — emission
 * sites do not need their own guards. Nesting is by construction
 * order within a scope; spans carry no parent pointer, the (traceId,
 * time interval) pair is what stitches a request path together.
 */
class Span
{
  public:
    Span(SpanCollector *collector, const char *name, uint64_t traceId,
         int track = 0)
        : collector_(collector), name_(name), traceId_(traceId),
          track_(track),
          startUs_(collector != nullptr ? collector->nowUs() : 0)
    {}

    ~Span() { end(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Close the span early (idempotent). */
    void
    end()
    {
        if (collector_ == nullptr)
            return;
        const uint64_t now = collector_->nowUs();
        collector_->record(name_, traceId_, startUs_,
                           now - startUs_, track_);
        collector_ = nullptr;
    }

  private:
    SpanCollector *collector_;
    const char *name_;
    uint64_t traceId_;
    int track_;
    uint64_t startUs_;
};

// ---------------------------------------------------------------------
// Phase profiling.

/**
 * Wall-time histograms keyed by phase name ("phase.compile.buildSsa",
 * "phase.batch.sim", ...), sampled in microseconds. Thread-safe; the
 * per-sample cost is one mutex acquisition and a Histogram::add, paid
 * only while a profiler is installed.
 */
class PhaseProfiler
{
  public:
    void record(const char *phase, uint64_t micros);

    /** Copy the accumulated histograms ("phase.*" names). */
    std::map<std::string, Histogram> snapshot() const;

    /** Merge the accumulated histograms into @p out. */
    void mergeInto(StatSet &out) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, Histogram> phases_;
};

/** The process-wide profiler the DFP_PHASE sites feed; null (the
 *  default) keeps every site down to one predicted-not-taken branch.
 *  Install before starting worker threads; the pointer is not owned. */
PhaseProfiler *phaseProfiler();
void setPhaseProfiler(PhaseProfiler *profiler);

namespace detail
{

/** RAII body behind DFP_PHASE: snapshots the profiler pointer once so
 *  an install/uninstall mid-phase cannot tear a sample. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *phase);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseProfiler *profiler_;
    const char *phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace detail

// ---------------------------------------------------------------------
// Time-series gauges.

/**
 * Named gauges evaluated on demand. Registration is expected at
 * startup (server construction); sampling may come from the Sampler
 * thread or an exposition request, so evaluation takes the registry
 * lock and callbacks must be cheap and thread-safe themselves.
 */
class GaugeRegistry
{
  public:
    using Fn = std::function<double()>;

    void add(const std::string &name, Fn fn);

    /** Gauge names, in registration order. */
    std::vector<std::string> names() const;

    /** Evaluate every gauge, aligned with names(). */
    std::vector<double> sample() const;

    size_t size() const;

  private:
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, Fn>> gauges_;
};

/** Resident set size in bytes via /proc/self/statm; 0 where absent. */
double rssBytes();

/** One periodic snapshot of every registered gauge. */
struct MetricSample
{
    uint64_t steadyMs = 0; //!< ms since the ring's epoch (monotonic)
    std::vector<double> values; //!< aligned with GaugeRegistry::names()
};

/**
 * Bounded ring of gauge snapshots — the daemon's short-term memory of
 * its own vitals. Fixed capacity; the oldest sample is dropped when
 * full, so the ring holds the trailing capacity×period window.
 */
class MetricRing
{
  public:
    explicit MetricRing(size_t capacity = 600);

    void push(MetricSample sample);
    std::vector<MetricSample> snapshot() const;
    size_t size() const;
    size_t capacity() const { return capacity_; }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::deque<MetricSample> samples_;
};

/**
 * The sampler thread: every `periodMs` it evaluates @p gauges into
 * @p ring and invokes the optional per-tick hook (dfp-serve's
 * --metrics-out atomic-rename dump rides on it). **Zero threads when
 * disabled**: a periodMs of 0 starts nothing, and stop()/destruction
 * joins promptly via a condition variable rather than sleeping out
 * the period.
 */
class Sampler
{
  public:
    Sampler() = default;
    ~Sampler() { stop(); }

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Begin sampling; no-op when periodMs == 0 or already running. */
    void start(const GaugeRegistry *gauges, MetricRing *ring,
               uint64_t periodMs,
               std::function<void()> onSample = nullptr);

    /** Stop and join the thread (idempotent). */
    void stop();

    bool running() const { return thread_.joinable(); }
    uint64_t ticks() const { return ticks_.load(); }

  private:
    void loop(const GaugeRegistry *gauges, MetricRing *ring,
              uint64_t periodMs, std::function<void()> onSample);

    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::atomic<uint64_t> ticks_{0};
};

// ---------------------------------------------------------------------
// Exposition.

/** Sanitize a dotted stat name into a Prometheus metric name
 *  ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and other illegal bytes become
 *  underscores, and a leading digit is prefixed with one. */
std::string promName(const std::string &name);

/**
 * Render counters + histograms (@p stats) and instantaneous gauge
 * values into the Prometheus text exposition format: `# HELP` and
 * `# TYPE` per metric; counters as `counter`, gauges as `gauge`,
 * histograms as cumulative `_bucket{le="..."}` series (bounds from
 * the power-of-two Histogram buckets — integer samples in bucket i
 * are <= 2^i - 1) plus `_sum` and `_count`. Deterministic: metrics
 * are emitted in sorted-name order.
 */
void writePrometheus(std::ostream &os, const StatSet &stats,
                     const std::vector<std::string> &gaugeNames,
                     const std::vector<double> &gaugeValues);

/**
 * The same payload as JSON: {"counters":{...},"gauges":{...},
 * "histograms":{...}} with per-histogram quantiles, plus the ring's
 * trailing window under "series" when @p ring is non-null.
 */
void writeMetricsJson(std::ostream &os, const StatSet &stats,
                      const std::vector<std::string> &gaugeNames,
                      const std::vector<double> &gaugeValues,
                      const MetricRing *ring = nullptr);

/**
 * Summarize collected spans into @p out: per-name duration histograms
 * ("span.<name>_us") and a span count counter — the span-summary
 * rollup the stats registry carries next to the raw trace.
 */
void rollupSpans(const std::vector<SpanRecord> &spans, StatSet &out);

} // namespace dfp::telemetry

// Compile-time kill switch: build with -DDFP_TELEMETRY=0 to remove the
// phase-profiling sites (and their branch) entirely.
#ifndef DFP_TELEMETRY
#define DFP_TELEMETRY 1
#endif

#if DFP_TELEMETRY
/** Time the enclosing scope into the installed PhaseProfiler (if any)
 *  under @p name — "phase.compile.buildSsa" style. One branch when no
 *  profiler is installed. */
#define DFP_PHASE(name)                                                      \
    ::dfp::telemetry::detail::ScopedPhase dfp_phase_##__LINE__(name)
#else
#define DFP_PHASE(name)                                                      \
    do {                                                                     \
    } while (0)
#endif

#endif // DFP_BASE_TELEMETRY_H
