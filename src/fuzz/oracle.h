/**
 * @file
 * The differential-testing oracle: one generated program, one compiler
 * configuration, three executions — the golden CFG interpreter
 * (reference semantics), the functional block executor, and the cycle
 * simulator — cross-checked on halt status, the returned value and the
 * final memory image. Any disagreement, verifier error, compile crash
 * or simulator hang is classified into a FailKind the reducer can use
 * as an acceptance criterion.
 */

#ifndef DFP_FUZZ_ORACLE_H
#define DFP_FUZZ_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "sim/fault.h"

namespace dfp::fuzz
{

/** How a differential case can fail, ordered by detection stage. */
enum class FailKind : uint8_t
{
    None,           //!< all executions agreed
    InvalidProgram, //!< golden interpreter rejected the input itself
    RoundTrip,      //!< parse(print(fn)) not structurally equivalent
    CompileError,   //!< pipeline threw (FatalError/PanicError)
    VerifyError,    //!< dfp-verify found errors in the compiled program
    ExecMismatch,   //!< functional executor diverged from the interpreter
    SimHang,        //!< simulator failed to halt (deadlock/starvation)
    SimMismatch,    //!< simulator halted but diverged from the interpreter
};

/** Stable name ("exec-mismatch", ...) for reports and bundles. */
const char *failKindName(FailKind kind);

/** Parse a stable name; returns false on an unknown name. */
bool parseFailKind(const std::string &name, FailKind &out);

/** One compiler+simulator configuration to differentially test. */
struct CaseConfig
{
    std::string config = "both"; //!< §6 configuration name
    int unroll = 1;              //!< loop unroll factor
    bool scalarOpts = true;
    std::string breakOpt;        //!< CompileOptions::debugBreak
    sim::FaultConfig faults;     //!< soak mode: inject + must recover
    uint64_t watchdogCycles = 0; //!< 0 = SimConfig's automatic arming
};

/** Compact label, e.g. "both-u2" or "merge-u1+net-drop". */
std::string caseLabel(const CaseConfig &cc);

/**
 * The default sweep: all six §6 configurations at unroll 1, plus
 * "both" at unroll 2 and "merge" at unroll 4 (the unroll-sensitive
 * corners). 8 cases per generated program.
 */
std::vector<CaseConfig> defaultSweep();

/** Outcome of one differential case. */
struct CaseResult
{
    FailKind kind = FailKind::None;
    std::string detail; //!< one-line human-readable divergence report

    bool failed() const { return kind != FailKind::None; }
};

/**
 * Run one program through one case: golden-interpret it against
 * initialMemory(memSeed), compile under @p cc, verify, execute
 * functionally, then simulate (with @p cc's fault injection, if any),
 * comparing each execution's (halted, retValue, memory checksum)
 * against the interpreter's.
 */
CaseResult runCase(const ir::Function &fn, uint64_t memSeed,
                   const CaseConfig &cc);

/**
 * The printer/parser round-trip property: parse(print(fn)) must be
 * structurally equivalent to fn. Returns a failed CaseResult
 * (FailKind::RoundTrip) describing the first difference, or None.
 */
CaseResult checkRoundTrip(const ir::Function &fn);

} // namespace dfp::fuzz

#endif // DFP_FUZZ_ORACLE_H
