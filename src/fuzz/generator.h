/**
 * @file
 * Seeded random generator of well-formed CFG-stage IR programs for the
 * differential fuzzer (docs/FUZZING.md). Programs are built
 * structurally — nested if/else diamonds, bounded counted loops
 * (eligible for unrolling), correlated branch conditions, and
 * aligned load/store runs with aliasing LSID patterns — so every
 * generated function:
 *
 *  - parses/verifies as frontend IR,
 *  - terminates on the golden interpreter (all loops count to a
 *    constant trip bound; counters are never clobbered),
 *  - never traps (no unaligned accesses, no divide faults: divisors
 *    are forced odd-positive; no ftoi range casts),
 *  - stays within the TRIPS block format limits after compilation
 *    (bounded live variables, bounded memory ops per region).
 *
 * All randomness comes from base/random.h's xorshift64* — no
 * wall-clock, no std::random — so a seed identifies a program
 * byte-for-byte on every platform.
 */

#ifndef DFP_FUZZ_GENERATOR_H
#define DFP_FUZZ_GENERATOR_H

#include <cstdint>

#include "ir/ir.h"
#include "isa/memory.h"

namespace dfp::fuzz
{

/** Generator size/shape knobs. Defaults target ~20-80 instructions. */
struct GenConfig
{
    uint64_t seed = 1;
    int maxDepth = 3;          //!< control-structure nesting limit
    int maxTopStructures = 4;  //!< structures chained at the top level
    int maxStmtsPerRun = 5;    //!< straight-line statements per run
    int numInputVars = 4;      //!< variables seeded from memory/constants
    int maxMemOps = 10;        //!< total loads+stores per program
    int maxLoopTrip = 8;       //!< constant loop trip bound
    //! Readable-variable pool cap. The machine has 64 architectural
    //! registers and no spilling, so a generator targeting it must
    //! bound cross-hyperblock liveness the same way it bounds block
    //! sizes — past the cap, new values stop joining the pool and
    //! destinations overwrite existing variables instead.
    int maxLiveVars = 24;
    bool loops = true;
    bool memOps = true;
    bool floatOps = true;      //!< itof + fadd/fsub/fmul + comparisons
    bool correlatedBranches = true; //!< reuse/negate earlier predicates
};

/** Generate one program. Deterministic in @p cfg (including seed). */
ir::Function generate(const GenConfig &cfg);

/**
 * The memory image generated programs run against: the three input
 * arrays (workloads::kArrA/B/C) filled with 64 seeded words each.
 */
isa::Memory initialMemory(uint64_t seed);

/** Mix a base seed with a run index into an independent stream seed. */
uint64_t deriveSeed(uint64_t base, uint64_t index);

} // namespace dfp::fuzz

#endif // DFP_FUZZ_GENERATOR_H
