#include "fuzz/fuzz.h"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "base/version.h"

namespace dfp::fuzz
{

namespace
{

/** Derived stream tags, so program and memory seeds are independent. */
constexpr uint64_t kMemStream = 0x6d656d; // "mem"

std::string
writeBundleFile(const std::string &outDir, const Bundle &bundle,
                const char *suffix)
{
    std::filesystem::create_directories(outDir);
    std::string name = detail::cat("seed-", bundle.seed, "-",
                                   caseLabel(bundle.cc), "-",
                                   failKindName(bundle.kind), suffix,
                                   ".dfp");
    // caseLabel uses ':' and '+'; both are filename-safe on POSIX but
    // ':' trips some archive tools, so normalize.
    for (char &c : name) {
        if (c == ':' || c == '+')
            c = '_';
    }
    std::string path = detail::cat(outDir, "/", name);
    std::ofstream out(path);
    if (!out)
        dfp_fatal("cannot write reproducer '", path, "'");
    out << renderBundle(bundle);
    return path;
}

/** The reducer's acceptance predicate for one failing case. */
std::function<bool(const ir::Function &)>
sameFailure(const CaseConfig &cc, uint64_t memSeed, FailKind kind)
{
    if (kind == FailKind::RoundTrip) {
        return [](const ir::Function &fn) {
            return checkRoundTrip(fn).kind == FailKind::RoundTrip;
        };
    }
    return [cc, memSeed, kind](const ir::Function &fn) {
        return runCase(fn, memSeed, cc).kind == kind;
    };
}

} // namespace

FuzzReport
runFuzz(const FuzzOptions &opts, std::ostream &log)
{
    FuzzReport report;
    std::vector<CaseConfig> sweep =
        opts.sweep.empty() ? defaultSweep() : opts.sweep;
    for (CaseConfig &cc : sweep) {
        if (!opts.breakOpt.empty())
            cc.breakOpt = opts.breakOpt;
        if (opts.faults.enabled())
            cc.faults = opts.faults;
        if (opts.watchdogCycles)
            cc.watchdogCycles = opts.watchdogCycles;
    }

    for (uint64_t i = 0; i < opts.runs; ++i) {
        uint64_t seed = deriveSeed(opts.seed, i);
        uint64_t memSeed = deriveSeed(seed, kMemStream);
        GenConfig gen = opts.gen;
        gen.seed = seed;
        ir::Function fn = generate(gen);
        ++report.programs;

        // The round-trip property first, then the sweep; a program
        // stops at its first failing case (one bundle per program
        // keeps fuzz-out/ readable when a single bug fires broadly).
        CaseConfig failedCc;
        CaseResult failed = checkRoundTrip(fn);
        if (!failed.failed()) {
            for (const CaseConfig &cc : sweep) {
                ++report.cases;
                failed = runCase(fn, memSeed, cc);
                if (failed.failed()) {
                    failedCc = cc;
                    break;
                }
            }
        }
        if (!failed.failed()) {
            if ((i + 1) % 100 == 0) {
                log << "dfp-fuzz: " << (i + 1) << "/" << opts.runs
                    << " programs clean\n";
            }
            continue;
        }

        FuzzFailure failure;
        failure.seed = seed;
        failure.cc = failedCc;
        failure.kind = failed.kind;
        failure.detail = failed.detail;
        log << "dfp-fuzz: seed " << seed << " ["
            << caseLabel(failedCc) << "] "
            << failKindName(failed.kind) << ": " << failed.detail
            << "\n";

        Bundle bundle;
        bundle.version = versionString();
        bundle.seed = seed;
        bundle.memSeed = memSeed;
        bundle.cc = failedCc;
        bundle.kind = failed.kind;
        bundle.detail = failed.detail;
        bundle.fn = fn;
        failure.origPath =
            writeBundleFile(opts.outDir, bundle, "-orig");

        if (opts.reduce) {
            bundle.fn = reduce(fn,
                               sameFailure(failedCc, memSeed,
                                           failed.kind),
                               &failure.reduceStats);
            // Re-run the minimized program so the bundle's detail line
            // describes it, not its ancestor.
            CaseResult minRes =
                failed.kind == FailKind::RoundTrip
                    ? checkRoundTrip(bundle.fn)
                    : runCase(bundle.fn, memSeed, failedCc);
            if (minRes.failed())
                bundle.detail = minRes.detail;
        }
        failure.minPath = writeBundleFile(opts.outDir, bundle, "-min");
        log << "dfp-fuzz: minimized to " << failure.minPath << " ("
            << failure.reduceStats.accepted << " mutations in "
            << failure.reduceStats.attempts << " attempts)\n";

        report.failures.push_back(std::move(failure));
        if (report.failures.size() >= opts.maxFailures) {
            log << "dfp-fuzz: stopping after " << opts.maxFailures
                << " failures\n";
            break;
        }
    }
    return report;
}

CaseResult
replayBundle(const Bundle &bundle)
{
    if (bundle.kind == FailKind::RoundTrip)
        return checkRoundTrip(bundle.fn);
    return runCase(bundle.fn, bundle.memSeed, bundle.cc);
}

} // namespace dfp::fuzz
