#include "fuzz/oracle.h"

#include <sstream>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "fuzz/generator.h"
#include "ir/analysis.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "isa/exec.h"
#include "sim/machine.h"
#include "verify/verify.h"

namespace dfp::fuzz
{

namespace
{

const struct
{
    FailKind kind;
    const char *name;
} kKindNames[] = {
    {FailKind::None, "none"},
    {FailKind::InvalidProgram, "invalid-program"},
    {FailKind::RoundTrip, "round-trip"},
    {FailKind::CompileError, "compile-error"},
    {FailKind::VerifyError, "verify-error"},
    {FailKind::ExecMismatch, "exec-mismatch"},
    {FailKind::SimHang, "sim-hang"},
    {FailKind::SimMismatch, "sim-mismatch"},
};

/** The reference outcome every execution must reproduce. */
struct Golden
{
    uint64_t retValue = 0;
    uint64_t memChecksum = 0;
};

/**
 * Compare one execution's observable state against the golden run.
 * Returns a non-empty description on divergence.
 */
std::string
diffState(const Golden &want, uint64_t retValue, uint64_t memChecksum)
{
    if (retValue != want.retValue) {
        return detail::cat("ret value ", retValue, " != golden ",
                           want.retValue);
    }
    if (memChecksum != want.memChecksum) {
        return detail::cat("memory checksum 0x", std::hex, memChecksum,
                           " != golden 0x", want.memChecksum);
    }
    return "";
}

} // namespace

const char *
failKindName(FailKind kind)
{
    for (const auto &e : kKindNames) {
        if (e.kind == kind)
            return e.name;
    }
    return "unknown";
}

bool
parseFailKind(const std::string &name, FailKind &out)
{
    for (const auto &e : kKindNames) {
        if (name == e.name) {
            out = e.kind;
            return true;
        }
    }
    return false;
}

std::string
caseLabel(const CaseConfig &cc)
{
    std::string label = detail::cat(cc.config, "-u", cc.unroll);
    if (!cc.scalarOpts)
        label += "-noscalar";
    if (!cc.breakOpt.empty())
        label += detail::cat("-break:", cc.breakOpt);
    if (cc.faults.enabled())
        label += detail::cat("+", sim::faultModelName(cc.faults.model));
    return label;
}

std::vector<CaseConfig>
defaultSweep()
{
    std::vector<CaseConfig> sweep;
    for (const std::string &name : compiler::allConfigNames()) {
        CaseConfig cc;
        cc.config = name;
        sweep.push_back(cc);
    }
    CaseConfig u2;
    u2.config = "both";
    u2.unroll = 2;
    sweep.push_back(u2);
    CaseConfig u4;
    u4.config = "merge";
    u4.unroll = 4;
    sweep.push_back(u4);
    return sweep;
}

CaseResult
runCase(const ir::Function &fn, uint64_t memSeed, const CaseConfig &cc)
{
    CaseResult res;

    // 1. Golden reference: the CFG interpreter. A program the
    //    interpreter rejects is the generator's (or reducer's) fault,
    //    not the compiler's — InvalidProgram tells the reducer to
    //    discard the variant.
    Golden golden;
    try {
        isa::Memory mem = initialMemory(memSeed);
        ir::InterpResult gi = ir::interpret(fn, mem, 1u << 20);
        if (!gi.ok) {
            res.kind = FailKind::InvalidProgram;
            res.detail = gi.error.empty() ? "interpreter step budget"
                                          : gi.error;
            return res;
        }
        golden.retValue = gi.retValue;
        golden.memChecksum = mem.checksum();
    } catch (const std::exception &e) {
        // The interpreter throws on structurally broken programs (use
        // of an undefined temp, for one) — reducer variants hit this
        // constantly, and it means "discard", not "bug".
        res.kind = FailKind::InvalidProgram;
        res.detail = e.what();
        return res;
    }

    // 2. Compile. The pipeline's own inter-pass checks stay off —
    //    stage 3's whole-program verify is the checked surface, and
    //    running the checker 15x per case would dominate fuzz
    //    throughput.
    compiler::CompileResult compiled;
    try {
        compiler::CompileOptions opts = compiler::configNamed(cc.config);
        opts.unroll.factor = cc.unroll;
        opts.scalarOpts = cc.scalarOpts;
        opts.debugBreak = cc.breakOpt;
        opts.verifyEachPass = false;
        compiled = compiler::compile(fn, opts);
    } catch (const std::exception &e) {
        res.kind = FailKind::CompileError;
        res.detail = e.what();
        return res;
    }

    // 3. Static verification of the compiled program.
    {
        verify::DiagList diags;
        verify::verifyProgram(compiled.program, verify::VerifyOptions{},
                              diags);
        if (diags.hasErrors()) {
            res.kind = FailKind::VerifyError;
            res.detail = diags.joinedErrors();
            return res;
        }
    }

    // 4. Functional block executor vs golden.
    try {
        isa::ArchState state;
        state.mem = initialMemory(memSeed);
        isa::RunOutcome out = isa::runProgram(compiled.program, state);
        if (!out.halted) {
            res.kind = FailKind::ExecMismatch;
            res.detail = detail::cat(
                "functional executor did not halt: ",
                out.error.empty() ? "block budget" : out.error);
            return res;
        }
        std::string diff =
            diffState(golden, state.regs[compiler::kRetArchReg],
                      state.mem.checksum());
        if (!diff.empty()) {
            res.kind = FailKind::ExecMismatch;
            res.detail = detail::cat("functional executor: ", diff);
            return res;
        }
    } catch (const std::exception &e) {
        res.kind = FailKind::ExecMismatch;
        res.detail = detail::cat("functional executor threw: ",
                                 e.what());
        return res;
    }

    // 5. Cycle simulator vs golden (with fault injection in soak
    //    mode — injected faults must still recover to the golden
    //    result; see docs/RESILIENCE.md).
    try {
        isa::ArchState state;
        state.mem = initialMemory(memSeed);
        sim::SimConfig scfg;
        scfg.faults = cc.faults;
        scfg.watchdogCycles = cc.watchdogCycles;
        scfg.maxCycles = 1ull << 24;
        sim::SimResult sr = sim::simulate(compiled.program, state, scfg);
        if (!sr.halted) {
            res.kind = FailKind::SimHang;
            res.detail = detail::cat(
                "simulator did not halt after ", sr.cycles, " cycles: ",
                sr.error.empty() ? "cycle budget" : sr.error);
            return res;
        }
        std::string diff =
            diffState(golden, state.regs[compiler::kRetArchReg],
                      state.mem.checksum());
        if (!diff.empty()) {
            res.kind = FailKind::SimMismatch;
            res.detail = detail::cat("simulator: ", diff);
            return res;
        }
    } catch (const std::exception &e) {
        res.kind = FailKind::SimHang;
        res.detail = detail::cat("simulator threw: ", e.what());
        return res;
    }

    return res;
}

CaseResult
checkRoundTrip(const ir::Function &fn)
{
    CaseResult res;
    std::string text = ir::toString(fn);
    ir::Function reparsed;
    try {
        reparsed = ir::parseFunction(text);
    } catch (const std::exception &e) {
        res.kind = FailKind::RoundTrip;
        res.detail = detail::cat("printed function failed to re-parse: ",
                                 e.what());
        return res;
    }
    std::string why;
    if (!ir::structurallyEquivalent(fn, reparsed, &why)) {
        res.kind = FailKind::RoundTrip;
        res.detail = detail::cat("parse(print(fn)) differs: ", why);
    }
    return res;
}

} // namespace dfp::fuzz
