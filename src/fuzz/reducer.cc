#include "fuzz/reducer.h"

#include <cstddef>

namespace dfp::fuzz
{

namespace
{

/** Candidate budget: reduction is best-effort, not exhaustive. */
constexpr int kMaxAttempts = 4000;

/**
 * Validate a mutated candidate and test it. Invalid IR (dangling
 * labels, malformed terminators) is rejected without consulting the
 * predicate.
 */
bool
accepts(ir::Function fn,
        const std::function<bool(const ir::Function &)> &stillFails,
        ir::Function &best, ReduceStats &st)
{
    ++st.attempts;
    try {
        fn.computeCfg();
        fn.verify();
    } catch (const std::exception &) {
        return false;
    }
    if (!stillFails(fn))
        return false;
    ++st.accepted;
    best = std::move(fn);
    return true;
}

/** Flatten Br terminators to one side and prune what dies. */
bool
tryFlattenBranches(ir::Function &best,
                   const std::function<bool(const ir::Function &)>
                       &stillFails,
                   ReduceStats &st)
{
    bool any = false;
    for (size_t b = 0; b < best.blocks.size(); ++b) {
        if (best.blocks[b].term != ir::Term::Br)
            continue;
        for (int side = 0; side < 2; ++side) {
            if (st.attempts >= kMaxAttempts)
                return any;
            ir::Function cand = best;
            ir::BBlock &blk = cand.blocks[b];
            std::string target = blk.succLabels[side];
            blk.term = ir::Term::Jmp;
            blk.succLabels = {target};
            blk.cond = ir::Opnd::none();
            cand.pruneUnreachable();
            if (accepts(std::move(cand), stillFails, best, st)) {
                any = true;
                if (b >= best.blocks.size())
                    return any; // pruning shifted ids; restart caller
                break;
            }
        }
    }
    return any;
}

/** Delete instructions one at a time (back to front). */
bool
tryDeleteInstrs(ir::Function &best,
                const std::function<bool(const ir::Function &)>
                    &stillFails,
                ReduceStats &st)
{
    bool any = false;
    for (size_t b = 0; b < best.blocks.size(); ++b) {
        for (size_t i = best.blocks[b].instrs.size(); i-- > 0;) {
            if (st.attempts >= kMaxAttempts)
                return any;
            ir::Function cand = best;
            cand.blocks[b].instrs.erase(
                cand.blocks[b].instrs.begin() +
                static_cast<std::ptrdiff_t>(i));
            any |= accepts(std::move(cand), stillFails, best, st);
        }
    }
    return any;
}

/** Replace one operand with a simpler one; true if changed. */
bool
simplifyOpnd(ir::Opnd &op, int step)
{
    if (op.isTemp())
        return step == 0 ? (op = ir::Opnd::imm(0), true)
                         : (op = ir::Opnd::imm(1), true);
    if (op.isImm() && op.value != 0 && op.value != 1) {
        if (step == 0) {
            op = ir::Opnd::imm(0);
            return true;
        }
        if (step == 1 && op.value != 1) {
            op = ir::Opnd::imm(1);
            return true;
        }
    }
    return false;
}

/** Simplify instruction sources, branch conditions and return values. */
bool
trySimplifyOpnds(ir::Function &best,
                 const std::function<bool(const ir::Function &)>
                     &stillFails,
                 ReduceStats &st)
{
    bool any = false;
    for (size_t b = 0; b < best.blocks.size(); ++b) {
        for (size_t i = 0; i < best.blocks[b].instrs.size(); ++i) {
            // Phi sources are paired with predecessor blocks; an
            // immediate there is fine, so they simplify like any src.
            size_t nsrc = best.blocks[b].instrs[i].srcs.size();
            for (size_t s = 0; s < nsrc; ++s) {
                for (int step = 0; step < 2; ++step) {
                    if (st.attempts >= kMaxAttempts)
                        return any;
                    ir::Function cand = best;
                    if (!simplifyOpnd(
                            cand.blocks[b].instrs[i].srcs[s], step))
                        break;
                    if (accepts(std::move(cand), stillFails, best,
                                st)) {
                        any = true;
                        break;
                    }
                }
            }
        }
        for (int step = 0; step < 2; ++step) {
            if (st.attempts >= kMaxAttempts)
                return any;
            if (best.blocks[b].term == ir::Term::Ret &&
                !best.blocks[b].retVal.isNone()) {
                ir::Function cand = best;
                if (simplifyOpnd(cand.blocks[b].retVal, step) &&
                    accepts(std::move(cand), stillFails, best, st)) {
                    any = true;
                    break;
                }
            }
        }
    }
    return any;
}

} // namespace

ir::Function
reduce(const ir::Function &fn,
       const std::function<bool(const ir::Function &)> &stillFails,
       ReduceStats *stats)
{
    ReduceStats st;
    ir::Function best = fn;

    bool progress = true;
    while (progress && st.attempts < kMaxAttempts) {
        ++st.rounds;
        progress = false;
        // Branch flattening first: killing a whole arm removes more
        // than any number of single-instruction deletions.
        progress |= tryFlattenBranches(best, stillFails, st);
        progress |= tryDeleteInstrs(best, stillFails, st);
        progress |= trySimplifyOpnds(best, stillFails, st);
    }

    if (stats)
        *stats = st;
    return best;
}

} // namespace dfp::fuzz
