/**
 * @file
 * Self-contained reproducer bundles. A bundle is a single text file:
 * '#'-comment directives carrying the seed, configuration and failure
 * classification, followed by the failing function in parser syntax.
 * Because directives are comments, the whole file also parses directly
 * as IR — `dfpc reproducer.dfp` works on a bundle unchanged, and
 * `dfp-fuzz --replay reproducer.dfp` re-runs the exact failing case.
 */

#ifndef DFP_FUZZ_BUNDLE_H
#define DFP_FUZZ_BUNDLE_H

#include <cstdint>
#include <string>

#include "fuzz/oracle.h"
#include "ir/ir.h"

namespace dfp::fuzz
{

/** Everything needed to replay one failing case. */
struct Bundle
{
    std::string version;  //!< dfp version that produced the bundle
    uint64_t seed = 0;    //!< generator seed (0 = reduced/hand-written)
    uint64_t memSeed = 0; //!< initialMemory seed
    CaseConfig cc;        //!< the failing configuration
    FailKind kind = FailKind::None;
    std::string detail;   //!< one-line divergence description
    ir::Function fn;      //!< the (possibly minimized) program
};

/** Render a bundle to its text form. */
std::string renderBundle(const Bundle &bundle);

/**
 * Parse a bundle from text. Unknown directives are ignored (forward
 * compatibility); a missing function or malformed directive value
 * throws FatalError.
 */
Bundle parseBundle(const std::string &text);

} // namespace dfp::fuzz

#endif // DFP_FUZZ_BUNDLE_H
