/**
 * @file
 * The differential-fuzzing campaign driver behind tools/dfp-fuzz:
 * generate seeded random programs (generator.h), run each through the
 * printer/parser round-trip property and a sweep of compiler
 * configurations against the golden interpreter (oracle.h), and turn
 * every divergence into a delta-minimized reproducer bundle on disk
 * (reducer.h, bundle.h). Fully deterministic: one (seed, runs, sweep)
 * triple produces byte-identical bundles on every host.
 */

#ifndef DFP_FUZZ_FUZZ_H
#define DFP_FUZZ_FUZZ_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/bundle.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/reducer.h"

namespace dfp::fuzz
{

/** Campaign configuration. */
struct FuzzOptions
{
    uint64_t seed = 1;       //!< campaign seed; run i uses deriveSeed(seed, i)
    uint64_t runs = 100;     //!< programs to generate
    GenConfig gen;           //!< program shape (per-run seed overrides gen.seed)
    std::vector<CaseConfig> sweep; //!< empty = defaultSweep()
    std::string outDir = "fuzz-out"; //!< reproducer bundle directory
    bool reduce = true;      //!< delta-minimize failures
    std::string breakOpt;    //!< self-test: CompileOptions::debugBreak
    sim::FaultConfig faults; //!< soak mode: inject faults into every sim
    uint64_t watchdogCycles = 0;
    uint64_t maxFailures = 10; //!< stop the campaign after this many
};

/** One failing program, after reduction. */
struct FuzzFailure
{
    uint64_t seed = 0;     //!< generator seed of the failing program
    CaseConfig cc;         //!< the configuration that diverged
    FailKind kind = FailKind::None;
    std::string detail;
    std::string origPath;  //!< unreduced bundle file
    std::string minPath;   //!< minimized bundle file
    ReduceStats reduceStats;
};

/** Campaign summary. */
struct FuzzReport
{
    uint64_t programs = 0; //!< programs generated
    uint64_t cases = 0;    //!< differential cases executed
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Run a campaign. Progress and failure summaries go to @p log (one
 * line per failure plus a periodic heartbeat); bundles go to
 * opts.outDir, which is created on first failure.
 */
FuzzReport runFuzz(const FuzzOptions &opts, std::ostream &log);

/**
 * Re-run a parsed bundle's exact case (round-trip check for
 * FailKind::RoundTrip bundles, the full differential case otherwise).
 */
CaseResult replayBundle(const Bundle &bundle);

} // namespace dfp::fuzz

#endif // DFP_FUZZ_FUZZ_H
