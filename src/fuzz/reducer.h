/**
 * @file
 * Delta-debugging reducer for failing fuzz cases. Given a function and
 * a predicate "does this variant still fail the same way?", it applies
 * semantic-preserving-enough mutations — branch flattening (Br -> Jmp
 * plus unreachable-block pruning), instruction deletion, and operand
 * simplification — keeping each mutation only when the failure
 * reproduces, until a fixpoint or the attempt budget. Variants that
 * are malformed or that the golden interpreter rejects never satisfy
 * the predicate (runCase classifies them InvalidProgram), so the
 * reducer cannot wander off the valid-program manifold.
 */

#ifndef DFP_FUZZ_REDUCER_H
#define DFP_FUZZ_REDUCER_H

#include <functional>

#include "ir/ir.h"

namespace dfp::fuzz
{

/** Reduction effort/result counters (for logs and stats JSON). */
struct ReduceStats
{
    int attempts = 0;  //!< candidate variants tried
    int accepted = 0;  //!< mutations kept
    int rounds = 0;    //!< fixpoint iterations
};

/**
 * Shrink @p fn while @p stillFails holds. @p stillFails is called on
 * structurally valid candidates only; it must return true iff the
 * candidate reproduces the original failure (same FailKind).
 */
ir::Function reduce(const ir::Function &fn,
                    const std::function<bool(const ir::Function &)>
                        &stillFails,
                    ReduceStats *stats = nullptr);

} // namespace dfp::fuzz

#endif // DFP_FUZZ_REDUCER_H
