#include "fuzz/generator.h"

#include <algorithm>

#include "base/random.h"
#include "workloads/suite.h"

namespace dfp::fuzz
{

namespace
{

using ir::BBlock;
using ir::Function;
using ir::Instr;
using ir::Opnd;
using ir::Term;

const uint64_t kBases[] = {workloads::kArrA, workloads::kArrB,
                           workloads::kArrC, workloads::kOut,
                           workloads::kScratch};

/**
 * Structural program builder. Blocks are addressed by id (addBlock
 * reallocates the block vector), variables by temp id. Scoping rule:
 * variables introduced inside a diamond arm or loop body go out of
 * scope at the join/exit — only a definition that dominates every
 * later use may stay visible, and arm/body definitions dominate
 * nothing past the join. Reassignment of an outer variable inside an
 * arm is the interesting (predication-relevant) case and is always
 * legal: the outer definition still dominates later reads.
 */
class Builder
{
  public:
    explicit Builder(const GenConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed ? cfg.seed : 1)
    {}

    Function
    build()
    {
        fn_.name = "fuzz";
        cur_ = fn_.addBlock("entry").id;
        prelude();
        int structures = 1 + pick(cfg_.maxTopStructures);
        for (int i = 0; i < structures; ++i)
            genStructure(cfg_.maxDepth);
        straightLine();
        epilogue();
        fn_.computeCfg();
        fn_.verify();
        return std::move(fn_);
    }

  private:
    // --- randomness helpers ---------------------------------------------
    int pick(int bound) { return static_cast<int>(rng_.nextBelow(
                              static_cast<uint64_t>(std::max(1, bound)))); }
    bool chance(int percent) { return pick(100) < percent; }

    // --- emission helpers -----------------------------------------------
    BBlock &cur() { return fn_.blocks[cur_]; }

    int
    newBlock()
    {
        return fn_.addBlock(detail::cat("b", ++blockCount_)).id;
    }

    Instr &
    emit(isa::Op op, Opnd dst, std::vector<Opnd> srcs)
    {
        Instr inst;
        inst.op = op;
        inst.dst = dst;
        inst.srcs = std::move(srcs);
        cur().instrs.push_back(std::move(inst));
        return cur().instrs.back();
    }

    /** Admit a value to the readable pool, respecting the liveness cap. */
    void
    trackVar(int id)
    {
        if (static_cast<int>(vars_.size()) < cfg_.maxLiveVars)
            vars_.push_back(id);
    }

    void
    trackPred(int id)
    {
        // Predicates reused for correlated branches stay live across
        // whole structures; a small pool keeps that pressure bounded.
        if (preds_.size() < 8)
            preds_.push_back(id);
    }

    Opnd
    freshVar(isa::Op op, std::vector<Opnd> srcs)
    {
        Opnd dst = Opnd::temp(fn_.newTemp());
        emit(op, dst, std::move(srcs));
        trackVar(dst.id);
        return dst;
    }

    /** A variable to read (uniform over the live set). */
    Opnd
    readVar()
    {
        return Opnd::temp(vars_[pick(static_cast<int>(vars_.size()))]);
    }

    /** A read operand: usually a variable, sometimes an immediate. */
    Opnd
    operand()
    {
        if (chance(25))
            return Opnd::imm(randImm());
        return readVar();
    }

    int64_t
    randImm()
    {
        switch (pick(6)) {
          case 0: return 0;
          case 1: return 1;
          case 2: return -1;
          // 32-bit, not 64: codegen synthesizes wide constants at ~2
          // instructions per byte, and a few full-width immediates
          // would blow the 128-instruction block cap outright.
          case 3: return static_cast<int32_t>(rng_.next());
          default: return rng_.nextRange(-128, 127);
        }
    }

    /** A destination: a fresh variable or an unprotected existing one. */
    Opnd
    destVar()
    {
        bool full = static_cast<int>(vars_.size()) >= cfg_.maxLiveVars;
        if (!full && !chance(40))
            return Opnd::temp(fn_.newTemp());
        std::vector<int> candidates;
        for (int v : vars_) {
            if (std::find(protected_.begin(), protected_.end(), v) ==
                protected_.end()) {
                candidates.push_back(v);
            }
        }
        if (candidates.empty())
            return Opnd::temp(fn_.newTemp());
        return Opnd::temp(
            candidates[pick(static_cast<int>(candidates.size()))]);
    }

    void
    define(isa::Op op, std::vector<Opnd> srcs)
    {
        Opnd dst = destVar();
        bool fresh = std::find(vars_.begin(), vars_.end(), dst.id) ==
                     vars_.end();
        emit(op, dst, std::move(srcs));
        if (fresh)
            trackVar(dst.id);
    }

    // --- program pieces -------------------------------------------------

    void
    prelude()
    {
        // Seed the variable pool: a few loads from the input arrays and
        // a few constants, then the accumulator the program returns.
        for (int i = 0; i < cfg_.numInputVars; ++i) {
            if (cfg_.memOps && chance(60)) {
                Opnd base = freshVar(
                    isa::Op::Movi, {Opnd::imm(static_cast<int64_t>(
                                       kBases[pick(3)]))});
                Instr &ld = emit(isa::Op::Ld, Opnd::temp(fn_.newTemp()),
                                 {base, Opnd::imm(8 * pick(8))});
                trackVar(ld.dst.id);
                ++memOps_;
            } else {
                freshVar(isa::Op::Movi, {Opnd::imm(randImm())});
            }
        }
        acc_ = freshVar(isa::Op::Movi, {Opnd::imm(randImm())}).id;
    }

    void
    epilogue()
    {
        // Fold a couple of live variables into the accumulator so more
        // of the computation is observable, store it, and return it.
        emit(isa::Op::Xor, Opnd::temp(acc_),
             {Opnd::temp(acc_), readVar()});
        emit(isa::Op::Add, Opnd::temp(acc_),
             {Opnd::temp(acc_), readVar()});
        if (cfg_.memOps) {
            Opnd base = freshVar(
                isa::Op::Movi,
                {Opnd::imm(static_cast<int64_t>(workloads::kOut))});
            Instr &st = emit(isa::Op::St, Opnd::none(),
                             {base, Opnd::temp(acc_), Opnd::imm(0)});
            (void)st;
        }
        cur().term = Term::Ret;
        cur().retVal = Opnd::temp(acc_);
    }

    void
    genStructure(int depth)
    {
        int roll = pick(100);
        if (depth > 0 && cfg_.loops && roll < 25)
            genLoop(depth);
        else if (depth > 0 && roll < 70)
            genDiamond(depth);
        else if (cfg_.memOps && roll < 85)
            genMemRun();
        else
            straightLine();
    }

    /** One straight-line run of random compute statements. */
    void
    straightLine()
    {
        int n = 1 + pick(cfg_.maxStmtsPerRun);
        for (int i = 0; i < n; ++i)
            genStatement();
    }

    void
    genStatement()
    {
        static const isa::Op kArith[] = {
            isa::Op::Add, isa::Op::Sub, isa::Op::Mul, isa::Op::And,
            isa::Op::Or,  isa::Op::Xor, isa::Op::Shl, isa::Op::Shr,
            isa::Op::Sra};
        static const isa::Op kTests[] = {isa::Op::Teq, isa::Op::Tne,
                                         isa::Op::Tlt, isa::Op::Tle,
                                         isa::Op::Tgt, isa::Op::Tge};
        int roll = pick(100);
        if (roll < 55) {
            define(kArith[pick(9)], {readVar(), operand()});
        } else if (roll < 70) {
            Opnd dst = Opnd::temp(fn_.newTemp());
            emit(kTests[pick(6)], dst, {readVar(), operand()});
            trackVar(dst.id);
            trackPred(dst.id);
        } else if (roll < 80) {
            // Exception-free division: divisor masked to [1, 255].
            Opnd m = freshVar(isa::Op::And, {readVar(), Opnd::imm(255)});
            Opnd d = freshVar(isa::Op::Or, {m, Opnd::imm(1)});
            define(isa::Op::Div, {readVar(), d});
        } else if (roll < 90 && cfg_.floatOps) {
            genFloatRun();
        } else if (roll < 95) {
            define(isa::Op::Mov, {readVar()});
        } else {
            // Fold into the accumulator (keeps dead-code elimination
            // from erasing whole regions and keeps results observable).
            emit(isa::Op::Add, Opnd::temp(acc_),
                 {Opnd::temp(acc_), readVar()});
        }
    }

    /**
     * Float dataflow that cannot trap or go undefined: itof from
     * integers, a few arithmetic steps, observed through a comparison
     * (never ftoi — out-of-range double-to-int casts are UB).
     */
    void
    genFloatRun()
    {
        Opnd f1 = freshVar(isa::Op::Itof, {readVar()});
        Opnd f2 = freshVar(isa::Op::Itof, {readVar()});
        static const isa::Op kFArith[] = {isa::Op::Fadd, isa::Op::Fsub,
                                          isa::Op::Fmul};
        Opnd f3 = freshVar(kFArith[pick(3)], {f1, f2});
        static const isa::Op kFTests[] = {isa::Op::Flt, isa::Op::Fgt,
                                          isa::Op::Feq, isa::Op::Fle,
                                          isa::Op::Fge};
        Opnd c = freshVar(kFTests[pick(5)], {f3, f1});
        trackPred(c.id);
    }

    /** Aligned address: base + ((var & 63) << 3), plus 0/8 in the
     *  instruction's offset immediate. */
    Opnd
    alignedAddr()
    {
        Opnd idx = freshVar(isa::Op::And, {readVar(), Opnd::imm(63)});
        Opnd off = freshVar(isa::Op::Shl, {idx, Opnd::imm(3)});
        Opnd base = freshVar(
            isa::Op::Movi,
            {Opnd::imm(static_cast<int64_t>(kBases[pick(5)]))});
        return freshVar(isa::Op::Add, {base, off});
    }

    /**
     * A load/store run with deliberate aliasing: one address feeds a
     * mix of loads and stores (RAW/WAR through the LSQ and the LSID
     * ordering machinery), sometimes reusing the same base so distinct
     * addresses can still collide.
     */
    void
    genMemRun()
    {
        if (memOps_ + 2 > cfg_.maxMemOps) {
            straightLine();
            return;
        }
        Opnd addr = alignedAddr();
        int n = 2 + pick(3);
        for (int i = 0; i < n && memOps_ < cfg_.maxMemOps; ++i) {
            if (chance(45)) {
                Instr &st = emit(isa::Op::St, Opnd::none(),
                                 {addr, readVar(),
                                  Opnd::imm(8 * pick(2))});
                (void)st;
            } else {
                Opnd dst = Opnd::temp(fn_.newTemp());
                emit(isa::Op::Ld, dst, {addr, Opnd::imm(8 * pick(2))});
                trackVar(dst.id);
            }
            ++memOps_;
            if (chance(30))
                addr = alignedAddr(); // switch to a (maybe aliasing) addr
        }
    }

    /**
     * Branch condition. With correlation enabled this frequently
     * reuses or negates an earlier predicate, building the correlated
     * test chains the path-sensitive optimization (§5.2) keys on.
     */
    Opnd
    condVar()
    {
        if (cfg_.correlatedBranches && !preds_.empty() && chance(45)) {
            int p = preds_[pick(static_cast<int>(preds_.size()))];
            if (chance(35))
                return freshVar(isa::Op::Xor,
                                {Opnd::temp(p), Opnd::imm(1)});
            return Opnd::temp(p);
        }
        static const isa::Op kTests[] = {isa::Op::Teq, isa::Op::Tne,
                                         isa::Op::Tlt, isa::Op::Tgt};
        Opnd c = freshVar(kTests[pick(4)], {readVar(), operand()});
        trackPred(c.id);
        return c;
    }

    /** Restore variable scope at a join point. */
    void
    closeScope(size_t varsMark, size_t predsMark)
    {
        vars_.resize(varsMark);
        preds_.resize(predsMark);
    }

    void
    genDiamond(int depth)
    {
        Opnd cond = condVar();
        int thenB = newBlock();
        int elseB = newBlock();
        int joinB = newBlock();
        cur().term = Term::Br;
        cur().cond = cond;
        cur().succLabels = {fn_.blocks[thenB].name,
                            fn_.blocks[elseB].name};

        size_t varsMark = vars_.size(), predsMark = preds_.size();
        cur_ = thenB;
        if (depth > 1 && chance(40))
            genStructure(depth - 1);
        else
            straightLine();
        cur().term = Term::Jmp;
        cur().succLabels = {fn_.blocks[joinB].name};
        closeScope(varsMark, predsMark);

        cur_ = elseB;
        if (chance(20)) {
            // Empty else arm: a pure fall-through edge.
        } else if (depth > 1 && chance(30)) {
            genStructure(depth - 1);
        } else {
            straightLine();
        }
        cur().term = Term::Jmp;
        cur().succLabels = {fn_.blocks[joinB].name};
        closeScope(varsMark, predsMark);

        cur_ = joinB;
    }

    void
    genLoop(int depth)
    {
        // i = 0; header: if (i < trip) body; else exit
        // body: ...; i = i + 1; jmp header
        Opnd i = freshVar(isa::Op::Movi, {Opnd::imm(0)});
        int64_t trip = 1 + pick(cfg_.maxLoopTrip);
        int headerB = newBlock();
        int bodyB = newBlock();
        int exitB = newBlock();
        cur().term = Term::Jmp;
        cur().succLabels = {fn_.blocks[headerB].name};

        cur_ = headerB;
        Opnd c = freshVar(isa::Op::Tlt, {i, Opnd::imm(trip)});
        cur().term = Term::Br;
        cur().cond = c;
        cur().succLabels = {fn_.blocks[bodyB].name,
                            fn_.blocks[exitB].name};

        size_t varsMark = vars_.size(), predsMark = preds_.size();
        protected_.push_back(i.id);
        cur_ = bodyB;
        if (depth > 1 && chance(45))
            genStructure(depth - 1);
        else
            straightLine();
        // Loop-carried accumulation keeps the body observable.
        emit(isa::Op::Add, Opnd::temp(acc_),
             {Opnd::temp(acc_), readVar()});
        emit(isa::Op::Add, i, {i, Opnd::imm(1)});
        cur().term = Term::Jmp;
        cur().succLabels = {fn_.blocks[headerB].name};
        protected_.pop_back();
        closeScope(varsMark, predsMark);

        cur_ = exitB;
    }

    GenConfig cfg_;
    Rng rng_;
    Function fn_;
    int cur_ = 0;            //!< current block id
    int blockCount_ = 0;
    int memOps_ = 0;
    int acc_ = -1;           //!< accumulator temp id
    std::vector<int> vars_;  //!< in-scope variables (temp ids)
    std::vector<int> preds_; //!< in-scope 0/1 test results
    std::vector<int> protected_; //!< open-loop counters (never clobber)
};

} // namespace

ir::Function
generate(const GenConfig &cfg)
{
    return Builder(cfg).build();
}

isa::Memory
initialMemory(uint64_t seed)
{
    Rng rng(seed ? seed : 1);
    isa::Memory mem;
    for (uint64_t base : {workloads::kArrA, workloads::kArrB,
                          workloads::kArrC}) {
        for (uint64_t i = 0; i < 64; ++i)
            mem.store(base + 8 * i, rng.next());
    }
    return mem;
}

uint64_t
deriveSeed(uint64_t base, uint64_t index)
{
    // splitmix64 finalizer over the combined value: adjacent indices
    // give statistically independent streams.
    uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z ? z : 1;
}

} // namespace dfp::fuzz
