#include "fuzz/bundle.h"

#include <cstdlib>
#include <sstream>

#include "base/version.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace dfp::fuzz
{

namespace
{

/** Directives are one-line comments; flatten embedded newlines. */
std::string
oneLine(std::string s)
{
    for (char &c : s) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    return s;
}

uint64_t
parseU64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str())
        dfp_fatal("bundle directive '", key, "' needs a number, got '",
                  value, "'");
    return v;
}

} // namespace

std::string
renderBundle(const Bundle &bundle)
{
    std::ostringstream os;
    os << "# dfp-fuzz reproducer\n";
    os << "# version: "
       << (bundle.version.empty() ? versionString() : bundle.version)
       << "\n";
    os << "# seed: " << bundle.seed << "\n";
    os << "# mem-seed: " << bundle.memSeed << "\n";
    os << "# config: " << bundle.cc.config << "\n";
    os << "# unroll: " << bundle.cc.unroll << "\n";
    os << "# scalar-opts: " << (bundle.cc.scalarOpts ? 1 : 0) << "\n";
    if (!bundle.cc.breakOpt.empty())
        os << "# break-opt: " << bundle.cc.breakOpt << "\n";
    if (bundle.cc.faults.enabled()) {
        os << "# fault-model: "
           << sim::faultModelName(bundle.cc.faults.model) << "\n";
        os << "# fault-rate: " << bundle.cc.faults.rate << "\n";
        os << "# fault-seed: " << bundle.cc.faults.seed << "\n";
    }
    os << "# kind: " << failKindName(bundle.kind) << "\n";
    if (!bundle.detail.empty())
        os << "# detail: " << oneLine(bundle.detail) << "\n";
    os << "\n";
    ir::print(os, bundle.fn);
    return os.str();
}

Bundle
parseBundle(const std::string &text)
{
    Bundle bundle;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        size_t hash = line.find('#');
        if (hash == std::string::npos)
            continue;
        size_t colon = line.find(':', hash);
        if (colon == std::string::npos)
            continue;
        std::string key = line.substr(hash + 1, colon - hash - 1);
        // Trim the key and the value.
        while (!key.empty() && key.front() == ' ')
            key.erase(key.begin());
        while (!key.empty() && key.back() == ' ')
            key.pop_back();
        std::string value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ')
            value.erase(value.begin());

        if (key == "version") {
            bundle.version = value;
        } else if (key == "seed") {
            bundle.seed = parseU64(key, value);
        } else if (key == "mem-seed") {
            bundle.memSeed = parseU64(key, value);
        } else if (key == "config") {
            bundle.cc.config = value;
        } else if (key == "unroll") {
            bundle.cc.unroll = static_cast<int>(parseU64(key, value));
        } else if (key == "scalar-opts") {
            bundle.cc.scalarOpts = parseU64(key, value) != 0;
        } else if (key == "break-opt") {
            bundle.cc.breakOpt = value;
        } else if (key == "fault-model") {
            if (!sim::parseFaultModel(value, bundle.cc.faults.model))
                dfp_fatal("bundle: unknown fault model '", value, "'");
        } else if (key == "fault-rate") {
            bundle.cc.faults.rate = std::strtod(value.c_str(), nullptr);
        } else if (key == "fault-seed") {
            bundle.cc.faults.seed = parseU64(key, value);
        } else if (key == "kind") {
            if (!parseFailKind(value, bundle.kind))
                dfp_fatal("bundle: unknown failure kind '", value, "'");
        } else if (key == "detail") {
            bundle.detail = value;
        }
        // Unknown keys (and the banner line) fall through silently.
    }
    bundle.fn = ir::parseFunction(text);
    return bundle;
}

} // namespace dfp::fuzz
