/**
 * @file
 * Template for bringing your own kernel to dfp: parse it, validate it,
 * cross-check the golden interpreter against every compiler
 * configuration on the cycle simulator, and print a one-line summary
 * per configuration — the same harness the test suite uses, in ~100
 * lines you can copy.
 */

#include <cstdio>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "isa/validate.h"
#include "sim/machine.h"

using namespace dfp;

namespace
{

/** Replace this with your kernel: a histogram with saturating bins. */
const char *kKernel = R"(func histo {
block entry:
    i = movi 0
    jmp loop
block loop:
    off = shl i, 3
    pa = add 8192, off
    v = ld pa
    bin = and v, 15
    boff = shl bin, 3
    pb = add 16384, boff
    count = ld pb
    cfull = tge count, 255
    br cfull, saturated, bump
block bump:
    ncount = add count, 1
    st pb, ncount
    jmp next
block saturated:
    jmp next
block next:
    i = add i, 1
    c = tlt i, 512
    br c, loop, done
block done:
    total = movi 0
    b = movi 0
    jmp sum
block sum:
    so = shl b, 3
    ps = add 16384, so
    cv = ld ps
    total = add total, cv
    b = add b, 1
    cb = tlt b, 16
    br cb, sum, fin
block fin:
    ret total
})";

void
initMemory(isa::Memory &mem)
{
    for (int i = 0; i < 512; ++i)
        mem.store(8192 + 8 * i, (i * 2654435761u) >> 7);
}

} // namespace

int
main()
{
    // 1. Parse and sanity-check the kernel.
    ir::Function fn = ir::parseFunction(kKernel);
    std::printf("parsed '%s': %zu blocks\n", fn.name.c_str(),
                fn.blocks.size());

    // 2. Golden reference.
    isa::Memory goldenMem;
    initMemory(goldenMem);
    ir::InterpResult golden = ir::interpret(fn, goldenMem);
    if (!golden.ok) {
        std::printf("golden run failed: %s\n", golden.error.c_str());
        return 1;
    }
    std::printf("golden result: %llu (%llu dynamic instructions)\n\n",
                (unsigned long long)golden.retValue,
                (unsigned long long)golden.dynInstrs);

    // 3. Every configuration, verified against the golden model.
    std::printf("%-7s %8s %8s %10s %8s %9s\n", "config", "blocks",
                "insts", "cycles", "IPC", "verified");
    for (const char *cfg :
         {"bb", "hyper", "intra", "inter", "both", "merge"}) {
        compiler::CompileResult res =
            compiler::compileSource(kKernel, compiler::configNamed(cfg));
        auto validation = isa::validateProgram(res.program);
        if (!validation.ok()) {
            std::printf("%-7s INVALID: %s\n", cfg,
                        validation.joined().c_str());
            return 1;
        }
        isa::ArchState state;
        initMemory(state.mem);
        sim::SimResult out = sim::simulate(res.program, state);
        bool verified =
            out.halted &&
            state.regs[compiler::kRetArchReg] == golden.retValue &&
            state.mem.checksum() == goldenMem.checksum();
        std::printf("%-7s %8llu %8llu %10llu %8.2f %9s\n", cfg,
                    (unsigned long long)res.stats.get("codegen.blocks"),
                    (unsigned long long)res.stats.get("codegen.insts"),
                    (unsigned long long)out.cycles,
                    double(out.instsCommitted) /
                        double(std::max<uint64_t>(1, out.cycles)),
                    verified ? "yes" : "NO");
        if (!verified) {
            std::printf("   error: %s\n", out.error.c_str());
            return 1;
        }
    }
    return 0;
}
