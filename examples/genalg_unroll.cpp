/**
 * @file
 * The paper's Figure 6 story, end to end: the genalg roulette-wheel
 * selection loop with the short-circuit condition
 * `rx > 0.0 && x < pop-1`, compiled at increasing unroll factors with
 * and without disjoint instruction merging, with the loop's exit
 * predicates shown in paper notation.
 */

#include <cstdio>
#include <iostream>

#include "compiler/pipeline.h"
#include "ir/printer.h"
#include "sim/machine.h"
#include "workloads/suite.h"

using namespace dfp;

int
main()
{
    const workloads::Workload &w = workloads::genalg();
    workloads::Golden golden = workloads::runGolden(w);
    std::printf("genalg: %llu dynamic IR instructions, golden result "
                "%llu\n\n",
                (unsigned long long)golden.dynInstrs,
                (unsigned long long)golden.retValue);

    // Show the unrolled, merged hyperblock once (unroll 4) — the
    // structure of Figure 6(b)/(d): a predicate-AND chain of tests and
    // merged exit branches.
    {
        compiler::CompileOptions opts = compiler::configNamed("merge");
        opts.unroll.factor = 4;
        compiler::CompileResult res =
            compiler::compileSource(w.source, opts);
        std::printf("--- unrolled x4 + merged, hyperblock IR ---\n");
        for (const ir::BBlock &hb : res.hyperIr.blocks) {
            if (hb.name.find("loop") == std::string::npos)
                continue;
            std::printf("block %s:\n", hb.name.c_str());
            for (const ir::Instr &inst : hb.instrs)
                std::printf("    %s\n", ir::toString(inst).c_str());
            break;
        }
        std::printf("\n");
    }

    std::printf("%-8s %-7s %10s %10s\n", "unroll", "merge", "cycles",
                "speedup");
    double first = 0;
    for (int unroll : {1, 4, 8}) {
        for (bool merge : {false, true}) {
            compiler::CompileOptions opts =
                compiler::configNamed(merge ? "merge" : "both");
            opts.unroll.factor = unroll;
            opts.unroll.maxBodyInstrs = 32;
            compiler::CompileResult res =
                compiler::compileSource(w.source, opts);
            isa::ArchState state;
            state.mem = workloads::initialMemory(w);
            sim::SimResult out = sim::simulate(res.program, state);
            if (!out.halted) {
                std::printf("FAILED: %s\n", out.error.c_str());
                return 1;
            }
            if (first == 0)
                first = double(out.cycles);
            std::printf("%-8d %-7s %10llu %9.2fx\n", unroll,
                        merge ? "yes" : "no",
                        (unsigned long long)out.cycles,
                        first / double(out.cycles));
        }
    }
    std::printf("\npaper: hand-unrolling + merging the exit branches "
                "and live-out guards beat the best compiled code by "
                ">2.25x (§5.3, Figure 6)\n");
    return 0;
}
