/**
 * @file
 * dfp quickstart: write a kernel in the textual IR, compile it with
 * dataflow predication, inspect the generated block, and run it on
 * both the functional executor and the cycle-level TRIPS-like machine.
 *
 * Build & run:   ./examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "ir/printer.h"
#include "isa/exec.h"
#include "sim/machine.h"

int
main()
{
    using namespace dfp;

    // 1. A kernel in the dfp IR: sum of clamped values. The if/else in
    //    the loop body is exactly the kind of short branch dataflow
    //    predication absorbs into a hyperblock.
    const char *source = R"(func clampsum {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    off = shl i, 3
    p = add 4096, off
    v = ld p
    c = tgt v, 100
    br c, clamp, keep
block clamp:
    x = movi 100
    jmp next
block keep:
    x = mov v
    jmp next
block next:
    acc = add acc, x
    i = add i, 1
    lc = tlt i, 64
    br lc, loop, done
block done:
    ret acc
})";

    // 2. Compile with the paper's "both" configuration: hyperblocks +
    //    predicate fanout reduction (§5.1) + path-sensitive predicate
    //    removal (§5.2).
    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = 2; // pack two iterations per block
    compiler::CompileResult res = compiler::compileSource(source, opts);

    std::printf("compiled into %zu TRIPS-style blocks\n",
                res.program.blocks.size());
    std::printf("\n--- hyperblock-form IR (paper notation) ---\n");
    ir::print(std::cout, res.hyperIr);

    // 3. Run on the functional golden executor.
    isa::ArchState state;
    for (int i = 0; i < 64; ++i)
        state.mem.store(4096 + 8 * i, (i * 37) % 230);
    isa::RunOutcome fout = isa::runProgram(res.program, state);
    std::printf("\nfunctional executor: halted=%d result(g%d)=%llu "
                "blocks=%llu\n",
                fout.halted, compiler::kRetArchReg,
                (unsigned long long)state.regs[compiler::kRetArchReg],
                (unsigned long long)fout.blocksExecuted);

    // 4. Run on the cycle-level machine and show the headline stats.
    isa::ArchState simState;
    for (int i = 0; i < 64; ++i)
        simState.mem.store(4096 + 8 * i, (i * 37) % 230);
    sim::SimResult sres = sim::simulate(res.program, simState);
    std::printf("cycle simulator:     halted=%d result=%llu cycles=%llu "
                "IPC=%.2f mispredicts=%llu\n",
                sres.halted,
                (unsigned long long)simState.regs[compiler::kRetArchReg],
                (unsigned long long)sres.cycles,
                double(sres.instsCommitted) / double(sres.cycles),
                (unsigned long long)sres.mispredicts);

    // 5. Compare against the basic-block configuration — the win is the
    //    point of the paper.
    compiler::CompileResult bb =
        compiler::compileSource(source, compiler::configNamed("bb"));
    isa::ArchState bbState;
    for (int i = 0; i < 64; ++i)
        bbState.mem.store(4096 + 8 * i, (i * 37) % 230);
    sim::SimResult bres = sim::simulate(bb.program, bbState);
    std::printf("\nbasic blocks take %llu cycles -> hyperblocks + "
                "dataflow predication are %.2fx faster here\n",
                (unsigned long long)bres.cycles,
                double(bres.cycles) / double(sres.cycles));
    return 0;
}
