/**
 * @file
 * A guided tour of the paper's running example (Figures 2, 4 and 5).
 *
 * It builds the Figure 4 source, walks it through the compiler one
 * phase at a time, and prints the hyperblock after each §5
 * optimization so the output can be compared side-by-side with the
 * paper's figures. It finishes by encoding the Figure 2 block and
 * dumping the 32-bit instruction words with their fields.
 */

#include <cstdio>
#include <iostream>

#include "compiler/regalloc.h"
#include "compiler/scalar_opts.h"
#include "core/ifconvert.h"
#include "core/merging.h"
#include "core/null_insertion.h"
#include "core/path_sensitive.h"
#include "core/pred_fanout.h"
#include "core/ssa.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "isa/encode.h"

using namespace dfp;

namespace
{

/** The C fragment behind Figure 4:
 *    if (g2 > 1) { g1 = (g1 << 4) + 1; }
 *    else        { if (g2 == 0) g2 = 1; }
 *  with g1, g2 live out (read/written through the register file). */
const char *kFigure4 = R"(func fig4 {
block entry:
    t1 = ld 64
    t2 = ld 72
    t3 = tgt t2, 1
    br t3, big, small
block big:
    t4 = shl t1, 4
    t5a = add t4, 1
    t6a = mov t2
    jmp out
block small:
    t7 = teq t2, 0
    br t7, zero, nonzero
block zero:
    t6b = movi 1
    jmp smallout
block nonzero:
    t6c = mov t2
    jmp smallout
block smallout:
    t6d = phi [zero: t6b], [nonzero: t6c]
    jmp out
block out:
    t5 = phi [big: t5a], [smallout: t1]
    t6 = phi [big: t6a], [smallout: t6d]
    st 64, t5
    st 72, t6
    r = add t5, t6
    ret r
})";

void
banner(const char *title)
{
    std::printf("\n==== %s "
                "=============================================\n",
                title);
}

} // namespace

int
main()
{
    // ------------------------------------------------------------------
    banner("Figure 4 source (three-address form, like Scale's)");
    ir::Function fn = ir::parseFunction(kFigure4);
    ir::print(std::cout, fn);

    banner("after SSA + scalar opts");
    core::buildSsa(fn);
    compiler::runScalarOpts(fn);
    ir::print(std::cout, fn);

    banner("after if-conversion: one hyperblock, naive predication");
    core::RegionConfig rc;
    core::RegionPlan plan = core::selectRegions(fn, rc);
    core::lowerBoundaries(fn, plan);
    core::ifConvert(fn, plan);
    ir::print(std::cout, fn);
    std::printf("(compare with the paper's Figure 4: the two arms are "
                "guarded on opposite polarities of the tgt's result, the "
                "inner teq is itself predicated — the §3.4 AND chain — "
                "and the dataflow join feeds the writes)\n");

    banner("Figure 5a: after predicate fanout reduction (§5.1)");
    int removed = core::reducePredFanout(fn);
    ir::print(std::cout, fn);
    std::printf("(%d guards removed: interior chain instructions like "
                "the shl are now implicitly predicated / speculatively "
                "hoisted)\n", removed);

    banner("Figure 5b: after path-sensitive predicate removal (§5.2)");
    int promoted = core::removePathSensitivePreds(fn);
    ir::print(std::cout, fn);
    std::printf("(%d changes: value chains whose register is dead on "
                "the complementary exits are promoted and their null "
                "compensation writes deleted)\n", promoted);

    banner("Figure 5c: after disjoint instruction merging (§5.3)");
    int merged = core::mergeDisjointInstructions(fn);
    ir::print(std::cout, fn);
    std::printf("(%d instructions eliminated; look for instructions "
                "carrying two predicates — the ISA's predicate-OR)\n",
                merged);

    // ------------------------------------------------------------------
    banner("Figure 2: encoding the if-then-else block");
    isa::TBlock block;
    block.label = "fig2";
    block.reads.push_back({3, {{isa::Slot::Left, 0}}});
    block.reads.push_back({4, {{isa::Slot::Right, 0}}});
    block.reads.push_back(
        {5, {{isa::Slot::Left, 1}, {isa::Slot::Left, 2}}});
    isa::TInst teq;
    teq.op = isa::Op::Teq;
    teq.targets = {{isa::Slot::Pred, 1}, {isa::Slot::Pred, 2}};
    isa::TInst addiT;
    addiT.op = isa::Op::Addi;
    addiT.pr = isa::PredMode::OnTrue;
    addiT.imm = 2;
    addiT.targets = {{isa::Slot::Left, 3}};
    isa::TInst addiF = addiT;
    addiF.pr = isa::PredMode::OnFalse;
    addiF.imm = 3;
    isa::TInst slli;
    slli.op = isa::Op::Shli;
    slli.imm = 1;
    slli.targets = {{isa::Slot::WriteQ, 0}};
    isa::TInst bro;
    bro.op = isa::Op::Bro;
    bro.imm = isa::kHaltTarget;
    block.insts = {teq, addiT, addiF, slli, bro};
    block.writes.push_back({6});

    std::vector<uint32_t> words = isa::encodeBlock(block);
    const char *names[] = {"header", "storemask", "rsvd", "rsvd",
                           "read g3", "read g4", "read g5", "write g6",
                           "teq", "addi_t #2", "addi_f #3", "slli #1",
                           "bro halt"};
    for (size_t i = 0; i < words.size(); ++i) {
        std::printf("  word %2zu  %08x", i, words[i]);
        if (i < std::size(names))
            std::printf("  %s", names[i]);
        if (i >= 8 && i < 12) {
            std::printf("  [op=%u pr=%u f2=%u t1=%u]",
                        (words[i] >> 25) & 0x7f, (words[i] >> 23) & 3,
                        (words[i] >> 9) & 0x1ff, words[i] & 0x1ff);
        }
        std::printf("\n");
    }
    std::printf("(the paper's Figure 2 encodings: a 7-bit opcode, the "
                "2-bit PR field — 00 unpredicated, 11 on-true, 10 "
                "on-false — and two 9-bit target/immediate fields)\n");
    return 0;
}
