#include <gtest/gtest.h>

#include "core/pfg.h"

namespace dfp::core
{
namespace
{

/** Build a hyperblock resembling the paper's Figure 4:
 *  tgti t3; slli_t<t3>; addi_t<t3>; teqi_f<t3> t7; movi_f<t7>; bros. */
ir::BBlock
figure4Block()
{
    ir::BBlock hb;
    hb.name = "fig4";
    hb.term = ir::Term::Hyper;
    auto add = [&](isa::Op op, int dst, std::vector<ir::Opnd> srcs,
                   std::vector<ir::Guard> guards) {
        ir::Instr inst;
        inst.op = op;
        if (dst >= 0)
            inst.dst = ir::Opnd::temp(dst);
        inst.srcs = std::move(srcs);
        inst.guards = std::move(guards);
        hb.instrs.push_back(std::move(inst));
        return static_cast<int>(hb.instrs.size() - 1);
    };
    // t1, t2 come from reads.
    ir::Instr r1;
    r1.op = isa::Op::Read;
    r1.reg = 1;
    r1.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(r1);
    ir::Instr r2;
    r2.op = isa::Op::Read;
    r2.reg = 2;
    r2.dst = ir::Opnd::temp(2);
    hb.instrs.push_back(r2);
    add(isa::Op::Tgti, 3, {ir::Opnd::temp(2), ir::Opnd::imm(1)}, {});
    add(isa::Op::Shli, 4, {ir::Opnd::temp(1), ir::Opnd::imm(4)},
        {{3, true}});
    add(isa::Op::Addi, 5, {ir::Opnd::temp(4), ir::Opnd::imm(1)},
        {{3, true}});
    add(isa::Op::Mov, 5, {ir::Opnd::temp(1)}, {{3, false}});
    add(isa::Op::Teqi, 7, {ir::Opnd::temp(2), ir::Opnd::imm(0)},
        {{3, false}});
    add(isa::Op::Movi, 6, {ir::Opnd::imm(1)}, {{7, false}});
    add(isa::Op::Mov, 6, {ir::Opnd::temp(2)}, {{7, true}});
    ir::Instr w1;
    w1.op = isa::Op::Write;
    w1.reg = 1;
    w1.srcs = {ir::Opnd::temp(5)};
    hb.instrs.push_back(w1);
    ir::Instr bro;
    bro.op = isa::Op::Bro;
    bro.broLabel = "@halt";
    hb.instrs.push_back(bro);
    return hb;
}

TEST(Pfg, DefsAndUses)
{
    ir::BBlock hb = figure4Block();
    PredInfo info(hb);
    EXPECT_EQ(info.defsOf(5).size(), 2u); // addi_t and mov_f
    EXPECT_EQ(info.defsOf(3).size(), 1u);
    EXPECT_GE(info.usesOf(3).size(), 4u); // three guards + teqi guard
}

TEST(Pfg, ContextChainsFollowGuards)
{
    ir::BBlock hb = figure4Block();
    PredInfo info(hb);
    // movi_f<t7>: context is (t7,false) then (t3,false) via teqi's guard.
    int moviIdx = -1;
    for (size_t i = 0; i < hb.instrs.size(); ++i) {
        if (hb.instrs[i].op == isa::Op::Movi)
            moviIdx = static_cast<int>(i);
    }
    ASSERT_GE(moviIdx, 0);
    auto ctx = info.contextOf(moviIdx);
    ASSERT_EQ(ctx.size(), 2u);
    EXPECT_EQ(ctx[0], (ir::Guard{7, false}));
    EXPECT_EQ(ctx[1], (ir::Guard{3, false}));
}

TEST(Pfg, DisjointnessAndImplication)
{
    using G = std::vector<ir::Guard>;
    G a{{3, true}};
    G b{{3, false}};
    G c{{7, true}, {3, false}};
    EXPECT_TRUE(PredInfo::disjoint(a, b));
    EXPECT_TRUE(PredInfo::disjoint(a, c));
    EXPECT_FALSE(PredInfo::disjoint(b, c));
    EXPECT_TRUE(PredInfo::implies(c, b));
    EXPECT_FALSE(PredInfo::implies(b, c));
    EXPECT_TRUE(PredInfo::implies(a, G{}));
}

TEST(Pfg, CheckHyperblockAcceptsFigure4)
{
    ir::BBlock hb = figure4Block();
    EXPECT_NO_THROW(checkHyperblock(hb));
}

TEST(Pfg, CheckHyperblockRejectsNonDisjointDefs)
{
    ir::BBlock hb = figure4Block();
    // Make the mov_f<t3> unconditional: t5 now has two defs that can
    // both fire.
    for (ir::Instr &inst : hb.instrs) {
        if (inst.op == isa::Op::Mov && inst.dst == ir::Opnd::temp(5))
            inst.guards.clear();
    }
    EXPECT_THROW(checkHyperblock(hb), PanicError);
}

TEST(Pfg, CheckHyperblockRejectsUseBeforeDef)
{
    ir::BBlock hb = figure4Block();
    std::swap(hb.instrs[2], hb.instrs[3]); // tgti after its consumer
    EXPECT_THROW(checkHyperblock(hb), PanicError);
}

TEST(Pfg, MixedPolarityOrRejected)
{
    ir::BBlock hb = figure4Block();
    for (ir::Instr &inst : hb.instrs) {
        if (inst.op == isa::Op::Movi) {
            inst.guards = {{7, false}, {3, true}};
        }
    }
    EXPECT_THROW(checkHyperblock(hb), PanicError);
}

} // namespace
} // namespace dfp::core
