#include <gtest/gtest.h>

#include <set>

#include "core/ifconvert.h"
#include "core/hb_eval.h"
#include "core/null_insertion.h"
#include "core/ssa.h"
#include "ir/interp.h"
#include "ir/parser.h"

namespace dfp::core
{
namespace
{

TEST(Boundary, SplitEdgeRewiresCfgAndPhis)
{
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    c = movi 1
    br c, a, join
block a:
    x = movi 5
    jmp join
block join:
    y = phi [entry: 0], [a: x]
    ret y
})");
    fn.computeCfg();
    int entry = fn.blockId("entry");
    int join = fn.blockId("join");
    int split = splitEdge(fn, entry, join);
    EXPECT_GE(split, 0);
    // entry no longer directly precedes join.
    bool direct = false;
    for (int s : fn.blocks[entry].succs)
        direct |= s == join;
    EXPECT_FALSE(direct);
    // The phi's incoming block moved to the split.
    const ir::Instr &phi = fn.blocks[join].instrs[0];
    for (size_t k = 0; k < phi.phiBlocks.size(); ++k)
        EXPECT_NE(phi.phiBlocks[k], entry);
    // Semantics unchanged.
    isa::Memory mem;
    auto r = ir::interpret(fn, mem);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.retValue, 5u);
}

TEST(Boundary, RetLowersToReturnRegisterWrite)
{
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    x = movi 9
    ret x
})");
    buildSsa(fn);
    RegionConfig rc;
    RegionPlan plan = selectRegions(fn, rc);
    lowerBoundaries(fn, plan);
    bool found = false;
    for (const ir::Instr &inst : fn.blocks[0].instrs) {
        if (inst.op == isa::Op::Write && inst.reg == kRetVirtReg)
            found = true;
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(fn.blocks[0].retVal.isNone());
}

TEST(Boundary, CrossRegionValueGetsWriteAndRead)
{
    // Force two regions with a 1-block cap; 'x' must cross via a
    // register.
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    x = movi 3
    jmp next
block next:
    y = add x, 4
    ret y
})");
    buildSsa(fn);
    RegionConfig rc;
    rc.maxBlocksPerRegion = 1;
    RegionPlan plan = selectRegions(fn, rc);
    BoundaryStats stats = lowerBoundaries(fn, plan);
    EXPECT_GE(stats.virtRegs, 2);   // ret + x
    EXPECT_GE(stats.valueWrites, 2); // write of x, write of ret
    EXPECT_GE(stats.reads, 1);
    // Semantics unchanged.
    isa::Memory mem;
    ifConvert(fn, plan);
    HbRunResult hb = runHyperFunction(fn, mem);
    ASSERT_TRUE(hb.ok) << hb.error;
    EXPECT_EQ(hb.retValue, 7u);
}

TEST(Boundary, NullWriteCompensatesUnwrittenPath)
{
    // g is written only on one arm; a null write must appear on the
    // other so the block's outputs are path-invariant (§4.2).
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    a = movi 1
    c = tgt a, 0
    br c, setit, skip
block setit:
    x = movi 42
    jmp join
block skip:
    jmp join
block join:
    y = phi [setit: x], [skip: 7]
    jmp tail
block tail:
    r = add y, 0
    ret r
})");
    buildSsa(fn);
    RegionConfig rc;
    rc.maxBlocksPerRegion = 4; // join + arms in one region; tail apart
    RegionPlan plan = selectRegions(fn, rc);
    BoundaryStats stats = lowerBoundaries(fn, plan);
    (void)stats;
    ifConvert(fn, plan);
    isa::Memory mem;
    HbRunResult hb = runHyperFunction(fn, mem);
    ASSERT_TRUE(hb.ok) << hb.error;
    EXPECT_EQ(hb.retValue, 42u);
}

TEST(Boundary, StoreTokensAssignedUniquely)
{
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    st 64, 1
    st 72, 2
    c = movi 1
    br c, a, b
block a:
    st 80, 3
    jmp b
block b:
    ret
})");
    buildSsa(fn);
    RegionConfig rc;
    RegionPlan plan = selectRegions(fn, rc);
    lowerBoundaries(fn, plan);
    std::set<int> tokens;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::St) {
                EXPECT_GE(inst.lsid, 0);
                EXPECT_TRUE(tokens.insert(inst.lsid).second);
            }
        }
    }
    EXPECT_EQ(tokens.size(), 3u);
}

TEST(Boundary, ConditionalStoreGetsNullCompensation)
{
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    a = movi 1
    c = tgt a, 0
    br c, yes, no
block yes:
    st 64, 5
    jmp no
block no:
    ret a
})");
    buildSsa(fn);
    RegionConfig rc;
    RegionPlan plan = selectRegions(fn, rc);
    lowerBoundaries(fn, plan);
    int nulls = 0;
    for (const ir::BBlock &block : fn.blocks) {
        for (const ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Null && inst.lsid >= 0)
                ++nulls;
        }
    }
    EXPECT_EQ(nulls, 1) << "one store-null on the st-less path";
}

} // namespace
} // namespace dfp::core
