#include <gtest/gtest.h>

#include "core/hb_eval.h"
#include "core/ifconvert.h"
#include "core/merging.h"
#include "core/null_insertion.h"
#include "core/path_sensitive.h"
#include "core/pfg.h"
#include "core/pred_fanout.h"
#include "core/ssa.h"
#include "ir/interp.h"
#include "ir/parser.h"

namespace dfp::core
{
namespace
{

ir::Function
toHyper(const std::string &src, int maxBlocks = 64)
{
    ir::Function fn = ir::parseFunction(src);
    buildSsa(fn);
    RegionConfig rc;
    rc.maxBlocksPerRegion = maxBlocks;
    RegionPlan plan = selectRegions(fn, rc);
    lowerBoundaries(fn, plan);
    ifConvert(fn, plan);
    return fn;
}

int
countGuards(const ir::Function &fn)
{
    int n = 0;
    for (const ir::BBlock &hb : fn.blocks) {
        for (const ir::Instr &inst : hb.instrs)
            n += static_cast<int>(inst.guards.size());
    }
    return n;
}

uint64_t
evalRet(const ir::Function &fn)
{
    isa::Memory mem;
    HbRunResult hb = runHyperFunction(fn, mem);
    EXPECT_TRUE(hb.ok) << hb.error;
    return hb.retValue;
}

const char *kChain = R"(func f {
block entry:
    a = movi 9
    c = tgt a, 5
    br c, left, right
block left:
    x1 = shl a, 4
    x2 = add x1, 1
    x3 = mul x2, 3
    r = add x3, 0
    jmp join
block right:
    r = add a, 7
    jmp join
block join:
    ret r
})";

TEST(PredFanout, RemovesGuardsFromChainInteriors)
{
    ir::Function fn = toHyper(kChain);
    uint64_t before = evalRet(fn);
    int guardsBefore = countGuards(fn);
    int removed = reducePredFanout(fn);
    EXPECT_GT(removed, 0);
    EXPECT_EQ(countGuards(fn), guardsBefore - removed);
    for (const ir::BBlock &hb : fn.blocks)
        checkHyperblock(hb);
    EXPECT_EQ(evalRet(fn), before);
}

TEST(PredFanout, KeepsJoinArmsPredicated)
{
    ir::Function fn = toHyper(kChain);
    reducePredFanout(fn);
    // Both producers of the return value must still be guarded: they
    // define one temp on disjoint paths.
    PredInfo info(fn.blocks[0]);
    int joinDefs = 0;
    for (const ir::Instr &inst : fn.blocks[0].instrs) {
        if (!inst.dst.isTemp())
            continue;
        if (info.defsOf(inst.dst.id).size() == 2) {
            EXPECT_FALSE(inst.guards.empty()) << "join arm unguarded";
            ++joinDefs;
        }
    }
    EXPECT_GE(joinDefs, 2);
}

TEST(PredFanout, KeepsOutputsPredicated)
{
    ir::Function fn = toHyper(kChain);
    reducePredFanout(fn);
    for (const ir::BBlock &hb : fn.blocks) {
        // Predicate-defining tests keep guards; stores/bros/writes too.
        for (const ir::Instr &inst : hb.instrs) {
            if (inst.op == isa::Op::St)
                ADD_FAILURE() << "no stores expected here";
        }
    }
}

// Path-sensitive removal: x is written on one arm, dead on the other
// exit, so the defining chain promotes and null writes disappear.
// Ordered so greedy region growth (RPO) packs {entry, other, setit}
// and leaves 'useit' as a second hyperblock: x crosses via a register.
const char *kPathSensitive = R"(func f {
block entry:
    a = ld 64
    c = tle a, 5
    br c, other, setit
block other:
    ret 0
block setit:
    x0 = shl a, 2
    x = add x0, 1
    jmp useit
block useit:
    r = add x, 1
    ret r
})";

TEST(PathSensitive, RemovesNullCompensation)
{
    // Cap the region so 'useit' lands in a second hyperblock and x
    // crosses via a register with a null write on the 'other' exit.
    ir::Function fn = toHyper(kPathSensitive, 3);
    auto countNullWrites = [&]() {
        int n = 0;
        for (const ir::BBlock &hb : fn.blocks) {
            PredInfo info(hb);
            for (const ir::Instr &inst : hb.instrs) {
                if (inst.op != isa::Op::Write ||
                    !inst.srcs[0].isTemp()) {
                    continue;
                }
                const auto &defs = info.defsOf(inst.srcs[0].id);
                if (defs.size() == 1 &&
                    hb.instrs[defs[0]].op == isa::Op::Null) {
                    ++n;
                }
            }
        }
        return n;
    };
    int before = countNullWrites();
    ASSERT_GT(before, 0) << "setup should have null compensation";

    isa::Memory m0;
    m0.store(64, 9);
    HbRunResult r0 = runHyperFunction(fn, m0);
    ASSERT_TRUE(r0.ok) << r0.error;

    int changes = removePathSensitivePreds(fn);
    EXPECT_GT(changes, 0);
    EXPECT_LT(countNullWrites(), before);
    for (const ir::BBlock &hb : fn.blocks)
        checkHyperblock(hb);

    // Semantics on both paths.
    isa::Memory m1;
    m1.store(64, 9);
    HbRunResult r1 = runHyperFunction(fn, m1);
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(r1.retValue, r0.retValue);

    isa::Memory m2;
    m2.store(64, 1);
    HbRunResult r2 = runHyperFunction(fn, m2);
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(r2.retValue, 0u);
}

// Merging: two lexically equivalent bros under complementary guards
// merge into one at the dominating block (category 1), and equivalent
// movi join-predicates under different guards merge via predicate-OR
// (category 2).
const char *kMergeSrc = R"(func f {
block entry:
    a = ld 64
    c1 = tgt a, 10
    br c1, w1, t2
block w1:
    r = movi 1
    jmp out
block t2:
    c2 = tlt a, 3
    br c2, w2, w3
block w2:
    r = movi 1
    jmp out
block w3:
    r = movi 9
    jmp out
block out:
    ret r
})";

TEST(Merging, MergesDuplicatesAndPreservesSemantics)
{
    ir::Function fn = toHyper(kMergeSrc);
    size_t before = fn.blocks[0].instrs.size();
    auto evalWith = [&](uint64_t a) {
        isa::Memory mem;
        mem.store(64, a);
        HbRunResult hb = runHyperFunction(fn, mem);
        EXPECT_TRUE(hb.ok) << hb.error;
        return hb.retValue;
    };
    uint64_t big = evalWith(20), small = evalWith(1), mid = evalWith(5);
    EXPECT_EQ(big, 1u);
    EXPECT_EQ(small, 1u);
    EXPECT_EQ(mid, 9u);

    int merged = mergeDisjointInstructions(fn);
    EXPECT_GT(merged, 0);
    EXPECT_LT(fn.blocks[0].instrs.size(), before);
    // A predicate-OR instruction (two guards) should now exist.
    bool predOr = false;
    for (const ir::Instr &inst : fn.blocks[0].instrs)
        predOr |= inst.guards.size() >= 2;
    EXPECT_TRUE(predOr);

    EXPECT_EQ(evalWith(20), big);
    EXPECT_EQ(evalWith(1), small);
    EXPECT_EQ(evalWith(5), mid);
}

TEST(Merging, Category1PromotesToDominatingGuard)
{
    // Two identical instructions on both arms of one test.
    ir::Function fn = toHyper(R"(func f {
block entry:
    a = ld 64
    c = tgt a, 5
    br c, yes, no
block yes:
    r = mul a, 3
    jmp out
block no:
    r = mul a, 3
    jmp out
block out:
    ret r
})");
    int merged = mergeDisjointInstructions(fn);
    EXPECT_GT(merged, 0);
    isa::Memory mem;
    mem.store(64, 4);
    HbRunResult hb = runHyperFunction(fn, mem);
    ASSERT_TRUE(hb.ok) << hb.error;
    EXPECT_EQ(hb.retValue, 12u);
}

} // namespace
} // namespace dfp::core
