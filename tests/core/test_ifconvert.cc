#include <gtest/gtest.h>

#include "core/ifconvert.h"
#include "core/hb_eval.h"
#include "core/null_insertion.h"
#include "core/pfg.h"
#include "core/ssa.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"

namespace dfp::core
{
namespace
{

/** Run the front half of the pipeline up to hyperblock form. */
ir::Function
toHyper(const std::string &src, int maxBlocks = 64)
{
    ir::Function fn = ir::parseFunction(src);
    buildSsa(fn);
    RegionConfig rc;
    rc.maxBlocksPerRegion = maxBlocks;
    RegionPlan plan = selectRegions(fn, rc);
    lowerBoundaries(fn, plan);
    ifConvert(fn, plan);
    for (const ir::BBlock &hb : fn.blocks)
        checkHyperblock(hb);
    return fn;
}

const char *kDiamond = R"(func f {
block entry:
    a = movi 10
    c = tgt a, 5
    br c, big, small
block big:
    r = add a, 100
    jmp join
block small:
    r = add a, 200
    jmp join
block join:
    ret r
})";

TEST(IfConvert, DiamondBecomesOneHyperblock)
{
    ir::Function fn = toHyper(kDiamond);
    ASSERT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].term, ir::Term::Hyper);
    // The two adds are predicated on opposite polarities of one temp.
    std::vector<ir::Guard> seen;
    for (const ir::Instr &inst : fn.blocks[0].instrs) {
        if (inst.op == isa::Op::Addi || inst.op == isa::Op::Add) {
            ASSERT_EQ(inst.guards.size(), 1u);
            seen.push_back(inst.guards[0]);
        }
    }
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].pred, seen[1].pred);
    EXPECT_NE(seen[0].onTrue, seen[1].onTrue);
}

TEST(IfConvert, DiamondSemanticsPreserved)
{
    ir::Function plain = ir::parseFunction(kDiamond);
    isa::Memory m1;
    auto golden = ir::interpret(plain, m1);
    ASSERT_TRUE(golden.ok);

    ir::Function fn = toHyper(kDiamond);
    isa::Memory m2;
    HbRunResult hb = runHyperFunction(fn, m2);
    ASSERT_TRUE(hb.ok) << hb.error;
    EXPECT_EQ(hb.retValue, golden.retValue);
}

TEST(IfConvert, BasicBlockModeKeepsBlocksSeparate)
{
    ir::Function fn = toHyper(kDiamond, /*maxBlocks=*/1);
    EXPECT_GE(fn.blocks.size(), 4u);
    for (const ir::BBlock &hb : fn.blocks) {
        EXPECT_EQ(hb.term, ir::Term::Hyper);
        // Inside a basic-block region only exits are predicated.
        for (const ir::Instr &inst : hb.instrs) {
            if (inst.op != isa::Op::Bro) {
                EXPECT_TRUE(inst.guards.empty())
                    << ir::toString(inst) << " in " << hb.name;
            }
        }
    }
    isa::Memory mem;
    HbRunResult hb = runHyperFunction(fn, mem);
    ASSERT_TRUE(hb.ok) << hb.error;
    EXPECT_EQ(hb.retValue, 110u);
}

TEST(IfConvert, LoopBecomesSelfBranchingHyperblock)
{
    const char *src = R"(func f {
block entry:
    i = movi 0
    jmp loop
block loop:
    i = add i, 1
    c = tlt i, 7
    br c, loop, done
block done:
    ret i
})";
    ir::Function fn = toHyper(src);
    // The loop hyperblock branches to itself.
    bool selfLoop = false;
    for (const ir::BBlock &hb : fn.blocks) {
        for (const ir::Instr &inst : hb.instrs) {
            if (inst.op == isa::Op::Bro && inst.broLabel == hb.name)
                selfLoop = true;
        }
    }
    EXPECT_TRUE(selfLoop);
    isa::Memory mem;
    HbRunResult hb = runHyperFunction(fn, mem);
    ASSERT_TRUE(hb.ok) << hb.error;
    EXPECT_EQ(hb.retValue, 7u);
}

TEST(IfConvert, NestedDiamondPredicateAndChain)
{
    const char *src = R"(func f {
block entry:
    a = movi 3
    c1 = tgt a, 5
    br c1, big, small
block big:
    r = movi 1
    jmp join
block small:
    c2 = teq a, 3
    br c2, exact, other
block exact:
    r = movi 2
    jmp join
block other:
    r = movi 3
    jmp join
block join:
    ret r
})";
    ir::Function fn = toHyper(src);
    ASSERT_EQ(fn.blocks.size(), 1u);
    const ir::BBlock &hb = fn.blocks[0];
    PredInfo info(hb);
    // The inner test (teq) must itself be predicated (AND chain, §3.4).
    bool foundInnerTest = false;
    for (size_t i = 0; i < hb.instrs.size(); ++i) {
        const ir::Instr &inst = hb.instrs[i];
        if (inst.op == isa::Op::Teqi || inst.op == isa::Op::Teq) {
            foundInnerTest = true;
            EXPECT_FALSE(inst.guards.empty())
                << "inner test must be guarded";
        }
    }
    EXPECT_TRUE(foundInnerTest);
    isa::Memory mem;
    HbRunResult hbr = runHyperFunction(fn, mem);
    ASSERT_TRUE(hbr.ok) << hbr.error;
    EXPECT_EQ(hbr.retValue, 2u);
}

TEST(IfConvert, RegionSelectionRespectsBudget)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    buildSsa(fn);
    RegionConfig rc;
    rc.instrBudget = 4; // too small to merge anything
    RegionPlan plan = selectRegions(fn, rc);
    EXPECT_EQ(plan.regions.size(), fn.blocks.size());
}

TEST(IfConvert, JoinPostdominatingHeadIsUnpredicated)
{
    ir::Function fn = toHyper(kDiamond);
    const ir::BBlock &hb = fn.blocks[0];
    // The final write (return value) is produced by predicated movs but
    // the bro itself is unpredicated (join postdominates the head).
    for (const ir::Instr &inst : hb.instrs) {
        if (inst.op == isa::Op::Bro) {
            EXPECT_TRUE(inst.guards.empty());
        }
    }
}

} // namespace
} // namespace dfp::core
