#include <gtest/gtest.h>

#include "core/hb_eval.h"

namespace dfp::core
{
namespace
{

ir::Instr
make(isa::Op op, int dst, std::vector<ir::Opnd> srcs,
     std::vector<ir::Guard> guards = {})
{
    ir::Instr inst;
    inst.op = op;
    if (dst >= 0)
        inst.dst = ir::Opnd::temp(dst);
    inst.srcs = std::move(srcs);
    inst.guards = std::move(guards);
    return inst;
}

ir::BBlock
haltingBlock()
{
    ir::BBlock hb;
    hb.name = "t";
    hb.term = ir::Term::Hyper;
    return hb;
}

void
addBro(ir::BBlock &hb, const std::string &label,
       std::vector<ir::Guard> guards = {})
{
    ir::Instr bro;
    bro.op = isa::Op::Bro;
    bro.broLabel = label;
    bro.guards = std::move(guards);
    hb.instrs.push_back(std::move(bro));
}

TEST(HbEval, GuardedInstructionSkippedOnMismatch)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Movi, 2, {ir::Opnd::imm(7)},
                             {{1, true}})); // pred false: skipped
    hb.instrs.push_back(make(isa::Op::Movi, 2, {ir::Opnd::imm(9)},
                             {{1, false}}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(2)};
    hb.instrs.push_back(w);
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[0], 9u);
    EXPECT_EQ(out.fired, 4); // one movi skipped
}

TEST(HbEval, ImplicitPredicationSkipsConsumers)
{
    // Consumer of a skipped producer is skipped too (§3.6).
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(1)}));
    hb.instrs.push_back(make(isa::Op::Movi, 2, {ir::Opnd::imm(5)},
                             {{1, false}})); // skipped (pred is true)
    hb.instrs.push_back(make(isa::Op::Addi, 3,
                             {ir::Opnd::temp(2), ir::Opnd::imm(1)}));
    hb.instrs.push_back(make(isa::Op::Movi, 4, {ir::Opnd::imm(42)},
                             {{1, true}}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(4)};
    hb.instrs.push_back(w);
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[0], 42u);
}

TEST(HbEval, NullWritePreservesRegister)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Null, 1, {}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 3;
    w.srcs = {ir::Opnd::temp(1)};
    hb.instrs.push_back(w);
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs{{3, 777}};
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[3], 777u);
}

TEST(HbEval, DoubleWriteDetected)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(1)}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(1)};
    hb.instrs.push_back(w);
    hb.instrs.push_back(w); // fires twice: malformed
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("write tokens"), std::string::npos);
}

TEST(HbEval, MissingWriteDetected)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(0)}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(2)}; // t2 never defined => write skipped
    hb.instrs.push_back(w);
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    EXPECT_FALSE(out.ok);
}

TEST(HbEval, TwoBranchesDetected)
{
    ir::BBlock hb = haltingBlock();
    addBro(hb, "@halt");
    addBro(hb, "@halt");
    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("two branches"), std::string::npos);
}

TEST(HbEval, NoBranchDetected)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(0)}));
    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("no branch"), std::string::npos);
}

TEST(HbEval, PredicateOrOnOneInstruction)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Movi, 2, {ir::Opnd::imm(1)}));
    // Fires because t2 matches even though t1 does not.
    hb.instrs.push_back(make(isa::Op::Movi, 3, {ir::Opnd::imm(5)},
                             {{1, true}, {2, true}}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(3)};
    hb.instrs.push_back(w);
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[0], 5u);
}

TEST(HbEval, StoresAndLoadsSequential)
{
    ir::BBlock hb = haltingBlock();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(64)}));
    hb.instrs.push_back(make(isa::Op::Movi, 2, {ir::Opnd::imm(31)}));
    ir::Instr st;
    st.op = isa::Op::St;
    st.srcs = {ir::Opnd::temp(1), ir::Opnd::temp(2), ir::Opnd::imm(0)};
    hb.instrs.push_back(st);
    hb.instrs.push_back(make(isa::Op::Ld, 3,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)}));
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(3)};
    hb.instrs.push_back(w);
    addBro(hb, "@halt");

    std::map<int, uint64_t> regs;
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[0], 31u);
    EXPECT_EQ(mem.load(64), 31u);
}

} // namespace
} // namespace dfp::core
