/**
 * @file
 * Unit tests for the three merging categories of §5.3 on hand-built
 * hyperblocks, checking the exact guard transformations the paper
 * describes (Figure 5c / Figure 6d).
 */

#include <gtest/gtest.h>

#include "core/hb_eval.h"
#include "core/merging.h"
#include "core/pfg.h"

namespace dfp::core
{
namespace
{

ir::Instr
make(isa::Op op, int dst, std::vector<ir::Opnd> srcs,
     std::vector<ir::Guard> guards = {})
{
    ir::Instr inst;
    inst.op = op;
    if (dst >= 0)
        inst.dst = ir::Opnd::temp(dst);
    inst.srcs = std::move(srcs);
    inst.guards = std::move(guards);
    return inst;
}

ir::Instr
bro(const std::string &label, std::vector<ir::Guard> guards = {})
{
    ir::Instr inst;
    inst.op = isa::Op::Bro;
    inst.broLabel = label;
    inst.guards = std::move(guards);
    return inst;
}

ir::Instr
writeReg(int reg, int src, std::vector<ir::Guard> guards = {})
{
    ir::Instr inst;
    inst.op = isa::Op::Write;
    inst.reg = reg;
    inst.srcs = {ir::Opnd::temp(src)};
    inst.guards = std::move(guards);
    return inst;
}

/** Count instructions with a given op. */
int
countOp(const ir::BBlock &hb, isa::Op op)
{
    int n = 0;
    for (const ir::Instr &inst : hb.instrs)
        n += inst.op == op;
    return n;
}

uint64_t
evalReg0(const ir::BBlock &hb, uint64_t input)
{
    std::map<int, uint64_t> regs{{9, input}};
    isa::Memory mem;
    HbOutcome out = evalHyperblock(hb, regs, mem);
    EXPECT_TRUE(out.ok) << out.error;
    return regs[0];
}

/** t1 = read; t2 = tgti t1 > 5; two identical movis on opposite
 *  polarities of t2. */
ir::BBlock
category1Block()
{
    ir::BBlock hb;
    hb.name = "cat1";
    hb.term = ir::Term::Hyper;
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(5)}));
    hb.instrs.push_back(make(isa::Op::Movi, 3, {ir::Opnd::imm(42)},
                             {{2, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 3, {ir::Opnd::imm(42)},
                             {{2, false}}));
    hb.instrs.push_back(writeReg(0, 3));
    hb.instrs.push_back(bro("@halt"));
    return hb;
}

TEST(MergingCategories, Category1PromotesToDominatingContext)
{
    ir::BBlock hb = category1Block();
    ASSERT_EQ(evalReg0(hb, 1), 42u);
    int eliminated = mergeDisjointInstructions(hb);
    EXPECT_EQ(eliminated, 1);
    EXPECT_EQ(countOp(hb, isa::Op::Movi), 1);
    // The surviving movi inherits the test's (empty) guard context.
    for (const ir::Instr &inst : hb.instrs) {
        if (inst.op == isa::Op::Movi) {
            EXPECT_TRUE(inst.guards.empty());
        }
    }
    EXPECT_EQ(evalReg0(hb, 1), 42u);
    EXPECT_EQ(evalReg0(hb, 9), 42u);
}

/** Nested tests: t2 = t1>5; t4 = (t1>2) under t2-false. Identical
 *  movis under (t2,T) and (t4,T): category 2 -> predicate-OR. */
ir::BBlock
category2Block()
{
    ir::BBlock hb;
    hb.name = "cat2";
    hb.term = ir::Term::Hyper;
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(5)}));
    hb.instrs.push_back(make(isa::Op::Tgti, 4,
                             {ir::Opnd::temp(1), ir::Opnd::imm(2)},
                             {{2, false}}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(7)},
                             {{2, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(7)},
                             {{4, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(1)},
                             {{4, false}}));
    hb.instrs.push_back(writeReg(0, 5));
    hb.instrs.push_back(bro("@halt"));
    return hb;
}

TEST(MergingCategories, Category2UsesPredicateOr)
{
    ir::BBlock hb = category2Block();
    ASSERT_EQ(evalReg0(hb, 9), 7u); // t2 true
    ASSERT_EQ(evalReg0(hb, 4), 7u); // t2 false, t4 true
    ASSERT_EQ(evalReg0(hb, 1), 1u); // both false

    int eliminated = mergeDisjointInstructions(hb);
    EXPECT_EQ(eliminated, 1);
    bool foundOr = false;
    for (const ir::Instr &inst : hb.instrs) {
        if (inst.guards.size() == 2) {
            foundOr = true;
            EXPECT_EQ(inst.guards[0].onTrue, inst.guards[1].onTrue);
        }
    }
    EXPECT_TRUE(foundOr);
    EXPECT_EQ(evalReg0(hb, 9), 7u);
    EXPECT_EQ(evalReg0(hb, 4), 7u);
    EXPECT_EQ(evalReg0(hb, 1), 1u);
}

/** Like category 2 but the second copy sits on (t4,false): the pass
 *  must flip t4's defining test and rewrite its consumers. */
ir::BBlock
category3Block()
{
    ir::BBlock hb;
    hb.name = "cat3";
    hb.term = ir::Term::Hyper;
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(5)}));
    // t4 = (t1 <= 2) under t2-false; copies on (t2,T) and (t4,F).
    hb.instrs.push_back(make(isa::Op::Tlei, 4,
                             {ir::Opnd::temp(1), ir::Opnd::imm(2)},
                             {{2, false}}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(7)},
                             {{2, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(7)},
                             {{4, false}}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(1)},
                             {{4, true}}));
    hb.instrs.push_back(writeReg(0, 5));
    hb.instrs.push_back(bro("@halt"));
    return hb;
}

TEST(MergingCategories, Category3FlipsTheTest)
{
    ir::BBlock hb = category3Block();
    ASSERT_EQ(evalReg0(hb, 9), 7u); // t2 true
    ASSERT_EQ(evalReg0(hb, 4), 7u); // t2 false, t1>2 -> t4 false
    ASSERT_EQ(evalReg0(hb, 1), 1u); // t2 false, t1<=2 -> t4 true

    int eliminated = mergeDisjointInstructions(hb);
    EXPECT_EQ(eliminated, 1);
    // The tlei was flipped to tgti.
    EXPECT_EQ(countOp(hb, isa::Op::Tgti), 2);
    EXPECT_EQ(countOp(hb, isa::Op::Tlei), 0);
    EXPECT_EQ(evalReg0(hb, 9), 7u);
    EXPECT_EQ(evalReg0(hb, 4), 7u);
    EXPECT_EQ(evalReg0(hb, 1), 1u);
}

TEST(MergingCategories, RefusesNonDisjointCandidates)
{
    // Two identical movis under (t2,T) and (t4,T) where t4 is NOT
    // nested under t2-false: both could fire -> must not merge.
    ir::BBlock hb;
    hb.name = "nodisjoint";
    hb.term = ir::Term::Hyper;
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(5)}));
    hb.instrs.push_back(make(isa::Op::Tgti, 4,
                             {ir::Opnd::temp(1), ir::Opnd::imm(2)}));
    hb.instrs.push_back(make(isa::Op::Movi, 5, {ir::Opnd::imm(7)},
                             {{2, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 6, {ir::Opnd::imm(7)},
                             {{4, true}}));
    hb.instrs.push_back(writeReg(0, 5, {{2, true}}));
    hb.instrs.push_back(writeReg(0, 6, {{2, false}}));
    hb.instrs.push_back(bro("@halt"));
    // The copies have different destinations (they are NOT a dataflow
    // join — both can fire), so nothing may merge.
    int eliminated = mergeDisjointInstructions(hb);
    EXPECT_EQ(eliminated, 0);
}

TEST(MergingCategories, RefusesFlipWhenPredicateHasValueUses)
{
    ir::BBlock hb = category3Block();
    // Add a value use of t4: flipping would corrupt it.
    ir::Instr use = make(isa::Op::Addi, 8,
                         {ir::Opnd::temp(4), ir::Opnd::imm(0)},
                         {{2, false}});
    hb.instrs.insert(hb.instrs.begin() + 3, use);
    int eliminated = mergeDisjointInstructions(hb);
    EXPECT_EQ(eliminated, 0);
}

TEST(MergingCategories, MergesBranchesLikeFigure5c)
{
    // Two bros to the same label under (t7,T)/(t7,F), with t7 defined
    // under (t3,F): the merge promotes to a single bro_f<t3>.
    ir::BBlock hb;
    hb.name = "fig5c";
    hb.term = ir::Term::Hyper;
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 3,
                             {ir::Opnd::temp(1), ir::Opnd::imm(1)}));
    hb.instrs.push_back(make(isa::Op::Teqi, 7,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)},
                             {{3, false}}));
    hb.instrs.push_back(bro("L2", {{3, true}}));
    hb.instrs.push_back(bro("L3", {{7, true}}));
    hb.instrs.push_back(bro("L3", {{7, false}}));
    int eliminated = mergeDisjointInstructions(hb);
    EXPECT_EQ(eliminated, 1);
    // The merged bro carries t3-false, as in Figure 5c.
    int brosToL3 = 0;
    for (const ir::Instr &inst : hb.instrs) {
        if (inst.op == isa::Op::Bro && inst.broLabel == "L3") {
            ++brosToL3;
            ASSERT_EQ(inst.guards.size(), 1u);
            EXPECT_EQ(inst.guards[0], (ir::Guard{3, false}));
        }
    }
    EXPECT_EQ(brosToL3, 1);
}

} // namespace
} // namespace dfp::core
