#include <gtest/gtest.h>

#include "core/ssa.h"
#include "ir/interp.h"
#include "ir/parser.h"

namespace dfp::core
{
namespace
{

TEST(Ssa, UniqueDefsAfterConstruction)
{
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    x = movi 1
    x = add x, 2
    c = teq x, 3
    br c, a, b
block a:
    x = add x, 10
    jmp join
block b:
    x = add x, 20
    jmp join
block join:
    ret x
})");
    EXPECT_FALSE(isSsa(fn));
    buildSsa(fn);
    EXPECT_TRUE(isSsa(fn));
    // A phi merges the two arms.
    int join = fn.blockId("join");
    ASSERT_GE(join, 0);
    EXPECT_EQ(fn.blocks[join].instrs.front().op, isa::Op::Phi);
}

TEST(Ssa, PreservesSemantics)
{
    const char *src = R"(func f {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    m = and i, 3
    c = teq m, 0
    br c, skip, addit
block addit:
    acc = add acc, i
    jmp next
block skip:
    acc = add acc, 100
    jmp next
block next:
    i = add i, 1
    lc = tlt i, 20
    br lc, loop, done
block done:
    ret acc
})";
    ir::Function plain = ir::parseFunction(src);
    isa::Memory m1;
    auto before = ir::interpret(plain, m1);
    ASSERT_TRUE(before.ok);

    ir::Function ssa = ir::parseFunction(src);
    buildSsa(ssa);
    isa::Memory m2;
    auto after = ir::interpret(ssa, m2);
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.retValue, before.retValue);
}

TEST(Ssa, LoopCarriedValueGetsHeaderPhi)
{
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    i = movi 0
    jmp loop
block loop:
    i = add i, 1
    c = tlt i, 5
    br c, loop, done
block done:
    ret i
})");
    buildSsa(fn);
    int loop = fn.blockId("loop");
    bool hasPhi = !fn.blocks[loop].instrs.empty() &&
                  fn.blocks[loop].instrs[0].op == isa::Op::Phi;
    EXPECT_TRUE(hasPhi);
    isa::Memory mem;
    auto r = ir::interpret(fn, mem);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.retValue, 5u);
}

TEST(Ssa, PrunedByLiveness)
{
    // 'dead' is redefined on both arms but never used afterwards:
    // pruned SSA inserts no phi for it at the join.
    ir::Function fn = ir::parseFunction(R"(func f {
block entry:
    dead = movi 1
    c = teq dead, 1
    br c, a, b
block a:
    dead = movi 2
    jmp join
block b:
    dead = movi 3
    jmp join
block join:
    ret 0
})");
    buildSsa(fn);
    int join = fn.blockId("join");
    for (const ir::Instr &inst : fn.blocks[join].instrs)
        EXPECT_NE(inst.op, isa::Op::Phi);
}

} // namespace
} // namespace dfp::core
