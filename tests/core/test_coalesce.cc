/**
 * @file
 * Unit tests for coalescePhiMovs — the cleanup that folds phi-lowering
 * moves into their single producers, reproducing the paper's Figure 4
 * shape ("addi_t<t3> t5, ..." defining the join temp directly).
 */

#include <gtest/gtest.h>

#include "core/hb_eval.h"
#include "core/ifconvert.h"
#include "core/pfg.h"

namespace dfp::core
{
namespace
{

ir::Instr
make(isa::Op op, int dst, std::vector<ir::Opnd> srcs,
     std::vector<ir::Guard> guards = {})
{
    ir::Instr inst;
    inst.op = op;
    if (dst >= 0)
        inst.dst = ir::Opnd::temp(dst);
    inst.srcs = std::move(srcs);
    inst.guards = std::move(guards);
    return inst;
}

ir::BBlock
shell()
{
    ir::BBlock hb;
    hb.name = "t";
    hb.term = ir::Term::Hyper;
    return hb;
}

void
finish(ir::BBlock &hb, int resultTemp)
{
    ir::Instr w;
    w.op = isa::Op::Write;
    w.reg = 0;
    w.srcs = {ir::Opnd::temp(resultTemp)};
    hb.instrs.push_back(w);
    ir::Instr b;
    b.op = isa::Op::Bro;
    b.broLabel = "@halt";
    hb.instrs.push_back(b);
}

TEST(Coalesce, FoldsSingleUseProducerIntoMov)
{
    // t2 = addi t1, 5 (single use); mov_t<p> t3, t2  ==>
    // addi_t<p> t3, t1, 5 at the mov's position.
    ir::BBlock hb = shell();
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 7,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Addi, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(5)}));
    hb.instrs.push_back(make(isa::Op::Mov, 3, {ir::Opnd::temp(2)},
                             {{7, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 3, {ir::Opnd::imm(0)},
                             {{7, false}}));
    finish(hb, 3);

    int eliminated = coalescePhiMovs(hb);
    EXPECT_EQ(eliminated, 1);
    bool foundFoldedAddi = false;
    for (const ir::Instr &inst : hb.instrs) {
        EXPECT_NE(inst.op, isa::Op::Mov);
        if (inst.op == isa::Op::Addi &&
            inst.dst == ir::Opnd::temp(3)) {
            foundFoldedAddi = true;
            ASSERT_EQ(inst.guards.size(), 1u);
            EXPECT_EQ(inst.guards[0], (ir::Guard{7, true}));
        }
    }
    EXPECT_TRUE(foundFoldedAddi);
    checkHyperblock(hb);

    std::map<int, uint64_t> regs{{9, 4}};
    isa::Memory mem;
    auto out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[0], 9u);
}

TEST(Coalesce, KeepsMovWhenProducerHasOtherUses)
{
    ir::BBlock hb = shell();
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 7,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Addi, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(5)}));
    hb.instrs.push_back(make(isa::Op::Mov, 3, {ir::Opnd::temp(2)},
                             {{7, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 3, {ir::Opnd::imm(0)},
                             {{7, false}}));
    // Second use of t2 blocks the fold.
    hb.instrs.push_back(make(isa::Op::Add, 4,
                             {ir::Opnd::temp(3), ir::Opnd::temp(2)}));
    finish(hb, 4);
    EXPECT_EQ(coalescePhiMovs(hb), 0);
}

TEST(Coalesce, NeverFoldsMemoryOrReadProducers)
{
    // Folding a load would move it past other memory operations.
    ir::BBlock hb = shell();
    hb.instrs.push_back(make(isa::Op::Movi, 1, {ir::Opnd::imm(64)}));
    hb.instrs.push_back(make(isa::Op::Tgti, 7,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Ld, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Mov, 3, {ir::Opnd::temp(2)},
                             {{7, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 3, {ir::Opnd::imm(0)},
                             {{7, false}}));
    finish(hb, 3);
    EXPECT_EQ(coalescePhiMovs(hb), 0);
}

TEST(Coalesce, FoldsChainsIteratively)
{
    // mov -> mov chains collapse fully.
    ir::BBlock hb = shell();
    ir::Instr read;
    read.op = isa::Op::Read;
    read.reg = 9;
    read.dst = ir::Opnd::temp(1);
    hb.instrs.push_back(read);
    hb.instrs.push_back(make(isa::Op::Tgti, 7,
                             {ir::Opnd::temp(1), ir::Opnd::imm(0)}));
    hb.instrs.push_back(make(isa::Op::Muli, 2,
                             {ir::Opnd::temp(1), ir::Opnd::imm(3)}));
    hb.instrs.push_back(make(isa::Op::Mov, 3, {ir::Opnd::temp(2)}));
    hb.instrs.push_back(make(isa::Op::Mov, 4, {ir::Opnd::temp(3)},
                             {{7, true}}));
    hb.instrs.push_back(make(isa::Op::Movi, 4, {ir::Opnd::imm(0)},
                             {{7, false}}));
    finish(hb, 4);
    EXPECT_EQ(coalescePhiMovs(hb), 2);
    std::map<int, uint64_t> regs{{9, 4}};
    isa::Memory mem;
    auto out = evalHyperblock(hb, regs, mem);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(regs[0], 12u);
}

} // namespace
} // namespace dfp::core
