/**
 * @file
 * Properties of greedy region selection: the plan is a partition, the
 * head comes first and dominates membership decisions, caps are
 * respected, loops only re-enter through heads, and cross-region edges
 * only target heads.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/ifconvert.h"
#include "ir/parser.h"
#include "workloads/suite.h"

namespace dfp::core
{
namespace
{

RegionPlan
planFor(const std::string &src, RegionConfig cfg = {})
{
    ir::Function fn = ir::parseFunction(src);
    fn.computeCfg();
    return selectRegions(fn, cfg);
}

void
checkPartition(const ir::Function &fn, const RegionPlan &plan)
{
    std::set<int> covered;
    for (size_t r = 0; r < plan.regions.size(); ++r) {
        const Region &region = plan.regions[r];
        EXPECT_EQ(region.blocks.front(), region.head);
        for (int b : region.blocks) {
            EXPECT_TRUE(covered.insert(b).second)
                << "block in two regions";
            EXPECT_EQ(plan.regionOf[b], static_cast<int>(r));
        }
    }
    EXPECT_EQ(covered.size(), fn.blocks.size());
}

void
checkCrossEdgesTargetHeads(const ir::Function &fn, const RegionPlan &plan)
{
    for (const ir::BBlock &block : fn.blocks) {
        for (int s : block.succs) {
            if (plan.regionOf[s] == plan.regionOf[block.id])
                continue;
            EXPECT_EQ(plan.regions[plan.regionOf[s]].head, s)
                << "cross-region edge into a non-head block";
        }
    }
}

TEST(Regions, SuiteWidePartitionProperties)
{
    for (const workloads::Workload &w : workloads::eembcSuite()) {
        ir::Function fn = ir::parseFunction(w.source);
        fn.computeCfg();
        for (int maxBlocks : {1, 3, 64}) {
            RegionConfig cfg;
            cfg.maxBlocksPerRegion = maxBlocks;
            RegionPlan plan = selectRegions(fn, cfg);
            checkPartition(fn, plan);
            checkCrossEdgesTargetHeads(fn, plan);
            for (const Region &region : plan.regions) {
                EXPECT_LE(static_cast<int>(region.blocks.size()),
                          maxBlocks)
                    << w.name;
            }
        }
    }
}

TEST(Regions, BackEdgesOnlyToHeads)
{
    for (const workloads::Workload &w : workloads::eembcSuite()) {
        ir::Function fn = ir::parseFunction(w.source);
        fn.computeCfg();
        RegionPlan plan = selectRegions(fn, RegionConfig{});
        // Within a region, any edge to an earlier block (in the
        // region's topological list) must target the head.
        for (const Region &region : plan.regions) {
            std::map<int, int> pos;
            for (size_t i = 0; i < region.blocks.size(); ++i)
                pos[region.blocks[i]] = static_cast<int>(i);
            for (int b : region.blocks) {
                for (int s : fn.blocks[b].succs) {
                    if (!pos.count(s))
                        continue;
                    if (pos[s] <= pos[b]) {
                        EXPECT_EQ(s, region.head) << w.name;
                    }
                }
            }
        }
    }
}

TEST(Regions, LoopsDisallowedWhenConfigured)
{
    const char *src = R"(func f {
block entry:
    i = movi 0
    jmp loop
block loop:
    i = add i, 1
    c = tlt i, 5
    br c, loop, done
block done:
    ret i
})";
    RegionConfig cfg;
    cfg.allowLoops = false;
    RegionPlan plan = planFor(src, cfg);
    // The loop block must not absorb anything that branches back to it.
    for (const Region &region : plan.regions) {
        ir::Function fn = ir::parseFunction(src);
        fn.computeCfg();
        for (int b : region.blocks) {
            for (int s : fn.blocks[b].succs)
                EXPECT_FALSE(s == region.head && b != region.head &&
                             region.blocks.size() > 1);
        }
    }
}

TEST(Regions, BudgetCapsRegionCost)
{
    // 6 blocks of ~10 instructions each; a budget of 25 holds ~2.
    std::string src = "func f {\nblock b0:\n";
    for (int b = 0; b < 6; ++b) {
        if (b)
            src += detail::cat("block b", b, ":\n");
        for (int i = 0; i < 10; ++i)
            src += detail::cat("    x", b, "_", i, " = movi ", i, "\n");
        src += b < 5 ? detail::cat("    jmp b", b + 1, "\n")
                     : std::string("    ret\n");
    }
    src += "}\n";
    RegionConfig cfg;
    cfg.instrBudget = 25;
    RegionPlan plan = planFor(src, cfg);
    EXPECT_GE(plan.regions.size(), 3u);
    for (const Region &region : plan.regions)
        EXPECT_LE(region.blocks.size(), 2u);
}

} // namespace
} // namespace dfp::core
