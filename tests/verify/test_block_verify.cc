#include <gtest/gtest.h>

#include "verify/block_verify.h"

namespace dfp::verify
{
namespace
{

using isa::kHaltTarget;
using isa::Op;
using isa::PredMode;
using isa::Slot;
using isa::TBlock;
using isa::TInst;
using isa::TProgram;

TInst
inst(Op op, std::vector<isa::Target> targets,
     PredMode pr = PredMode::Unpred, int32_t imm = 0)
{
    TInst i;
    i.op = op;
    i.targets = std::move(targets);
    i.pr = pr;
    i.imm = imm;
    return i;
}

DiagList
verify(const TBlock &block, VerifyOptions opts = {})
{
    DiagList out;
    verifyBlock(block, opts, out);
    return out;
}

/**
 * A predicated diamond: a register read feeds one test whose result
 * fans out to an on-true and an on-false movi, each targeting the
 * single write slot. Exactly one token per slot on either path.
 *
 *   r0(g2) -> i0 tnei -> i1 mov -> { i2.P, i3.P }
 *   i2 movi_t -> W0 ; i3 movi_f -> W0 ; i4 bro halt
 */
TBlock
diamond()
{
    TBlock block;
    block.label = "diamond";
    block.reads.push_back({2, {{Slot::Left, 0}}});
    block.insts = {
        inst(Op::Tnei, {{Slot::Left, 1}}, PredMode::Unpred, 0),
        inst(Op::Mov, {{Slot::Pred, 2}, {Slot::Pred, 3}}),
        inst(Op::Movi, {{Slot::WriteQ, 0}}, PredMode::OnTrue, 10),
        inst(Op::Movi, {{Slot::WriteQ, 0}}, PredMode::OnFalse, 20),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.writes.push_back({1});
    return block;
}

TEST(BlockVerify, CleanPredicatedDiamondIsSpotless)
{
    DiagList out = verify(diamond());
    EXPECT_TRUE(out.empty()) << out.joined();
}

TEST(BlockVerify, MissingWriteOnOnePathFlagged)
{
    TBlock block = diamond();
    // The on-false arm no longer reaches the write slot: structurally
    // the slot still has a producer (the on-true arm), but on the
    // false path nothing arrives — only the deep analysis sees it.
    block.insts[3].targets.clear();
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathWriteMissing)) << out.joined();
    // The witness names the enumerated test variable.
    EXPECT_NE(out.joined().find("tnei"), std::string::npos)
        << out.joined();
}

TEST(BlockVerify, DoubleWriteOnOnePathFlagged)
{
    TBlock block = diamond();
    // Both arms now fire on true: double write on the true path,
    // nothing on the false path.
    block.insts[3].pr = PredMode::OnTrue;
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathWriteDouble)) << out.joined();
    EXPECT_TRUE(out.seen(codes::PathWriteMissing)) << out.joined();
}

TEST(BlockVerify, DoubleMatchingPredicateFlagged)
{
    TBlock block = diamond();
    // The fanout delivers the predicate to i2 twice: on the true path
    // both copies match.
    block.insts[1] = inst(
        Op::Mov4, {{Slot::Pred, 2}, {Slot::Pred, 2}, {Slot::Pred, 3}});
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathPredDouble)) << out.joined();
}

TEST(BlockVerify, DoubleDataOperandFlagged)
{
    TBlock block;
    block.label = "dup";
    block.insts = {
        inst(Op::Movi, {{Slot::Left, 3}}, PredMode::Unpred, 1),
        inst(Op::Movi, {{Slot::Left, 3}}, PredMode::Unpred, 2),
        inst(Op::Movi, {{Slot::Right, 3}}, PredMode::Unpred, 3),
        inst(Op::Add, {{Slot::WriteQ, 0}}),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.writes.push_back({1});
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathOperandDouble)) << out.joined();
    EXPECT_FALSE(out.seen(codes::PathWriteMissing));
    EXPECT_FALSE(out.seen(codes::PathWriteDouble));
}

TEST(BlockVerify, NoBranchOnOnePathFlagged)
{
    TBlock block = diamond();
    block.insts[1] = inst(
        Op::Mov4, {{Slot::Pred, 2}, {Slot::Pred, 3}, {Slot::Pred, 4}});
    block.insts[4].pr = PredMode::OnTrue;
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathNoBranch)) << out.joined();
}

TEST(BlockVerify, DoubleBranchFlagged)
{
    TBlock block = diamond();
    block.insts.push_back(
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget));
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathBranchDouble)) << out.joined();
}

/** addr/value movis feeding one store, LSID 0 masked. */
TBlock
storeBlock()
{
    TBlock block;
    block.label = "store";
    block.insts = {
        inst(Op::Movi, {{Slot::Left, 2}}, PredMode::Unpred, 8),
        inst(Op::Movi, {{Slot::Right, 2}}, PredMode::Unpred, 3),
        inst(Op::St, {}),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.insts[2].lsid = 0;
    block.storeMask = 1u;
    return block;
}

TEST(BlockVerify, CleanStoreBlockPasses)
{
    DiagList out = verify(storeBlock());
    EXPECT_TRUE(out.empty()) << out.joined();
}

TEST(BlockVerify, MaskedLsidWithNoResolverFlagged)
{
    TBlock block = storeBlock();
    // Header mask promises LSID 1 but no store or null ever resolves
    // it: the block would never complete. Structural validation
    // accepts this (a null could resolve it); the path analysis
    // proves none does.
    block.storeMask |= 1u << 1;
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::PathStoreUnresolved)) << out.joined();
}

TEST(BlockVerify, DuplicateStoreLsidFlagged)
{
    TBlock block;
    block.label = "twostores";
    block.insts = {
        inst(Op::Movi, {{Slot::Left, 4}}, PredMode::Unpred, 8),
        inst(Op::Movi, {{Slot::Right, 4}}, PredMode::Unpred, 3),
        inst(Op::Movi, {{Slot::Left, 5}}, PredMode::Unpred, 16),
        inst(Op::Movi, {{Slot::Right, 5}}, PredMode::Unpred, 4),
        inst(Op::St, {}),
        inst(Op::St, {}),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.insts[4].lsid = 0;
    block.insts[5].lsid = 0;
    block.storeMask = 1u;
    DiagList out = verify(block);
    // Static check: both stores definitely fire.
    EXPECT_TRUE(out.seen(codes::DuplicateStoreLsid)) << out.joined();
    // Path check: the LSID resolves twice on the (only) path.
    EXPECT_TRUE(out.seen(codes::PathLsidDouble)) << out.joined();
}

TEST(BlockVerify, LoadFeedingEarlierStoreWarns)
{
    TBlock block;
    block.label = "hazard";
    block.insts = {
        inst(Op::Movi, {{Slot::Left, 1}}, PredMode::Unpred, 8),
        inst(Op::Ld, {{Slot::Left, 3}}),
        inst(Op::Movi, {{Slot::Right, 3}}, PredMode::Unpred, 7),
        inst(Op::St, {}),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.insts[1].lsid = 1;
    block.insts[3].lsid = 0;
    block.storeMask = 1u;
    DiagList out = verify(block);
    // The load waits for LSID 0; the store waits for the load.
    EXPECT_TRUE(out.seen(codes::LsidOrderHazard)) << out.joined();
    EXPECT_TRUE(out.seen(codes::PathStoreUnresolved)) << out.joined();
}

TEST(BlockVerify, ConstantPredicateIsNotEnumerated)
{
    TBlock block = diamond();
    // Replace the test with a constant-false seed (movi 0). Its truth
    // is fixed, not a free path variable: the on-true arm is provably
    // dead, and the block is still correct (no phantom missing-write
    // error from an impossible "constant is true" path).
    block.insts[0] = inst(Op::Movi, {{Slot::Left, 1}},
                          PredMode::Unpred, 0);
    block.reads.clear(); // the movi replaces the register read
    DiagList out = verify(block);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
    EXPECT_TRUE(out.seen(codes::DeadPredicatePath)) << out.joined();
}

TEST(BlockVerify, InvertedTestPairSharesOneVariable)
{
    // tlt a,b guards one arm; tge a,b guards the other. Tied to a
    // single variable they are complementary and the block is clean;
    // enumerated independently the impossible both-true / both-false
    // paths would report double/missing writes.
    TBlock block;
    block.label = "tied";
    block.reads.push_back({2, {{Slot::Left, 0}, {Slot::Left, 1}}});
    block.reads.push_back({3, {{Slot::Right, 0}, {Slot::Right, 1}}});
    block.insts = {
        inst(Op::Tlt, {{Slot::Left, 2}}),
        inst(Op::Tge, {{Slot::Left, 3}}),
        inst(Op::Mov, {{Slot::Pred, 4}}),
        inst(Op::Mov, {{Slot::Pred, 5}}),
        inst(Op::Movi, {{Slot::WriteQ, 0}}, PredMode::OnTrue, 1),
        inst(Op::Movi, {{Slot::WriteQ, 0}}, PredMode::OnTrue, 2),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.writes.push_back({1});
    DiagList out = verify(block);
    EXPECT_TRUE(out.empty()) << out.joined();
}

TEST(BlockVerify, LargePredicateSpaceIsSampled)
{
    // Three independent register-read predicates exceed a 2-variable
    // exhaustive budget: the analyzer samples and says so.
    TBlock block;
    block.label = "wide";
    for (int j = 0; j < 3; ++j) {
        const uint8_t m = static_cast<uint8_t>(3 * j);
        block.reads.push_back(
            {static_cast<uint8_t>(2 + j), {{Slot::Left, m}}});
        block.insts.push_back(inst(
            Op::Mov, {{Slot::Pred, static_cast<uint8_t>(m + 1)},
                      {Slot::Pred, static_cast<uint8_t>(m + 2)}}));
        block.insts.push_back(
            inst(Op::Movi, {{Slot::WriteQ, static_cast<uint8_t>(j)}},
                 PredMode::OnTrue, 1));
        block.insts.push_back(
            inst(Op::Movi, {{Slot::WriteQ, static_cast<uint8_t>(j)}},
                 PredMode::OnFalse, 2));
        block.writes.push_back({static_cast<uint8_t>(1 + j)});
    }
    block.insts.push_back(
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget));

    VerifyOptions opts;
    opts.maxPathVars = 2;
    DiagList out = verify(block, opts);
    EXPECT_TRUE(out.seen(codes::PredSpaceSampled)) << out.joined();
    EXPECT_FALSE(out.hasErrors()) << out.joined();

    // With the default budget the same block enumerates cleanly.
    DiagList full = verify(block);
    EXPECT_TRUE(full.empty()) << full.joined();
}

TEST(BlockVerify, DeadFanoutNodeWarns)
{
    TBlock block;
    block.label = "deadmov";
    block.insts = {
        inst(Op::Movi, {{Slot::Left, 1}}, PredMode::Unpred, 1),
        inst(Op::Mov, {}),
        inst(Op::Movi, {{Slot::WriteQ, 0}}, PredMode::Unpred, 2),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.writes.push_back({1});
    DiagList out = verify(block);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
    EXPECT_TRUE(out.seen(codes::DeadFanoutNode)) << out.joined();
}

TEST(BlockVerify, RedundantFanoutChainWarns)
{
    TBlock block;
    block.label = "movmov";
    block.insts = {
        inst(Op::Movi, {{Slot::Left, 1}}, PredMode::Unpred, 1),
        inst(Op::Mov, {{Slot::Left, 2}}),
        inst(Op::Mov, {{Slot::WriteQ, 0}}),
        inst(Op::Bro, {}, PredMode::Unpred, kHaltTarget),
    };
    block.writes.push_back({1});
    DiagList out = verify(block);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
    EXPECT_TRUE(out.seen(codes::RedundantFanout)) << out.joined();

    VerifyOptions quiet;
    quiet.warnings = false;
    EXPECT_TRUE(verify(block, quiet).empty());
}

TEST(BlockVerify, DeepAnalysisCanBeDisabled)
{
    TBlock block = diamond();
    block.insts[3].targets.clear(); // path bug, structurally fine
    VerifyOptions shallow;
    shallow.deep = false;
    DiagList out = verify(block, shallow);
    EXPECT_TRUE(out.empty()) << out.joined();
}

TEST(BlockVerify, StructuralErrorsSkipDeepAnalysis)
{
    TBlock block = diamond();
    block.insts.pop_back(); // no branch: structural error
    DiagList out = verify(block);
    EXPECT_TRUE(out.seen(codes::NoBranch)) << out.joined();
    EXPECT_FALSE(out.seen(codes::PathNoBranch)) << out.joined();
}

TEST(BlockVerify, ProgramBranchTargetsRangeChecked)
{
    TProgram program;
    program.blocks.push_back(diamond());
    program.blocks[0].insts[4].imm = 7; // no block 7
    DiagList out;
    verifyProgram(program, {}, out);
    EXPECT_TRUE(out.seen(codes::BranchTargetOutOfRange))
        << out.joined();

    program.blocks[0].insts[4].imm = 0; // self-loop is fine
    DiagList clean;
    verifyProgram(program, {}, clean);
    EXPECT_TRUE(clean.empty()) << clean.joined();
}

} // namespace
} // namespace dfp::verify
