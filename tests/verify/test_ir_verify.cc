#include <gtest/gtest.h>

#include "core/ifconvert.h"
#include "core/ssa.h"
#include "ir/parser.h"
#include "verify/ir_verify.h"

namespace dfp::verify
{
namespace
{

/** A diamond: entry branches, both arms join, the join returns. */
const char *const kDiamond = R"(
func kernel {
  block entry:
    t0 = movi 1
    t1 = tlt t0, 10
    br t1, then, else
  block then:
    t2 = add t0, 1
    jmp join
  block else:
    t3 = add t0, 2
    jmp join
  block join:
    t4 = phi [then: t2], [else: t3]
    ret t4
}
)";

DiagList
check(const ir::Function &fn, IrStage stage)
{
    DiagList out;
    verifyFunction(fn, stage, out);
    return out;
}

TEST(IrVerify, CleanCfgPasses)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
}

TEST(IrVerify, CleanSsaPasses)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    core::buildSsa(fn);
    DiagList out = check(fn, IrStage::Ssa);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
}

TEST(IrVerify, MissingTerminatorFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    fn.blocks[1].term = ir::Term::None;
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_TRUE(out.seen(codes::IrNoTerminator)) << out.joined();
}

TEST(IrVerify, UnresolvedSuccessorFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    fn.blocks[1].succLabels[0] = "nowhere";
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_TRUE(out.seen(codes::IrBadSuccessor)) << out.joined();
}

TEST(IrVerify, PhiArityMismatchFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    for (ir::BBlock &block : fn.blocks) {
        for (ir::Instr &inst : block.instrs) {
            if (inst.op == isa::Op::Phi)
                inst.phiBlocks.pop_back();
        }
    }
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_TRUE(out.seen(codes::IrPhiArity)) << out.joined();
}

TEST(IrVerify, UseWithoutAnyDefFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    fn.blocks[1].instrs[0].srcs[0] = ir::Opnd::temp(999);
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_TRUE(out.seen(codes::IrUseBeforeDef)) << out.joined();
}

TEST(IrVerify, PseudoOpInBodyFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    ir::Instr jmp;
    jmp.op = isa::Op::Jmp;
    fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), jmp);
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_TRUE(out.seen(codes::IrPseudoInBody)) << out.joined();
}

TEST(IrVerify, UnreachableBlockWarns)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    ir::BBlock &orphan = fn.addBlock("orphan");
    orphan.term = ir::Term::Ret;
    fn.computeCfg();
    DiagList out = check(fn, IrStage::Cfg);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
    EXPECT_TRUE(out.seen(codes::IrUnreachableBlock));
}

TEST(IrVerify, SsaRedefinitionFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    core::buildSsa(fn);
    // Duplicate the first defining instruction: two defs of one temp.
    fn.blocks[0].instrs.push_back(fn.blocks[0].instrs[0]);
    DiagList out = check(fn, IrStage::Ssa);
    EXPECT_TRUE(out.seen(codes::IrMultipleDefs)) << out.joined();
}

TEST(IrVerify, SsaDominanceViolationFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    core::buildSsa(fn);
    // Find the temp defined in 'then' and use it in 'else': neither
    // block dominates the other.
    int thenId = fn.blockId("then"), elseId = fn.blockId("else");
    ASSERT_GE(thenId, 0);
    ASSERT_GE(elseId, 0);
    int thenTemp = -1;
    for (const ir::Instr &inst : fn.blocks[thenId].instrs) {
        if (inst.dst.isTemp())
            thenTemp = inst.dst.id;
    }
    ASSERT_GE(thenTemp, 0);
    for (ir::Instr &inst : fn.blocks[elseId].instrs) {
        if (inst.op != isa::Op::Phi && !inst.srcs.empty() &&
            inst.srcs[0].isTemp())
            inst.srcs[0] = ir::Opnd::temp(thenTemp);
    }
    DiagList out = check(fn, IrStage::Ssa);
    EXPECT_TRUE(out.seen(codes::IrDomViolation)) << out.joined();
}

TEST(IrVerify, SsaPhiInputFromNonPredecessorFlagged)
{
    ir::Function fn = ir::parseFunction(kDiamond);
    core::buildSsa(fn);
    int join = fn.blockId("join");
    ASSERT_GE(join, 0);
    for (ir::Instr &inst : fn.blocks[join].instrs) {
        if (inst.op == isa::Op::Phi && !inst.phiBlocks.empty())
            inst.phiBlocks[0] = join; // join is not its own pred
    }
    DiagList out = check(fn, IrStage::Ssa);
    EXPECT_TRUE(out.seen(codes::IrPhiBadPred)) << out.joined();
}

/** Build a tiny hand-rolled hyperblock with a guarded diamond. */
ir::Function
hyperFunction()
{
    ir::Function fn;
    ir::BBlock &hb = fn.addBlock("hb");
    hb.term = ir::Term::Hyper;

    auto add = [&](isa::Op op, ir::Opnd dst, std::vector<ir::Opnd> srcs,
                   std::vector<ir::Guard> guards) -> ir::Instr & {
        ir::Instr inst;
        inst.op = op;
        inst.dst = dst;
        inst.srcs = std::move(srcs);
        inst.guards = std::move(guards);
        hb.instrs.push_back(std::move(inst));
        return hb.instrs.back();
    };

    // t0 = movi 7; t1 = tlti t0, 10; t2 = movi 1 [t1]; t2 = movi 2 [!t1]
    add(isa::Op::Movi, ir::Opnd::temp(0), {ir::Opnd::imm(7)}, {});
    add(isa::Op::Tlti, ir::Opnd::temp(1),
        {ir::Opnd::temp(0), ir::Opnd::imm(10)}, {});
    add(isa::Op::Movi, ir::Opnd::temp(2), {ir::Opnd::imm(1)},
        {{1, true}});
    add(isa::Op::Movi, ir::Opnd::temp(2), {ir::Opnd::imm(2)},
        {{1, false}});
    ir::Instr &w = add(isa::Op::Write, ir::Opnd::none(),
                       {ir::Opnd::temp(2)}, {});
    w.reg = 1;
    ir::Instr &bro = add(isa::Op::Bro, ir::Opnd::none(), {}, {});
    bro.broLabel = "@halt";
    for (const ir::Instr &inst : hb.instrs) {
        if (inst.dst.isTemp())
            fn.noteTemp(inst.dst.id);
    }
    fn.computeCfg();
    return fn;
}

TEST(IrVerify, CleanHyperblockPasses)
{
    ir::Function fn = hyperFunction();
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
}

TEST(IrVerify, HyperWithoutBranchFlagged)
{
    ir::Function fn = hyperFunction();
    fn.blocks[0].instrs.pop_back(); // drop the bro
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_TRUE(out.seen(codes::IrNoBranchInHyper)) << out.joined();
}

TEST(IrVerify, HyperUseBeforeDefFlagged)
{
    ir::Function fn = hyperFunction();
    auto &instrs = fn.blocks[0].instrs;
    std::swap(instrs[0], instrs[1]); // tlti now reads t0 before its def
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_TRUE(out.seen(codes::IrUseBeforeDef)) << out.joined();
}

TEST(IrVerify, ContradictoryGuardsFlagged)
{
    ir::Function fn = hyperFunction();
    fn.blocks[0].instrs[2].guards = {{1, true}, {1, false}};
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_TRUE(out.seen(codes::IrContradictoryGuards)) << out.joined();
}

TEST(IrVerify, MixedPolarityOrFlagged)
{
    ir::Function fn = hyperFunction();
    // Add a second predicate so the OR set isn't contradictory.
    ir::Instr extra;
    extra.op = isa::Op::Tlti;
    extra.dst = ir::Opnd::temp(3);
    extra.srcs = {ir::Opnd::temp(0), ir::Opnd::imm(20)};
    auto &instrs = fn.blocks[0].instrs;
    instrs.insert(instrs.begin() + 2, extra);
    fn.noteTemp(3);
    instrs[3].guards = {{1, true}, {3, false}};
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_TRUE(out.seen(codes::IrMixedPolarityOr)) << out.joined();
}

TEST(IrVerify, UndefinedGuardFlagged)
{
    ir::Function fn = hyperFunction();
    fn.blocks[0].instrs[2].guards = {{42, true}};
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_TRUE(out.seen(codes::IrGuardUndefined)) << out.joined();
}

TEST(IrVerify, NonDisjointDefsFlagged)
{
    ir::Function fn = hyperFunction();
    // Both defs of t2 now fire when t1 is true: not disjoint.
    fn.blocks[0].instrs[3].guards = {{1, true}};
    DiagList out = check(fn, IrStage::Hyper);
    EXPECT_TRUE(out.seen(codes::IrNonDisjointDefs)) << out.joined();
}

TEST(IrVerify, CheckIrOrPanicThrowsWithPassName)
{
    ir::Function fn = hyperFunction();
    fn.blocks[0].instrs.pop_back(); // invalid: no bro
    try {
        checkIrOrPanic(fn, IrStage::Hyper, "unit-test-pass");
        FAIL() << "expected a panic";
    } catch (const std::exception &err) {
        EXPECT_NE(std::string(err.what()).find("unit-test-pass"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("DFPV"),
                  std::string::npos);
    }
}

} // namespace
} // namespace dfp::verify
