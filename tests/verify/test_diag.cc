#include <gtest/gtest.h>

#include <sstream>

#include "verify/diag.h"

namespace dfp::verify
{
namespace
{

TEST(Diag, RenderIncludesSeverityCodeAndLocation)
{
    Diag d{codes::NoBranch, Severity::Error, {"loop", 3},
           "no branch instruction"};
    std::string r = d.render();
    EXPECT_NE(r.find("error"), std::string::npos);
    EXPECT_NE(r.find("DFPV117"), std::string::npos);
    EXPECT_NE(r.find("'loop'"), std::string::npos);
    EXPECT_NE(r.find("inst 3"), std::string::npos);
    EXPECT_NE(r.find("no branch instruction"), std::string::npos);
}

TEST(Diag, SourceLocRendersProgramScope)
{
    EXPECT_EQ(SourceLoc{}.str(), "<program>");
    EXPECT_EQ((SourceLoc{"b", -1}).str(), "block 'b'");
    EXPECT_EQ((SourceLoc{"b", 2}).str(), "block 'b' inst 2");
}

TEST(Diag, ListCountsAndSeen)
{
    DiagList list;
    EXPECT_TRUE(list.empty());
    EXPECT_FALSE(list.hasErrors());
    list.error(codes::NoBranch, {"a", -1}, "e1");
    list.warning(codes::DeadPredicatePath, {"a", 0}, "w1");
    list.note(codes::PredSpaceSampled, {"a", -1}, "n1");
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.count(Severity::Error), 1u);
    EXPECT_EQ(list.count(Severity::Warning), 1u);
    EXPECT_EQ(list.count(Severity::Note), 1u);
    EXPECT_TRUE(list.hasErrors());
    EXPECT_TRUE(list.seen(codes::NoBranch));
    EXPECT_FALSE(list.seen(codes::DataflowCycle));
}

TEST(Diag, AppendMovesDiagnostics)
{
    DiagList a, b;
    a.error(codes::NoBranch, {}, "e");
    b.warning(codes::DeadPredicatePath, {}, "w");
    a.append(std::move(b));
    EXPECT_EQ(a.size(), 2u);
}

TEST(Diag, JoinedMatchesLegacyFormat)
{
    DiagList list;
    list.error(codes::NoBranch, {"a", -1}, "first");
    list.error(codes::DataflowCycle, {"a", 1}, "second");
    EXPECT_EQ(list.joined(), "first; second");
}

TEST(Diag, RenderJsonIsWellFormedArray)
{
    DiagList list;
    list.error(codes::NoBranch, {"a \"quoted\"", 2}, "msg\nline");
    std::ostringstream os;
    list.renderJson(os);
    std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"DFPV117\""), std::string::npos);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(Diag, CatalogIsCompleteAndOrdered)
{
    const auto &cat = diagCatalog();
    ASSERT_FALSE(cat.empty());
    // Codes are unique, numeric, and sorted.
    for (size_t i = 1; i < cat.size(); ++i)
        EXPECT_LT(std::string(cat[i - 1].code),
                  std::string(cat[i].code));
    // Two families share the catalog: DFPV (verifier) and DFPA (the
    // static performance analyzer).
    for (const CodeInfo &info : cat) {
        std::string prefix = std::string(info.code).substr(0, 4);
        EXPECT_TRUE(prefix == "DFPV" || prefix == "DFPA") << info.code;
        EXPECT_NE(std::string(info.summary), "");
    }
    const CodeInfo *found = findCode("DFPV117");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->sev, Severity::Error);
    const CodeInfo *analyze = findCode("DFPA401");
    ASSERT_NE(analyze, nullptr);
    EXPECT_EQ(analyze->sev, Severity::Warning);
    EXPECT_EQ(findCode("DFPV999"), nullptr);
}

} // namespace
} // namespace dfp::verify
