/**
 * @file
 * Randomized mutation testing for the deep verifier: compile real
 * workloads, corrupt the generated blocks in ways that are violations
 * by construction, and check that verification (a) accepts the
 * pristine program and (b) reports the documented DFPV code for each
 * corruption. Seeds are fixed, so failures reproduce exactly.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <random>

#include "compiler/pipeline.h"
#include "verify/block_verify.h"
#include "workloads/suite.h"

namespace dfp::verify
{
namespace
{

using isa::Op;
using isa::PredMode;
using isa::Slot;
using isa::TBlock;
using isa::TProgram;

const char *const kWorkloads[] = {"ifthenelse", "nesteddiamond",
                                  "whilechain", "condstore"};
const char *const kConfigs[] = {"both", "merge"};

TProgram
compileWorkload(const char *name, const char *config)
{
    const workloads::Workload *w = workloads::findWorkload(name);
    EXPECT_NE(w, nullptr) << name;
    compiler::CompileOptions opts = compiler::configNamed(config);
    opts.unroll.factor = w->unrollFactor;
    opts.verifyEachPass = true;
    return compiler::compileSource(w->source, opts).program;
}

DiagList
verify(const TProgram &program)
{
    DiagList out;
    verifyProgram(program, {}, out);
    return out;
}

/**
 * A mutation: returns true when it could be applied to the block
 * (some need a store, a predicated instruction, ...) and the DFPV
 * code the verifier must then report.
 */
struct Mutation
{
    const char *name;
    const char *code;
    bool (*apply)(TBlock &, std::mt19937 &);
};

/** Pick a uniformly random element index, or -1 when empty. */
template <typename Pred>
int
pickInst(const TBlock &block, std::mt19937 &rng, Pred pred)
{
    std::vector<int> candidates;
    for (size_t i = 0; i < block.insts.size(); ++i) {
        if (pred(block.insts[i]))
            candidates.push_back(static_cast<int>(i));
    }
    if (candidates.empty())
        return -1;
    std::uniform_int_distribution<size_t> d(0, candidates.size() - 1);
    return candidates[d(rng)];
}

const Mutation kMutations[] = {
    {"target out of range", codes::TargetOutOfRange,
     [](TBlock &block, std::mt19937 &rng) {
         int i = pickInst(block, rng, [](const isa::TInst &inst) {
             return !inst.targets.empty() &&
                    inst.targets[0].slot != Slot::WriteQ;
         });
         if (i < 0)
             return false;
         block.insts[i].targets[0].index = 200; // > kMaxInsts
         return true;
     }},
    {"unpredicate a consumer", codes::PredTokenToUnpredicated,
     [](TBlock &block, std::mt19937 &rng) {
         // Its predicate producers now feed a PR=00 instruction.
         int i = pickInst(block, rng, [](const isa::TInst &inst) {
             return inst.predicated();
         });
         if (i < 0)
             return false;
         block.insts[i].pr = PredMode::Unpred;
         return true;
     }},
    {"store outside header mask", codes::StoreLsidNotInMask,
     [](TBlock &block, std::mt19937 &rng) {
         int i = pickInst(block, rng, [](const isa::TInst &inst) {
             return inst.op == Op::St;
         });
         if (i < 0)
             return false;
         block.storeMask &= ~(1u << block.insts[i].lsid);
         return true;
     }},
    {"masked LSID nobody resolves", codes::PathStoreUnresolved,
     [](TBlock &block, std::mt19937 &rng) {
         (void)rng;
         for (int bit = isa::kMaxLsids - 1; bit >= 0; --bit) {
             if (!(block.storeMask & (1u << bit))) {
                 block.storeMask |= 1u << bit;
                 return true;
             }
         }
         return false;
     }},
    {"erase every branch", codes::NoBranch,
     [](TBlock &block, std::mt19937 &rng) {
         (void)rng;
         bool any = false;
         for (isa::TInst &inst : block.insts) {
             if (inst.op == Op::Bro) {
                 inst.op = Op::Nop;
                 any = true;
             }
         }
         return any;
     }},
};

class MutationTest
    : public ::testing::TestWithParam<std::tuple<const char *,
                                                 const char *>>
{};

TEST_P(MutationTest, PristineProgramVerifiesClean)
{
    auto [workload, config] = GetParam();
    TProgram program = compileWorkload(workload, config);
    DiagList out = verify(program);
    EXPECT_FALSE(out.hasErrors()) << out.joined();
}

TEST_P(MutationTest, EveryMutationIsCaughtWithItsCode)
{
    auto [workload, config] = GetParam();
    const TProgram pristine = compileWorkload(workload, config);

    std::mt19937 rng(0xdf9u);
    for (const Mutation &m : kMutations) {
        // Try each mutation on a few random blocks; skip blocks where
        // it does not apply (e.g. no store to corrupt).
        int applied = 0;
        for (int attempt = 0; attempt < 8 && applied < 2; ++attempt) {
            TProgram program = pristine;
            std::uniform_int_distribution<size_t> d(
                0, program.blocks.size() - 1);
            TBlock &block = program.blocks[d(rng)];
            if (!m.apply(block, rng))
                continue;
            ++applied;
            DiagList out = verify(program);
            EXPECT_TRUE(out.hasErrors())
                << m.name << " on block '" << block.label
                << "' not caught";
            EXPECT_TRUE(out.seen(m.code))
                << m.name << " on block '" << block.label
                << "' reported wrong code: " << out.joined();
        }
    }
}

TEST_P(MutationTest, RandomMutationsNeverVerifyClean)
{
    auto [workload, config] = GetParam();
    const TProgram pristine = compileWorkload(workload, config);

    std::mt19937 rng(0x5eedu);
    std::uniform_int_distribution<size_t> pickMutation(
        0, std::size(kMutations) - 1);
    int applied = 0;
    for (int attempt = 0; attempt < 32 && applied < 10; ++attempt) {
        TProgram program = pristine;
        std::uniform_int_distribution<size_t> pickBlock(
            0, program.blocks.size() - 1);
        const Mutation &m = kMutations[pickMutation(rng)];
        if (!m.apply(program.blocks[pickBlock(rng)], rng))
            continue;
        ++applied;
        EXPECT_TRUE(verify(program).hasErrors()) << m.name;
    }
    EXPECT_GT(applied, 0);
}

std::string
paramName(const ::testing::TestParamInfo<MutationTest::ParamType> &p)
{
    return std::string(std::get<0>(p.param)) + "_" +
           std::get<1>(p.param);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MutationTest,
    ::testing::Combine(::testing::ValuesIn(kWorkloads),
                       ::testing::ValuesIn(kConfigs)),
    paramName);

} // namespace
} // namespace dfp::verify
