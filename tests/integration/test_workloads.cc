/**
 * @file
 * The central correctness property of the whole repository: for every
 * workload and every compiler configuration, the golden IR interpreter,
 * the hyperblock-form evaluator, the functional target-block executor,
 * and the cycle-level simulator must all agree on the kernel's return
 * value and final memory image.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "core/hb_eval.h"
#include "isa/exec.h"
#include "sim/machine.h"
#include "workloads/suite.h"

namespace dfp
{
namespace
{

using workloads::Workload;

struct Case
{
    std::string kernel;
    std::string config;
};

void
PrintTo(const Case &c, std::ostream *os)
{
    *os << c.kernel << "/" << c.config;
}

class WorkloadEquivalence : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadEquivalence, AllModelsAgree)
{
    const Case &param = GetParam();
    const Workload *w = workloads::findWorkload(param.kernel);
    ASSERT_NE(w, nullptr);

    workloads::Golden golden = workloads::runGolden(*w);

    compiler::CompileOptions opts =
        compiler::configNamed(param.config);
    opts.unroll.factor = w->unrollFactor;
    compiler::CompileResult res;
    ASSERT_NO_THROW(res = compiler::compileSource(w->source, opts))
        << param.kernel << "/" << param.config;

    // 1. Hyperblock-form evaluator.
    {
        isa::Memory mem = workloads::initialMemory(*w);
        core::HbRunResult hb = core::runHyperFunction(res.hyperIr, mem);
        // After register allocation the "virtual" registers are
        // architectural; the return value lives in g1 = arch reg 1,
        // not virtual reg 0, so compare memory + instruction effects
        // via the checksum only when regalloc renamed. runHyperFunction
        // reports reg 0; fetch arch reg 1 via a fresh run below instead.
        ASSERT_TRUE(hb.ok) << param.kernel << "/" << param.config << ": "
                           << hb.error;
        EXPECT_EQ(mem.checksum(), golden.memChecksum)
            << "hb_eval memory mismatch for " << param.kernel;
    }

    // 2. Functional target executor.
    {
        isa::ArchState state;
        state.mem = workloads::initialMemory(*w);
        isa::RunOutcome out = isa::runProgram(res.program, state);
        ASSERT_TRUE(out.halted)
            << param.kernel << "/" << param.config << ": " << out.error;
        EXPECT_EQ(state.regs[compiler::kRetArchReg], golden.retValue)
            << "exec return mismatch for " << param.kernel;
        EXPECT_EQ(state.mem.checksum(), golden.memChecksum)
            << "exec memory mismatch for " << param.kernel;
    }

    // 3. Cycle-level simulator.
    {
        isa::ArchState state;
        state.mem = workloads::initialMemory(*w);
        sim::SimConfig cfg;
        sim::SimResult out = sim::simulate(res.program, state, cfg);
        ASSERT_TRUE(out.halted)
            << param.kernel << "/" << param.config << ": " << out.error;
        EXPECT_EQ(state.regs[compiler::kRetArchReg], golden.retValue)
            << "sim return mismatch for " << param.kernel;
        EXPECT_EQ(state.mem.checksum(), golden.memChecksum)
            << "sim memory mismatch for " << param.kernel;
        EXPECT_GT(out.cycles, 0u);
    }
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    const char *configs[] = {"bb", "hyper", "intra", "inter", "both",
                             "merge"};
    for (const Workload &w : workloads::eembcSuite()) {
        for (const char *cfg : configs)
            cases.push_back({w.name, cfg});
    }
    for (const Workload &w : workloads::microSuite()) {
        for (const char *cfg : configs)
            cases.push_back({w.name, cfg});
    }
    for (const char *cfg : configs)
        cases.push_back({"genalg", cfg});
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string name = info.param.kernel + "_" + info.param.config;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadEquivalence,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace dfp
