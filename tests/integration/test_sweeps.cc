/**
 * @file
 * Property sweeps: architectural results must be invariant across
 * every *timing* knob of the machine (grid shape, blocks in flight,
 * contention model, load speculation, early termination, prediction,
 * fetch width, latencies) and across compiler knobs that only change
 * code shape (multicast fanout, scheduling, unrolling). Timing models
 * may change cycle counts; they must never change state.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "sim/machine.h"
#include "workloads/suite.h"

namespace dfp
{
namespace
{

using workloads::Workload;

const char *kKernels[] = {"tblook01", "conven00", "ospf", "dither01",
                          "viterb00", "condstore", "genalg"};

struct MachineVariant
{
    const char *name;
    void (*tweak)(sim::SimConfig &);
};

const MachineVariant kMachineVariants[] = {
    {"no_early_termination",
     [](sim::SimConfig &c) { c.earlyTermination = false; }},
    {"no_contention",
     [](sim::SimConfig &c) { c.modelContention = false; }},
    {"conservative_loads",
     [](sim::SimConfig &c) { c.aggressiveLoads = false; }},
    {"perfect_prediction",
     [](sim::SimConfig &c) { c.perfectPrediction = true; }},
    {"one_block_in_flight",
     [](sim::SimConfig &c) { c.maxBlocksInFlight = 1; }},
    {"sixteen_blocks_in_flight",
     [](sim::SimConfig &c) { c.maxBlocksInFlight = 16; }},
    {"grid_2x8",
     [](sim::SimConfig &c) { c.grid = sim::Grid{2, 8}; }},
    {"grid_8x2",
     [](sim::SimConfig &c) { c.grid = sim::Grid{8, 2}; }},
    {"narrow_fetch", [](sim::SimConfig &c) { c.fetchWidth = 4; }},
    {"slow_memory", [](sim::SimConfig &c) { c.missLatency = 200; }},
    {"tiny_l1d",
     [](sim::SimConfig &c) { c.l1dBytes = 1024; c.l1dAssoc = 1; }},
};

struct SweepCase
{
    std::string kernel;
    std::string variant;
};

class MachineSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(MachineSweep, TimingKnobsNeverChangeState)
{
    const SweepCase &param = GetParam();
    const Workload *w = workloads::findWorkload(param.kernel);
    ASSERT_NE(w, nullptr);
    workloads::Golden golden = workloads::runGolden(*w);

    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = w->unrollFactor;
    auto res = compiler::compileSource(w->source, opts);

    sim::SimConfig cfg;
    for (const MachineVariant &v : kMachineVariants) {
        if (param.variant == v.name)
            v.tweak(cfg);
    }
    // Grid changes need a matching schedule.
    compiler::GridShape grid{cfg.grid.rows, cfg.grid.cols};
    compiler::scheduleProgram(res.program, grid);

    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    sim::SimResult out = sim::simulate(res.program, state, cfg);
    ASSERT_TRUE(out.halted)
        << param.kernel << "/" << param.variant << ": " << out.error;
    EXPECT_EQ(state.regs[compiler::kRetArchReg], golden.retValue)
        << param.kernel << "/" << param.variant;
    EXPECT_EQ(state.mem.checksum(), golden.memChecksum)
        << param.kernel << "/" << param.variant;
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    for (const char *k : kKernels) {
        for (const MachineVariant &v : kMachineVariants)
            cases.push_back({k, v.name});
    }
    return cases;
}

std::string
sweepName(const ::testing::TestParamInfo<SweepCase> &info)
{
    return info.param.kernel + "_" + info.param.variant;
}

INSTANTIATE_TEST_SUITE_P(Machine, MachineSweep,
                         ::testing::ValuesIn(sweepCases()), sweepName);

// ---------------------------------------------------------------------
// Compiler-shape sweeps: multicast, no scheduling, unroll factors.

struct ShapeCase
{
    std::string kernel;
    bool multicast;
    bool schedule;
    int unroll;
};

class CompilerShapeSweep : public ::testing::TestWithParam<ShapeCase>
{
};

TEST_P(CompilerShapeSweep, ShapeKnobsNeverChangeState)
{
    const ShapeCase &param = GetParam();
    const Workload *w = workloads::findWorkload(param.kernel);
    ASSERT_NE(w, nullptr);
    workloads::Golden golden = workloads::runGolden(*w);

    compiler::CompileOptions opts = compiler::configNamed("merge");
    opts.multicast = param.multicast;
    opts.schedule = param.schedule;
    opts.unroll.factor = param.unroll;
    auto res = compiler::compileSource(w->source, opts);

    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    sim::SimResult out = sim::simulate(res.program, state);
    ASSERT_TRUE(out.halted) << out.error;
    EXPECT_EQ(state.regs[compiler::kRetArchReg], golden.retValue);
    EXPECT_EQ(state.mem.checksum(), golden.memChecksum);
}

std::vector<ShapeCase>
shapeCases()
{
    std::vector<ShapeCase> cases;
    for (const char *k : {"canrdr01", "rotate01", "fft00", "whilechain"}) {
        cases.push_back({k, true, true, 1});
        cases.push_back({k, true, true, 4});
        cases.push_back({k, false, false, 2});
        cases.push_back({k, true, false, 3});
    }
    return cases;
}

std::string
shapeName(const ::testing::TestParamInfo<ShapeCase> &info)
{
    return info.param.kernel + (info.param.multicast ? "_mc" : "") +
           (info.param.schedule ? "_sched" : "_naive") + "_u" +
           std::to_string(info.param.unroll);
}

INSTANTIATE_TEST_SUITE_P(Compiler, CompilerShapeSweep,
                         ::testing::ValuesIn(shapeCases()), shapeName);

} // namespace
} // namespace dfp
