/**
 * @file
 * Cross-configuration performance sanity properties on a few kernels:
 * the qualitative relationships the paper's Figure 7 rests on must hold
 * in this reproduction (BB slower than hyperblocks on branchy code;
 * the optimizations never break correctness and reduce static movs).
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "sim/machine.h"
#include "workloads/suite.h"

namespace dfp
{
namespace
{

uint64_t
cyclesFor(const workloads::Workload &w, const std::string &config)
{
    compiler::CompileOptions opts = compiler::configNamed(config);
    opts.unroll.factor = w.unrollFactor;
    auto res = compiler::compileSource(w.source, opts);
    isa::ArchState state;
    state.mem = workloads::initialMemory(w);
    sim::SimResult out = sim::simulate(res.program, state);
    EXPECT_TRUE(out.halted) << w.name << "/" << config << ": "
                            << out.error;
    return out.cycles;
}

TEST(Configs, BasicBlocksSlowerOnBranchyKernels)
{
    // Aggregate over a few branchy kernels; individual kernels may tie.
    double ratioSum = 0;
    int n = 0;
    for (const char *name : {"tblook01", "rotate01", "text01"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        ASSERT_NE(w, nullptr);
        uint64_t bb = cyclesFor(*w, "bb");
        uint64_t hyper = cyclesFor(*w, "hyper");
        ratioSum += double(bb) / double(hyper);
        ++n;
    }
    EXPECT_GT(ratioSum / n, 1.0)
        << "hyperblocks should beat basic blocks on branchy kernels";
}

TEST(Configs, FanoutReductionReducesDynamicMoves)
{
    const workloads::Workload *w = workloads::findWorkload("tblook01");
    ASSERT_NE(w, nullptr);
    auto run = [&](const std::string &config) {
        compiler::CompileOptions opts = compiler::configNamed(config);
        opts.unroll.factor = w->unrollFactor;
        auto res = compiler::compileSource(w->source, opts);
        isa::ArchState state;
        state.mem = workloads::initialMemory(*w);
        sim::SimResult out = sim::simulate(res.program, state);
        EXPECT_TRUE(out.halted) << out.error;
        return out;
    };
    sim::SimResult hyper = run("hyper");
    sim::SimResult intra = run("intra");
    EXPECT_LT(intra.movsCommitted, hyper.movsCommitted)
        << "intra should reduce dynamic move instructions (§6)";
    // Unguarded instructions execute speculatively, so total fired
    // instructions may rise slightly even as moves drop; bound the
    // increase rather than forbidding it.
    EXPECT_LT(double(intra.instsCommitted),
              1.15 * double(hyper.instsCommitted));
}

TEST(Configs, MergeNeverIncreasesStaticSize)
{
    for (const char *name : {"canrdr01", "pktflow", "ttsprk01"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        ASSERT_NE(w, nullptr);
        compiler::CompileOptions both = compiler::configNamed("both");
        compiler::CompileOptions merge = compiler::configNamed("merge");
        both.unroll.factor = merge.unroll.factor = w->unrollFactor;
        auto a = compiler::compileSource(w->source, both);
        auto b = compiler::compileSource(w->source, merge);
        // Merging eliminates duplicates but the predicate-OR producers
        // may need extra fanout movs (the paper's Figure 5c nets -3
        // after adding 3); allow a small static-size wobble.
        EXPECT_LE(b.stats.get("codegen.insts"),
                  a.stats.get("codegen.insts") * 21 / 20 + 4)
            << name;
    }
}

TEST(Configs, SchedulerImprovesOrTiesCycles)
{
    const workloads::Workload *w = workloads::findWorkload("autcor00");
    ASSERT_NE(w, nullptr);
    compiler::CompileOptions sched = compiler::configNamed("both");
    compiler::CompileOptions naive = sched;
    naive.schedule = false;
    sched.unroll.factor = naive.unroll.factor = w->unrollFactor;
    auto a = compiler::compileSource(w->source, sched);
    auto b = compiler::compileSource(w->source, naive);
    isa::ArchState s1, s2;
    s1.mem = workloads::initialMemory(*w);
    s2.mem = workloads::initialMemory(*w);
    sim::SimResult r1 = sim::simulate(a.program, s1);
    sim::SimResult r2 = sim::simulate(b.program, s2);
    ASSERT_TRUE(r1.halted && r2.halted) << r1.error << r2.error;
    EXPECT_EQ(s1.regs[compiler::kRetArchReg],
              s2.regs[compiler::kRetArchReg]);
    // Spatial scheduling should not be a large regression.
    EXPECT_LT(double(r1.cycles), 1.10 * double(r2.cycles));
}

} // namespace
} // namespace dfp
