/**
 * @file
 * Workload-suite hygiene: every kernel parses, runs under the golden
 * interpreter, does real work, is deterministic, and the kernels are
 * pairwise distinguishable (no accidental copy-paste duplicates).
 */

#include <gtest/gtest.h>

#include <map>

#include "ir/parser.h"
#include "workloads/suite.h"

namespace dfp
{
namespace
{

TEST(Goldens, SuiteHasTwentyEightKernelsInFigure7Order)
{
    const auto &suite = workloads::eembcSuite();
    ASSERT_EQ(suite.size(), 28u);
    EXPECT_EQ(suite.front().name, "a2time01");
    EXPECT_EQ(suite.back().name, "viterb00");
}

TEST(Goldens, EveryKernelDoesRealWork)
{
    for (const workloads::Workload &w : workloads::eembcSuite()) {
        workloads::Golden g = workloads::runGolden(w);
        EXPECT_GT(g.dynInstrs, 1000u) << w.name << " is trivially small";
        EXPECT_NE(g.memChecksum, isa::Memory().checksum())
            << w.name << " writes nothing";
    }
}

TEST(Goldens, DeterministicAcrossRuns)
{
    for (const workloads::Workload &w : workloads::eembcSuite()) {
        workloads::Golden a = workloads::runGolden(w);
        workloads::Golden b = workloads::runGolden(w);
        EXPECT_EQ(a.retValue, b.retValue) << w.name;
        EXPECT_EQ(a.memChecksum, b.memChecksum) << w.name;
        EXPECT_EQ(a.dynInstrs, b.dynInstrs) << w.name;
    }
}

TEST(Goldens, KernelsPairwiseDistinct)
{
    std::map<uint64_t, std::string> seen;
    for (const workloads::Workload &w : workloads::eembcSuite()) {
        workloads::Golden g = workloads::runGolden(w);
        uint64_t key = g.memChecksum ^ (g.retValue * 0x9e3779b9ull) ^
                       g.dynInstrs;
        auto [it, inserted] = seen.emplace(key, w.name);
        EXPECT_TRUE(inserted)
            << w.name << " collides with " << it->second;
    }
}

TEST(Goldens, CategoriesCoverTheSuiteMix)
{
    std::map<std::string, int> byCategory;
    for (const workloads::Workload &w : workloads::eembcSuite())
        ++byCategory[w.category];
    // The paper's EEMBC mix spans automotive/telecom/consumer/etc.
    EXPECT_GE(byCategory.size(), 4u);
    for (const auto &[category, count] : byCategory)
        EXPECT_GE(count, 2) << category;
}

TEST(Goldens, GenalgMatchesFigure6Shape)
{
    const workloads::Workload &w = workloads::genalg();
    // The loop has the short-circuit structure: an FP compare and an
    // integer bound compare feeding two exits.
    EXPECT_NE(w.source.find("fgt"), std::string::npos);
    EXPECT_NE(w.source.find("tlt"), std::string::npos);
    workloads::Golden g = workloads::runGolden(w);
    EXPECT_GT(g.retValue, 0u);
}

TEST(Goldens, MicroSuiteRuns)
{
    for (const workloads::Workload &w : workloads::microSuite()) {
        workloads::Golden g = workloads::runGolden(w);
        EXPECT_GT(g.dynInstrs, 0u) << w.name;
    }
}

TEST(Goldens, FindWorkloadLookups)
{
    EXPECT_NE(workloads::findWorkload("fft00"), nullptr);
    EXPECT_NE(workloads::findWorkload("genalg"), nullptr);
    EXPECT_NE(workloads::findWorkload("condstore"), nullptr);
    EXPECT_EQ(workloads::findWorkload("nope"), nullptr);
}

} // namespace
} // namespace dfp
