/**
 * @file
 * Suite-wide compiler properties, one per invariant:
 *  - print -> parse -> interpret round-trips preserve semantics;
 *  - SSA construction preserves semantics and uniqueness of defs;
 *  - scalar optimization is semantics-preserving and idempotent;
 *  - every generated program passes the §3.1 validator and its blocks
 *    survive an encode/decode round trip bit-exactly;
 *  - the §5 optimization passes never break the hyperblock invariants.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/scalar_opts.h"
#include "core/pfg.h"
#include "core/ssa.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "isa/encode.h"
#include "isa/validate.h"
#include "workloads/suite.h"

namespace dfp
{
namespace
{

using workloads::Workload;

class SuiteProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &
    workload() const
    {
        const Workload *w = workloads::findWorkload(GetParam());
        EXPECT_NE(w, nullptr);
        return *w;
    }
};

TEST_P(SuiteProperty, PrintParseRoundTrip)
{
    const Workload &w = workload();
    ir::Function fn = ir::parseFunction(w.source);
    std::string printed = ir::toString(fn);
    ir::Function again = ir::parseFunction(printed);
    isa::Memory m1 = workloads::initialMemory(w);
    isa::Memory m2 = workloads::initialMemory(w);
    auto r1 = ir::interpret(fn, m1);
    auto r2 = ir::interpret(again, m2);
    ASSERT_TRUE(r1.ok && r2.ok) << r1.error << r2.error;
    EXPECT_EQ(r1.retValue, r2.retValue);
    EXPECT_EQ(m1.checksum(), m2.checksum());
    EXPECT_EQ(r1.dynInstrs, r2.dynInstrs);
}

TEST_P(SuiteProperty, SsaPreservesSemantics)
{
    const Workload &w = workload();
    ir::Function fn = ir::parseFunction(w.source);
    core::buildSsa(fn);
    EXPECT_TRUE(core::isSsa(fn));
    isa::Memory mem = workloads::initialMemory(w);
    auto r = ir::interpret(fn, mem);
    ASSERT_TRUE(r.ok) << w.name << ": " << r.error;
    workloads::Golden golden = workloads::runGolden(w);
    EXPECT_EQ(r.retValue, golden.retValue);
    EXPECT_EQ(mem.checksum(), golden.memChecksum);
}

TEST_P(SuiteProperty, ScalarOptsPreserveAndConverge)
{
    const Workload &w = workload();
    ir::Function fn = ir::parseFunction(w.source);
    core::buildSsa(fn);
    compiler::runScalarOpts(fn);
    // Idempotence: a second run finds nothing.
    EXPECT_EQ(compiler::runScalarOpts(fn), 0) << w.name;
    isa::Memory mem = workloads::initialMemory(w);
    auto r = ir::interpret(fn, mem);
    ASSERT_TRUE(r.ok) << w.name << ": " << r.error;
    workloads::Golden golden = workloads::runGolden(w);
    EXPECT_EQ(r.retValue, golden.retValue);
    EXPECT_EQ(mem.checksum(), golden.memChecksum);
    // (No dynamic-length assertion: SSA's phi nodes count as dynamic
    // instructions in the interpreter, so the comparison with the
    // pre-SSA golden run is not meaningful.)
}

TEST_P(SuiteProperty, GeneratedBlocksValidateAndRoundTrip)
{
    const Workload &w = workload();
    compiler::CompileOptions opts = compiler::configNamed("merge");
    opts.unroll.factor = w.unrollFactor;
    auto res = compiler::compileSource(w.source, opts);
    auto vr = isa::validateProgram(res.program);
    EXPECT_TRUE(vr.ok()) << w.name << ": " << vr.joined();
    for (const isa::TBlock &block : res.program.blocks) {
        isa::TBlock back = isa::decodeBlock(isa::encodeBlock(block));
        ASSERT_EQ(back.insts.size(), block.insts.size()) << w.name;
        for (size_t i = 0; i < block.insts.size(); ++i) {
            EXPECT_EQ(back.insts[i].op, block.insts[i].op);
            EXPECT_EQ(back.insts[i].pr, block.insts[i].pr);
            EXPECT_EQ(back.insts[i].imm, block.insts[i].imm);
            EXPECT_EQ(back.insts[i].targets, block.insts[i].targets);
        }
        EXPECT_EQ(back.storeMask, block.storeMask);
        EXPECT_EQ(back.placement, block.placement);
    }
}

TEST_P(SuiteProperty, HyperblockInvariantsSurviveEveryPass)
{
    const Workload &w = workload();
    for (const char *cfg : {"hyper", "intra", "inter", "both",
                            "merge"}) {
        compiler::CompileOptions opts = compiler::configNamed(cfg);
        opts.unroll.factor = w.unrollFactor;
        auto res = compiler::compileSource(w.source, opts);
        for (const ir::BBlock &hb : res.hyperIr.blocks) {
            EXPECT_NO_THROW(core::checkHyperblock(hb))
                << w.name << "/" << cfg << "/" << hb.name;
        }
    }
}

TEST_P(SuiteProperty, StaticSizeWithinFormatLimits)
{
    const Workload &w = workload();
    compiler::CompileOptions opts = compiler::configNamed("hyper");
    opts.unroll.factor = w.unrollFactor;
    auto res = compiler::compileSource(w.source, opts);
    for (const isa::TBlock &block : res.program.blocks) {
        EXPECT_LE(block.insts.size(),
                  static_cast<size_t>(isa::kMaxInsts));
        EXPECT_LE(block.reads.size(),
                  static_cast<size_t>(isa::kMaxReads));
        EXPECT_LE(block.writes.size(),
                  static_cast<size_t>(isa::kMaxWrites));
        for (const isa::TInst &inst : block.insts) {
            if (inst.op == isa::Op::Ld || inst.op == isa::Op::St) {
                EXPECT_LT(inst.lsid, isa::kMaxLsids);
            }
        }
    }
}

std::vector<std::string>
allKernelNames()
{
    std::vector<std::string> names;
    for (const Workload &w : workloads::eembcSuite())
        names.push_back(w.name);
    names.push_back("genalg");
    for (const Workload &w : workloads::microSuite())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SuiteProperty, ::testing::ValuesIn(allKernelNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace dfp
