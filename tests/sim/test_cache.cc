#include <gtest/gtest.h>

#include "sim/cache.h"

namespace dfp::sim
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x108)); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256B total).
    Cache c(256, 2, 64);
    // Three lines mapping to set 0: 0x000, 0x080, 0x100.
    c.access(0x000);
    c.access(0x080);
    c.access(0x000); // refresh 0x000; 0x080 is now LRU
    c.access(0x100); // evicts 0x080
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x080));
    EXPECT_TRUE(c.probe(0x100));
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(256, 2, 64);
    c.access(0x000); // set 0
    c.access(0x040); // set 1
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x040));
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(1024, 2, 64);
    c.access(0x40);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, PaperL1Geometry)
{
    // 32KB 2-way 64B: 256 sets; fill one way fully without eviction.
    Cache c(32 * 1024, 2, 64);
    for (uint64_t a = 0; a < 32 * 1024 / 2; a += 64)
        EXPECT_FALSE(c.access(a));
    for (uint64_t a = 0; a < 32 * 1024 / 2; a += 64)
        EXPECT_TRUE(c.access(a));
}

} // namespace
} // namespace dfp::sim
