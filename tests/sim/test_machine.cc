#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "sim/machine.h"
#include "workloads/suite.h"

namespace dfp::sim
{
namespace
{

using compiler::compileSource;
using compiler::configNamed;

isa::TProgram
loopProgram()
{
    return compileSource(R"(func f {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    off = shl i, 3
    p = add 64, off
    v = ld p
    c = tgt v, 5
    br c, big, small
block big:
    acc = add acc, v
    st p, acc
    jmp next
block small:
    acc = add acc, 1
    jmp next
block next:
    i = add i, 1
    lc = tlt i, 32
    br lc, loop, done
block done:
    ret acc
})",
                         configNamed("both"))
        .program;
}

isa::ArchState
freshState()
{
    isa::ArchState state;
    for (int i = 0; i < 32; ++i)
        state.mem.store(64 + 8 * i, (i * 7) % 13);
    return state;
}

uint64_t
goldenRet(const isa::TProgram &program)
{
    isa::ArchState state = freshState();
    auto out = isa::runProgram(program, state);
    EXPECT_TRUE(out.halted) << out.error;
    return state.regs[compiler::kRetArchReg];
}

TEST(Machine, MatchesFunctionalExecutor)
{
    isa::TProgram program = loopProgram();
    uint64_t expect = goldenRet(program);
    isa::ArchState state = freshState();
    SimResult res = simulate(program, state);
    ASSERT_TRUE(res.halted) << res.error;
    EXPECT_EQ(state.regs[compiler::kRetArchReg], expect);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.blocksCommitted, 32u);
}

TEST(Machine, PerfectPredictionNeverMispredicts)
{
    isa::TProgram program = loopProgram();
    isa::ArchState state = freshState();
    SimConfig cfg;
    cfg.perfectPrediction = true;
    SimResult res = simulate(program, state, cfg);
    ASSERT_TRUE(res.halted) << res.error;
    EXPECT_EQ(res.mispredicts, 0u);
    EXPECT_EQ(res.blocksFlushed, 0u);
}

TEST(Machine, PerfectPredictionIsNotSlower)
{
    isa::TProgram program = loopProgram();
    SimConfig real, oracle;
    oracle.perfectPrediction = true;
    isa::ArchState s1 = freshState(), s2 = freshState();
    SimResult r1 = simulate(program, s1, real);
    SimResult r2 = simulate(program, s2, oracle);
    ASSERT_TRUE(r1.halted && r2.halted);
    EXPECT_LE(r2.cycles, r1.cycles);
}

TEST(Machine, MoreBlocksInFlightIsNotSlower)
{
    isa::TProgram program = loopProgram();
    SimConfig narrow, wide;
    narrow.maxBlocksInFlight = 1;
    wide.maxBlocksInFlight = 8;
    isa::ArchState s1 = freshState(), s2 = freshState();
    SimResult r1 = simulate(program, s1, narrow);
    SimResult r2 = simulate(program, s2, wide);
    ASSERT_TRUE(r1.halted && r2.halted) << r1.error << r2.error;
    EXPECT_LE(r2.cycles, r1.cycles);
    EXPECT_EQ(s1.regs[compiler::kRetArchReg],
              s2.regs[compiler::kRetArchReg]);
}

TEST(Machine, EarlyTerminationHelpsOrTies)
{
    const workloads::Workload *w = workloads::findWorkload("tblook01");
    ASSERT_NE(w, nullptr);
    auto program = compileSource(w->source, configNamed("both")).program;
    SimConfig with, without;
    without.earlyTermination = false;
    isa::ArchState s1 = workloads::initialMemory(*w).numPages()
                            ? isa::ArchState{}
                            : isa::ArchState{};
    s1.mem = workloads::initialMemory(*w);
    isa::ArchState s2;
    s2.mem = workloads::initialMemory(*w);
    SimResult r1 = simulate(program, s1, with);
    SimResult r2 = simulate(program, s2, without);
    ASSERT_TRUE(r1.halted && r2.halted) << r1.error << " / " << r2.error;
    EXPECT_LE(r1.cycles, r2.cycles);
    EXPECT_EQ(s1.regs[compiler::kRetArchReg],
              s2.regs[compiler::kRetArchReg]);
}

TEST(Machine, DeadlockReportedNotHung)
{
    // A block whose write never receives a token.
    isa::TBlock block;
    block.label = "hang";
    isa::TInst movi;
    movi.op = isa::Op::Movi;
    movi.imm = 1;
    movi.pr = isa::PredMode::OnTrue; // predicate never arrives... but
    // validator requires a producer; use an add with missing operand
    // instead: simplest is a write slot with a predicated producer whose
    // predicate never matches.
    isa::TInst zero;
    zero.op = isa::Op::Movi;
    zero.imm = 0;
    zero.targets = {{isa::Slot::Pred, 1}};
    movi.targets = {{isa::Slot::WriteQ, 0}};
    isa::TInst bro;
    bro.op = isa::Op::Bro;
    bro.imm = isa::kHaltTarget;
    block.insts = {zero, movi, bro};
    block.writes.push_back({1});
    isa::TProgram program;
    program.blocks.push_back(block);

    isa::ArchState state;
    SimResult res = simulate(program, state);
    EXPECT_FALSE(res.halted);
    EXPECT_NE(res.error.find("deadlock"), std::string::npos);
}

TEST(Machine, StatsAreConsistent)
{
    isa::TProgram program = loopProgram();
    isa::ArchState state = freshState();
    SimResult res = simulate(program, state);
    ASSERT_TRUE(res.halted);
    EXPECT_EQ(res.stats.get("sim.blocks"), res.blocksCommitted);
    EXPECT_GT(res.instsCommitted, res.blocksCommitted);
    EXPECT_GT(res.stats.get("sim.net_hops"), 0u);
    EXPECT_GT(res.stats.get("sim.l1d_hits") +
                  res.stats.get("sim.l1d_misses"),
              0u);
}

TEST(Machine, ContentionModelOnlyAddsCycles)
{
    isa::TProgram program = loopProgram();
    SimConfig with, without;
    without.modelContention = false;
    isa::ArchState s1 = freshState(), s2 = freshState();
    SimResult r1 = simulate(program, s1, with);
    SimResult r2 = simulate(program, s2, without);
    ASSERT_TRUE(r1.halted && r2.halted);
    EXPECT_GE(r1.cycles, r2.cycles);
    EXPECT_EQ(s1.regs[compiler::kRetArchReg],
              s2.regs[compiler::kRetArchReg]);
}

} // namespace
} // namespace dfp::sim
