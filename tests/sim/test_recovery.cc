/**
 * @file
 * Recovery-correctness tests: under every fault model the machine must
 * still produce the golden return value and memory image (block-atomic
 * squash-and-replay can never double-apply a store), tiles past the
 * hard-fail threshold must be mapped out, and an unrecoverable hang
 * must yield a structured forensic dump naming the starved block.
 */

#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "sim/machine.h"
#include "sim/recovery.h"
#include "workloads/suite.h"

namespace dfp::sim
{
namespace
{

using workloads::Workload;

TEST(RecoveryManager, BackoffDoublesUpToCap)
{
    RecoveryConfig cfg;
    cfg.retryBudget = 16;
    cfg.backoffBase = 32;
    cfg.backoffCapShift = 3;
    RecoveryManager mgr(cfg);
    EXPECT_EQ(mgr.onSquash(5), 32);
    EXPECT_EQ(mgr.onSquash(5), 64);
    EXPECT_EQ(mgr.onSquash(5), 128);
    EXPECT_EQ(mgr.onSquash(5), 256);
    EXPECT_EQ(mgr.onSquash(5), 256); // capped at base << 3
    EXPECT_EQ(mgr.replays(), 5u);
}

TEST(RecoveryManager, BudgetIsPerBlockAndResetsOnCommit)
{
    RecoveryConfig cfg;
    cfg.retryBudget = 2;
    cfg.backoffBase = 8;
    RecoveryManager mgr(cfg);
    EXPECT_EQ(mgr.onSquash(1), 8);
    EXPECT_EQ(mgr.onSquash(1), 16);
    EXPECT_EQ(mgr.onSquash(1), -1); // block 1 exhausted
    EXPECT_EQ(mgr.onSquash(2), 8);  // block 2 has its own budget
    mgr.onCommit(1);
    EXPECT_EQ(mgr.onSquash(1), 8); // refunded by the commit
}

// ---------------------------------------------------------------------

struct SweepCase
{
    std::string kernel;
    FaultModel model;
    double rate;
};

void
PrintTo(const SweepCase &c, std::ostream *os)
{
    *os << c.kernel << "/" << faultModelName(c.model) << "/" << c.rate;
}

class RecoverySweep : public ::testing::TestWithParam<SweepCase>
{
};

/**
 * The central resilience property: with any fault model active the
 * simulated machine still agrees with the golden interpreter on both
 * the return value and the final memory image. A replayed block
 * re-executing its stores would break the checksum immediately.
 */
TEST_P(RecoverySweep, GoldenResultSurvivesFaults)
{
    const SweepCase &param = GetParam();
    const Workload *w = workloads::findWorkload(param.kernel);
    ASSERT_NE(w, nullptr);
    workloads::Golden golden = workloads::runGolden(*w);

    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = w->unrollFactor;
    compiler::CompileResult cr = compiler::compileSource(w->source, opts);

    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    SimConfig cfg;
    cfg.faults.model = param.model;
    cfg.faults.rate = param.rate;
    cfg.faults.seed = 1;
    cfg.watchdogCycles = 1000; // speed up starvation detection
    SimResult res = simulate(cr.program, state, cfg);

    ASSERT_TRUE(res.halted) << res.error;
    EXPECT_EQ(state.regs[compiler::kRetArchReg], golden.retValue);
    EXPECT_EQ(state.mem.checksum(), golden.memChecksum)
        << "memory image diverged: a replay double-applied a store?";
    EXPECT_GT(res.faultsInjected, 0u)
        << "fault engine never fired; the sweep tested nothing";
    // Detectable models must actually exercise squash-and-replay.
    if (param.model == FaultModel::NetDrop ||
        param.model == FaultModel::NetCorrupt)
        EXPECT_GT(res.replays, 0u);
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    const char *kernels[] = {"ifthenelse", "condstore", "whilechain",
                             "routelookup"};
    const FaultModel models[] = {FaultModel::NetDrop,
                                 FaultModel::NetCorrupt,
                                 FaultModel::CacheFlip,
                                 FaultModel::NetDelay,
                                 FaultModel::PredLie};
    for (const char *k : kernels) {
        for (FaultModel m : models) {
            // The guaranteed injection needs ~16 eligible sites;
            // ifthenelse performs fewer L1-D accesses and block
            // predictions than that, so those models cannot fire there.
            if (std::string(k) == "ifthenelse" &&
                (m == FaultModel::CacheFlip || m == FaultModel::PredLie))
                continue;
            cases.push_back({k, m, 1e-4});
            cases.push_back({k, m, 1e-3});
        }
    }
    return cases;
}

std::string
sweepName(const ::testing::TestParamInfo<SweepCase> &info)
{
    std::string name = info.param.kernel;
    name += "_";
    name += faultModelName(info.param.model);
    name += info.param.rate < 5e-4 ? "_lo" : "_hi";
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(Models, RecoverySweep,
                         ::testing::ValuesIn(sweepCases()), sweepName);

// ---------------------------------------------------------------------

TEST(TileMapOut, HardFailedTilesAreRetired)
{
    const Workload *w = workloads::findWorkload("routelookup");
    ASSERT_NE(w, nullptr);
    workloads::Golden golden = workloads::runGolden(*w);

    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = w->unrollFactor;
    compiler::CompileResult cr = compiler::compileSource(w->source, opts);

    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    SimConfig cfg;
    cfg.faults.model = FaultModel::TileFail;
    cfg.faults.rate = 1e-3;
    cfg.faults.seed = 1;
    cfg.watchdogCycles = 1000;
    SimResult res = simulate(cr.program, state, cfg);

    ASSERT_TRUE(res.halted) << res.error;
    EXPECT_EQ(state.regs[compiler::kRetArchReg], golden.retValue);
    EXPECT_EQ(state.mem.checksum(), golden.memChecksum);
    // Persistent hard fails must cross the threshold and retire tiles;
    // the remapped machine keeps running correctly regardless.
    EXPECT_GT(res.tilesMappedOut, 0u);
    EXPECT_GT(res.watchdogFires, 0u);
}

TEST(Forensics, ExhaustedBudgetNamesTheStarvedBlock)
{
    const Workload *w = workloads::findWorkload("ifthenelse");
    ASSERT_NE(w, nullptr);
    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = w->unrollFactor;
    compiler::CompileResult cr = compiler::compileSource(w->source, opts);

    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    SimConfig cfg;
    cfg.faults.model = FaultModel::NetDrop;
    cfg.faults.rate = 1.0; // every operand message is lost
    cfg.faults.seed = 1;
    cfg.watchdogCycles = 200;
    cfg.recovery.retryBudget = 2;
    cfg.recovery.backoffBase = 8;
    SimResult res = simulate(cr.program, state, cfg);

    // The run must fail loudly, not livelock.
    ASSERT_FALSE(res.halted);
    ASSERT_TRUE(res.deadlock.valid);
    ASSERT_FALSE(res.deadlock.frames.empty());

    const DeadlockFrame &victim = res.deadlock.frames.front();
    EXPECT_FALSE(victim.label.empty());
    ASSERT_FALSE(victim.stalled.empty());
    const StalledInst &inst = victim.stalled.front();
    EXPECT_GE(inst.index, 0);
    EXPECT_FALSE(inst.op.empty());
    EXPECT_FALSE(inst.missing.empty()); // names the empty operand slot

    // The one-line summary and the text dump both name the block.
    std::string summary = res.deadlock.summary();
    EXPECT_NE(summary.find(victim.label), std::string::npos) << summary;
    EXPECT_NE(summary.find("missing"), std::string::npos) << summary;
    std::string text = res.deadlock.renderText();
    EXPECT_NE(text.find("hang forensics"), std::string::npos);
    EXPECT_NE(text.find(victim.label), std::string::npos);
    EXPECT_EQ(res.error, summary);
}

TEST(Forensics, CleanRunHasNoDeadlockReport)
{
    const Workload *w = workloads::findWorkload("ifthenelse");
    ASSERT_NE(w, nullptr);
    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = w->unrollFactor;
    compiler::CompileResult cr = compiler::compileSource(w->source, opts);
    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    SimResult res = simulate(cr.program, state);
    ASSERT_TRUE(res.halted) << res.error;
    EXPECT_FALSE(res.deadlock.valid);
}

} // namespace
} // namespace dfp::sim
