#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "compiler/pipeline.h"
#include "sim/machine.h"
#include "sim/trace.h"
#include "support/minijson.h"

namespace dfp::sim
{
namespace
{

using compiler::compileSource;
using compiler::configNamed;

isa::TProgram
branchyProgram()
{
    return compileSource(R"(func f {
block entry:
    i = movi 0
    acc = movi 0
    jmp loop
block loop:
    off = shl i, 3
    p = add 64, off
    v = ld p
    c = tgt v, 5
    br c, big, small
block big:
    acc = add acc, v
    st p, acc
    jmp next
block small:
    acc = add acc, 1
    jmp next
block next:
    i = add i, 1
    lc = tlt i, 16
    br lc, loop, done
block done:
    ret acc
})",
                         configNamed("both"))
        .program;
}

isa::ArchState
freshState()
{
    isa::ArchState state;
    for (int i = 0; i < 16; ++i)
        state.mem.store(64 + 8 * i, (i * 7) % 13);
    return state;
}

/** Run the branchy loop with @p sink attached. */
SimResult
tracedRun(TraceSink *sink)
{
    isa::TProgram program = branchyProgram();
    isa::ArchState state = freshState();
    SimConfig cfg;
    cfg.trace = sink;
    SimResult res = simulate(program, state, cfg);
    EXPECT_TRUE(res.halted) << res.error;
    return res;
}

TEST(Trace, KindNamesAreStable)
{
    EXPECT_STREQ(traceEventKindName(TraceEventKind::BlockFetch),
                 "block_fetch");
    EXPECT_STREQ(traceEventKindName(TraceEventKind::NetHop), "net_hop");
    EXPECT_STREQ(traceEventKindName(TraceEventKind::EarlyTerm),
                 "early_term");
}

TEST(Trace, MakeTraceSinkSelectsFormat)
{
    std::ostringstream os;
    EXPECT_NE(makeTraceSink("chrome", os), nullptr);
    EXPECT_NE(makeTraceSink("jsonl", os), nullptr);
    EXPECT_EQ(makeTraceSink("xml", os), nullptr);
}

TEST(Trace, ChromeOutputIsValidAndSchemaComplete)
{
    std::ostringstream os;
    {
        ChromeTraceSink sink(os);
        tracedRun(&sink);
    } // destructor finalizes the document

    bool ok = false;
    std::string err;
    minijson::Value doc = minijson::parse(os.str(), &ok, &err);
    ASSERT_TRUE(ok) << err;
    ASSERT_TRUE(doc["traceEvents"].isArray());
    const auto &events = doc["traceEvents"].arr;
    ASSERT_GT(events.size(), 10u);

    std::set<std::string> phases;
    std::set<std::string> names;
    for (const minijson::Value &e : events) {
        ASSERT_TRUE(e.isObject());
        ASSERT_TRUE(e["ph"].isString());
        phases.insert(e["ph"].str);
        if (e["ph"].str == "M") { // metadata names a track
            EXPECT_EQ(e["name"].str, "thread_name");
            continue;
        }
        EXPECT_TRUE(e.has("ts"));
        EXPECT_TRUE(e.has("pid"));
        EXPECT_TRUE(e.has("tid"));
        ASSERT_TRUE(e["name"].isString());
        names.insert(e["name"].str.substr(0, e["name"].str.find(' ')));
        if (e["ph"].str == "X") {
            EXPECT_TRUE(e.has("dur"));
        }
    }
    // Complete spans, instants, and track metadata all present.
    EXPECT_TRUE(phases.count("X"));
    EXPECT_TRUE(phases.count("i"));
    EXPECT_TRUE(phases.count("M"));
    // The branchy loop exercises fetch, commit, hops, loads, stores,
    // and predicate-token delivery at minimum.
    for (const char *kind : {"block_fetch", "block_commit", "net_hop",
                             "lsq_load", "lsq_store", "pred_token"})
        EXPECT_TRUE(names.count(kind)) << "missing kind " << kind;
}

TEST(Trace, ChromeFlushIsIdempotent)
{
    std::ostringstream os;
    ChromeTraceSink sink(os);
    tracedRun(&sink); // Machine::run flushes the sink at the end
    sink.flush();
    sink.flush();
    bool ok = false;
    std::string err;
    minijson::parse(os.str(), &ok, &err);
    EXPECT_TRUE(ok) << err;
}

TEST(Trace, JsonlEveryLineParsesWithSchema)
{
    std::ostringstream os;
    JsonlTraceSink sink(os);
    SimResult res = tracedRun(&sink);

    std::istringstream lines(os.str());
    std::string line;
    size_t n = 0;
    std::set<std::string> kinds;
    uint64_t maxCycle = 0;
    while (std::getline(lines, line)) {
        bool ok = false;
        std::string err;
        minijson::Value e = minijson::parse(line, &ok, &err);
        ASSERT_TRUE(ok) << err << " in line: " << line;
        ASSERT_TRUE(e["kind"].isString());
        ASSERT_TRUE(e["cycle"].isNumber());
        kinds.insert(e["kind"].str);
        maxCycle = std::max(maxCycle, uint64_t(e["cycle"].number));
        ++n;
    }
    EXPECT_GT(n, 10u);
    EXPECT_TRUE(kinds.count("block_commit"));
    EXPECT_TRUE(kinds.count("net_hop"));
    // Speculative work past the halting block may trail by a few
    // cycles, but nothing should be wildly out of range.
    EXPECT_LE(maxCycle, res.cycles + 64);
}

TEST(Trace, SimResultsUnchangedByTracing)
{
    std::ostringstream os;
    JsonlTraceSink sink(os);
    SimResult traced = tracedRun(&sink);
    SimResult plain = tracedRun(nullptr);
    EXPECT_EQ(traced.cycles, plain.cycles);
    EXPECT_EQ(traced.blocksCommitted, plain.blocksCommitted);
    EXPECT_EQ(traced.instsCommitted, plain.instsCommitted);
}

} // namespace
} // namespace dfp::sim
