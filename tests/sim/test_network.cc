#include <gtest/gtest.h>

#include "sim/network.h"

namespace dfp::sim
{
namespace
{

TEST(Network, LocalBypassIsFree)
{
    OperandNetwork net(Grid{}, true);
    EXPECT_EQ(net.deliver(5, 5, 100), 100u);
    EXPECT_EQ(net.totalHops(), 0u);
}

TEST(Network, OneCyclePerHopManhattan)
{
    OperandNetwork net(Grid{}, false);
    // Tile 0 (0,0) to tile 15 (3,3): 6 hops on a 4x4 grid.
    EXPECT_EQ(net.deliver(0, 15, 10), 16u);
    EXPECT_EQ(net.totalHops(), 6u);
    // Adjacent tiles: 1 hop.
    EXPECT_EQ(net.deliver(0, 1, 0), 1u);
}

TEST(Network, ContentionSerializesSharedLink)
{
    OperandNetwork net(Grid{}, true);
    // Two messages over the same link at the same cycle: the second
    // waits one cycle.
    uint64_t a = net.deliver(0, 1, 10);
    uint64_t b = net.deliver(0, 1, 10);
    EXPECT_EQ(a, 11u);
    EXPECT_EQ(b, 12u);
    EXPECT_EQ(net.contentionStalls(), 1u);
}

TEST(Network, NoContentionWhenDisabled)
{
    OperandNetwork net(Grid{}, false);
    EXPECT_EQ(net.deliver(0, 1, 10), 11u);
    EXPECT_EQ(net.deliver(0, 1, 10), 11u);
    EXPECT_EQ(net.contentionStalls(), 0u);
}

TEST(Network, RegisterTileDistanceDependsOnRowAndColumn)
{
    OperandNetwork net(Grid{}, false);
    // Reg 0 is served by column 0's register tile above row 0.
    // From tile (0,0): 1 hop into the RT node.
    uint64_t t = net.deliverToReg(0, 0, 0);
    EXPECT_EQ(t, 1u);
    // From tile (3,0) (tile 12): 3 hops up + 1 into RT = 4.
    EXPECT_EQ(net.deliverToReg(12, 0, 0), 4u);
    // Reads mirror writes.
    EXPECT_EQ(net.deliverFromReg(0, 12, 0), 4u);
}

TEST(Network, BankDistanceDependsOnColumn)
{
    OperandNetwork net(Grid{}, false);
    // Bank row 0 sits left of column 0: from tile (0,3) it is 3 hops
    // across + 1 into the DT.
    EXPECT_EQ(net.deliverToBank(3, 0, 0), 4u);
    EXPECT_EQ(net.deliverFromBank(0, 3, 0), 4u);
}

TEST(Network, GridHelpers)
{
    Grid g;
    EXPECT_EQ(g.tiles(), 16);
    EXPECT_EQ(g.rowOf(13), 3);
    EXPECT_EQ(g.colOf(13), 1);
    EXPECT_EQ(g.regCol(5), 1);
    EXPECT_EQ(g.bankRow(0x40, 64), 1);
    EXPECT_EQ(g.bankRow(0x100, 64), 0);
}

TEST(Network, ResetClearsState)
{
    OperandNetwork net(Grid{}, true);
    net.deliver(0, 3, 0);
    net.reset();
    EXPECT_EQ(net.totalHops(), 0u);
    EXPECT_EQ(net.contentionStalls(), 0u);
}

} // namespace
} // namespace dfp::sim
