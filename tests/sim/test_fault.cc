/**
 * @file
 * Determinism tests for the fault-injection engine: a given
 * `--fault-seed` must reproduce the exact same run (byte-identical
 * stats), different seeds must produce different schedules, and a
 * disabled engine must leave the simulation bit-for-bit untouched.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/pipeline.h"
#include "compiler/regalloc.h"
#include "sim/fault.h"
#include "sim/machine.h"
#include "workloads/suite.h"

namespace dfp::sim
{
namespace
{

using workloads::Workload;

struct SimRun
{
    SimResult res;
    uint64_t ret = 0;
    uint64_t memChecksum = 0;
    std::string statsJson;
};

SimRun
runWorkload(const std::string &kernel, const SimConfig &cfg)
{
    const Workload *w = workloads::findWorkload(kernel);
    EXPECT_NE(w, nullptr) << kernel;
    compiler::CompileOptions opts = compiler::configNamed("both");
    opts.unroll.factor = w->unrollFactor;
    compiler::CompileResult cr = compiler::compileSource(w->source, opts);

    isa::ArchState state;
    state.mem = workloads::initialMemory(*w);
    SimRun run;
    run.res = simulate(cr.program, state, cfg);
    run.ret = state.regs[compiler::kRetArchReg];
    run.memChecksum = state.mem.checksum();
    std::ostringstream os;
    run.res.stats.dumpJson(os);
    run.statsJson = os.str();
    return run;
}

SimConfig
faultConfig(FaultModel model, double rate, uint64_t seed)
{
    SimConfig cfg;
    cfg.faults.model = model;
    cfg.faults.rate = rate;
    cfg.faults.seed = seed;
    return cfg;
}

TEST(FaultModelNames, RoundTrip)
{
    const FaultModel models[] = {
        FaultModel::None,      FaultModel::NetDrop,
        FaultModel::NetCorrupt, FaultModel::NetDelay,
        FaultModel::TileStall, FaultModel::TileFail,
        FaultModel::CacheFlip, FaultModel::PredLie,
    };
    for (FaultModel m : models) {
        FaultModel back = FaultModel::None;
        ASSERT_TRUE(parseFaultModel(faultModelName(m), back));
        EXPECT_EQ(back, m);
    }
    FaultModel out;
    EXPECT_FALSE(parseFaultModel("gamma-ray", out));
    EXPECT_FALSE(parseFaultModel("", out));
}

TEST(FaultConfig, EnabledNeedsModelAndRate)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    cfg.model = FaultModel::NetDrop;
    EXPECT_FALSE(cfg.enabled()); // rate still zero
    cfg.rate = 1e-4;
    EXPECT_TRUE(cfg.enabled());
    cfg.model = FaultModel::None;
    EXPECT_FALSE(cfg.enabled());
}

TEST(FaultEngine, RateOneAlwaysFires)
{
    FaultConfig cfg;
    cfg.model = FaultModel::NetDrop;
    cfg.rate = 1.0;
    FaultEngine engine(cfg, 4, 4);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(engine.onMessage(), FaultEngine::MessageVerdict::Drop);
    EXPECT_EQ(engine.injected(), 100u);
}

TEST(FaultEngine, WrongModelNeverFires)
{
    FaultConfig cfg;
    cfg.model = FaultModel::NetDrop;
    cfg.rate = 1.0;
    FaultEngine engine(cfg, 4, 4);
    // A drop-model engine must leave every non-message site alone.
    EXPECT_EQ(engine.netDelay(), 0u);
    EXPECT_EQ(engine.tileStall(0), 0u);
    EXPECT_FALSE(engine.tileFailIssue(0));
    EXPECT_FALSE(engine.cacheFlip());
    EXPECT_EQ(engine.predictorLie(2), 2);
    EXPECT_EQ(engine.injected(), 0u);
}

TEST(FaultEngine, PredictorLieIsWrongButValid)
{
    FaultConfig cfg;
    cfg.model = FaultModel::PredLie;
    cfg.rate = 1.0;
    FaultEngine engine(cfg, 4, 7);
    for (int i = 0; i < 50; ++i) {
        int lie = engine.predictorLie(3);
        EXPECT_NE(lie, 3);
        EXPECT_GE(lie, 0);
        EXPECT_LT(lie, 7);
    }
}

TEST(FaultDeterminism, SameSeedIsByteIdentical)
{
    SimConfig cfg = faultConfig(FaultModel::NetDrop, 1e-3, 7);
    SimRun a = runWorkload("routelookup", cfg);
    SimRun b = runWorkload("routelookup", cfg);
    ASSERT_TRUE(a.res.halted) << a.res.error;
    EXPECT_GT(a.res.faultsInjected, 0u);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.res.cycles, b.res.cycles);
    EXPECT_EQ(a.ret, b.ret);
    EXPECT_EQ(a.memChecksum, b.memChecksum);
}

TEST(FaultDeterminism, DifferentSeedsDiffer)
{
    SimRun a = runWorkload("routelookup",
                        faultConfig(FaultModel::NetDrop, 1e-3, 1));
    SimRun b = runWorkload("routelookup",
                        faultConfig(FaultModel::NetDrop, 1e-3, 2));
    ASSERT_TRUE(a.res.halted) << a.res.error;
    ASSERT_TRUE(b.res.halted) << b.res.error;
    // The injection schedule — and therefore the cycle-by-cycle stats —
    // must depend on the seed. (Architectural results still agree.)
    EXPECT_NE(a.statsJson, b.statsJson);
    EXPECT_EQ(a.ret, b.ret);
    EXPECT_EQ(a.memChecksum, b.memChecksum);
}

TEST(FaultDeterminism, DisabledEngineMatchesBaseline)
{
    SimRun base = runWorkload("ifthenelse", SimConfig());
    // Model set but rate zero: the engine must not even be constructed.
    SimConfig off;
    off.faults.model = FaultModel::NetDrop;
    off.faults.rate = 0.0;
    SimRun quiet = runWorkload("ifthenelse", off);
    ASSERT_TRUE(base.res.halted) << base.res.error;
    EXPECT_EQ(base.res.cycles, quiet.res.cycles);
    EXPECT_EQ(base.ret, quiet.ret);
    EXPECT_EQ(base.res.faultsInjected, 0u);
    EXPECT_EQ(quiet.res.faultsInjected, 0u);
    EXPECT_EQ(base.statsJson, quiet.statsJson);
}

TEST(FaultDeterminism, TinyWorkloadStillSeesAFault)
{
    // Regression: ifthenelse has only a few dozen operand messages end
    // to end; the guaranteed-injection window must be small enough that
    // even this run gets at least one fault and one replay.
    SimRun run = runWorkload("ifthenelse",
                          faultConfig(FaultModel::NetDrop, 1e-4, 1));
    ASSERT_TRUE(run.res.halted) << run.res.error;
    EXPECT_GT(run.res.faultsInjected, 0u);
    EXPECT_GT(run.res.replays, 0u);
}

} // namespace
} // namespace dfp::sim
